"""Incremental sweep reassembly vs cold rebuilds (fig5-style TSV sweep).

The fig5 experiment sweeps TSV count over the off-chip DDR3 stack: every
sweep point changes only the TSV connect ops in the build plan while the
layer meshes (and most connects) stay identical.  The incremental
assembler (:class:`repro.pdn.assemble.AssemblySession`) caches per-op
artifacts keyed by the ops themselves, so each subsequent sweep point
replays its unchanged layers from cache instead of re-rasterizing them.

Two legs over the same plans:

* **cold** -- ``assemble(plan)`` per point, no session: every mesh and
  link block is rebuilt from its op (the pre-refactor behaviour);
* **incremental** -- one shared session across the sweep.

The legs must agree *bitwise* (identical link lists, supply lists, and
mesh conductance arrays) -- the session trades no accuracy: a cache hit
contributes the same bytes a rebuild would.  The speedup is asserted at
>= 1.3x (typically >10x; the margin absorbs CI timing noise) and is
recorded as the ``bench.incremental_reassembly.speedup`` gauge plus a
JSON artifact under ``benchmarks/results/``.

Run directly (``python benchmarks/bench_incremental_reassembly.py``) or
under pytest; ``REPRO_BENCH_SMOKE=1`` shortens the sweep.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np

from repro.bench import register_bench

RESULTS_DIR = Path(__file__).parent / "results"

#: fig5's sweep axis (TSV count per die).
FULL_COUNTS = (15, 33, 60, 120, 240)
SMOKE_COUNTS = (15, 60, 240)

#: Minimum accepted incremental-over-cold speedup; the observed value is
#: an order of magnitude higher, so a failure here means the session
#: stopped reusing artifacts, not that the machine was slow.
MIN_SPEEDUP = 1.3


def _smoke() -> bool:
    return os.environ.get("REPRO_BENCH_SMOKE", "0") == "1"


def _models_bitwise_equal(a, b) -> bool:
    """Exact structural equality of two assembled stack models."""
    if a.layer_keys != b.layer_keys:
        return False
    for key in a.layer_keys:
        ea, eb = a.layer_entry(key), b.layer_entry(key)
        if (ea.offset, ea.origin) != (eb.offset, eb.origin):
            return False
        if not np.array_equal(ea.mesh.gx, eb.mesh.gx):
            return False
        if not np.array_equal(ea.mesh.gy, eb.mesh.gy):
            return False
    if a.links_range(0, a.link_count) != b.links_range(0, b.link_count):
        return False
    return a.supply_range(0, a.supply_count) == b.supply_range(
        0, b.supply_count
    )


def run_benchmark() -> dict:
    from repro.designs import off_chip_ddr3
    from repro.obs import metrics as _metrics
    from repro.pdn.assemble import AssemblySession, assemble
    from repro.pdn.plan import record_plan_use
    from repro.pdn.stackup import plan_stack

    bench = off_chip_ddr3()
    counts = SMOKE_COUNTS if _smoke() else FULL_COUNTS
    plans = [
        plan_stack(bench.stack, bench.baseline.with_options(tsv_count=c))
        for c in counts
    ]
    for plan in plans:
        record_plan_use(plan)
    repeats = 3

    # Warm-up outside the timed region (imports, allocator, BLAS).
    assemble(plans[0])

    # --- cold: every sweep point rebuilds all artifacts ---------------------
    t0 = time.perf_counter()
    cold_models = None
    for _ in range(repeats):
        cold_models = [assemble(p).model for p in plans]
    cold_s = time.perf_counter() - t0

    # --- incremental: one shared session across the sweep -------------------
    session = AssemblySession()
    before = _metrics.snapshot()
    t0 = time.perf_counter()
    warm_models = None
    for _ in range(repeats):
        warm_models = [assemble(p, session=session).model for p in plans]
    warm_s = time.perf_counter() - t0
    delta = _metrics.diff(before, _metrics.snapshot())["counters"]

    # --- identity: the session must trade no accuracy -----------------------
    for cold_model, warm_model, count in zip(cold_models, warm_models, counts):
        assert _models_bitwise_equal(cold_model, warm_model), (
            f"incremental reassembly diverged from cold build at "
            f"tsv_count={count}"
        )

    speedup = cold_s / warm_s if warm_s > 0 else float("inf")
    _metrics.set_gauge("bench.incremental_reassembly.speedup", speedup)
    result = {
        "benchmark": "fig5 TSV-count sweep reassembly",
        "smoke": _smoke(),
        "tsv_counts": list(counts),
        "sweep_repeats": repeats,
        "cold_s": round(cold_s, 4),
        "incremental_s": round(warm_s, 4),
        "speedup": round(speedup, 2),
        "layers_reused": delta.get("assemble.layers_reused", 0),
        "layers_built": delta.get("assemble.layers_built", 0),
        "connects_reused": delta.get("assemble.connects_reused", 0),
        "connects_built": delta.get("assemble.connects_built", 0),
        "session": session.stats(),
    }
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    (RESULTS_DIR / "incremental_reassembly.json").write_text(
        json.dumps(result, indent=2) + "\n"
    )
    return result


@register_bench("incremental_reassembly")
def test_incremental_reassembly_speedup():
    """Incremental sweep reassembly: bitwise-equal and >= 1.3x faster."""
    result = run_benchmark()
    print("\n" + json.dumps(result, indent=2))
    # Reuse must actually happen: after the first sweep pass, layers come
    # exclusively from the session cache.
    assert result["layers_reused"] > 0
    assert result["connects_reused"] > 0
    assert result["speedup"] >= MIN_SPEEDUP, (
        f"incremental reassembly only {result['speedup']}x over cold "
        f"rebuilds (floor {MIN_SPEEDUP}x)"
    )


def main(argv=None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        description="incremental reassembly benchmark (see module docstring)"
    )
    parser.add_argument(
        "--manifest-out", metavar="PATH", default=None,
        help="write a run provenance manifest",
    )
    args = parser.parse_args(argv)

    from repro.obs import metrics as _metrics
    from repro.obs.manifest import build_manifest
    from repro.obs.trace import span

    before = _metrics.snapshot()
    with span("bench.incremental_reassembly", smoke=_smoke()) as sp:
        result = run_benchmark()
    print(json.dumps(result, indent=2))
    assert result["speedup"] >= MIN_SPEEDUP
    if args.manifest_out:
        build_manifest(
            experiment_id="bench.incremental_reassembly",
            title="incremental sweep reassembly",
            config={"smoke": _smoke(), "tsv_counts": result["tsv_counts"]},
            duration_s=sp.duration,
            metrics_snapshot=_metrics.diff(before, _metrics.snapshot()),
        ).write(args.manifest_out)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
