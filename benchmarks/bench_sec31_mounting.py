"""Section 3.1: off-chip 30.03 mV vs coupled on-chip 64.41 mV."""

from repro.bench import register_bench


@register_bench("sec31", experiment_id="sec31")
def test_sec31_mounting(run_paper_experiment):
    result = run_paper_experiment("sec31")
    for row in result.rows:
        # Every IR value within 15% of the paper's.
        assert abs(row.deviation_percent("ir_mv")) < 15.0
    on = result.row("on-chip, PDNs coupled")
    assert abs(on.deviation_percent("logic_mv")) < 15.0
