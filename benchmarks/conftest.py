"""Benchmark harness helpers.

Every bench runs one experiment driver end to end (rounds=1 -- these are
scientific reproductions, not micro-benchmarks), prints the regenerated
table next to the paper's numbers, and archives it under
``benchmarks/results/`` (git-ignored; created on demand).

Run with::

    pytest benchmarks/ --benchmark-only -s

Set ``REPRO_FAST=1`` to use the reduced sweeps of every experiment.

The same test functions are registered with :mod:`repro.bench` (the
``@register_bench`` decorators) and driven by the unified telemetry
runner -- ``repro3d bench`` / ``python -m repro.bench`` -- which
replaces this fixture with an instrumented equivalent and emits the
``BENCH_*.json`` suite record; see ``docs/benchmarks.md``.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


def fast_mode() -> bool:
    return os.environ.get("REPRO_FAST", "0") == "1"


@pytest.fixture
def run_paper_experiment(benchmark):
    """Run an experiment under pytest-benchmark and archive its table."""

    def runner(experiment_id: str, **checks):
        from repro.experiments import run_experiment

        result = benchmark.pedantic(
            run_experiment,
            args=(experiment_id,),
            kwargs={"fast": fast_mode()},
            rounds=1,
            iterations=1,
        )
        text = result.fmt()
        print("\n" + text)
        RESULTS_DIR.mkdir(parents=True, exist_ok=True)
        (RESULTS_DIR / f"{experiment_id}.txt").write_text(text + "\n")
        return result

    return runner
