"""Telemetry overhead gate: profiling a run must cost < 3% wall.

Runs the fig5 TSV-count experiment in two interleaved legs:

* **base** -- profiler stopped, convergence tracing disabled;
* **telemetry** -- background resource sampler running at its default
  interval (``REPRO_PROFILE_INTERVAL_MS``) plus convergence tracing
  enabled (a no-op for the direct backend, but the enable/sample checks
  still execute on every solve).

A single warm fig5 run is ~60 ms -- too short to time against the
several-ms scheduler noise of a shared CI box -- so each timed *window*
runs the experiment ``INNER_RUNS`` times back to back (~0.5 s), noise
averaging out within the window.  Windows alternate legs (order flipped
every repeat) so drift hits both equally, and the reported overhead
comes from the min-of-k window wall per leg, the standard way to strip
scheduler noise.  A warmup pass populates the plan/assembly caches first
so both legs measure solve + extraction work, not first-touch
construction.

The gate is twofold:

* overhead < ``MAX_OVERHEAD_PCT`` (3%);
* physics rows from every run of both legs are *exactly* equal --
  telemetry must observe the computation, never perturb it.

Results land in ``benchmarks/results/obs_overhead.json``.  Run directly
(``python benchmarks/bench_obs_overhead.py``) or via the unified runner
(``repro3d bench --names obs_overhead``).
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from repro.bench import register_bench

RESULTS_DIR = Path(__file__).parent / "results"

MAX_OVERHEAD_PCT = 3.0
WARMUP_RUNS = 3
INNER_RUNS = 8


def _smoke() -> bool:
    return os.environ.get("REPRO_BENCH_SMOKE", "0") == "1"


def _repeats() -> int:
    # Windows per leg.  min-of-k converges on the true cost only once k
    # outlasts the scheduler noise bursts of a shared (often
    # single-core) CI box; at ~0.5 s per window this is a few seconds
    # total.
    return 7 if _smoke() else 9


def _rows_of(result) -> list:
    return [(row.label, row.model) for row in result.rows]


def run_benchmark() -> dict:
    from repro.experiments import run_experiment
    from repro.obs import profile as _profile
    from repro.rmesh import backends as _backends

    trace_env_before = os.environ.get(_backends.CONVERGENCE_TRACE_ENV)

    def _window(telemetry: bool):
        if telemetry:
            os.environ[_backends.CONVERGENCE_TRACE_ENV] = "1"
            _profile.start_profiler()
        else:
            os.environ[_backends.CONVERGENCE_TRACE_ENV] = "0"
        try:
            rows_seen = []
            t0 = time.perf_counter()
            for _ in range(INNER_RUNS):
                rows_seen.append(_rows_of(run_experiment("fig5", fast=True)))
            wall = time.perf_counter() - t0
        finally:
            if telemetry:
                _profile.stop_profiler(final_sample=False)
            if trace_env_before is None:
                os.environ.pop(_backends.CONVERGENCE_TRACE_ENV, None)
            else:
                os.environ[_backends.CONVERGENCE_TRACE_ENV] = trace_env_before
        return wall, rows_seen

    for _ in range(WARMUP_RUNS):
        run_experiment("fig5", fast=True)

    base_walls, telem_walls = [], []
    reference_rows = None
    rows_identical = True
    for rep in range(_repeats()):
        # Alternate leg order so slow drift cannot systematically favor
        # whichever leg runs second within a pair.
        order = (False, True) if rep % 2 == 0 else (True, False)
        for telemetry in order:
            wall, rows_seen = _window(telemetry)
            (telem_walls if telemetry else base_walls).append(wall)
            for rows in rows_seen:
                if reference_rows is None:
                    reference_rows = rows
                elif rows != reference_rows:
                    rows_identical = False

    base = min(base_walls)
    telem = min(telem_walls)
    overhead_pct = (telem - base) / base * 100.0
    sample_count = _profile.sample_count()

    result = {
        "benchmark": "telemetry overhead on fig5",
        "smoke": _smoke(),
        "repeats": _repeats(),
        "inner_runs": INNER_RUNS,
        "base_wall_s": round(base, 5),
        "telemetry_wall_s": round(telem, 5),
        "base_wall_s_all": [round(w, 5) for w in base_walls],
        "telemetry_wall_s_all": [round(w, 5) for w in telem_walls],
        "overhead_pct": round(overhead_pct, 3),
        "max_overhead_pct": MAX_OVERHEAD_PCT,
        "profile_samples": sample_count,
        "rows_identical": rows_identical,
    }
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    (RESULTS_DIR / "obs_overhead.json").write_text(
        json.dumps(result, indent=2) + "\n"
    )
    return result


@register_bench("obs_overhead")
def test_obs_overhead_under_gate():
    """Profiler + tracing overhead < 3% wall, physics bitwise-stable."""
    result = run_benchmark()
    print("\n" + json.dumps(result, indent=2))
    assert result["rows_identical"], (
        "telemetry leg produced different physics rows than the base leg"
    )
    assert result["overhead_pct"] < MAX_OVERHEAD_PCT, (
        f"telemetry overhead {result['overhead_pct']}% exceeds the "
        f"{MAX_OVERHEAD_PCT}% gate "
        f"(base {result['base_wall_s']}s, "
        f"telemetry {result['telemetry_wall_s']}s)"
    )


def main(argv=None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        description="telemetry overhead benchmark (see module docstring)"
    )
    parser.add_argument(
        "--manifest-out", metavar="PATH", default=None,
        help="write a run provenance manifest",
    )
    args = parser.parse_args(argv)

    from repro.obs import metrics as _metrics
    from repro.obs.manifest import build_manifest
    from repro.obs.trace import span

    before = _metrics.snapshot()
    with span("bench.obs_overhead", smoke=_smoke()) as sp:
        result = run_benchmark()
    print(json.dumps(result, indent=2))
    assert result["rows_identical"]
    assert result["overhead_pct"] < MAX_OVERHEAD_PCT
    if args.manifest_out:
        build_manifest(
            experiment_id="bench.obs_overhead",
            title="telemetry overhead gate",
            config={"smoke": _smoke(), "repeats": result["repeats"]},
            duration_s=sp.duration,
            metrics_snapshot=_metrics.diff(before, _metrics.snapshot()),
        ).write(args.manifest_out)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
