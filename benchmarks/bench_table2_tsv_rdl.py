"""Table 2: TSV location and RDL design options."""

from repro.bench import register_bench


@register_bench("table2", experiment_id="table2")
def test_table2_tsv_rdl(run_paper_experiment):
    result = run_paper_experiment("table2")
    for row in result.rows:
        assert abs(row.deviation_percent("ir_mv")) < 15.0
    # The paper's cost ordering: (b) lowest, (a) highest among non-RDL...
    costs = {r.label[:3]: r.model["cost"] for r in result.rows}
    assert costs["(b)"] < costs["(d)"] < costs["(c)"]
