"""Extension bench: TSV current crowding across design options."""

from repro.bench import register_bench


@register_bench("ext_crowding", experiment_id="ext_crowding")
def test_ext_crowding(run_paper_experiment):
    result = run_paper_experiment("ext_crowding")
    rows = {r.label: r.model for r in result.rows}
    base = rows["edge TSVs (baseline)"]
    many = rows["edge TSVs, 240x"]
    f2f = rows["F2F pairs"]
    # More TSVs cut the per-link current far below the baseline's worst.
    assert many["worst_link_ma"] < base["worst_link_ma"] / 3.0
    # The F2F bond-via field carries the same total over many more links:
    # its worst link stays below the discrete-TSV baseline's.
    assert f2f["links"] > 5 * base["links"]
    assert f2f["worst_link_ma"] < base["worst_link_ma"]
    # Crowding is never balanced (factor 1.0) for localized loads.
    for row in rows.values():
        assert row["crowding_factor"] > 1.2
    # The uniform C4 field under an idle-mostly stack shares evenly.
    assert base["supply_crowding"] < 1.5
