"""Controller engine throughput: event-driven core vs the legacy loop.

The event-driven engine exists to make multi-million-request trace
studies practical, so this bench gates its speedup directly: both
engines run the same saturating 16-channel workload (the HMC shape,
where the per-cycle loop must scan 128 banks every cycle) and the event
engine must sustain at least 20x the legacy loop's requests/second.

The legacy loop runs a short prefix of the stream (it is the slow side
being measured -- timing it on the full workload would dominate the
suite), while the event engine runs a much longer one; both rates are
per-request, so the ratio is shape-fair.
"""

import os
import time

from repro.bench import register_bench
from repro.controller import (
    SimConfig,
    StandardJEDEC,
    WorkloadConfig,
    generate_workload,
)
from repro.controller.engine import EventDrivenEngine
from repro.controller.simulator import MemoryControllerSim
from repro.dram.timing import TimingParams

#: the acceptance gate: event-engine req/s over legacy req/s.
SPEEDUP_GATE = 20.0


def _workload(n: int):
    """Saturating traffic across 32 banks/die (the ext_hmc shape)."""
    return generate_workload(
        WorkloadConfig(
            num_requests=n, seed=7, banks_per_die=32, arrival_interval=1
        )
    )


def _config(timing: TimingParams) -> SimConfig:
    return SimConfig(
        timing=timing,
        num_dies=4,
        banks_per_die=32,
        num_channels=16,
        max_banks_per_die=8,
        max_banks_per_channel=2,
    )


def run_throughput_comparison(n_event: int, n_legacy: int):
    timing = TimingParams.hmc_2500()
    cfg = _config(timing)

    t0 = time.perf_counter()
    res_event = EventDrivenEngine(
        cfg, StandardJEDEC(timing), _workload(n_event)
    ).run()
    dt_event = time.perf_counter() - t0

    t0 = time.perf_counter()
    res_legacy = MemoryControllerSim(
        cfg, StandardJEDEC(timing), _workload(n_legacy)
    ).run_legacy()
    dt_legacy = time.perf_counter() - t0

    assert res_event.finished and res_legacy.finished
    return {
        "event_req_s": n_event / dt_event,
        "legacy_req_s": n_legacy / dt_legacy,
        "speedup": (n_event / dt_event) / (n_legacy / dt_legacy),
        "event_cycles": res_event.cycles,
    }


@register_bench("controller_throughput", tags=("controller",))
def test_controller_throughput(benchmark):
    fast = os.environ.get("REPRO_FAST", "0") == "1"
    n_event = 10_000 if fast else 30_000
    n_legacy = 800 if fast else 1_500
    row = benchmark.pedantic(
        run_throughput_comparison,
        args=(n_event, n_legacy),
        rounds=1,
        iterations=1,
    )
    print("\n== controller engine throughput ==")
    print(f"  event : {row['event_req_s']:>10,.0f} req/s  ({n_event:,} requests)")
    print(f"  legacy: {row['legacy_req_s']:>10,.0f} req/s  ({n_legacy:,} requests)")
    print(f"  speedup: {row['speedup']:.1f}x  (gate >= {SPEEDUP_GATE:.0f}x)")
    assert row["speedup"] >= SPEEDUP_GATE, (
        f"event engine only {row['speedup']:.1f}x over legacy "
        f"(gate {SPEEDUP_GATE}x)"
    )
