"""Section 6.1: regression quality and the brute-force time reduction."""

from repro.bench import register_bench


@register_bench("sec61", heavy=True, experiment_id="sec61")
def test_sec61_regression(run_paper_experiment):
    result = run_paper_experiment("sec61")
    for row in result.rows:
        assert row.model["r_squared"] > 0.97
        # Sampling + regression is far below brute force.  (Wide I/O's
        # pinned TSV count shrinks its brute-force space, so the margin
        # is smaller there.)
        assert row.model["sample_hours"] < row.model["projected_brute_hours"] / 10.0
