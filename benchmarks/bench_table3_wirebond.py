"""Table 3: dedicated TSVs and backside wire bonding."""

from repro.bench import register_bench


@register_bench("table3", experiment_id="table3")
def test_table3_wirebond(run_paper_experiment):
    result = run_paper_experiment("table3")
    coupled, dedicated, off = result.rows
    # Wire bonding halves the coupled on-chip IR (paper -53.4%).
    assert coupled.model["delta_pct"] < -35.0
    # ...but only marginally improves designs with direct supply
    # (paper -12.8% and -9.76%).
    assert -25.0 < dedicated.model["delta_pct"] < -2.0
    assert -25.0 < off.model["delta_pct"] < -2.0
    for row in result.rows:
        assert abs(row.deviation_percent("baseline_mv")) < 15.0
