"""Table 4: intra-pair overlapping vs F2F PDN-sharing benefit."""

from repro.bench import register_bench


@register_bench("table4", experiment_id="table4")
def test_table4_f2f_overlap(run_paper_experiment):
    result = run_paper_experiment("table4")
    deltas = {r.label.split(" ")[0]: r.model["delta_pct"] for r in result.rows}
    # Overlapping states: marginal F2F benefit (paper -3.3% / -3.5%).
    assert deltas["0-0-2a-2a"] > -12.0
    assert deltas["0-0-2b-2b"] > -12.0
    # Fully separated pairs: large benefit (paper -44.2% / -42.5%).
    assert deltas["0-2a-0-2a"] < -30.0
    assert deltas["2a-0-0-2a"] < -30.0
    # The benefit grows with separation: c and d (far columns) both beat
    # b (adjacent column).  c vs d may swap by a small margin because the
    # d column sits right on the well-supplied edge ring.
    assert deltas["0-0-2c-2a"] < deltas["0-0-2b-2a"]
    assert deltas["0-0-2d-2a"] < deltas["0-0-2b-2a"]
    # F2B magnitudes near the paper's -- except the b/c-position rows:
    # the paper's die has an asymmetry that makes its inner positions
    # *better* supplied, while our symmetric edge ring makes them worse
    # (documented deviation, see EXPERIMENTS.md).  The overlap trend,
    # the table's point, holds either way.
    for row in result.rows:
        if "2b-2b" in row.label or "2c" in row.label or "2b-2a" in row.label:
            continue
        assert abs(row.deviation_percent("f2b_mv")) < 25.0
