"""Table 1: benchmark specifications."""

from repro.bench import register_bench


@register_bench("table1", experiment_id="table1")
def test_table1_specs(run_paper_experiment):
    result = run_paper_experiment("table1")
    for row in result.rows:
        assert row.model["banks"] == row.paper["banks"]
        assert row.model["speed_mbps"] == row.paper["speed_mbps"]
