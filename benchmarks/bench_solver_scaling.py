"""Solver backends: equivalence, warm-start speedup, and mesh scaling.

Three legs over the pluggable backends of :mod:`repro.rmesh.backends`:

* **equivalence** -- every benchmark stack's reference state solved with
  ``direct``, ``cg``, and ``amg`` (which falls back to cg when pyamg is
  absent); max-IR must agree with direct within ``EQUIV_RTOL`` relative.
* **warm-start** -- a fig5-style TSV-count sweep over off-chip DDR3 at a
  finer-than-production pitch, solved twice with the cg backend: cold
  (a fresh solver, hence a fresh factor preconditioner, per point) and
  warm (one :class:`repro.pdn.sweep.SweepSolveSession` carrying the
  preconditioner and previous solution across neighbors).  The session
  must be >= ``MIN_WARM_SPEEDUP`` faster and numerically agree with the
  direct path.
* **scaling** -- a synthetic SRAM-PG-style workload
  (:mod:`repro.rmesh.workloads`) at >= ``SCALE_FACTOR``x the nodes of
  the largest direct-solved benchmark stack (Wide I/O), solved with
  matrix-free Jacobi-CG.  Setup + solve must not exceed the *direct*
  setup + solve wall time of the 4x-smaller Wide I/O stack -- the
  "reference-resolution solves become routine" claim, gated.

Numbers land in the ``bench.solver_scaling.*`` gauges and a JSON
artifact under ``benchmarks/results/``.  Run directly
(``python benchmarks/bench_solver_scaling.py``) or under pytest;
``REPRO_BENCH_SMOKE=1`` shortens the sweep and skips the big-mesh
direct cross-check.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from repro.bench import register_bench

RESULTS_DIR = Path(__file__).parent / "results"

#: Max-IR relative tolerance between iterative and direct backends
#: (acceptance criterion; observed agreement is ~1e-12).
EQUIV_RTOL = 1e-6

#: fig5-style sweep axis for the warm-start leg (TSV count per die).
#: The first point is the cold start whose setup both legs pay, so the
#: speedup grows with sweep length; 8 points already clear the 2x floor
#: with margin (~2.3x observed), 15 more comfortably still.
FULL_COUNTS = tuple(range(240, 311, 5))
SMOKE_COUNTS = tuple(range(240, 311, 10))

#: Mesh pitch for the warm-start sweep, mm.  Finer than production
#: (0.4 mm) so solver setup dominates the per-point cost the way it does
#: at reference resolution; observed speedup there is ~2.4x.
WARM_SWEEP_PITCH = 0.2

#: Minimum accepted warm-over-cold speedup (acceptance criterion).
#: Warm-start typically lands 2-3x; the floor sits below that band
#: because the cold leg's wall is factorization-dominated and jitters
#: hard on busy single-core CI boxes.
MIN_WARM_SPEEDUP = 1.6

#: The scaling leg solves at this multiple of the largest benchmark
#: stack's node count (acceptance criterion).
SCALE_FACTOR = 4

#: Supply bump spacing (in grid nodes) of the scaling workload.  Dense,
#: SRAM-PG-style: server-class grids pitch their C4 field a couple of
#: mesh cells apart, which is also what keeps the Jacobi-preconditioned
#: system well conditioned at this node count.
SCALE_BUMP_EVERY = 2

#: Timer-noise allowance on the scaling comparison.  The two walls are
#: deliberately neck-and-neck (that is the claim: CG at 4x the nodes
#: matches the direct wall at 1x), so on a busy single-core CI box the
#: min-of-k estimates jitter 10-20% either side of each other.
SCALE_NOISE_TOL = 1.25


def _smoke() -> bool:
    return os.environ.get("REPRO_BENCH_SMOKE", "0") == "1"


def _bench_equivalence() -> dict:
    """Leg 1: every backend agrees with direct on every benchmark."""
    from repro.designs import all_benchmarks, benchmark
    from repro.perf.cache import cached_build_stack, clear_caches
    from repro.rmesh.backends import amg_available

    rows = {}
    worst = 0.0
    for name in sorted(all_benchmarks()):
        clear_caches()
        bench = benchmark(name)
        stack = cached_build_stack(bench.stack, bench.baseline)
        state = bench.reference_state()
        maps = stack.power_maps(state)
        reference = None
        rows[name] = {}
        for backend in ("direct", "cg", "amg"):
            solver = stack.solver_for(backend)
            result = solver.solve_power_maps(maps)
            ir = result.max_drop_mv()
            rows[name][backend] = {
                "max_ir_mv": round(ir, 6),
                "resolved": result.backend,
                "iterations": result.iterations,
            }
            if backend == "direct":
                reference = ir
            else:
                rel = abs(ir - reference) / reference
                rows[name][backend]["rel_err"] = float(f"{rel:.3e}")
                worst = max(worst, rel)
                assert rel <= EQUIV_RTOL, (
                    f"{name}/{backend}: max-IR {ir} vs direct {reference} "
                    f"({rel:.2e} > {EQUIV_RTOL} relative)"
                )
    return {
        "per_benchmark": rows,
        "worst_rel_err": float(f"{worst:.3e}"),
        "amg_available": amg_available(),
    }


def _bench_warm_start() -> dict:
    """Leg 2: session warm-start vs cold iterative solves on a sweep."""
    from repro.designs import off_chip_ddr3
    from repro.pdn.sweep import SweepSolveSession
    from repro.perf.cache import cached_build_stack, clear_caches
    from repro.rmesh.solve import StackSolver

    bench = off_chip_ddr3()
    state = bench.reference_state()
    counts = SMOKE_COUNTS if _smoke() else FULL_COUNTS

    def config_for(count):
        return bench.baseline.with_options(tsv_count=count)

    # Pre-warm the plan/assembly/power-map caches so both legs time the
    # *solver* path, not the (identical, cached) build path.
    clear_caches()
    for count in counts:
        cached_build_stack(
            bench.stack, config_for(count), pitch=WARM_SWEEP_PITCH
        ).power_maps(state)

    # Cold: what the sweep costs without the session -- a fresh solver
    # (fresh factor preconditioner) at every point.
    t0 = time.perf_counter()
    cold_vals = []
    for count in counts:
        stack = cached_build_stack(
            bench.stack, config_for(count), pitch=WARM_SWEEP_PITCH
        )
        solver = StackSolver(stack.model, backend="cg")
        cold_vals.append(stack.solve_state(state, solver=solver).dram_max_mv)
    cold_s = time.perf_counter() - t0

    # Warm: one session carries the preconditioner + solution across
    # knob-only neighbors.
    session = SweepSolveSession(backend="cg", pitch=WARM_SWEEP_PITCH)
    t0 = time.perf_counter()
    warm_vals, iterations = [], []
    for count in counts:
        result = session.solve(bench, config_for(count), state)
        warm_vals.append(result.dram_max_mv)
        iterations.append(result.raw.iterations)
    warm_s = time.perf_counter() - t0

    # Ground truth: the bitwise-pinned direct path over the same sweep.
    direct_vals = [
        cached_build_stack(bench.stack, config_for(count), pitch=WARM_SWEEP_PITCH)
        .solver_for("direct")
        .solve_power_maps(
            cached_build_stack(
                bench.stack, config_for(count), pitch=WARM_SWEEP_PITCH
            ).power_maps(state)
        )
        .max_drop_mv()
        for count in counts
    ]
    worst = max(
        abs(w - d) / d for w, d in zip(warm_vals, direct_vals)
    )
    assert worst <= EQUIV_RTOL, (
        f"warm-start sweep diverged from direct: {worst:.2e} relative"
    )
    for cold, warm in zip(cold_vals, warm_vals):
        assert abs(cold - warm) / warm <= EQUIV_RTOL

    speedup = cold_s / warm_s if warm_s > 0 else float("inf")
    return {
        "tsv_counts": list(counts),
        "pitch": WARM_SWEEP_PITCH,
        "cold_s": round(cold_s, 4),
        "warm_s": round(warm_s, 4),
        "speedup": round(speedup, 2),
        "iterations": iterations,
        "warm_starts": session.warm_starts,
        "cold_starts": session.cold_starts,
        "worst_rel_err": float(f"{worst:.3e}"),
    }


def _bench_scaling() -> dict:
    """Leg 3: Jacobi-CG at 4x the largest direct stack, within its wall."""
    from repro.designs import all_benchmarks, benchmark
    from repro.perf.cache import cached_build_stack, clear_caches
    from repro.rmesh.backends import make_operator
    from repro.rmesh.workloads import workload_for_nodes

    # Largest benchmark stack (by node count) = the direct-solve ceiling.
    clear_caches()
    biggest, biggest_stack = None, None
    for name in sorted(all_benchmarks()):
        bench = benchmark(name)
        stack = cached_build_stack(bench.stack, bench.baseline)
        if biggest_stack is None or stack.model.num_nodes > biggest_stack.model.num_nodes:
            biggest, biggest_stack = name, stack
    bench = benchmark(biggest)
    state = bench.reference_state()
    maps = biggest_stack.power_maps(state)
    matrix = biggest_stack.model.conductance_matrix().tocsc()
    currents = biggest_stack.solver_for("direct").currents_from_maps(maps)

    # Synthetic workload at >= SCALE_FACTOR x nodes, matrix-free Jacobi-CG.
    workload = workload_for_nodes(
        SCALE_FACTOR * biggest_stack.model.num_nodes,
        bump_every=SCALE_BUMP_EVERY,
    )
    big_matrix = workload.model.conductance_matrix().tocsc()

    # Direct wall: setup (factorization) + one solve, timed as one unit
    # because the sweep-free use case pays both.  Passes *interleave*
    # the two sides so machine drift (frequency scaling, co-tenant
    # load) hits both walls equally, and the best of three per side
    # suppresses one-off allocator/page-fault outliers.
    def _direct_pass():
        t0 = time.perf_counter()
        op = make_operator("direct", matrix)
        x = op.solve(currents)
        return time.perf_counter() - t0, x

    def _cg_pass():
        t0 = time.perf_counter()
        op = make_operator("cg", big_matrix, precond_kind="jacobi")
        x = op.solve(workload.currents)
        return time.perf_counter() - t0, x, op

    direct_passes, cg_passes = [], []
    for _ in range(3):
        direct_passes.append(_direct_pass())
        cg_passes.append(_cg_pass())
    (direct_s, x_small) = min(direct_passes, key=lambda t: t[0])
    (cg_s, x_big, cg_op) = min(cg_passes, key=lambda t: t[0])

    result = {
        "largest_stack": biggest,
        "largest_nodes": biggest_stack.model.num_nodes,
        "direct_s": round(direct_s, 4),
        "workload_nodes": workload.num_nodes,
        "scale": round(workload.num_nodes / biggest_stack.model.num_nodes, 2),
        "cg_s": round(cg_s, 4),
        "cg_iterations": cg_op.iterations,
        "big_max_ir_mv": round(float(x_big.max()) * 1e3, 4),
        "small_max_ir_mv": round(float(x_small.max()) * 1e3, 4),
    }
    if not _smoke():
        # Full mode: cross-check the big-mesh iterative solve against a
        # direct factorization of the same system.
        x_ref = make_operator("direct", big_matrix).solve(workload.currents)
        rel = abs(float(x_big.max()) - float(x_ref.max())) / float(x_ref.max())
        result["big_rel_err"] = float(f"{rel:.3e}")
        assert rel <= EQUIV_RTOL

    assert workload.num_nodes >= SCALE_FACTOR * biggest_stack.model.num_nodes
    assert cg_s <= SCALE_NOISE_TOL * direct_s, (
        f"Jacobi-CG at {workload.num_nodes} nodes took {cg_s:.3f}s, over the "
        f"{direct_s:.3f}s direct wall of the {biggest_stack.model.num_nodes}-"
        f"node {biggest} stack (+{(SCALE_NOISE_TOL - 1) * 100:.0f}% noise "
        "allowance)"
    )
    return result


def run_benchmark() -> dict:
    from repro.obs import metrics as _metrics
    from repro.rmesh.backends import CONVERGENCE_TRACE_ENV

    # This bench gates raw *solver* timings (warm-start speedup, the
    # CG-vs-direct scaling wall), and its cold legs build a fresh
    # operator per point -- whose first solve would always be traced --
    # while warm solves converge in a couple of iterations, where even
    # one traced residual matvec is a large relative cost.  Run the legs
    # with convergence tracing off; telemetry overhead has its own
    # dedicated budget in bench_obs_overhead.
    trace_env_before = os.environ.get(CONVERGENCE_TRACE_ENV)
    os.environ[CONVERGENCE_TRACE_ENV] = "0"
    try:
        equivalence = _bench_equivalence()
        warm = _bench_warm_start()
        scaling = _bench_scaling()
    finally:
        if trace_env_before is None:
            os.environ.pop(CONVERGENCE_TRACE_ENV, None)
        else:
            os.environ[CONVERGENCE_TRACE_ENV] = trace_env_before

    _metrics.set_gauge("bench.solver_scaling.warm_speedup", warm["speedup"])
    _metrics.set_gauge(
        "bench.solver_scaling.scale_ratio",
        scaling["direct_s"] / scaling["cg_s"] if scaling["cg_s"] > 0 else 0.0,
    )
    _metrics.set_gauge(
        "bench.solver_scaling.worst_rel_err",
        max(equivalence["worst_rel_err"], warm["worst_rel_err"]),
    )
    result = {
        "benchmark": "solver backends: equivalence, warm-start, scaling",
        "smoke": _smoke(),
        "equivalence": equivalence,
        "warm_start": warm,
        "scaling": scaling,
    }
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    (RESULTS_DIR / "solver_scaling.json").write_text(
        json.dumps(result, indent=2) + "\n"
    )
    return result


@register_bench("solver_scaling")
def test_solver_scaling():
    """Backends agree, warm-start >= 2x, 4x-node mesh within direct wall."""
    result = run_benchmark()
    print("\n" + json.dumps(result, indent=2))
    warm = result["warm_start"]
    assert warm["warm_starts"] > 0, "session never warm-started"
    assert warm["speedup"] >= MIN_WARM_SPEEDUP, (
        f"warm-start sweep only {warm['speedup']}x over cold iterative "
        f"solves (floor {MIN_WARM_SPEEDUP}x)"
    )


def main(argv=None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        description="solver backend benchmark (see module docstring)"
    )
    parser.add_argument(
        "--manifest-out", metavar="PATH", default=None,
        help="write a run provenance manifest",
    )
    args = parser.parse_args(argv)

    from repro.obs import metrics as _metrics
    from repro.obs.manifest import build_manifest
    from repro.obs.trace import span

    before = _metrics.snapshot()
    with span("bench.solver_scaling", smoke=_smoke()) as sp:
        result = run_benchmark()
    print(json.dumps(result, indent=2))
    assert result["warm_start"]["speedup"] >= MIN_WARM_SPEEDUP
    if args.manifest_out:
        build_manifest(
            experiment_id="bench.solver_scaling",
            title="solver backends: equivalence, warm-start, scaling",
            config={"smoke": _smoke()},
            duration_s=sp.duration,
            metrics_snapshot=_metrics.diff(before, _metrics.snapshot()),
        ).write(args.manifest_out)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
