"""Extension bench: AC power integrity with decoupling capacitors.

The paper's section 4.1 claims backside bond wires "can directly connect
to large off-chip decoupling capacitors, which provide better AC power
integrity" but evaluates DC only.  The transient RC extension
(repro.rmesh.transient) lets us check the claim: a short activation
burst's peak droop under combinations of wire bonding and decap size.
"""

from repro.designs import on_chip_ddr3
from repro.pdn import build_stack
from repro.power import MemoryState
from repro.rmesh.transient import DecapConfig, TransientSolver
from repro.bench import register_bench

BURST_NS = 20.0


def run_matrix():
    """On-chip coupled design: without bond wires the package decap can
    only reach the DRAM through the resistive logic die, so tying the
    stack to it directly (wire bonding) is what unlocks the capacitor."""
    bench = on_chip_ddr3()
    fp = bench.stack.dram_floorplan
    idle = MemoryState.idle(4)
    active = MemoryState.from_string("0-0-0-2", fp)
    small = DecapConfig(die_nf_per_mm2=0.2, package_uf=0.05)
    large = DecapConfig(die_nf_per_mm2=2.0, package_uf=10.0)

    out = {}
    for wb in (False, True):
        config = bench.baseline.with_options(dedicated_tsv=False, wire_bond=wb)
        stack = build_stack(bench.stack, config)
        dc = stack.dram_max_mv(active)
        for decap_label, decap in (("small", small), ("large", large)):
            solver = TransientSolver(stack, decap, dt_ns=0.5)
            res = solver.simulate(
                [(idle, 5.0), (active, BURST_NS), (idle, 60.0)]
            )
            out[(wb, decap_label)] = {"peak_mv": res.peak_mv, "dc_mv": dc}
    return out


@register_bench("transient_decap")
def test_transient_decap(benchmark):
    out = benchmark.pedantic(run_matrix, rounds=1, iterations=1)
    print("\n== extension: burst droop vs wire bonding and decap ==")
    for (wb, decap), row in out.items():
        print(
            f"  WB={'Y' if wb else 'N'} decap={decap:5s}: "
            f"peak {row['peak_mv']:6.2f} mV (DC would be {row['dc_mv']:6.2f})"
        )
    # A large decap always cuts the burst peak below the small-decap one.
    assert out[(False, "large")]["peak_mv"] < out[(False, "small")]["peak_mv"]
    assert out[(True, "large")]["peak_mv"] < out[(True, "small")]["peak_mv"]
    # The paper's AC claim, quantified: bond wires + off-chip decap is the
    # best configuration overall...
    peaks = {k: v["peak_mv"] for k, v in out.items()}
    assert min(peaks, key=peaks.get) == (True, "large")
    # ...and even a 200x larger capacitor cannot rescue the no-wire-bond
    # design past the wire-bonded one: the capacitor is stranded behind
    # the resistive logic die.
    assert peaks[(False, "large")] > peaks[(True, "small")]
