"""Ablation: the decoder-fraction calibration decision.

DESIGN.md section 7: 35% of an active bank's power sits in its column
decoder / IO-driver spine segment.  This term creates the shared-path
superadditivity that makes the edge-column pair the worst case while
keeping singles schedulable -- the structure Table 6 depends on.  The
ablation shows the pair/single IR ratio collapsing without it.
"""

from repro.designs import off_chip_ddr3
from repro.pdn import Mounting, StackSpec, build_stack
from repro.power import MemoryState
from repro.power.model import DDR3_POWER, DramPowerSpec
from repro.bench import register_bench

FRACTIONS = (0.0, 0.15, 0.35, 0.55)


def run_sweep():
    bench = off_chip_ddr3()
    fp = bench.stack.dram_floorplan
    single = MemoryState(((),) * 3 + ((0,),))
    pair = MemoryState(((),) * 3 + ((0, 4),))
    rows = []
    for fraction in FRACTIONS:
        spec = DramPowerSpec(
            standby_mw=DDR3_POWER.standby_mw,
            io_base_mw=DDR3_POWER.io_base_mw,
            io_dyn_mw=DDR3_POWER.io_dyn_mw,
            bank_static_mw=DDR3_POWER.bank_static_mw,
            bank_dyn_mw=DDR3_POWER.bank_dyn_mw,
            decoder_fraction=fraction,
        )
        stack = build_stack(
            StackSpec("ablate", fp, spec, 4, Mounting.OFF_CHIP), bench.baseline
        )
        s = stack.dram_max_mv(single)
        p = stack.dram_max_mv(pair)
        rows.append({"fraction": fraction, "single_mv": s, "pair_mv": p})
    return rows


@register_bench("ablation_decoder_fraction")
def test_ablation_decoder_fraction(benchmark):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    print("\n== ablation: decoder fraction ==")
    for r in rows:
        ratio = r["pair_mv"] / r["single_mv"]
        print(
            f"  f={r['fraction']:.2f}: single {r['single_mv']:6.2f} mV, "
            f"pair {r['pair_mv']:6.2f} mV (ratio {ratio:.2f})"
        )
    ratios = [r["pair_mv"] / r["single_mv"] for r in rows]
    # The shared spine segment is what separates the pair from the single:
    # the ratio grows monotonically with the decoder fraction.
    assert all(b > a for a, b in zip(ratios, ratios[1:]))
    # At the calibrated 0.35 the pair/single structure needed by the
    # 24 mV policy constraint exists (pair >> single).
    calibrated = next(r for r in rows if r["fraction"] == 0.35)
    assert calibrated["pair_mv"] > 1.3 * calibrated["single_mv"]
