"""Ablations of the memory-controller modelling decisions.

Two knobs DESIGN.md section 7 calls out:

* the activation lookahead window (head-of-line blocking strength), and
* the idle-bank close window (the paper's "closed in a few cycles").
"""

from repro.controller import (
    IRAwareDistR,
    IRAwareFCFS,
    MemoryControllerSim,
    SimConfig,
    StandardJEDEC,
    WorkloadConfig,
    generate_workload,
)
from repro.designs import off_chip_ddr3
from repro.dram.timing import TimingParams
from repro.pdn import build_stack
from repro.controller import IRDropLUT
from repro.bench import register_bench


def _lut():
    bench = off_chip_ddr3()
    return IRDropLUT(build_stack(bench.stack, bench.baseline))


def run_lookahead_sweep(lut):
    timing = TimingParams.ddr3_1600()
    cfg = SimConfig(timing=timing)
    out = {}
    for k in (1, 2, 4, 8, 16):
        row = {}
        for policy in (IRAwareFCFS(lut, 24.0), IRAwareDistR(lut, 24.0)):
            policy.act_lookahead = k
            res = MemoryControllerSim(
                cfg, policy, generate_workload(WorkloadConfig(num_requests=3000)),
                report_lut=lut,
            ).run()
            row[policy.name] = res.runtime_us
        out[k] = row
    return out


def run_close_window_sweep(lut):
    timing = TimingParams.ddr3_1600()
    out = {}
    for window in (4, 8, 16, 32):
        cfg = SimConfig(timing=timing, close_window=window)
        res = MemoryControllerSim(
            cfg,
            StandardJEDEC(timing),
            generate_workload(WorkloadConfig(num_requests=3000)),
            report_lut=lut,
        ).run()
        out[window] = {"runtime_us": res.runtime_us, "acts": res.activations}
    return out


@register_bench("ablation_lookahead", heavy=True)
def test_ablation_act_lookahead(benchmark):
    lut = _lut()
    rows = benchmark.pedantic(run_lookahead_sweep, args=(lut,), rounds=1, iterations=1)
    print("\n== ablation: activation lookahead ==")
    for k, row in rows.items():
        print(f"  K={k:2d}: FCFS {row['ir_fcfs']:7.2f} us | DistR {row['ir_distr']:7.2f} us")
    # FCFS improves monotonically with lookahead (head-of-line relief)...
    fcfs = [rows[k]["ir_fcfs"] for k in sorted(rows)]
    assert all(b <= a * 1.01 for a, b in zip(fcfs, fcfs[1:]))
    # ...while DistR is nearly insensitive: its re-prioritization already
    # escapes blocked heads.
    distr = [rows[k]["ir_distr"] for k in sorted(rows)]
    assert max(distr) < min(distr) * 1.15
    # At every lookahead, DistR is at least as fast as FCFS.
    for k in rows:
        assert rows[k]["ir_distr"] <= rows[k]["ir_fcfs"] * 1.01


@register_bench("ablation_close_window", heavy=True)
def test_ablation_close_window(benchmark):
    lut = _lut()
    rows = benchmark.pedantic(
        run_close_window_sweep, args=(lut,), rounds=1, iterations=1
    )
    print("\n== ablation: idle close window ==")
    for window, row in rows.items():
        print(
            f"  window={window:2d}: {row['runtime_us']:7.2f} us, "
            f"{row['acts']} activations"
        )
    # A longer close window keeps rows open longer -> fewer activations.
    acts = [rows[w]["acts"] for w in sorted(rows)]
    assert all(b <= a for a, b in zip(acts, acts[1:]))
