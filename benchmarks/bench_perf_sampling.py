"""Before/after benchmark of the design-space evaluation engine.

Measures the off-chip DDR3 design-space sample three ways:

* **seed** -- the seed's serial path: one stack rebuilt per design point,
  single-RHS solves, all perf caches disabled;
* **serial-opt** -- the optimized engine on one worker (power-map cache,
  vectorized assembly);
* **parallel-opt** -- the optimized engine fanned over processes
  (``REPRO_BENCH_WORKERS``, default 4).

It also times the controller LUT build per-state vs batched.  Per-sample
IR values from every path must agree within 1e-9 mV -- the engine trades
no accuracy for speed.  Results land in
``benchmarks/results/perf_sampling.json`` so speedups are tracked across
PRs; the machine's CPU count is recorded because process fan-out can
only help where cores exist.

Run directly (``python benchmarks/bench_perf_sampling.py``) or under
pytest (``pytest benchmarks/bench_perf_sampling.py -s``).  Set
``REPRO_BENCH_SMOKE=1`` for a reduced sweep (CI artifact mode) and
``REPRO_BENCH_STRICT=1`` to additionally assert the >= 3x speedup target
(meaningful only on a multi-core machine).

Direct runs accept the observability output flags (``--trace-out``,
``--metrics-out``, ``--manifest-out``) so CI archives a span trace,
metric snapshot, and provenance manifest next to the timing numbers.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from repro.bench import register_bench

RESULTS_DIR = Path(__file__).parent / "results"


def _smoke() -> bool:
    return os.environ.get("REPRO_BENCH_SMOKE", "0") == "1"


def _bench_workers() -> int:
    """Fan-out width for the parallel leg (``REPRO_BENCH_WORKERS``).

    Any explicit value >= 1 is respected -- single-worker CI runs are
    legitimate -- falling back to 4 only when the variable is missing,
    unparsable, or nonsensical (< 1).
    """
    try:
        workers = int(os.environ.get("REPRO_BENCH_WORKERS", "4"))
    except ValueError:
        return 4
    return workers if workers >= 1 else 4


def run_benchmark() -> dict:
    from repro.controller import IRDropLUT
    from repro.designs import off_chip_ddr3
    from repro.pdn.stackup import build_stack
    from repro.perf.cache import clear_caches, power_map_cache_enabled
    from repro.perf.timers import reset_timers
    from repro.regress.model import (
        config_from_parts,
        continuous_sample_grid,
        sample_design_space,
        valid_discrete_combos,
    )

    bench = off_chip_ddr3()
    if _smoke():
        combos = valid_discrete_combos(bench)[:4]
        grid_kwargs = dict(m2_points=2, m3_points=2, tc_points=1)
    else:
        combos = valid_discrete_combos(bench)
        grid_kwargs = dict(m2_points=3, m3_points=3, tc_points=2)
    grid = continuous_sample_grid(bench, **grid_kwargs)
    state = bench.reference_state()
    reset_timers()

    # --- seed serial path: rebuild per point, single RHS, no caches -------
    clear_caches()
    power_map_cache_enabled(False)
    t0 = time.perf_counter()
    seed_values = []
    for key in combos:
        for m2, m3, tc in grid:
            config = config_from_parts(bench, key, m2, m3, tc)
            stack = build_stack(bench.stack, config)
            seed_values.append(stack.dram_max_mv(state))
    seed_s = time.perf_counter() - t0
    power_map_cache_enabled(True)

    # --- optimized engine, serial ------------------------------------------
    clear_caches()
    t0 = time.perf_counter()
    serial = sample_design_space(bench, combos=combos, workers=1, **grid_kwargs)
    serial_s = time.perf_counter() - t0

    # --- optimized engine, process fan-out ---------------------------------
    workers = _bench_workers()
    clear_caches()
    t0 = time.perf_counter()
    parallel = sample_design_space(
        bench, combos=combos, workers=workers, **grid_kwargs
    )
    parallel_s = time.perf_counter() - t0

    # --- accuracy: every path must agree to 1e-9 mV -------------------------
    num = len(seed_values)
    assert len(serial) == len(parallel) == num
    max_dev = max(
        max(abs(sv - s.ir_mv), abs(sv - p.ir_mv))
        for sv, s, p in zip(seed_values, serial, parallel)
    )
    assert max_dev <= 1e-9, f"IR values diverged by {max_dev} mV"

    # --- LUT build: per-state loop vs batched block solve -------------------
    lut_stack = build_stack(bench.stack, bench.baseline)
    _ = lut_stack.solver  # factorize outside the timed region
    t0 = time.perf_counter()
    lazy = IRDropLUT(lut_stack, precompute=False)
    import itertools

    for counts in itertools.product(range(3), repeat=4):
        lazy.lookup(counts)
    lut_loop_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    batched = IRDropLUT(lut_stack)
    lut_batched_s = time.perf_counter() - t0
    assert batched.as_dict() == lazy.as_dict()

    result = {
        "benchmark": "ddr3_off design-space sample",
        "smoke": _smoke(),
        "num_samples": num,
        "cpu_count": os.cpu_count(),
        "workers": workers,
        "seed_serial_s": round(seed_s, 3),
        "optimized_serial_s": round(serial_s, 3),
        "optimized_parallel_s": round(parallel_s, 3),
        "speedup_serial": round(seed_s / serial_s, 3),
        "speedup_parallel": round(seed_s / parallel_s, 3),
        "solves_per_sec_seed": round(num / seed_s, 2),
        "solves_per_sec_optimized": round(num / min(serial_s, parallel_s), 2),
        "max_ir_deviation_mv": max_dev,
        "lut_per_state_s": round(lut_loop_s, 3),
        "lut_batched_s": round(lut_batched_s, 3),
        "lut_batch_speedup": round(lut_loop_s / lut_batched_s, 3),
    }
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    (RESULTS_DIR / "perf_sampling.json").write_text(
        json.dumps(result, indent=2) + "\n"
    )
    return result


@register_bench("perf_sampling", heavy=True)
def test_perf_sampling_speedup():
    """Record the perf artifact; assert accuracy always, speedup if strict."""
    result = run_benchmark()
    print("\n" + json.dumps(result, indent=2))
    assert result["max_ir_deviation_mv"] <= 1e-9
    # The engine must not be slower than the seed path it replaces (with
    # a noise margin: smoke sweeps are sub-second and timing-jittery).
    assert result["speedup_serial"] >= 0.75
    if os.environ.get("REPRO_BENCH_STRICT", "0") == "1":
        assert result["speedup_parallel"] >= 3.0


def main(argv=None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        description="design-space sampling benchmark (see module docstring)"
    )
    parser.add_argument(
        "--trace-out", metavar="PATH", default=None,
        help="write the benchmark's span tree as Chrome trace-event JSON",
    )
    parser.add_argument(
        "--metrics-out", metavar="PATH", default=None,
        help="write the metrics + timers snapshot as JSON",
    )
    parser.add_argument(
        "--manifest-out", metavar="PATH", default=None,
        help="write a run provenance manifest",
    )
    args = parser.parse_args(argv)

    from repro.obs.manifest import build_manifest
    from repro.obs.metrics import write_metrics
    from repro.obs.trace import span, write_chrome_trace

    with span("bench.perf_sampling", smoke=_smoke()) as sp:
        result = run_benchmark()
    print(json.dumps(result, indent=2))
    if args.trace_out:
        write_chrome_trace(args.trace_out)
    if args.metrics_out:
        write_metrics(args.metrics_out)
    if args.manifest_out:
        build_manifest(
            experiment_id="bench_perf_sampling",
            title="design-space sampling benchmark",
            config={"smoke": _smoke(), "workers": _bench_workers()},
            duration_s=sp.duration,
            extra={"results": result},
        ).write(args.manifest_out)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
