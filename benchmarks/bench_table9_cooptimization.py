"""Table 9: best co-optimized solutions vs baselines."""

import math

from conftest import fast_mode
from repro.bench import register_bench


@register_bench("table9", heavy=True, experiment_id="table9")
def test_table9_cooptimization(run_paper_experiment):
    result = run_paper_experiment("table9")

    by_bench = {}
    for row in result.rows:
        bench, tag = row.label.rsplit(" ", 1)
        by_bench.setdefault(bench, {})[tag] = row

    for bench, rows in by_bench.items():
        # Baseline IR and cost land near the paper's.
        base = rows["baseline"]
        assert abs(base.deviation_percent("rmesh_mv")) < 26.0
        assert abs(base.deviation_percent("cost")) < 5.0

        a0 = rows["alpha=0.0"]
        a3 = rows["alpha=0.3"]
        a1 = rows["alpha=1.0"]
        # alpha=0 finds the cheapest (and worst-IR) corner; its cost
        # matches the paper's exactly because the option choice matches.
        assert abs(a0.deviation_percent("cost")) < 5.0
        assert a0.model["rmesh_mv"] > base.model["rmesh_mv"]
        # IR falls and cost rises monotonically with alpha.
        assert a0.model["rmesh_mv"] >= a3.model["rmesh_mv"] >= a1.model["rmesh_mv"]
        assert a0.model["cost"] <= a3.model["cost"] <= a1.model["cost"]
        # The preferred tradeoff dominates the baseline on the alpha=0.3
        # objective (it may trade a little IR for a lot of cost, as our
        # ddr3_on solution does).
        from repro.opt import ir_cost

        base_obj = ir_cost(base.model["rmesh_mv"], base.model["cost"], 0.3)
        a3_obj = ir_cost(a3.model["rmesh_mv"], a3.model["cost"], 0.3)
        assert a3_obj < base_obj
        # Regression ("Matlab") and verifying R-Mesh solves agree.
        for tag in ("alpha=0.0", "alpha=1.0"):
            row = rows[tag]
            assert math.isclose(
                row.model["regression_mv"],
                row.model["rmesh_mv"],
                rel_tol=0.40,
            )

    if not fast_mode():
        assert len(by_bench) == 4  # all four benchmarks reproduced
