"""Table 6: read scheduling policy comparison.

Paper: standard 109.3 us / 0.114 reads/clk / 30.03 mV,
IR-aware FCFS 84.68 / 0.148 / 23.98, DistR 75.85 / 0.165 / 23.98.
"""

from repro.bench import register_bench


@register_bench("table6", heavy=True, experiment_id="table6")
def test_table6_policies(run_paper_experiment):
    result = run_paper_experiment("table6")
    rows = {r.label: r for r in result.rows}

    # The standard and FCFS rows reproduce the paper closely.
    assert abs(rows["standard"].deviation_percent("runtime_us")) < 10.0
    assert abs(rows["ir_fcfs"].deviation_percent("runtime_us")) < 10.0
    # DistR is the fastest policy (it over-delivers vs the paper by
    # saturating the arrival bandwidth; see EXPERIMENTS.md).
    assert (
        rows["ir_distr"].model["runtime_us"]
        <= rows["ir_fcfs"].model["runtime_us"]
        < rows["standard"].model["runtime_us"]
    )
    # The IR-aware policies respect and nearly reach the 24 mV constraint.
    for label in ("ir_fcfs", "ir_distr"):
        assert 22.0 < rows[label].model["max_ir_mv"] <= 24.0
    # The standard policy is IR-blind and exceeds it.
    assert rows["standard"].model["max_ir_mv"] > 24.0
