"""Table 5: memory state and I/O activity impact."""

from repro.bench import register_bench


@register_bench("table5", experiment_id="table5")
def test_table5_state_ioactivity(run_paper_experiment):
    result = run_paper_experiment("table5")
    for row in result.rows:
        # The calibrated power model is exact at 100%/50% activity up to
        # the paper's small die-position dependence (its bottom die draws
        # 229.3 mW vs the top die's 220.5 mW; ours is position-free).
        # The paper's own 25% row (126.9 mW) is inconsistent with its
        # text (-44.7% => 121.9 mW) and with linear activity scaling
        # (153 mW); see repro.power.model -- exempted here.
        if "25%" not in row.label:
            assert abs(row.deviation_percent("active_mw")) < 5.0
        # IR drops land near the paper's.
        assert abs(row.deviation_percent("f2b_mv")) < 20.0
        assert abs(row.deviation_percent("f2f_mv")) < 20.0
    f2b = {r.label.split(" ")[0]: r.model["f2b_mv"] for r in result.rows}
    f2f = {r.label.split(" ")[0]: r.model["f2f_mv"] for r in result.rows}
    # Balanced reads lower the worst IR drop (section 5.1).
    assert f2b["2-2-2-2"] < f2b["0-0-0-2"]
    # F2F's worst case shifts to the intra-pair overlapping state.
    assert max(f2f, key=f2f.get) == "0-0-2-2"
