"""Extension bench: IR-aware scheduling on the 16-channel HMC."""

from repro.bench import register_bench


@register_bench("ext_hmc", heavy=True, experiment_id="ext_hmc")
def test_ext_hmc_scheduling(run_paper_experiment):
    result = run_paper_experiment("ext_hmc")
    rows = {r.label: r.model for r in result.rows}
    # The IR-blind standard policy wanders into much worse states...
    assert rows["standard"]["max_ir_mv"] > rows["ir_distr"]["max_ir_mv"]
    # ...while the IR-aware policies respect their constraint and extract
    # far more of the HMC's vault-level parallelism.
    assert rows["ir_distr"]["bandwidth"] > 2.0 * rows["standard"]["bandwidth"]
    assert rows["ir_fcfs"]["bandwidth"] > rows["standard"]["bandwidth"]
    assert rows["ir_distr"]["bandwidth"] >= rows["ir_fcfs"]["bandwidth"]
