"""Resilience gate: faults must never change the physics.

Four legs over the fault-injection harness of :mod:`repro.resil`
(spec grammar in ``docs/robustness.md``), all driving the fig5
TSV-count sweep because it exercises the full pipeline -- plan,
assembly, sweep session, solver -- per point:

* **baseline** -- fault-free fig5; its rows are the bitwise reference
  for every other leg.
* **chaos** -- the same sweep under ``worker_crash:p=0.3:seed=1`` plus
  ``transient:p=0.2:seed=2``.  Every injected fault must be retried
  away: the run completes, at least one retry fires, and every row is
  *bitwise* identical to the baseline (retries recompute deterministic
  work, they do not perturb it).
* **cg_stall** -- ``REPRO_SOLVER=cg`` with ``cg_stall:p=1``: every CG
  solve raises a synthetic non-convergence, so the escalation ladder
  (:class:`repro.rmesh.backends.EscalatingOperator`) must walk every
  point down to the direct rung -- and the rows must be bitwise
  identical to a *direct-backend* fault-free run.
* **resume** -- fig5 journaled to a scratch checkpoint, then "killed"
  (caches + process-global checkpoint dropped) and re-run: the second
  pass must re-solve **zero** points (``solver.rhs_solved`` delta of
  exactly 0) while reproducing the first pass bitwise from the journal.

Numbers land in the ``bench.resilience.*`` gauges and a JSON artifact
under ``benchmarks/results/``.  Run directly
(``python benchmarks/bench_resilience.py``) or under pytest; the legs
use the fast fig5 sweep either way, so smoke and full mode coincide.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from repro.bench import register_bench

RESULTS_DIR = Path(__file__).parent / "results"

#: Fault spec for the chaos leg: crash ~30% of task attempts and throw
#: transient exceptions into ~20% on an independent stream.
CHAOS_SPEC = "worker_crash:p=0.3:seed=1,transient:p=0.2:seed=2"

#: Fault spec for the solver-escalation leg: stall *every* CG solve.
STALL_SPEC = "cg_stall:p=1"

#: Env keys the legs mutate; saved/restored around the whole bench so a
#: suite run (repro3d bench) does not leak chaos into later benches.
_MUTATED_ENV = (
    "REPRO_FAULT_SPEC",
    "REPRO_SOLVER",
    "REPRO_CHECKPOINT",
    "REPRO_RETRY_MAX",
    "REPRO_RETRY_DELAY",
)


def _rows(result):
    """Rows as comparable (label, model-values) pairs; floats stay raw
    so ``==`` is a bitwise check."""
    return [(row.label, dict(row.model)) for row in result.rows]


def _fresh_run(experiment_id: str):
    """Run one experiment from cold caches and return (rows, manifest)."""
    from repro.experiments import run_experiment
    from repro.perf.cache import clear_caches

    clear_caches()
    result = run_experiment(experiment_id, fast=True)
    return _rows(result), result.manifest


def _counter(name: str) -> int:
    from repro.obs import metrics as _metrics

    return _metrics.registry.get_counter(name)


def _bench_chaos_bitwise() -> dict:
    """Legs 1+2: fault-free baseline, then crash/transient chaos."""
    baseline_rows, _ = _fresh_run("fig5")

    os.environ["REPRO_FAULT_SPEC"] = CHAOS_SPEC
    os.environ["REPRO_RETRY_MAX"] = "6"
    os.environ["REPRO_RETRY_DELAY"] = "0.001"
    retries0 = _counter("resil.retries")
    faults0 = _counter("resil.faults_injected")
    try:
        chaos_rows, manifest = _fresh_run("fig5")
    finally:
        del os.environ["REPRO_FAULT_SPEC"]
    retries = _counter("resil.retries") - retries0
    faults = _counter("resil.faults_injected") - faults0

    assert faults > 0, f"fault plan {CHAOS_SPEC!r} never fired"
    assert retries > 0, "chaos run completed without a single retry"
    assert chaos_rows == baseline_rows, (
        "rows diverged under fault injection (retried work must be "
        "bitwise deterministic):\n"
        f"  baseline: {baseline_rows}\n  chaos:    {chaos_rows}"
    )
    assert manifest.metrics.get("counters", {}).get("resil.retries"), (
        "manifest lost the retry telemetry"
    )
    return {
        "spec": CHAOS_SPEC,
        "rows": len(baseline_rows),
        "faults_injected": faults,
        "retries": retries,
        "bitwise_identical": True,
    }


def _bench_cg_stall() -> dict:
    """Leg 3: universal CG stall walks every solve down to direct."""
    os.environ["REPRO_SOLVER"] = "direct"
    direct_rows, _ = _fresh_run("fig5")

    os.environ["REPRO_SOLVER"] = "cg"
    os.environ["REPRO_FAULT_SPEC"] = STALL_SPEC
    esc0 = _counter("resil.solver_escalations")
    try:
        stalled_rows, _ = _fresh_run("fig5")
    finally:
        del os.environ["REPRO_FAULT_SPEC"]
        del os.environ["REPRO_SOLVER"]
    escalations = _counter("resil.solver_escalations") - esc0

    assert escalations > 0, "cg_stall:p=1 never escalated a solve"
    assert stalled_rows == direct_rows, (
        "escalated-to-direct rows differ from the direct backend:\n"
        f"  direct:  {direct_rows}\n  stalled: {stalled_rows}"
    )
    return {
        "spec": STALL_SPEC,
        "escalations": escalations,
        "bitwise_identical_to_direct": True,
    }


def _bench_resume(ckpt_path: Path) -> dict:
    """Leg 4: kill + resume re-solves zero completed points."""
    from repro.perf.cache import clear_caches
    from repro.resil.checkpoint import reset_default_checkpoint

    if ckpt_path.exists():
        ckpt_path.unlink()
    os.environ["REPRO_CHECKPOINT"] = str(ckpt_path)
    reset_default_checkpoint()
    try:
        first_rows, _ = _fresh_run("fig5")
        solved_first = _counter("solver.rhs_solved")

        # "Kill" the run: drop every in-process cache and the global
        # checkpoint handle; only the journal file survives.
        clear_caches()
        reset_default_checkpoint()
        before = _counter("solver.rhs_solved")
        second_rows, manifest = _fresh_run("fig5")
        resolves = _counter("solver.rhs_solved") - before
    finally:
        del os.environ["REPRO_CHECKPOINT"]
        reset_default_checkpoint()

    assert second_rows == first_rows, "resumed rows differ from the run"
    assert resolves == 0, (
        f"resume re-solved {resolves} RHS despite a complete checkpoint"
    )
    resume = (manifest.extra or {}).get("resume", {})
    assert resume.get("misses", 1) == 0, resume
    assert resume.get("hits", 0) > 0, resume
    return {
        "checkpoint": ckpt_path.name,
        "first_run_rhs_solved": solved_first,
        "resume_rhs_solved": resolves,
        "checkpoint_hits": resume.get("hits"),
        "journal_entries": resume.get("entries"),
    }


def run_benchmark() -> dict:
    from repro.obs import metrics as _metrics
    from repro.perf.cache import clear_caches

    saved = {k: os.environ.get(k) for k in _MUTATED_ENV}
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    try:
        chaos = _bench_chaos_bitwise()
        stall = _bench_cg_stall()
        resume = _bench_resume(RESULTS_DIR / "resilience_resume.ckpt.jsonl")
    finally:
        for key, value in saved.items():
            if value is None:
                os.environ.pop(key, None)
            else:
                os.environ[key] = value
        clear_caches()

    _metrics.set_gauge("bench.resilience.retries", chaos["retries"])
    _metrics.set_gauge("bench.resilience.escalations", stall["escalations"])
    _metrics.set_gauge(
        "bench.resilience.resume_rhs_solved", resume["resume_rhs_solved"]
    )
    result = {
        "benchmark": "resilience: chaos bitwise, cg-stall escalation, resume",
        "chaos": chaos,
        "cg_stall": stall,
        "resume": resume,
    }
    (RESULTS_DIR / "resilience.json").write_text(
        json.dumps(result, indent=2) + "\n"
    )
    return result


@register_bench("resilience")
def test_resilience_gate():
    """Faults retried away bitwise; stalls escalate; resume solves 0."""
    result = run_benchmark()
    print("\n" + json.dumps(result, indent=2))
    assert result["chaos"]["bitwise_identical"]
    assert result["cg_stall"]["bitwise_identical_to_direct"]
    assert result["resume"]["resume_rhs_solved"] == 0


if __name__ == "__main__":
    print(json.dumps(run_benchmark(), indent=2))
