"""Figure 5: TSV count sweep and C4-TSV alignment impact."""

from repro.bench import register_bench


@register_bench("fig5", experiment_id="fig5")
def test_fig5_tsv_count_alignment(run_paper_experiment):
    result = run_paper_experiment("fig5")
    count_rows = [r for r in result.rows if r.label.startswith("TC=")]
    # More TSVs -> lower IR, with saturating returns.
    off = [r.model["off_aligned_mv"] for r in count_rows]
    assert off == sorted(off, reverse=True)
    gains = [off[i] - off[i + 1] for i in range(len(off) - 1)]
    assert gains[-1] < gains[0]  # saturation
    # Alignment always helps, most at small counts (on-chip).
    on_gains = [
        1 - r.model["on_aligned_mv"] / r.model["on_misaligned_mv"]
        for r in count_rows
    ]
    assert all(g > 0 for g in on_gains)
    assert on_gains[0] >= on_gains[-1]
    # Headline claim: up to ~51.5% on-chip.
    assert result.rows[-1].model["reduction_pct"] > 25.0
