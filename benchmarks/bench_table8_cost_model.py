"""Table 8: the cost model reproduces every stated term exactly."""

import pytest
from repro.bench import register_bench


@register_bench("table8", experiment_id="table8")
def test_table8_cost_model(run_paper_experiment):
    result = run_paper_experiment("table8")
    for row in result.rows:
        for key, paper_value in row.paper.items():
            assert row.model[key] == pytest.approx(paper_value, abs=0.002)
