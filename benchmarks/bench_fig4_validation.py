"""Figure 4: R-Mesh vs golden reference validation.

Paper: 32.2 mV (R-Mesh) vs 32.6 mV (EPS), 1.3% error, 517x speedup.
"""

from repro.bench import register_bench


@register_bench("fig4", experiment_id="fig4")
def test_fig4_validation(run_paper_experiment):
    result = run_paper_experiment("fig4")
    row = result.rows[0]
    # The production mesh must agree with the fine reference (the paper's
    # 1.3% is vs EPS on the *same* netlist; ours is a discretization
    # convergence error, so the bar is looser) and be substantially
    # faster.
    assert row.model["error_pct"] < 15.0
    assert row.model["speedup"] > 3.0
    # Two banks interleaving land in the paper's magnitude range.
    assert 20.0 < row.model["rmesh_mv"] < 45.0
