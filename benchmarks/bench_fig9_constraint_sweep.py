"""Table 7 + Figure 9: runtime vs IR-drop constraint for six designs."""

import math

from conftest import fast_mode
from repro.bench import register_bench


@register_bench("fig9", heavy=True, experiment_id="fig9")
def test_fig9_constraint_sweep(run_paper_experiment):
    result = run_paper_experiment("fig9")

    def runtime_series(row):
        items = [
            (float(k.split("@")[1][:-2]), v)
            for k, v in row.model.items()
            if k.startswith("runtime_us@")
        ]
        return dict(sorted(items))

    for row in result.rows:
        series = runtime_series(row)
        finite = [v for v in series.values() if math.isfinite(v)]
        assert finite, f"{row.label}: no constraint admits any state"
        # Relaxing the constraint never slows the controller down.
        values = list(series.values())
        for a, b in zip(values, values[1:]):
            if math.isfinite(a) and math.isfinite(b):
                assert b <= a * 1.02

    if not fast_mode():
        rows = {r.label.split(":")[0]: r for r in result.rows}
        # Better-PDN designs tolerate tighter constraints: the F2F case's
        # minimum schedulable state is the lowest of the off-chip cases.
        m1 = rows["case 1"].model["min_state_mv"]
        m3 = rows["case 3"].model["min_state_mv"]
        assert m3 < m1
        # The paper's crossover: there is a tight constraint (< 20 mV)
        # where F2F (case 3) beats the 1.5x-PDN design (case 2), even
        # though case 2 wins at relaxed constraints' equal footing.
        s2 = runtime_series(rows["case 2"])
        s3 = runtime_series(rows["case 3"])
        tight = [
            c
            for c in s2
            if c < 20.0
            and math.isfinite(s2[c])
            and math.isfinite(s3.get(c, math.inf))
        ]
        assert any(s3[c] <= s2[c] for c in tight)
