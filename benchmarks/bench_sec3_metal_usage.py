"""Section 3: 2x PDN metal usage reduces IR drop by (more than) ~40%."""

from repro.bench import register_bench


@register_bench("sec3_metal", experiment_id="sec3_metal")
def test_sec3_metal_usage(run_paper_experiment):
    result = run_paper_experiment("sec3_metal")
    final = result.rows[-1]
    assert final.model["reduction_pct"] > 33.0
    # Reductions grow monotonically with metal scale.
    reductions = [
        r.model["reduction_pct"] for r in result.rows if "reduction_pct" in r.model
    ]
    assert reductions == sorted(reductions)
