"""Diagnostics overhead gate: explain must cost < 10% of the solve.

``repro3d explain`` recovers every branch current, checks KCL, walks the
worst-node supply path and attributes dissipation to plan ops -- all
*after* the solve, purely by reading the solution.  This bench pins two
promises the diagnostics layer makes:

* **cheap**: one full diagnosis (:func:`repro.pdn.diagnose.
  diagnose_result`) costs < ``MAX_DIAG_PCT`` (10%) of the design-point
  solve it explains -- power-map evaluation, load-current stamping,
  factorization and back-substitution on the fig5 design (off-chip DDR3
  at its baseline TSV count), measured on a fresh stack exactly as the
  explain CLI pays for it;
* **read-only**: the drop field is bitwise identical whether or not
  diagnostics ran -- drops recorded before a diagnosis, re-solved after
  it, and solved in a diagnostics-free leg must all be equal arrays.

Each repeat builds a *fresh* stack so the solve leg includes the cold
factorization the CLI performs, and the diagnose leg times ``INNER_RUNS``
individual diagnoses of the solved result (model-level array caches are
warm by then, matching the CLI path where matrix assembly already
populated them).  Reported walls are min-of-k per leg, the standard way
to strip scheduler noise on a shared CI box.

Results land in ``benchmarks/results/explain_overhead.json``.  Run
directly (``python benchmarks/bench_explain_overhead.py``) or via the
unified runner (``repro3d bench --names explain_overhead``).
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np

from repro.bench import register_bench

RESULTS_DIR = Path(__file__).parent / "results"

MAX_DIAG_PCT = 10.0
INNER_RUNS = 4


def _smoke() -> bool:
    return os.environ.get("REPRO_BENCH_SMOKE", "0") == "1"


def _repeats() -> int:
    return 5 if _smoke() else 8


def run_benchmark() -> dict:
    from repro.designs import benchmark
    from repro.pdn import build_stack
    from repro.pdn.diagnose import diagnose_result

    bench = benchmark("ddr3_off")
    state = bench.reference_state()

    solve_walls: list = []
    diag_walls: list = []
    reference = None
    drops_identical = True
    hops = orphans = 0
    closure_rel = 0.0

    for _ in range(_repeats()):
        # Fresh stack: the solve leg pays the cold factorization, exactly
        # like one `repro3d explain` invocation does.
        stack = build_stack(bench.stack, bench.baseline)
        t0 = time.perf_counter()
        # stack.solver factorizes on first access -- inside the window on
        # purpose: the solve wall is everything explain pays before
        # diagnostics (power maps, load currents, factorize, solve).
        solver = stack.solver
        currents = solver.currents_from_maps(stack.power_maps(state))
        raw = solver.solve_currents(currents)
        solve_walls.append(time.perf_counter() - t0)

        before = np.array(raw.drops, copy=True)
        if reference is None:
            reference = before
        elif not np.array_equal(before, reference):
            drops_identical = False

        for _ in range(INNER_RUNS):
            t0 = time.perf_counter()
            diag = diagnose_result(
                raw,
                currents,
                plan=stack.plan,
                op_spans=stack.assembled.op_spans,
            )
            diag_walls.append(time.perf_counter() - t0)
        hops = len(diag.path)
        orphans = diag.coverage["orphans"]
        closure_rel = diag.closure_rel

        # Read-only promise: the solution the diagnosis read is untouched,
        # and re-solving after diagnostics reproduces it bit for bit.
        if not np.array_equal(np.asarray(raw.drops), reference):
            drops_identical = False
        after = solver.solve_currents(currents)
        if not np.array_equal(np.asarray(after.drops), reference):
            drops_identical = False

    solve = min(solve_walls)
    diagnose = min(diag_walls)
    diag_pct = diagnose / solve * 100.0

    result = {
        "benchmark": "explain diagnostics overhead on fig5 (ddr3_off)",
        "smoke": _smoke(),
        "repeats": _repeats(),
        "inner_runs": INNER_RUNS,
        "solve_wall_s": round(solve, 6),
        "diagnose_wall_s": round(diagnose, 6),
        "solve_wall_s_all": [round(w, 6) for w in solve_walls],
        "diagnose_wall_s_all": [round(w, 6) for w in diag_walls],
        "diag_pct": round(diag_pct, 3),
        "max_diag_pct": MAX_DIAG_PCT,
        "drops_identical": drops_identical,
        "path_hops": hops,
        "orphan_branches": orphans,
        "closure_rel": closure_rel,
    }
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    (RESULTS_DIR / "explain_overhead.json").write_text(
        json.dumps(result, indent=2) + "\n"
    )
    return result


@register_bench("explain_overhead")
def test_explain_overhead_under_gate():
    """Diagnostics < 10% of the solve wall, physics bitwise-untouched."""
    result = run_benchmark()
    print("\n" + json.dumps(result, indent=2))
    assert result["drops_identical"], (
        "running diagnostics perturbed the recorded drop field"
    )
    assert result["orphan_branches"] == 0, result
    assert result["diag_pct"] < MAX_DIAG_PCT, (
        f"diagnostics cost {result['diag_pct']}% of the solve wall, over "
        f"the {MAX_DIAG_PCT}% gate "
        f"(solve {result['solve_wall_s']}s, "
        f"diagnose {result['diagnose_wall_s']}s)"
    )


def main(argv=None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        description="explain diagnostics overhead benchmark (see module docstring)"
    )
    parser.add_argument(
        "--manifest-out", metavar="PATH", default=None,
        help="write a run provenance manifest",
    )
    args = parser.parse_args(argv)

    from repro.obs import metrics as _metrics
    from repro.obs.manifest import build_manifest
    from repro.obs.trace import span

    before = _metrics.snapshot()
    with span("bench.explain_overhead", smoke=_smoke()) as sp:
        result = run_benchmark()
    print(json.dumps(result, indent=2))
    assert result["drops_identical"]
    assert result["diag_pct"] < MAX_DIAG_PCT
    if args.manifest_out:
        build_manifest(
            experiment_id="bench.explain_overhead",
            title="explain diagnostics overhead gate",
            config={"smoke": _smoke(), "repeats": result["repeats"]},
            duration_s=sp.duration,
            metrics_snapshot=_metrics.diff(before, _metrics.snapshot()),
        ).write(args.manifest_out)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
