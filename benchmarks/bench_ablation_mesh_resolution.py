"""Ablation: mesh resolution vs accuracy and cost.

DESIGN.md fixes the production pitch at 0.4 mm (the paper's R-Mesh keeps
the resistor count low; Figure 4 credits its 517x speedup to exactly
this).  This ablation quantifies the accuracy/cost tradeoff of that
choice on the off-chip DDR3 baseline.
"""

import time

from repro.designs import off_chip_ddr3
from repro.pdn import build_stack
from repro.power import MemoryState
from repro.bench import register_bench

PITCHES = (0.8, 0.6, 0.4, 0.3, 0.2, 0.15)


def run_sweep():
    bench = off_chip_ddr3()
    state = MemoryState.from_string("0-0-0-2", bench.stack.dram_floorplan)
    rows = []
    for pitch in PITCHES:
        t0 = time.perf_counter()
        stack = build_stack(bench.stack, bench.baseline, pitch=pitch)
        ir = stack.dram_max_mv(state)
        rows.append(
            {
                "pitch": pitch,
                "ir_mv": ir,
                "resistors": stack.model.num_resistors,
                "time_s": time.perf_counter() - t0,
            }
        )
    return rows


@register_bench("ablation_mesh_resolution")
def test_ablation_mesh_resolution(benchmark):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    print("\n== ablation: mesh resolution ==")
    for r in rows:
        print(
            f"  pitch {r['pitch']:.2f} mm: {r['ir_mv']:6.2f} mV, "
            f"{r['resistors']:7d} resistors, {r['time_s']:.2f}s"
        )
    finest = rows[-1]["ir_mv"]
    production = next(r for r in rows if r["pitch"] == 0.4)
    # The production pitch is within ~15% of the finest solve at a small
    # fraction of the resistor count (the Figure 4 tradeoff).
    assert abs(production["ir_mv"] - finest) / finest < 0.15
    assert rows[-1]["resistors"] > 5 * production["resistors"]
    # Successive refinements converge: the step 0.3 -> 0.2 changes the
    # answer less than 0.8 -> 0.6 does.
    deltas = [
        abs(a["ir_mv"] - b["ir_mv"]) for a, b in zip(rows, rows[1:])
    ]
    assert deltas[-1] < deltas[0]
