"""Markdown report rendering."""

from pathlib import Path

import pytest

from repro.experiments.base import ExperimentResult, Row
from repro.reporting import (
    archived_tables_to_markdown,
    result_to_markdown,
    results_to_markdown,
)


@pytest.fixture
def result():
    return ExperimentResult(
        experiment_id="demo",
        title="Demo table",
        rows=[
            Row("case a", paper={"ir_mv": 30.0}, model={"ir_mv": 28.9}),
            Row("case b", model={"ir_mv": 17.0, "cost": 0.35}),
        ],
        notes=["a note"],
    )


class TestMarkdown:
    def test_section_structure(self, result):
        text = result_to_markdown(result)
        assert text.startswith("## demo — Demo table")
        assert "| case | ir_mv | cost |" in text
        assert "30.00 -> 28.90 (-3.7%)" in text
        assert "*a note*" in text

    def test_model_only_cells(self, result):
        text = result_to_markdown(result)
        assert "| case b | 17.00 | 0.35 |" in text

    def test_inf_and_nan_render(self):
        res = ExperimentResult(
            "x", "t", [Row("r", model={"v": float("inf"), "w": float("nan")})]
        )
        text = result_to_markdown(res)
        assert "inf" in text and "--" in text

    def test_full_report(self, result):
        text = results_to_markdown([result, result], title="Report")
        assert text.startswith("# Report")
        assert text.count("## demo") == 2


class TestArchived:
    def test_bundles_txt_files(self, tmp_path):
        (tmp_path / "table1.txt").write_text("== table1 ==\nrow\n")
        (tmp_path / "fig4.txt").write_text("== fig4 ==\n")
        text = archived_tables_to_markdown(tmp_path)
        assert "## fig4" in text and "## table1" in text
        assert text.index("## fig4") < text.index("## table1")  # sorted
        assert "```" in text

    def test_real_results_dir_if_present(self):
        # benchmarks/results/ is git-ignored scratch: earlier tests (and
        # local bench runs) may have archived a partial subset, so gate on
        # the table the assertion actually needs, not on the bare dir.
        results_dir = Path(__file__).parent.parent / "benchmarks" / "results"
        if not (results_dir / "table6.txt").exists():
            pytest.skip("no archived table6 results yet")
        text = archived_tables_to_markdown(results_dir)
        assert "table6" in text
