"""Scheduling policy admission rules and orderings."""

import pytest

from repro.controller import IRAwareDistR, IRAwareFCFS, StandardJEDEC
from repro.controller.request import ReadRequest
from repro.dram.timing import TimingParams
from repro.errors import ConfigurationError


@pytest.fixture
def timing():
    return TimingParams.ddr3_1600()


def reqs(*dies):
    return [ReadRequest(i, die, 0, 0, i) for i, die in enumerate(dies)]


class TestStandardJEDEC:
    def test_trrd_enforced(self, timing):
        policy = StandardJEDEC(timing)
        policy.reset()
        assert policy.may_activate(0, 100, (0, 0, 0, 0))
        policy.on_activate(0, 100)
        assert not policy.may_activate(1, 100 + timing.tRRD - 1, (1, 0, 0, 0))
        assert policy.may_activate(1, 100 + timing.tRRD, (1, 0, 0, 0))

    def test_tfaw_enforced(self):
        # tRRD=2 makes tFAW the binding window: four ACTs in 8 cycles,
        # then the fifth must wait until the first leaves the 32-cycle
        # four-activate window.
        timing = TimingParams(
            clock_mhz=800, tCL=11, tRCD=11, tRP=11, tRAS=28,
            tCCD=4, tRRD=2, tFAW=32, tWR=12, burst_cycles=4,
        )
        policy = StandardJEDEC(timing)
        policy.reset()
        for t in (0, 2, 4, 6):
            assert policy.may_activate(0, t, (0,) * 4)
            policy.on_activate(0, t)
        assert not policy.may_activate(0, 8, (0,) * 4)
        assert not policy.may_activate(0, 31, (0,) * 4)
        assert policy.may_activate(0, 32, (0,) * 4)

    def test_earliest_activate(self, timing):
        policy = StandardJEDEC(timing)
        policy.reset()
        for k in range(4):
            policy.on_activate(0, k * timing.tRRD)
        earliest = policy.earliest_activate(25)
        assert earliest == timing.tFAW  # first ACT leaves the window then
        assert policy.may_activate(0, earliest, (0,) * 4)

    def test_fcfs_order(self, timing):
        policy = StandardJEDEC(timing)
        queued = reqs(3, 1, 2)
        assert policy.order(queued, (0, 0, 0, 0)) == queued

    def test_ir_blind(self, timing):
        policy = StandardJEDEC(timing)
        assert policy.may_read(0, 0, (2, 2, 2, 2))
        assert not policy.must_shed((2, 2, 2, 2))
        assert policy.max_ir_of_state((0, 0, 0, 2)) is None

    def test_reset_clears_history(self, timing):
        policy = StandardJEDEC(timing)
        for k in range(4):
            policy.on_activate(0, k)
        policy.reset()
        assert policy.may_activate(0, 0, (0,) * 4)


class TestIRAware:
    def test_constraint_validation(self, ddr3_lut):
        with pytest.raises(ConfigurationError):
            IRAwareFCFS(ddr3_lut, 0.0)

    def test_act_admission(self, ddr3_lut):
        policy = IRAwareFCFS(ddr3_lut, 24.0)
        # Activating the 2nd bank on the top die from idle-elsewhere
        # creates the forbidden 0-0-0-2 state.
        assert not policy.may_activate(3, 0, (0, 0, 0, 1))
        # A single bank on die 0 is fine.
        assert policy.may_activate(0, 0, (0, 0, 0, 0))

    def test_interleave_cap(self, ddr3_lut):
        policy = IRAwareFCFS(ddr3_lut, 1000.0)  # constraint never binds
        assert not policy.may_activate(0, 0, (2, 0, 0, 0))

    def test_read_gating_and_shedding(self, ddr3_lut):
        policy = IRAwareFCFS(ddr3_lut, 24.0)
        bad = (0, 0, 0, 2)
        assert not policy.may_read(3, 0, bad)
        assert policy.must_shed(bad)
        good = (1, 1, 1, 1)
        assert policy.may_read(0, 0, good)
        assert not policy.must_shed(good)
        assert not policy.must_shed((0, 0, 0, 0))  # idle is never shed

    def test_fcfs_act_candidates_head_of_line(self, ddr3_lut):
        policy = IRAwareFCFS(ddr3_lut, 24.0)
        waiting = reqs(3, 3, 0, 1, 2, 0)
        window = policy.act_candidates(waiting, (0, 0, 0, 0))
        assert window == waiting[: policy.act_lookahead]

    def test_distr_prioritizes_least_loaded_die(self, ddr3_lut):
        policy = IRAwareDistR(ddr3_lut, 24.0)
        waiting = reqs(3, 0, 1)
        # Die 3 already busy; dies 0/1 idle -> they come first, in age order.
        ordered = policy.act_candidates(waiting, (0, 0, 0, 2))
        assert [r.die for r in ordered] == [0, 1, 3]

    def test_distr_order_ready_first(self, ddr3_lut):
        policy = IRAwareDistR(ddr3_lut, 24.0)
        queued = reqs(2, 0)
        ordered = policy.order(queued, (0, 0, 0, 0), is_ready=lambda r: r.die == 0)
        assert ordered[0].die == 0  # the ready read drains first

    def test_max_ir_of_state(self, ddr3_lut):
        policy = IRAwareFCFS(ddr3_lut, 24.0)
        assert policy.max_ir_of_state((0, 0, 0, 2)) == ddr3_lut.lookup((0, 0, 0, 2))
