"""IR-drop look-up table semantics."""

import pytest

from repro.errors import ConfigurationError


class TestLUT:
    def test_idle_is_zero(self, ddr3_lut):
        assert ddr3_lut.lookup((0, 0, 0, 0)) == 0.0

    def test_precompute_covers_space(self, ddr3_lut):
        assert ddr3_lut.size == 3**4

    def test_validation(self, ddr3_lut):
        with pytest.raises(ConfigurationError):
            ddr3_lut.lookup((0, 0, 0))  # wrong die count
        with pytest.raises(ConfigurationError):
            ddr3_lut.lookup((0, 0, 0, 3))  # beyond interleave limit
        with pytest.raises(ConfigurationError):
            ddr3_lut.lookup((-1, 0, 0, 0))

    def test_allows(self, ddr3_lut):
        worst = ddr3_lut.lookup((0, 0, 0, 2))
        assert not ddr3_lut.allows((0, 0, 0, 2), worst - 1.0)
        assert ddr3_lut.allows((0, 0, 0, 2), worst + 1.0)
        assert ddr3_lut.allows((0, 0, 0, 2), None)  # no constraint

    def test_min_active_ir_is_a_single_bank_state(self, ddr3_lut):
        m = ddr3_lut.min_active_ir()
        singles = [
            ddr3_lut.lookup(tuple(1 if d == i else 0 for d in range(4)))
            for i in range(4)
        ]
        assert m == min(singles)

    def test_top_die_states_cost_more(self, ddr3_lut):
        """More TSV hops for the same load (the vertical gradient)."""
        assert ddr3_lut.lookup((0, 0, 0, 1)) > ddr3_lut.lookup((1, 0, 0, 0))
        assert ddr3_lut.lookup((0, 0, 0, 2)) > ddr3_lut.lookup((2, 0, 0, 0))

    def test_balance_bonus(self, ddr3_lut):
        """Spreading the same reads over more dies lowers the worst IR
        (the architectural insight behind DistR, section 5.1)."""
        assert ddr3_lut.lookup((1, 1, 1, 1)) < ddr3_lut.lookup((0, 0, 0, 2))
        assert ddr3_lut.lookup((2, 2, 2, 2)) < ddr3_lut.lookup((0, 0, 0, 2))

    def test_paper_policy_structure_at_24mv(self, ddr3_lut):
        """The structural facts Table 6 depends on at the 24 mV constraint:
        singles schedulable, the IDD7 state forbidden."""
        for die in range(4):
            single = tuple(1 if d == die else 0 for d in range(4))
            assert ddr3_lut.lookup(single) < 24.0
        assert ddr3_lut.lookup((0, 0, 0, 2)) > 24.0
        assert ddr3_lut.lookup((2, 2, 2, 2)) > 24.0  # paper: 24.82

    def test_as_dict_copy(self, ddr3_lut):
        d = ddr3_lut.as_dict()
        d[(0, 0, 0, 0)] = 99.0
        assert ddr3_lut.lookup((0, 0, 0, 0)) == 0.0
