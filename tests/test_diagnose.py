"""Tests of the physics diagnostics (`repro.pdn.diagnose`, `repro3d explain`).

The acceptance bars: on every paper benchmark the worst-path components
sum to the worst-node drop within 1e-9 relative, per-plan-op attribution
covers 100% of the mesh branches (no orphans), and running diagnostics
never perturbs the recorded physics (bitwise-identical drops).
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.obs.manifest import build_manifest, validate_manifest
from repro.pdn.diagnose import (
    EXPLAIN_SCHEMA_VERSION,
    attribution_snapshot,
    diagnose_result,
    diagnose_stack,
    reset_attributions,
    validate_explain_dict,
)
from repro.rmesh import extract_branches

ALL_KEYS = ["ddr3_off", "ddr3_on", "wideio", "hmc"]


@pytest.fixture
def clean_attributions():
    reset_attributions()
    yield
    reset_attributions()


def _diagnose(paper_stacks, key):
    bench, stack = paper_stacks[key]
    return diagnose_stack(stack, bench.reference_state())


class TestWorstPathDecomposition:
    @pytest.mark.parametrize("key", ALL_KEYS)
    def test_components_sum_to_worst_drop(self, paper_stacks, key):
        diag = _diagnose(paper_stacks, key)
        worst = diag.worst_drop()
        assert worst > 0
        total = sum(diag.components.values())
        assert abs(total - worst) / worst < 1e-9
        assert diag.closure_rel < 1e-9

    @pytest.mark.parametrize("key", ALL_KEYS)
    def test_path_descends_from_worst_node_to_supply(self, paper_stacks, key):
        diag = _diagnose(paper_stacks, key)
        assert diag.path, "worst path must be non-empty"
        assert diag.path[0].node_a == diag.worst["node"]
        assert diag.path[-1].kind == "supply"
        assert diag.path[-1].node_b == -1
        # Strict descent: every hop drops a positive amount of potential.
        assert all(seg.drop > 0 for seg in diag.path)
        # Interior hops chain: each hop starts where the previous ended.
        for prev, nxt in zip(diag.path, diag.path[1:]):
            assert prev.node_b == nxt.node_a

    @pytest.mark.parametrize("key", ALL_KEYS)
    def test_op_attribution_covers_every_branch(self, paper_stacks, key):
        diag = _diagnose(paper_stacks, key)
        assert diag.coverage["orphans"] == 0
        assert diag.coverage["attributed"] == diag.coverage["total"]
        assert diag.coverage["total"] == diag.num_branches
        assert sum(r["branches"] for r in diag.ops) == diag.num_branches
        # Dissipation shares are a partition of the total.
        assert sum(r["share"] for r in diag.ops) == pytest.approx(1.0, rel=1e-9)

    @pytest.mark.parametrize("key", ALL_KEYS)
    def test_artifact_validates_against_schema(self, paper_stacks, key):
        diag = _diagnose(paper_stacks, key)
        data = diag.to_dict()
        validate_explain_dict(data)
        # The JSON artifact round-trips and still validates.
        validate_explain_dict(json.loads(diag.to_json()))
        assert data["schema_version"] == EXPLAIN_SCHEMA_VERSION
        assert data["benchmark"] == key

    def test_kcl_residual_is_tiny(self, paper_stacks):
        diag = _diagnose(paper_stacks, "ddr3_off")
        assert diag.kcl["max_rel"] < 1e-9


class TestPhysicsUnperturbed:
    def test_diagnostics_leave_drops_bitwise_identical(
        self, ddr3_stack, ddr3_off_bench
    ):
        """Diagnose between two solves; the second solve must be bitwise
        equal to the first (diagnostics only read the solution)."""
        state = ddr3_off_bench.reference_state()
        solver = ddr3_stack.solver
        currents = solver.currents_from_maps(ddr3_stack.power_maps(state))
        before = solver.solve_currents(currents)
        drops_copy = np.array(before.drops, copy=True)
        diag = diagnose_result(
            before,
            currents,
            plan=ddr3_stack.plan,
            op_spans=ddr3_stack.assembled.op_spans,
        )
        assert diag.num_branches > 0
        assert np.array_equal(np.asarray(before.drops), drops_copy)
        after = solver.solve_currents(currents)
        assert np.array_equal(np.asarray(after.drops), drops_copy)

    def test_extract_branches_rejects_wrong_shape(self, ddr3_stack):
        from repro.errors import SolverError

        with pytest.raises(SolverError):
            extract_branches(ddr3_stack.model, np.zeros(3))


class TestRendering:
    def test_markdown_report_sections(self, paper_stacks):
        diag = _diagnose(paper_stacks, "ddr3_off")
        text = diag.markdown()
        assert "# explain ddr3_off" in text
        assert "## Worst-node supply-path decomposition" in text
        assert "## Per-layer dissipation" in text
        assert "## Plan-op attribution" in text
        assert "0 orphans" in text

    def test_validate_rejects_bad_artifacts(self, paper_stacks):
        diag = _diagnose(paper_stacks, "ddr3_off")
        data = diag.to_dict()
        broken = dict(data)
        del broken["components_mv"]
        with pytest.raises(ConfigurationError):
            validate_explain_dict(broken)
        skewed = json.loads(json.dumps(data, default=str))
        skewed["components_mv"] = {
            k: float(v) * 1.5 for k, v in skewed["components_mv"].items()
        }
        with pytest.raises(ConfigurationError, match="components sum"):
            validate_explain_dict(skewed)
        orphaned = json.loads(json.dumps(data, default=str))
        orphaned["coverage"]["orphans"] = 3
        with pytest.raises(ConfigurationError, match="orphan"):
            validate_explain_dict(orphaned)


class TestAttributionRegistry:
    def test_diagnose_records_attribution_for_manifests(
        self, paper_stacks, clean_attributions
    ):
        diag = _diagnose(paper_stacks, "ddr3_off")
        snap = attribution_snapshot()
        assert "ddr3_off" in snap
        summary = snap["ddr3_off"]
        assert summary["plan_hash"] == diag.plan_hash
        assert summary["orphan_branches"] == 0
        assert sum(summary["components_mv"].values()) == pytest.approx(
            summary["worst_drop_mv"], rel=1e-6
        )
        manifest = build_manifest("diagnose.unit", title="t")
        assert "ddr3_off" in manifest.attribution
        validate_manifest(manifest.to_dict())

    def test_reset_clears_registry(self, paper_stacks, clean_attributions):
        _diagnose(paper_stacks, "ddr3_off")
        assert attribution_snapshot()
        reset_attributions()
        assert attribution_snapshot() == {}


class TestResultExtensions:
    """Satellite: worst_node_location value mode + shared heatmap scale."""

    def test_worst_node_location_default_is_two_tuple(self, ddr3_stack, ddr3_off_bench):
        res = ddr3_stack.solve_state(ddr3_off_bench.reference_state()).raw
        loc = res.worst_node_location()
        assert len(loc) == 2
        key, point = loc
        assert key in ddr3_stack.model.layer_keys

    def test_worst_node_location_with_value(self, ddr3_stack, ddr3_off_bench):
        res = ddr3_stack.solve_state(ddr3_off_bench.reference_state()).raw
        key, point, drop = res.worst_node_location(with_value=True)
        assert drop == float(np.asarray(res.drops).max())
        assert key == res.worst_node_location()[0]

    def test_ascii_heatmap_stack_shares_one_scale(
        self, ddr3_stack, ddr3_off_bench
    ):
        res = ddr3_stack.solve_state(ddr3_off_bench.reference_state()).raw
        text = res.ascii_heatmap_stack()
        assert "shared scale" in text
        for key in ddr3_stack.model.layer_keys:
            assert key in text
        # Only the globally hottest layer may reach the top glyph; a
        # cool layer rendered alone would, so shared scaling must not.
        cool = min(
            ddr3_stack.model.layer_keys,
            key=lambda k: float(res.layer_drops(k).max()),
        )
        vmax = max(
            float(res.layer_drops(k).max())
            for k in ddr3_stack.model.layer_keys
        )
        alone = res.ascii_heatmap(cool)
        shared = res.ascii_heatmap(cool, vmax=vmax)
        assert "@" in alone or "%" in alone  # self-normalized peaks high
        assert "@" not in shared  # shared scale keeps cool layers cool

    def test_ascii_heatmap_single_layer_unchanged(self, ddr3_stack, ddr3_off_bench):
        """Default single-layer rendering is the historical behavior."""
        res = ddr3_stack.solve_state(ddr3_off_bench.reference_state()).raw
        key = ddr3_stack.model.layer_keys[0]
        assert res.ascii_heatmap(key) == res.ascii_heatmap(key, vmax=None)
