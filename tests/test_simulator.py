"""Memory controller simulation: invariants and policy behaviour.

Workloads here are shortened (500-2000 requests) to keep the suite fast;
the full 10,000-request runs live in the benchmark harness.
"""

import pytest

from repro.controller import (
    IRAwareDistR,
    IRAwareFCFS,
    MemoryControllerSim,
    SimConfig,
    StandardJEDEC,
    WorkloadConfig,
    generate_workload,
)
from repro.dram.timing import TimingParams
from repro.errors import SimulationError


@pytest.fixture(scope="module")
def timing():
    return TimingParams.ddr3_1600()


@pytest.fixture(scope="module")
def cfg(timing):
    return SimConfig(timing=timing)


def small_workload(n=800, **kwargs):
    return generate_workload(WorkloadConfig(num_requests=n, **kwargs))


def run_policy(cfg, policy, workload, lut=None):
    return MemoryControllerSim(cfg, policy, workload, report_lut=lut).run()


class TestBasicInvariants:
    def test_all_requests_complete_exactly_once(self, cfg, timing):
        wl = small_workload()
        res = run_policy(cfg, StandardJEDEC(timing), wl)
        assert res.finished
        assert res.completed == len(wl)
        for req in wl:
            assert req.complete_cycle is not None
            assert req.issue_cycle is not None
            assert req.issue_cycle >= req.arrival_cycle
            assert req.complete_cycle == req.issue_cycle + timing.tCL + timing.burst_cycles

    def test_runtime_at_least_arrival_span(self, cfg, timing):
        wl = small_workload()
        res = run_policy(cfg, StandardJEDEC(timing), wl)
        assert res.cycles >= wl[-1].arrival_cycle

    def test_bandwidth_below_bus_cap(self, cfg, timing):
        wl = small_workload(arrival_interval=1)
        res = run_policy(cfg, StandardJEDEC(timing), wl)
        assert res.bandwidth_reads_per_clk <= 1.0 / timing.burst_cycles + 1e-9

    def test_state_occupancy_covers_runtime(self, cfg, timing):
        wl = small_workload()
        res = run_policy(cfg, StandardJEDEC(timing), wl)
        assert sum(res.state_occupancy.values()) == res.cycles

    def test_interleave_cap_respected(self, cfg, timing):
        wl = small_workload()
        res = run_policy(cfg, StandardJEDEC(timing), wl)
        for counts in res.state_occupancy:
            assert max(counts) <= cfg.max_banks_per_die

    def test_workload_validation(self, cfg, timing):
        from repro.controller.request import ReadRequest

        bad = [ReadRequest(0, die=9, bank=0, row=0, arrival_cycle=0)]
        with pytest.raises(SimulationError):
            MemoryControllerSim(cfg, StandardJEDEC(timing), bad)

    def test_deterministic(self, cfg, timing):
        a = run_policy(cfg, StandardJEDEC(timing), small_workload())
        b = run_policy(cfg, StandardJEDEC(timing), small_workload())
        assert a.cycles == b.cycles
        assert a.activations == b.activations


class TestIRAwareInvariants:
    def test_constraint_never_exceeded_at_act(self, cfg, ddr3_lut):
        constraint = 24.0
        policy = IRAwareFCFS(ddr3_lut, constraint)
        res = run_policy(cfg, policy, small_workload(), lut=ddr3_lut)
        assert res.finished
        assert res.max_ir_mv <= constraint + 1e-9

    def test_distr_constraint_respected(self, cfg, ddr3_lut):
        policy = IRAwareDistR(ddr3_lut, 24.0)
        res = run_policy(cfg, policy, small_workload(), lut=ddr3_lut)
        assert res.finished
        assert res.max_ir_mv <= 24.0

    def test_standard_exceeds_what_ir_aware_avoids(self, cfg, timing, ddr3_lut):
        wl_a = small_workload(n=1500)
        wl_b = small_workload(n=1500)
        std = run_policy(cfg, StandardJEDEC(timing), wl_a, lut=ddr3_lut)
        aware = run_policy(cfg, IRAwareFCFS(ddr3_lut, 24.0), wl_b, lut=ddr3_lut)
        assert std.max_ir_mv > 24.0  # the IDD7-style states happen
        assert aware.max_ir_mv <= 24.0

    def test_policy_performance_ordering(self, cfg, timing, ddr3_lut):
        """Table 6 ordering: standard slowest, DistR fastest."""
        results = {}
        for policy in (
            StandardJEDEC(timing),
            IRAwareFCFS(ddr3_lut, 24.0),
            IRAwareDistR(ddr3_lut, 24.0),
        ):
            results[policy.name] = run_policy(
                cfg, policy, small_workload(n=2000), lut=ddr3_lut
            )
        assert (
            results["standard"].runtime_us
            > results["ir_fcfs"].runtime_us
            >= results["ir_distr"].runtime_us
        )

    def test_tighter_constraint_slower(self, cfg, ddr3_lut):
        loose = run_policy(
            cfg, IRAwareDistR(ddr3_lut, 26.0), small_workload(n=1500), lut=ddr3_lut
        )
        tight = run_policy(
            cfg, IRAwareDistR(ddr3_lut, 19.0), small_workload(n=1500), lut=ddr3_lut
        )
        assert tight.finished
        assert tight.runtime_us >= loose.runtime_us
        assert tight.max_ir_mv <= 19.0

    def test_impossible_constraint_never_finishes(self, cfg, ddr3_lut):
        """Below the cheapest state nothing can issue (Figure 9 wall)."""
        constraint = ddr3_lut.min_active_ir() - 1.0
        policy = IRAwareDistR(ddr3_lut, constraint)
        sim = MemoryControllerSim(cfg, policy, small_workload(n=100), report_lut=ddr3_lut)
        try:
            res = sim.run(max_cycles=30_000)
            assert not res.finished
        except SimulationError:
            pass  # a detected stall is an equally valid outcome


class TestEventSkipping:
    def test_matches_dense_arrivals(self, cfg, timing):
        """Event skipping must not change results vs near-continuous load."""
        res = run_policy(cfg, StandardJEDEC(timing), small_workload(n=400, arrival_interval=50))
        assert res.finished
        # With arrivals every 50 cycles the system is mostly idle: runtime
        # is dominated by the arrival span, bandwidth low.
        assert res.cycles >= 400 * 50 - 50

    def test_max_cycles_cap(self, cfg, timing):
        res = MemoryControllerSim(
            cfg, StandardJEDEC(timing), small_workload(n=2000)
        ).run(max_cycles=100)
        assert not res.finished
        assert res.cycles <= 101
