"""LayerMesh construction and edge enumeration."""

import numpy as np
import pytest

from repro.errors import MeshError
from repro.geometry import Grid2D, Rect
from repro.rmesh import LayerMesh
from repro.tech import MetalLayer, RouteDirection


@pytest.fixture
def grid():
    return Grid2D(Rect(0, 0, 2, 1), nx=4, ny=2)


class TestConstruction:
    def test_from_layer_conductances(self, grid):
        layer = MetalLayer("M3", 0.2, RouteDirection.HORIZONTAL)
        mesh = LayerMesh.from_layer(grid, layer, usage=0.5)
        # rho_eff = 0.4; gx = (1/0.4) * (dy/dx) = 2.5 * 1 = 2.5
        assert mesh.gx[0, 0] == pytest.approx(2.5)
        # y direction carries the 0.15 anisotropy factor.
        assert mesh.gy[0, 0] == pytest.approx(2.5 * 0.15)

    def test_vertical_layer_anisotropy(self, grid):
        layer = MetalLayer("M2", 0.2, RouteDirection.VERTICAL)
        mesh = LayerMesh.from_layer(grid, layer, usage=0.5)
        assert mesh.gx[0, 0] < mesh.gy[0, 0]

    def test_shape_validation(self, grid):
        with pytest.raises(MeshError):
            LayerMesh(grid, np.zeros((2, 2)), np.zeros((1, 4)))

    def test_negative_conductance_rejected(self, grid):
        gx = np.full((2, 3), -1.0)
        gy = np.zeros((1, 4))
        with pytest.raises(MeshError):
            LayerMesh(grid, gx, gy)

    def test_resistor_count(self, grid):
        layer = MetalLayer("M", 0.1, RouteDirection.BOTH)
        mesh = LayerMesh.from_layer(grid, layer, 0.5)
        # 2 rows x 3 x-edges + 1 row x 4 y-edges.
        assert mesh.num_resistors == 10
        assert mesh.num_nodes == 8


class TestPGRing:
    def test_boosts_boundary_rows(self, grid):
        layer = MetalLayer("M", 0.1, RouteDirection.BOTH)
        mesh = LayerMesh.from_layer(grid, layer, 0.5)
        base_gx = mesh.gx[0, 1]
        base_gy = mesh.gy[0, 1]
        mesh.add_pg_ring(2.0)
        # This 2-row grid has only boundary rows: every gx edge boosted.
        assert np.allclose(mesh.gx, 2.0 * base_gx)
        # gy: boundary columns boosted, middle columns untouched.
        assert mesh.gy[0, 0] == pytest.approx(2.0 * base_gy)
        assert mesh.gy[0, -1] == pytest.approx(2.0 * base_gy)
        assert mesh.gy[0, 1] == pytest.approx(base_gy)

    def test_ring_on_larger_grid(self):
        grid = Grid2D(Rect(0, 0, 4, 4), nx=5, ny=5)
        layer = MetalLayer("M", 0.1, RouteDirection.BOTH)
        mesh = LayerMesh.from_layer(grid, layer, 0.5)
        base_gx = mesh.gx[2, 2]
        mesh.add_pg_ring(3.0)
        assert mesh.gx[0, 2] == pytest.approx(3.0 * base_gx)
        assert mesh.gx[-1, 2] == pytest.approx(3.0 * base_gx)
        assert mesh.gx[2, 2] == pytest.approx(base_gx)  # interior untouched
        assert mesh.gy[2, 0] == pytest.approx(3.0 * mesh.gy[2, 2])

    def test_boost_validation(self, grid):
        layer = MetalLayer("M", 0.1, RouteDirection.BOTH)
        mesh = LayerMesh.from_layer(grid, layer, 0.5)
        with pytest.raises(MeshError):
            mesh.add_pg_ring(0.5)


class TestEdges:
    def test_iter_matches_arrays(self, grid):
        layer = MetalLayer("M", 0.1, RouteDirection.BOTH)
        mesh = LayerMesh.from_layer(grid, layer, 0.5)
        from_iter = sorted(mesh.iter_edges())
        a, b, g = mesh.edge_arrays()
        from_arrays = sorted(zip(a.tolist(), b.tolist(), g.tolist()))
        assert len(from_iter) == len(from_arrays)
        for (a1, b1, g1), (a2, b2, g2) in zip(from_iter, from_arrays):
            assert (a1, b1) == (a2, b2)
            assert g1 == pytest.approx(g2)

    def test_edges_connect_neighbors_only(self, grid):
        layer = MetalLayer("M", 0.1, RouteDirection.BOTH)
        mesh = LayerMesh.from_layer(grid, layer, 0.5)
        for a, b, _ in mesh.iter_edges():
            ia, ja = a % grid.nx, a // grid.nx
            ib, jb = b % grid.nx, b // grid.nx
            assert abs(ia - ib) + abs(ja - jb) == 1
