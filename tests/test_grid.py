"""Grid2D: indexing, snapping, and rasterization conservation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry import Grid2D, Point, Rect


@pytest.fixture
def grid():
    return Grid2D(Rect(0, 0, 4, 2), nx=8, ny=4)


class TestConstruction:
    def test_spacing(self, grid):
        assert grid.dx == pytest.approx(0.5)
        assert grid.dy == pytest.approx(0.5)
        assert grid.num_nodes == 32

    def test_from_pitch(self):
        g = Grid2D.from_pitch(Rect(0, 0, 6.8, 6.7), 0.4)
        assert g.nx == 17
        assert g.ny == 17

    def test_from_pitch_minimum_two_nodes(self):
        g = Grid2D.from_pitch(Rect(0, 0, 0.3, 0.3), 1.0)
        assert g.nx == 2 and g.ny == 2

    def test_invalid(self):
        with pytest.raises(ValueError):
            Grid2D(Rect(0, 0, 1, 1), 0, 5)
        with pytest.raises(ValueError):
            Grid2D.from_pitch(Rect(0, 0, 1, 1), -1.0)


class TestIndexing:
    def test_node_id_roundtrip(self, grid):
        for i, j in grid.iter_indices():
            assert grid.node_index(grid.node_id(i, j)) == (i, j)

    def test_node_id_order(self, grid):
        # Flat ids are row-major in y.
        assert grid.node_id(0, 0) == 0
        assert grid.node_id(1, 0) == 1
        assert grid.node_id(0, 1) == grid.nx

    def test_out_of_range(self, grid):
        with pytest.raises(IndexError):
            grid.node_id(8, 0)
        with pytest.raises(IndexError):
            grid.node_index(32)

    def test_node_point_at_cell_center(self, grid):
        p = grid.node_point(0, 0)
        assert (p.x, p.y) == (pytest.approx(0.25), pytest.approx(0.25))

    def test_nearest_node_snaps_and_clamps(self, grid):
        assert grid.nearest_node(Point(0.3, 0.3)) == (0, 0)
        assert grid.nearest_node(Point(100, 100)) == (7, 3)
        assert grid.nearest_node(Point(-5, -5)) == (0, 0)

    def test_nodes_in_rect(self, grid):
        inside = grid.nodes_in_rect(Rect(0, 0, 1, 1))
        assert set(inside) == {(0, 0), (1, 0), (0, 1), (1, 1)}


class TestCoverage:
    def test_full_cover(self, grid):
        frac = grid.coverage_fractions(grid.outline)
        assert np.allclose(frac, 1.0)

    def test_partial_cell(self, grid):
        # A rect covering exactly half of cell (0, 0).
        frac = grid.coverage_fractions(Rect(0, 0, 0.25, 0.5))
        assert frac[0, 0] == pytest.approx(0.5)
        assert frac.sum() == pytest.approx(0.5)

    def test_conservation(self, grid):
        rect = Rect(0.3, 0.2, 2.7, 1.9)
        frac = grid.coverage_fractions(rect)
        covered = frac.sum() * grid.dx * grid.dy
        assert covered == pytest.approx(rect.area, rel=1e-9)

    @settings(max_examples=30, deadline=None)
    @given(
        st.floats(min_value=0.0, max_value=3.0),
        st.floats(min_value=0.0, max_value=1.5),
        st.floats(min_value=0.05, max_value=1.0),
        st.floats(min_value=0.05, max_value=0.5),
    )
    def test_conservation_property(self, x0, y0, w, h):
        """Rasterized area equals geometric area for any interior rect."""
        grid = Grid2D(Rect(0, 0, 4, 2), nx=8, ny=4)
        rect = Rect(x0, y0, min(x0 + w, 4.0), min(y0 + h, 2.0))
        frac = grid.coverage_fractions(rect)
        covered = frac.sum() * grid.dx * grid.dy
        assert covered == pytest.approx(rect.area, abs=1e-9)
        assert np.all(frac >= 0.0) and np.all(frac <= 1.0 + 1e-12)
