"""Trace ingestion: readers, writers, fixtures, and error context.

Covers the two shipped formats (ramulator address traces and
DRAMPower-style command CSVs), the committed 1k-line fixtures under
``tests/data/``, and the requirement that a malformed line anywhere in a
trace is reported with its file and line number.
"""

from pathlib import Path

import pytest

from repro.controller.request import (
    ReadRequest,
    TraceMapping,
    WorkloadConfig,
    generate_workload,
    read_drampower_trace,
    read_ramulator_trace,
    read_trace,
    write_drampower_trace,
    write_ramulator_trace,
)
from repro.errors import ConfigurationError, TraceError

DATA = Path(__file__).parent / "data"


class TestMapping:
    def test_decode_encode_roundtrip(self):
        m = TraceMapping()
        for die in range(m.num_dies):
            for bank in range(m.banks_per_die):
                for row in (0, 1, 4095):
                    addr = m.encode(die, bank, row)
                    assert m.decode(addr) == (die, bank, row)

    def test_sequential_stream_spreads_banks_first(self):
        m = TraceMapping()
        decoded = [m.decode(i * m.line_bytes) for i in range(m.banks_per_die)]
        assert [b for _, b, _ in decoded] == list(range(m.banks_per_die))
        assert all(d == 0 and r == 0 for d, _, r in decoded)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            TraceMapping(num_dies=0)
        with pytest.raises(ConfigurationError):
            TraceMapping(line_bytes=0)


class TestFixtures:
    def test_ramulator_fixture_parses(self):
        reqs = list(read_trace(DATA / "ramulator_1k.trace"))
        assert len(reqs) == 1000
        assert all(0 <= r.die < 4 and 0 <= r.bank < 8 for r in reqs)
        assert any(r.is_write for r in reqs)

    def test_drampower_fixture_parses(self):
        reqs = list(read_trace(DATA / "drampower_1k.csv"))
        assert len(reqs) == 1000
        arrivals = [r.arrival_cycle for r in reqs]
        assert arrivals == sorted(arrivals)

    def test_fixtures_describe_the_same_stream(self):
        """Both fixtures were written from the same synthetic workload, so
        the (die, bank, row, op) sequences match."""
        ram = list(read_trace(DATA / "ramulator_1k.trace"))
        dp = list(read_trace(DATA / "drampower_1k.csv"))
        key = lambda r: (r.die, r.bank, r.row, r.is_write)  # noqa: E731
        assert [key(r) for r in ram] == [key(r) for r in dp]


class TestRoundTrip:
    def _workload(self):
        return generate_workload(
            WorkloadConfig(
                num_requests=200, seed=11, write_fraction=0.3, arrival_interval=3
            )
        )

    def test_drampower_roundtrip_exact(self, tmp_path):
        wl = self._workload()
        out = tmp_path / "t.csv"
        assert write_drampower_trace(out, wl) == 200
        back = list(read_drampower_trace(out))
        assert [
            (r.die, r.bank, r.row, r.arrival_cycle, r.is_write) for r in back
        ] == [(r.die, r.bank, r.row, r.arrival_cycle, r.is_write) for r in wl]

    def test_ramulator_roundtrip_resynthesizes_arrivals(self, tmp_path):
        wl = self._workload()
        out = tmp_path / "t.trace"
        assert write_ramulator_trace(out, wl) == 200
        back = list(read_ramulator_trace(out, arrival_interval=3))
        # The format has no timestamps: (die, bank, row, op) round-trips,
        # arrivals are re-synthesized at the requested interval.
        assert [(r.die, r.bank, r.row, r.is_write) for r in back] == [
            (r.die, r.bank, r.row, r.is_write) for r in wl
        ]
        assert [r.arrival_cycle for r in back] == [3 * i for i in range(200)]

    def test_fractional_arrival_interval(self, tmp_path):
        out = tmp_path / "t.trace"
        out.write_text("0x0 R\n0x40 R\n0x80 R\n0xc0 R\n")
        back = list(read_ramulator_trace(out, arrival_interval=0.5))
        assert [r.arrival_cycle for r in back] == [0, 0, 1, 1]


class TestMalformedLines:
    def _expect_error(self, path, match, lineno):
        with pytest.raises(TraceError) as exc_info:
            list(read_trace(path))
        err = exc_info.value
        assert err.context["path"] == str(path)
        assert err.context["line"] == lineno
        assert match in str(err)

    def test_ramulator_bad_field_count(self, tmp_path):
        p = tmp_path / "t.trace"
        p.write_text("0x0 R\n0x40 R W\n")
        self._expect_error(p, "expected '<hex address> <R|W>'", 2)

    def test_ramulator_bad_address(self, tmp_path):
        p = tmp_path / "t.trace"
        p.write_text("# comment\n0xzz R\n")
        self._expect_error(p, "bad address", 2)

    def test_ramulator_bad_op(self, tmp_path):
        p = tmp_path / "t.trace"
        p.write_text("0x0 R\n\n0x40 X\n")
        self._expect_error(p, "bad op", 3)

    def test_drampower_bad_field_count(self, tmp_path):
        p = tmp_path / "t.csv"
        p.write_text("cycle,command,die,bank,row\n1,RD,0,0\n")
        self._expect_error(p, "expected", 2)

    def test_drampower_non_integer(self, tmp_path):
        p = tmp_path / "t.csv"
        p.write_text("1,RD,0,x,5\n")
        self._expect_error(p, "non-integer", 1)

    def test_drampower_unsupported_command(self, tmp_path):
        p = tmp_path / "t.csv"
        p.write_text("1,ACT,0,0,5\n")
        self._expect_error(p, "unsupported command", 1)

    def test_drampower_time_goes_backwards(self, tmp_path):
        p = tmp_path / "t.csv"
        p.write_text("5,RD,0,0,1\n3,RD,0,1,1\n")
        self._expect_error(p, "goes backwards", 2)

    def test_unknown_format(self, tmp_path):
        with pytest.raises(ConfigurationError):
            read_trace(tmp_path / "t.trace", fmt="vcd")

    def test_error_renders_path_and_line(self, tmp_path):
        p = tmp_path / "deep.trace"
        p.write_text("0x0 R\n" * 10 + "garbage\n")
        with pytest.raises(TraceError) as exc_info:
            list(read_ramulator_trace(p))
        rendered = str(exc_info.value)
        assert str(p) in rendered
        assert "line=11" in rendered


class TestStreamingBehavior:
    def test_reader_is_lazy(self, tmp_path):
        """The reader must not pre-parse the file: a bad line past the
        consumed prefix never raises."""
        p = tmp_path / "t.trace"
        p.write_text("0x0 R\n0x40 W\ngarbage\n")
        it = read_ramulator_trace(p)
        first = next(it)
        second = next(it)
        assert isinstance(first, ReadRequest)
        assert second.is_write
        with pytest.raises(TraceError):
            next(it)
