"""Geometry primitives: Point and Rect."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.geometry import Point, Rect

coords = st.floats(min_value=-100.0, max_value=100.0, allow_nan=False)
sizes = st.floats(min_value=0.1, max_value=50.0, allow_nan=False)


class TestPoint:
    def test_distance(self):
        assert Point(0, 0).distance_to(Point(3, 4)) == pytest.approx(5.0)

    def test_manhattan(self):
        assert Point(0, 0).manhattan_to(Point(3, 4)) == pytest.approx(7.0)

    def test_translated(self):
        p = Point(1.0, 2.0).translated(0.5, -0.5)
        assert (p.x, p.y) == (1.5, 1.5)

    def test_mirror(self):
        p = Point(1.0, 2.0).mirrored_x(3.0)
        assert (p.x, p.y) == (5.0, 2.0)

    @given(coords, coords, coords)
    def test_mirror_involution(self, x, y, axis):
        p = Point(x, y)
        assert p.mirrored_x(axis).mirrored_x(axis).x == pytest.approx(x)

    @given(coords, coords, coords, coords)
    def test_metric_inequalities(self, x1, y1, x2, y2):
        a, b = Point(x1, y1), Point(x2, y2)
        # Euclidean <= Manhattan <= sqrt(2) * Euclidean.
        assert a.distance_to(b) <= a.manhattan_to(b) + 1e-9
        assert a.manhattan_to(b) <= math.sqrt(2) * a.distance_to(b) + 1e-9


class TestRect:
    def test_corner_order_enforced(self):
        with pytest.raises(ValueError):
            Rect(1.0, 0.0, 0.0, 1.0)

    def test_from_size_and_props(self):
        r = Rect.from_size(1.0, 2.0, 3.0, 4.0)
        assert r.width == pytest.approx(3.0)
        assert r.height == pytest.approx(4.0)
        assert r.area == pytest.approx(12.0)
        assert (r.center.x, r.center.y) == (pytest.approx(2.5), pytest.approx(4.0))

    def test_centered(self):
        r = Rect.centered(Point(0.0, 0.0), 2.0, 4.0)
        assert (r.x0, r.y0, r.x1, r.y1) == (-1.0, -2.0, 1.0, 2.0)

    def test_contains(self):
        r = Rect(0, 0, 2, 2)
        assert r.contains(Point(1, 1))
        assert r.contains(Point(2, 2))  # boundary included
        assert not r.contains(Point(2.1, 1))
        assert r.contains(Point(2.05, 1), tol=0.1)

    def test_intersection(self):
        a = Rect(0, 0, 2, 2)
        b = Rect(1, 1, 3, 3)
        inter = a.intersection(b)
        assert inter == Rect(1, 1, 2, 2)
        assert a.overlap_area(b) == pytest.approx(1.0)

    def test_disjoint(self):
        a = Rect(0, 0, 1, 1)
        b = Rect(2, 2, 3, 3)
        assert not a.intersects(b)
        assert a.intersection(b) is None
        assert a.overlap_area(b) == 0.0

    def test_shared_edge_counts_as_intersecting(self):
        a = Rect(0, 0, 1, 1)
        b = Rect(1, 0, 2, 1)
        assert a.intersects(b)
        assert a.overlap_area(b) == pytest.approx(0.0)

    def test_inset(self):
        r = Rect(0, 0, 4, 4).inset(1.0)
        assert r == Rect(1, 1, 3, 3)
        with pytest.raises(ValueError):
            Rect(0, 0, 1, 1).inset(0.6)

    def test_mirror_preserves_area(self):
        r = Rect(0, 0, 2, 3)
        m = r.mirrored_x(5.0)
        assert m.area == pytest.approx(r.area)
        assert m.x0 == pytest.approx(8.0)
        assert m.x1 == pytest.approx(10.0)

    def test_edge_points_on_boundary(self):
        r = Rect(0, 0, 4, 2)
        pts = list(r.edge_points(0.5))
        assert len(pts) == 24  # perimeter 12 / 0.5
        for p in pts:
            on_x = math.isclose(p.x, 0) or math.isclose(p.x, 4)
            on_y = math.isclose(p.y, 0) or math.isclose(p.y, 2)
            assert on_x or on_y

    def test_edge_points_bad_spacing(self):
        with pytest.raises(ValueError):
            list(Rect(0, 0, 1, 1).edge_points(0.0))

    @given(coords, coords, sizes, sizes, coords, coords, sizes, sizes)
    def test_overlap_symmetric_and_bounded(self, x1, y1, w1, h1, x2, y2, w2, h2):
        a = Rect.from_size(x1, y1, w1, h1)
        b = Rect.from_size(x2, y2, w2, h2)
        assert a.overlap_area(b) == pytest.approx(b.overlap_area(a))
        assert a.overlap_area(b) <= min(a.area, b.area) + 1e-9

    @given(coords, coords, sizes, sizes, st.floats(min_value=0.2, max_value=5.0))
    def test_perimeter_walk_total(self, x, y, w, h, spacing):
        r = Rect.from_size(x, y, w, h)
        pts = list(r.edge_points(spacing))
        assert len(pts) >= 1
        # All points lie on the rectangle.
        for p in pts:
            assert r.contains(p, tol=1e-9)
