"""Experiment framework and the fast variants of each driver.

Heavy drivers (table9, sec61, fig9, fig5, table6) run in their fast
configuration and are only smoke-checked for structure; the exact
paper-vs-model comparison lives in the benchmark harness and
EXPERIMENTS.md.
"""

import pytest

from repro.errors import ConfigurationError
from repro.experiments import ExperimentResult, Row, registry, run_experiment
from repro.experiments.base import register


class TestFramework:
    def test_registry_complete(self):
        expected = {
            "table1", "fig4", "sec3_metal", "sec31", "fig5", "table2",
            "table3", "table4", "table5", "table6", "fig9", "table8",
            "sec61", "table9",
        }
        assert expected <= set(registry)

    def test_unknown_experiment(self):
        with pytest.raises(ConfigurationError):
            run_experiment("nope")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ConfigurationError):
            register("table1")(lambda fast=True: None)

    def test_row_deviation(self):
        row = Row("x", paper={"v": 10.0}, model={"v": 11.0})
        assert row.deviation_percent("v") == pytest.approx(10.0)
        assert row.deviation_percent("missing") is None

    def test_result_fmt_and_lookup(self):
        res = ExperimentResult(
            "t", "title", [Row("a", {"v": 1.0}, {"v": 1.1})], notes=["n"]
        )
        text = res.fmt()
        assert "title" in text and "+10.0%" in text and "note: n" in text
        assert res.row("a").label == "a"
        with pytest.raises(ConfigurationError):
            res.row("missing")


class TestFastDrivers:
    """Each driver runs and the paper's qualitative claims hold."""

    def test_table1(self):
        res = run_experiment("table1")
        assert len(res.rows) == 4
        for row in res.rows:
            assert row.model["banks"] == row.paper["banks"]
            assert row.model["channels"] == row.paper["channels"]

    def test_table2_ordering(self):
        res = run_experiment("table2")
        ir = {r.label[:3]: r.model["ir_mv"] for r in res.rows}
        # (a) best, (b) worst, RDL helps (c) vs (b).
        assert ir["(a)"] < ir["(c)"] < ir["(b)"]
        assert ir["(d)"] < ir["(b)"]

    def test_table3_wirebond_helps_most_when_coupled(self):
        res = run_experiment("table3")
        deltas = [r.model["delta_pct"] for r in res.rows]
        assert all(d < 0 for d in deltas)  # wire bonding always helps
        assert deltas[0] < deltas[2]  # most on the coupled on-chip design

    def test_sec31_coupling(self):
        res = run_experiment("sec31")
        off = res.row("off-chip (stand-alone)").model["ir_mv"]
        on = res.row("on-chip, PDNs coupled").model["ir_mv"]
        ded = res.row("on-chip, dedicated via-last TSVs").model["ir_mv"]
        assert on > 1.5 * off
        assert abs(ded - off) / off < 0.25  # decoupled ~ off-chip

    def test_sec3_metal(self):
        res = run_experiment("sec3_metal")
        final = res.rows[-1].model["reduction_pct"]
        assert final > 30.0

    def test_table4_overlap_trend(self):
        res = run_experiment("table4")
        by_label = {r.label.split(" ")[0]: r.model["delta_pct"] for r in res.rows}
        # Overlapping pairs barely benefit; separated pairs benefit a lot.
        assert by_label["0-0-2a-2a"] > -12.0
        assert by_label["0-2a-0-2a"] < -30.0
        # Separation monotonicity b -> d.
        assert by_label["0-0-2d-2a"] < by_label["0-0-2b-2a"]

    def test_table5_worst_cases(self):
        res = run_experiment("table5")
        f2b = {r.label.split(" ")[0]: r.model["f2b_mv"] for r in res.rows}
        f2f = {r.label.split(" ")[0]: r.model["f2f_mv"] for r in res.rows}
        # F2B worst case is the concentrated 0-0-0-2 state...
        assert f2b["0-0-0-2"] == max(f2b.values())
        # ...while under F2F the overlap state 0-0-2-2 dominates.
        assert f2f["0-0-2-2"] == max(f2f.values())

    def test_table8_exact(self):
        res = run_experiment("table8")
        for row in res.rows:
            for key, paper_value in row.paper.items():
                assert row.model[key] == pytest.approx(paper_value, abs=0.002)

    def test_fig4(self):
        res = run_experiment("fig4")
        row = res.rows[0]
        assert row.model["error_pct"] < 10.0
        assert row.model["speedup"] > 1.0


class TestSlowDriversSmoke:
    """Fast variants only; structure checks."""

    def test_fig5(self):
        res = run_experiment("fig5")
        gain = res.rows[-1].model["reduction_pct"]
        assert gain > 20.0  # alignment helps on-chip substantially

    def test_table6(self):
        res = run_experiment("table6")
        runtimes = {r.label: r.model["runtime_us"] for r in res.rows}
        assert runtimes["standard"] > runtimes["ir_fcfs"] >= runtimes["ir_distr"]
        for label in ("ir_fcfs", "ir_distr"):
            row = next(r for r in res.rows if r.label == label)
            assert row.model["max_ir_mv"] <= 24.0
