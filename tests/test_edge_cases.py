"""Edge-case stacks and configurations a downstream user could build."""

import pytest

from repro.errors import ConfigurationError
from repro.floorplan import ddr3_die_floorplan, t2_logic_floorplan
from repro.pdn import Bonding, Mounting, PDNConfig, StackSpec, build_stack
from repro.power import MemoryState
from repro.power.model import DDR3_POWER, T2_LOGIC_POWER


@pytest.fixture(scope="module")
def fp():
    return ddr3_die_floorplan()


class TestUnusualStackHeights:
    def test_single_die_stack(self, fp):
        spec = StackSpec("one", fp, DDR3_POWER, num_dram_dies=1)
        stack = build_stack(spec, PDNConfig())
        res = stack.solve_state(MemoryState(((0, 4),)))
        assert res.dram_max_mv > 0
        assert list(res.per_die_mv) == ["dram1"]

    def test_two_die_f2f_single_pair(self, fp):
        spec = StackSpec("two", fp, DDR3_POWER, num_dram_dies=2)
        f2b = build_stack(spec, PDNConfig())
        f2f = build_stack(spec, PDNConfig(bonding=Bonding.F2F))
        state = MemoryState(((), (0, 4)))
        # The pair shares PDNs: F2F strictly better for the top die.
        assert f2f.dram_max_mv(state) < f2b.dram_max_mv(state)

    def test_odd_die_count_f2f(self, fp):
        """Three dies: one F2F pair + a B2B-attached third die."""
        spec = StackSpec("three", fp, DDR3_POWER, num_dram_dies=3)
        stack = build_stack(spec, PDNConfig(bonding=Bonding.F2F))
        state = MemoryState(((), (), (0, 4)))
        res = stack.solve_state(state)
        assert res.dram_max_mv > 0
        assert len(res.per_die_mv) == 3

    def test_eight_die_stack_gradient(self, fp):
        spec = StackSpec("eight", fp, DDR3_POWER, num_dram_dies=8)
        stack = build_stack(spec, PDNConfig())
        top_state = MemoryState(((),) * 7 + ((0, 4),))
        res = stack.solve_state(top_state)
        drops = [res.per_die_mv[f"dram{d}"] for d in range(1, 9)]
        assert drops == sorted(drops)  # monotone up the chain

    def test_zero_dies_rejected(self, fp):
        with pytest.raises(ConfigurationError):
            StackSpec("none", fp, DDR3_POWER, num_dram_dies=0)


class TestOnChipVariants:
    def test_on_chip_two_die_stack(self, fp):
        spec = StackSpec(
            "on2",
            fp,
            DDR3_POWER,
            num_dram_dies=2,
            mounting=Mounting.ON_CHIP,
            logic_floorplan=t2_logic_floorplan(),
            logic_power=T2_LOGIC_POWER,
        )
        stack = build_stack(spec, PDNConfig())
        res = stack.solve_state(MemoryState(((), (0,))))
        assert res.logic_max_mv > 10.0
        assert res.dram_max_mv > res.per_die_mv["dram1"] * 0.0  # sane

    def test_logic_scale_sweep_monotone(self, onchip_stack, ddr3_floorplan):
        state = MemoryState.from_string("0-0-0-2", ddr3_floorplan)
        drops = [
            onchip_stack.solve_state(state, logic_scale=s).dram_max_mv
            for s in (0.0, 0.5, 1.0, 1.5)
        ]
        assert drops == sorted(drops)


class TestExtremeConfigs:
    def test_all_options_on(self, fp, ddr3_off_bench):
        """Every IR-reduction option simultaneously: the kitchen sink
        builds, solves, and beats the baseline by a wide margin."""
        config = PDNConfig(
            m2_usage=0.20,
            m3_usage=0.40,
            tsv_count=480,
            bonding=Bonding.F2F,
            wire_bond=True,
        )
        stack = build_stack(ddr3_off_bench.stack, config)
        state = MemoryState.from_string("0-0-0-2", fp)
        baseline = build_stack(ddr3_off_bench.stack, ddr3_off_bench.baseline)
        assert stack.dram_max_mv(state) < 0.5 * baseline.dram_max_mv(state)

    def test_minimum_everything(self, fp, ddr3_off_bench):
        from repro.pdn import BumpLocation, TSVLocation

        config = PDNConfig(
            m2_usage=0.10,
            m3_usage=0.10,
            tsv_count=15,
            tsv_location=TSVLocation.CENTER,
            bump_location=BumpLocation.CENTER,
        )
        stack = build_stack(ddr3_off_bench.stack, config)
        state = MemoryState.from_string("0-0-0-2", fp)
        baseline = build_stack(ddr3_off_bench.stack, ddr3_off_bench.baseline)
        assert stack.dram_max_mv(state) > 2.0 * baseline.dram_max_mv(state)

    def test_coarse_pitch_still_solves(self, ddr3_off_bench, fp):
        stack = build_stack(ddr3_off_bench.stack, ddr3_off_bench.baseline, pitch=1.5)
        state = MemoryState.from_string("0-0-0-2", fp)
        assert stack.dram_max_mv(state) > 0

    def test_empty_state_zero_drop_only_standby(self, ddr3_stack):
        res = ddr3_stack.solve_state(MemoryState.idle(4))
        # Only standby current flows: small but nonzero drop.
        assert 0.0 < res.dram_max_mv < 10.0
