"""Stack assembly: structure, physical trends, option effects.

These are the physics-level integration tests: every paper *trend* the
model must reproduce is asserted as an inequality (never as an absolute
number, which belongs to the benchmark harness).
"""

import pytest

from repro.errors import ConfigurationError
from repro.pdn import (
    BumpLocation,
    Mounting,
    RDLScope,
    StackSpec,
    TSVLocation,
    build_stack,
)
from repro.pdn.stackup import build_single_die_stack
from repro.power import MemoryState
from repro.power.model import DDR3_POWER


@pytest.fixture(scope="module")
def state_top(ddr3_floorplan):
    return MemoryState.from_string("0-0-0-2", ddr3_floorplan)


@pytest.fixture(scope="module")
def state_bottom(ddr3_floorplan):
    return MemoryState.from_string("2-0-0-0", ddr3_floorplan)


class TestStructure:
    def test_die_names(self, ddr3_stack):
        assert ddr3_stack.dram_die_names == ["dram1", "dram2", "dram3", "dram4"]
        assert ddr3_stack.load_layer_key(0) == "dram1/M1"
        assert ddr3_stack.logic_load_key is None

    def test_layers_per_die(self, ddr3_stack):
        for die in ddr3_stack.dram_die_names:
            assert ddr3_stack.model.die_layer_keys(die) == [
                f"{die}/M1",
                f"{die}/M2",
                f"{die}/M3",
            ]

    def test_logic_present_on_chip(self, onchip_stack):
        assert onchip_stack.logic_load_key == "logic/ML1"
        assert "logic" in onchip_stack.model.dies()

    def test_rdl_layers_added(self, ddr3_off_bench):
        stack = build_stack(
            ddr3_off_bench.stack,
            ddr3_off_bench.baseline.with_options(rdl=RDLScope.ALL),
        )
        keys = stack.model.layer_keys
        assert "dram1/RDL" in keys
        assert "dram4/RDL" in keys

    def test_on_chip_requires_logic(self, ddr3_floorplan):
        with pytest.raises(ConfigurationError):
            StackSpec(
                "bad", ddr3_floorplan, DDR3_POWER, 4, Mounting.ON_CHIP
            )

    def test_state_die_count_checked(self, ddr3_stack, ddr3_floorplan):
        bad = MemoryState.from_counts((1, 1), ddr3_floorplan)
        with pytest.raises(ConfigurationError):
            ddr3_stack.solve_state(bad)


class TestVerticalGradient:
    def test_top_die_worse_than_bottom(self, ddr3_stack, state_top, state_bottom):
        """Same load higher in the stack -> more TSV hops -> more drop."""
        assert ddr3_stack.dram_max_mv(state_top) > ddr3_stack.dram_max_mv(state_bottom)

    def test_per_die_drop_increases_up_the_stack(self, ddr3_stack, state_top):
        res = ddr3_stack.solve_state(state_top)
        mv = [res.per_die_mv[f"dram{d}"] for d in range(1, 5)]
        assert mv[0] < mv[1] < mv[2] < mv[3]


class TestDesignKnobTrends:
    def test_more_metal_less_drop(self, ddr3_off_bench, ddr3_stack, state_top):
        strong = build_stack(
            ddr3_off_bench.stack,
            ddr3_off_bench.baseline.with_options(m2_usage=0.20, m3_usage=0.40),
        )
        assert strong.dram_max_mv(state_top) < ddr3_stack.dram_max_mv(state_top)

    def test_more_tsvs_less_drop(self, ddr3_off_bench, state_top):
        few = build_stack(
            ddr3_off_bench.stack, ddr3_off_bench.baseline.with_options(tsv_count=15)
        )
        many = build_stack(
            ddr3_off_bench.stack, ddr3_off_bench.baseline.with_options(tsv_count=240)
        )
        assert many.dram_max_mv(state_top) < few.dram_max_mv(state_top)

    def test_center_tsv_worse_than_edge(self, ddr3_off_bench, ddr3_stack, state_top):
        center = build_stack(
            ddr3_off_bench.stack,
            ddr3_off_bench.baseline.with_options(
                tsv_location=TSVLocation.CENTER,
                bump_location=BumpLocation.CENTER,
            ),
        )
        assert center.dram_max_mv(state_top) > ddr3_stack.dram_max_mv(state_top)

    def test_rdl_helps_center_bumps(self, ddr3_off_bench, state_top):
        """Table 2: (c) edge+center+RDL beats (b) center+center."""
        b = build_stack(
            ddr3_off_bench.stack,
            ddr3_off_bench.baseline.with_options(
                tsv_location=TSVLocation.CENTER,
                bump_location=BumpLocation.CENTER,
            ),
        )
        c = build_stack(
            ddr3_off_bench.stack,
            ddr3_off_bench.baseline.with_options(
                bump_location=BumpLocation.CENTER, rdl=RDLScope.ALL
            ),
        )
        assert c.dram_max_mv(state_top) < b.dram_max_mv(state_top)

    def test_rdl_worse_than_direct_edge(self, ddr3_off_bench, ddr3_stack, state_top):
        """Table 2: (c) loses to (a) because of RDL series resistance."""
        c = build_stack(
            ddr3_off_bench.stack,
            ddr3_off_bench.baseline.with_options(
                bump_location=BumpLocation.CENTER, rdl=RDLScope.ALL
            ),
        )
        assert c.dram_max_mv(state_top) > ddr3_stack.dram_max_mv(state_top)

    def test_misalignment_hurts(self, ddr3_off_bench, state_top):
        aligned = build_stack(
            ddr3_off_bench.stack,
            ddr3_off_bench.baseline.with_options(
                tsv_location=TSVLocation.DISTRIBUTED, tsv_aligned=True
            ),
        )
        misaligned = build_stack(
            ddr3_off_bench.stack,
            ddr3_off_bench.baseline.with_options(
                tsv_location=TSVLocation.DISTRIBUTED, tsv_aligned=False
            ),
        )
        assert misaligned.dram_max_mv(state_top) > aligned.dram_max_mv(state_top)


class TestPackagingTrends:
    def test_f2f_beats_f2b_without_overlap(
        self, ddr3_stack, ddr3_f2f_stack, state_top
    ):
        assert ddr3_f2f_stack.dram_max_mv(state_top) < ddr3_stack.dram_max_mv(
            state_top
        )

    def test_f2f_benefit_collapses_on_overlap(
        self, ddr3_stack, ddr3_f2f_stack, ddr3_floorplan
    ):
        """Table 4: intra-pair overlapping kills PDN sharing."""
        overlap = MemoryState.from_string("0-0-2a-2a", ddr3_floorplan)
        separated = MemoryState.from_string("0-2a-0-2a", ddr3_floorplan)
        gain_overlap = 1 - ddr3_f2f_stack.dram_max_mv(overlap) / ddr3_stack.dram_max_mv(overlap)
        gain_separated = 1 - ddr3_f2f_stack.dram_max_mv(separated) / ddr3_stack.dram_max_mv(separated)
        assert gain_separated > 3 * gain_overlap

    def test_f2f_separation_monotone(self, ddr3_f2f_stack, ddr3_floorplan):
        """More separation between pair active regions -> lower F2F IR."""
        near = ddr3_f2f_stack.dram_max_mv(
            MemoryState.from_string("0-0-2b-2a", ddr3_floorplan)
        )
        far = ddr3_f2f_stack.dram_max_mv(
            MemoryState.from_string("0-0-2d-2a", ddr3_floorplan)
        )
        assert far < near

    def test_wirebond_helps(self, ddr3_off_bench, ddr3_stack, state_top):
        wb = build_stack(
            ddr3_off_bench.stack,
            ddr3_off_bench.baseline.with_options(wire_bond=True),
        )
        assert wb.dram_max_mv(state_top) < ddr3_stack.dram_max_mv(state_top)


class TestMountingTrends:
    def test_coupling_raises_dram_drop(self, ddr3_stack, onchip_stack, state_top):
        """Section 3.1: mounting on a live logic die roughly doubles IR."""
        off = ddr3_stack.dram_max_mv(state_top)
        on = onchip_stack.dram_max_mv(state_top)
        assert on > 1.5 * off

    def test_dedicated_tsvs_decouple(self, ddr3_on_bench, onchip_stack, state_top):
        ded = build_stack(ddr3_on_bench.stack, ddr3_on_bench.baseline)
        assert ded.dram_max_mv(state_top) < 0.6 * onchip_stack.dram_max_mv(state_top)

    def test_logic_noise_independent_of_dram(self, onchip_stack, ddr3_floorplan):
        idle = onchip_stack.solve_state(MemoryState.idle(4))
        assert idle.logic_max_mv > 30.0  # the host is the noise source

    def test_logic_scale_zero_removes_coupling(self, onchip_stack, state_top):
        quiet = onchip_stack.solve_state(state_top, logic_scale=0.0)
        loud = onchip_stack.solve_state(state_top, logic_scale=1.0)
        assert quiet.dram_max_mv < loud.dram_max_mv

    def test_wideio_edge_center_needs_rdl(self, wideio_bench):
        with pytest.raises(ConfigurationError):
            build_stack(
                wideio_bench.stack,
                wideio_bench.baseline.with_options(rdl=RDLScope.NONE),
            )


class TestSingleDie:
    def test_two_banks_worse_than_one(self, ddr3_floorplan):
        stack = build_single_die_stack(ddr3_floorplan, DDR3_POWER)
        one = stack.dram_max_mv(MemoryState(((0,),)))
        two = stack.dram_max_mv(MemoryState(((0, 1),)))
        assert two > one

    def test_power_reported(self, ddr3_floorplan):
        stack = build_single_die_stack(ddr3_floorplan, DDR3_POWER)
        res = stack.solve_state(MemoryState(((0, 1),)))
        assert res.total_power_mw == pytest.approx(220.5)


class TestResolutionConvergence:
    def test_finer_mesh_close_to_coarse(self, ddr3_off_bench, state_top):
        """The production pitch is within ~12% of a 2x finer solve."""
        coarse = build_stack(ddr3_off_bench.stack, ddr3_off_bench.baseline, pitch=0.4)
        fine = build_stack(ddr3_off_bench.stack, ddr3_off_bench.baseline, pitch=0.2)
        a, b = coarse.dram_max_mv(state_top), fine.dram_max_mv(state_top)
        assert abs(a - b) / b < 0.12
