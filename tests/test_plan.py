"""The plan pipeline: golden IR, snapshots, replay identity, incremental reuse.

Three independent identity guarantees are pinned here:

* **Physics**: every benchmark/variant solved through config -> plan ->
  assemble -> solve matches the pre-refactor golden IR values *bitwise*
  (``float.hex`` comparison against ``tests/golden/ir_baseline.json``).
* **Structure**: the canonical plan JSON for each benchmark baseline is
  snapshot under ``tests/golden/`` -- any planner change shows up as a
  readable JSON diff plus a plan-hash change, and must be re-blessed.
* **Replay**: session-cached (incremental) assembly produces link lists
  and mesh arrays equal to a cold build of the same plan.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np
import pytest

from repro.designs import hmc, off_chip_ddr3, on_chip_ddr3, wide_io
from repro.errors import ConfigurationError
from repro.experiments.base import Row
from repro.floorplan import ddr3_die_floorplan
from repro.obs import metrics as _metrics
from repro.pdn import (
    Bonding,
    BumpLocation,
    RDLScope,
    TSVLocation,
    build_stack,
)
from repro.pdn.assemble import AssemblySession, assemble
from repro.pdn.plan import (
    PLAN_TOUCH_PREFIX,
    StackPlan,
    op_from_dict,
    plans_from_counters,
    record_plan_use,
    validate_plan_dict,
)
from repro.pdn.stackup import build_single_die_stack, plan_stack
from repro.perf.cache import cached_build_stack, clear_caches
from repro.power.model import DDR3_POWER
from repro.power.state import MemoryState

GOLDEN = Path(__file__).parent / "golden"


@pytest.fixture(autouse=True)
def _pin_direct_backend(monkeypatch):
    """Golden IR values are a *direct-path* contract: the bitwise hex
    comparison must keep passing under a ``REPRO_SOLVER=cg`` test leg,
    so every solve in this module pins the direct backend."""
    monkeypatch.setenv("REPRO_SOLVER", "direct")

FACTORIES = {
    "ddr3_off": off_chip_ddr3,
    "ddr3_on": on_chip_ddr3,
    "wideio": wide_io,
    "hmc": hmc,
}


def _ir_record(stack, state):
    """An IR result as exact hex strings, matching the golden format."""
    r = stack.solve_state(state)
    return {
        "dram_max_mv": r.dram_max_mv.hex(),
        "per_die_mv": {k: v.hex() for k, v in r.per_die_mv.items()},
        "logic_max_mv": (
            r.logic_max_mv.hex() if r.logic_max_mv is not None else None
        ),
        "total_power_mw": r.total_power_mw.hex(),
    }


@pytest.fixture(scope="module")
def golden_ir():
    return json.loads((GOLDEN / "ir_baseline.json").read_text())


# -- golden IR: the pipeline's physics is bitwise-frozen ----------------------


class TestGoldenIR:
    """Every case solved through plan -> assemble matches the golden hex."""

    def test_benchmark_baselines(self, golden_ir):
        for key, factory in FACTORIES.items():
            b = factory()
            stack = build_stack(b.stack, b.baseline)
            assert _ir_record(stack, b.reference_state()) == (
                golden_ir[f"{key}/baseline"]
            ), f"{key}/baseline drifted from golden IR"

    @pytest.mark.parametrize(
        "name, options",
        [
            ("f2f", dict(bonding=Bonding.F2F)),
            ("f2f_rdl_all", dict(bonding=Bonding.F2F, rdl=RDLScope.ALL)),
            ("rdl_bottom", dict(rdl=RDLScope.BOTTOM)),
            ("rdl_all", dict(rdl=RDLScope.ALL)),
            ("wirebond", dict(wire_bond=True)),
            (
                "center_center",
                dict(
                    tsv_location=TSVLocation.CENTER,
                    bump_location=BumpLocation.CENTER,
                ),
            ),
            (
                "distributed_misaligned",
                dict(
                    tsv_location=TSVLocation.DISTRIBUTED, tsv_aligned=False
                ),
            ),
            ("tc240", dict(tsv_count=240)),
        ],
    )
    def test_off_chip_variants(self, golden_ir, ddr3_off_bench, name, options):
        stack = build_stack(
            ddr3_off_bench.stack, ddr3_off_bench.baseline.with_options(**options)
        )
        assert _ir_record(stack, ddr3_off_bench.reference_state()) == (
            golden_ir[f"ddr3_off/{name}"]
        ), f"ddr3_off/{name} drifted from golden IR"

    @pytest.mark.parametrize(
        "name, options",
        [
            ("coupled", dict(dedicated_tsv=False)),
            ("dedicated", dict(dedicated_tsv=True)),
            (
                "misaligned",
                dict(
                    tsv_location=TSVLocation.DISTRIBUTED,
                    tsv_aligned=False,
                    dedicated_tsv=False,
                ),
            ),
        ],
    )
    def test_on_chip_variants(self, golden_ir, ddr3_on_bench, name, options):
        stack = build_stack(
            ddr3_on_bench.stack, ddr3_on_bench.baseline.with_options(**options)
        )
        assert _ir_record(stack, ddr3_on_bench.reference_state()) == (
            golden_ir[f"ddr3_on/{name}"]
        ), f"ddr3_on/{name} drifted from golden IR"

    def test_single_die(self, golden_ir):
        fp = ddr3_die_floorplan()
        stack = build_single_die_stack(fp, DDR3_POWER)
        state = MemoryState.from_counts((2,), fp)
        assert _ir_record(stack, state) == golden_ir["ddr3_2d/single"]


# -- golden plans: the planner's output is snapshot-frozen --------------------


class TestGoldenPlans:
    @pytest.mark.parametrize("key", sorted(FACTORIES))
    def test_snapshot_matches(self, key):
        """Planned JSON is byte-identical to the committed snapshot."""
        b = FACTORIES[key]()
        plan = plan_stack(b.stack, b.baseline)
        assert plan.to_json() == (GOLDEN / f"plan_{key}.json").read_text(), (
            f"plan for {key} changed; if intentional, regenerate the "
            f"tests/golden/plan_{key}.json snapshot and plan_hashes.json"
        )

    def test_hashes_match_registry(self):
        hashes = json.loads((GOLDEN / "plan_hashes.json").read_text())
        assert sorted(hashes) == sorted(FACTORIES)
        for key, factory in FACTORIES.items():
            b = factory()
            assert plan_stack(b.stack, b.baseline).plan_hash == hashes[key]

    @pytest.mark.parametrize("key", sorted(FACTORIES))
    def test_committed_snapshots_validate(self, key):
        """The CI schema check, as a test: committed files stay loadable."""
        data = json.loads((GOLDEN / f"plan_{key}.json").read_text())
        validate_plan_dict(data)
        plan = StackPlan.from_dict(data)
        hashes = json.loads((GOLDEN / "plan_hashes.json").read_text())
        assert plan.plan_hash == hashes[key]


# -- serialization ------------------------------------------------------------


class TestPlanSerialization:
    def test_json_round_trip(self, ddr3_off_bench):
        plan = plan_stack(ddr3_off_bench.stack, ddr3_off_bench.baseline)
        back = StackPlan.from_json(plan.to_json())
        assert back == plan
        assert back.plan_hash == plan.plan_hash
        assert back.canonical_json() == plan.canonical_json()

    def test_hash_is_stable_across_instances(self, ddr3_off_bench):
        a = plan_stack(ddr3_off_bench.stack, ddr3_off_bench.baseline)
        b = plan_stack(ddr3_off_bench.stack, ddr3_off_bench.baseline)
        assert a is not b
        assert a == b
        assert a.plan_hash == b.plan_hash

    def test_hash_changes_with_structure(self, ddr3_off_bench):
        base = plan_stack(ddr3_off_bench.stack, ddr3_off_bench.baseline)
        tc240 = plan_stack(
            ddr3_off_bench.stack,
            ddr3_off_bench.baseline.with_options(tsv_count=240),
        )
        assert base.plan_hash != tc240.plan_hash

    def test_summary_and_counts(self, ddr3_off_bench):
        plan = plan_stack(ddr3_off_bench.stack, ddr3_off_bench.baseline)
        summary = plan.summary()
        assert summary["benchmark"] == "ddr3_off"
        assert summary["plan_hash"] == plan.plan_hash
        assert summary["num_ops"] == len(plan.ops)
        assert sum(plan.op_counts().values()) == len(plan.ops)
        assert plan.num_nodes() > 0
        assert len(plan.layer_keys()) == plan.op_counts()["add_layer"] + (
            plan.op_counts().get("add_rdl", 0)
        )

    def test_validate_rejects_missing_field(self, ddr3_off_bench):
        data = plan_stack(
            ddr3_off_bench.stack, ddr3_off_bench.baseline
        ).to_dict()
        del data["pitch"]
        with pytest.raises(ConfigurationError, match="pitch"):
            validate_plan_dict(data)

    def test_validate_rejects_bad_schema_version(self, ddr3_off_bench):
        data = plan_stack(
            ddr3_off_bench.stack, ddr3_off_bench.baseline
        ).to_dict()
        data["schema_version"] = 99
        with pytest.raises(ConfigurationError, match="schema_version"):
            validate_plan_dict(data)

    def test_validate_rejects_unknown_op_kind(self, ddr3_off_bench):
        data = plan_stack(
            ddr3_off_bench.stack, ddr3_off_bench.baseline
        ).to_dict()
        data["ops"][0] = dict(data["ops"][0], kind="warp_drive")
        with pytest.raises(ConfigurationError, match="warp_drive"):
            validate_plan_dict(data)

    def test_op_from_dict_rejects_length_mismatch(self):
        with pytest.raises(ConfigurationError, match="mismatched point"):
            op_from_dict(
                {
                    "kind": "connect_at_points",
                    "key_a": "a",
                    "key_b": "b",
                    "xs": [0.0, 1.0],
                    "ys": [0.0, 1.0],
                    "conductances": [1.0],
                    "role": "link",
                }
            )

    def test_from_json_rejects_garbage(self):
        with pytest.raises(ConfigurationError, match="JSON"):
            StackPlan.from_json("{not json")
        with pytest.raises(ConfigurationError, match="object"):
            StackPlan.from_json("[1, 2]")


# -- diffs --------------------------------------------------------------------


class TestPlanDiff:
    def test_identical(self, ddr3_off_bench):
        a = plan_stack(ddr3_off_bench.stack, ddr3_off_bench.baseline)
        b = plan_stack(ddr3_off_bench.stack, ddr3_off_bench.baseline)
        diff = a.diff(b)
        assert diff.identical
        assert diff.unchanged == len(a.ops)
        assert "identical" in diff.describe()

    def test_tsv_sweep_touches_only_tsv_ops(self, ddr3_off_bench):
        """A tsv_count change must leave every layer op unchanged --
        the structural fact incremental reassembly exploits."""
        a = plan_stack(ddr3_off_bench.stack, ddr3_off_bench.baseline)
        b = plan_stack(
            ddr3_off_bench.stack,
            ddr3_off_bench.baseline.with_options(tsv_count=240),
        )
        diff = a.diff(b)
        assert not diff.identical
        changed_kinds = {type(op).kind for op in diff.removed + diff.added}
        assert "add_layer" not in changed_kinds
        assert "add_rdl" not in changed_kinds
        n_layers = len(a.layer_keys())
        assert diff.unchanged >= n_layers
        assert f"-{len(diff.removed)} +{len(diff.added)}" in diff.describe()


# -- incremental reassembly ---------------------------------------------------


def _model_fingerprint(model):
    """Everything that determines the conductance matrix, exactly."""
    layers = []
    for key in model.layer_keys:
        entry = model.layer_entry(key)
        layers.append(
            (key, entry.offset, entry.origin, entry.mesh.gx, entry.mesh.gy)
        )
    return (
        layers,
        model.links_range(0, model.link_count),
        model.supply_range(0, model.supply_count),
    )


def _assert_models_equal(a, b):
    fa, fb = _model_fingerprint(a), _model_fingerprint(b)
    assert len(fa[0]) == len(fb[0])
    for (ka, oa, pa, gxa, gya), (kb, ob, pb, gxb, gyb) in zip(fa[0], fb[0]):
        assert (ka, oa, pa) == (kb, ob, pb)
        assert np.array_equal(gxa, gxb)
        assert np.array_equal(gya, gyb)
    assert fa[1] == fb[1]
    assert fa[2] == fb[2]


class TestIncrementalReassembly:
    def test_session_reuses_layers_across_tsv_sweep(self, ddr3_off_bench):
        session = AssemblySession()
        counts = (15, 60, 240)
        plans = [
            plan_stack(
                ddr3_off_bench.stack,
                ddr3_off_bench.baseline.with_options(tsv_count=c),
            )
            for c in counts
        ]
        before = _metrics.snapshot()
        assemble(plans[0], session=session)
        first = _metrics.diff(before, _metrics.snapshot())["counters"]
        assert first.get("assemble.layers_built", 0) == len(
            plans[0].layer_keys()
        )
        mid = _metrics.snapshot()
        for plan in plans[1:]:
            assemble(plan, session=session)
        rest = _metrics.diff(mid, _metrics.snapshot())["counters"]
        # Every layer of every subsequent sweep point replays from cache.
        assert rest.get("assemble.layers_built", 0) == 0
        assert rest.get("assemble.layers_reused", 0) == (
            sum(len(p.layer_keys()) for p in plans[1:])
        )
        assert rest.get("assemble.connects_reused", 0) > 0

    def test_session_assembly_is_bitwise_equal_to_cold(self, ddr3_off_bench):
        session = AssemblySession()
        for count in (15, 60):
            plan = plan_stack(
                ddr3_off_bench.stack,
                ddr3_off_bench.baseline.with_options(tsv_count=count),
            )
            warm = assemble(plan, session=session)
            cold = assemble(plan)
            _assert_models_equal(warm.model, cold.model)

    def test_session_stats_and_clear(self, ddr3_off_bench):
        session = AssemblySession()
        plan = plan_stack(ddr3_off_bench.stack, ddr3_off_bench.baseline)
        assemble(plan, session=session)
        stats = session.stats()
        assert stats["meshes"] == len(plan.layer_keys())
        assert stats["link_blocks"] > 0
        assert stats["supply_blocks"] >= 1
        session.clear()
        assert all(v == 0 for v in session.stats().values())


# -- content-addressed caching ------------------------------------------------


class TestContentAddressedCache:
    def test_equivalent_configs_share_assembled_stack(self, ddr3_off_bench):
        """Off-chip stacks ignore ``dedicated_tsv``: both configs resolve
        to the same plan hash, so both wrappers share one assembled model
        (and hence one factorization) while staying distinct wrappers."""
        clear_caches()
        try:
            spec = ddr3_off_bench.stack
            cfg_a = ddr3_off_bench.baseline.with_options(dedicated_tsv=False)
            cfg_b = ddr3_off_bench.baseline.with_options(dedicated_tsv=True)
            a = cached_build_stack(spec, cfg_a)
            b = cached_build_stack(spec, cfg_b)
            assert a is not b
            assert a.plan_hash == b.plan_hash
            assert a.assembled is b.assembled
            assert a.solver is b.solver
        finally:
            clear_caches()

    def test_default_pitch_is_content_addressed(self, ddr3_off_bench):
        """pitch=None resolves to tech.mesh_pitch: the plans hash equal,
        so the cache returns the *same* wrapper for both spellings."""
        clear_caches()
        try:
            a = cached_build_stack(
                ddr3_off_bench.stack, ddr3_off_bench.baseline, pitch=None
            )
            b = cached_build_stack(
                ddr3_off_bench.stack, ddr3_off_bench.baseline, pitch=0.4
            )
            assert a is b
        finally:
            clear_caches()


# -- plan provenance ----------------------------------------------------------


class TestPlanProvenance:
    def test_record_plan_use_feeds_counters(self, ddr3_off_bench):
        plan = plan_stack(ddr3_off_bench.stack, ddr3_off_bench.baseline)
        before = _metrics.snapshot()
        record_plan_use(plan)
        delta = _metrics.diff(before, _metrics.snapshot())["counters"]
        assert delta.get(PLAN_TOUCH_PREFIX + plan.plan_hash) == 1
        assert plans_from_counters(delta) == {plan.plan_hash: "ddr3_off"}

    def test_unknown_hash_degrades_to_itself(self):
        counters = {PLAN_TOUCH_PREFIX + "feedfacecafebeef": 3, "other": 1}
        assert plans_from_counters(counters) == {
            "feedfacecafebeef": "feedfacecafebeef"
        }

    def test_manifest_carries_plans(self, ddr3_off_bench):
        from repro.obs.manifest import RunManifest, build_manifest

        plan = plan_stack(ddr3_off_bench.stack, ddr3_off_bench.baseline)
        before = _metrics.snapshot()
        record_plan_use(plan)
        manifest = build_manifest(
            experiment_id="test.plan",
            title="plan provenance",
            config={},
            duration_s=0.0,
            metrics_snapshot=_metrics.diff(before, _metrics.snapshot()),
        )
        assert manifest.plans == {plan.plan_hash: "ddr3_off"}
        back = RunManifest.from_dict(manifest.to_dict())
        assert back.plans == manifest.plans

    def test_stack_exposes_plan_hash(self, ddr3_stack):
        assert ddr3_stack.plan_hash is not None
        assert len(ddr3_stack.plan_hash) == 16


# -- satellite: Row.deviation_percent -----------------------------------------


class TestDeviationPercent:
    def test_normal(self):
        row = Row("r", paper={"mv": 20.0}, model={"mv": 25.0})
        assert row.deviation_percent("mv") == pytest.approx(25.0)

    def test_zero_paper_value_is_undefined(self):
        row = Row("r", paper={"mv": 0.0}, model={"mv": 5.0})
        assert row.deviation_percent("mv") is None

    def test_bools_are_not_numbers(self):
        row = Row("r", paper={"ok": True}, model={"ok": True})
        assert row.deviation_percent("ok") is None
        row = Row("r", paper={"mv": 1.0}, model={"mv": True})
        assert row.deviation_percent("mv") is None

    def test_non_numeric_returns_none(self):
        row = Row("r", paper={"tag": "edge"}, model={"tag": "center"})
        assert row.deviation_percent("tag") is None
        assert row.deviation_percent("missing") is None
