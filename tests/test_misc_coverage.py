"""Coverage for small public behaviours not exercised elsewhere."""

import numpy as np
import pytest

import repro
from repro import errors
from repro.geometry import Grid2D, Rect
from repro.power import MemoryState, PowerMap
from repro.rmesh import LayerMesh, StackModel
from repro.tech import MetalLayer, RouteDirection


class TestErrorHierarchy:
    def test_all_errors_are_repro_errors(self):
        error_types = [
            errors.ConfigurationError,
            errors.FloorplanError,
            errors.MeshError,
            errors.SolverError,
            errors.SimulationError,
            errors.RegressionError,
            errors.OptimizationError,
        ]
        for err in error_types:
            assert issubclass(err, errors.ReproError)
            assert issubclass(err, Exception)

    def test_catch_all(self):
        with pytest.raises(errors.ReproError):
            raise errors.MeshError("x")


class TestPackageSurface:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name


class TestGeometryCorners:
    def test_corners_ccw(self):
        c = Rect(0, 0, 2, 1).corners()
        assert [(p.x, p.y) for p in c] == [(0, 0), (2, 0), (2, 1), (0, 1)]

    def test_perimeter_walk_wraps(self):
        r = Rect(0, 0, 2, 1)
        p = r._point_at_perimeter(2.0 * (r.width + r.height))  # full loop
        assert (p.x, p.y) == (pytest.approx(0.0), pytest.approx(0.0))

    def test_degenerate_rect_edge_points(self):
        r = Rect(1, 1, 1, 1)
        pts = list(r.edge_points(0.5))
        assert len(pts) == 1
        assert (pts[0].x, pts[0].y) == (1, 1)


class TestPowerMapLayout:
    def test_flat_matches_grid_ids(self):
        """flat() must follow the grid's flat-id order (j * nx + i), the
        contract the solver relies on when mapping loads to nodes."""
        grid = Grid2D(Rect(0, 0, 2, 1), nx=4, ny=2)
        pmap = PowerMap.zeros(grid)
        # Put power in one known cell.
        pmap.current[1, 2] = 0.5
        flat = pmap.flat()
        assert flat[grid.node_id(2, 1)] == pytest.approx(0.5)
        assert flat.sum() == pytest.approx(0.5)


class TestStackModelUniformCoupling:
    def test_couples_via_coarser_layer(self):
        """Uniform coupling between a 1-node plane and a multi-node line
        places one link per plane node (the coarser side)."""
        model = StackModel()
        plane = LayerMesh(
            Grid2D(Rect(0, 0, 4, 1), 1, 1),
            gx=np.zeros((1, 0)),
            gy=np.zeros((0, 1)),
            name="plane",
        )
        line = LayerMesh(
            Grid2D(Rect(0, 0, 4, 1), nx=4, ny=1),
            gx=np.full((1, 3), 1.0),
            gy=np.zeros((0, 4)),
            name="line",
        )
        k1 = model.add_layer("p", plane)
        k2 = model.add_layer("l", line)
        model.connect_layers_uniform(k1, k2, conductance_per_mm2=1.0)
        assert len(model.vertical_links()) == 1
        link = model.vertical_links()[0]
        assert link.conductance == pytest.approx(4.0)  # 4 mm^2 * 1 S/mm^2


class TestResultHelpers:
    def test_per_die_max_mv(self, ddr3_stack, ddr3_floorplan):
        state = MemoryState.from_string("0-0-0-2", ddr3_floorplan)
        res = ddr3_stack.solve_state(state)
        per_die = res.raw.per_die_max_mv()
        assert "package" in per_die  # raw view includes every die group
        for name in ddr3_stack.dram_die_names:
            assert per_die[name] == pytest.approx(res.per_die_mv[name])

    def test_state_str_contains_label(self, ddr3_stack, ddr3_floorplan):
        state = MemoryState.from_string("0-0-2b-2a", ddr3_floorplan)
        text = str(ddr3_stack.solve_state(state))
        assert "0-0-2-2" in text and "mV" in text


class TestMetalLayerDefaults:
    def test_power_capable_default(self):
        layer = MetalLayer("M", 0.1, RouteDirection.BOTH)
        assert layer.power_capable
