"""The Table 8 cost model, including the Table 9 cost reproduction."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.cost import (
    config_cost,
    m2_cost,
    m3_cost,
    tsv_count_cost,
    tsv_location_cost,
)
from repro.designs import all_benchmarks
from repro.errors import ConfigurationError
from repro.pdn import Bonding, BumpLocation, PDNConfig, RDLScope, TSVLocation


class TestTerms:
    def test_table8_endpoints(self):
        assert m2_cost(0.10) == pytest.approx(0.025)
        assert m2_cost(0.20) == pytest.approx(0.05)
        assert m3_cost(0.40) == pytest.approx(0.10)
        assert tsv_count_cost(15) == pytest.approx(0.078, abs=0.001)
        assert tsv_count_cost(480) == pytest.approx(0.44, abs=0.005)

    def test_sqrt_law(self):
        assert tsv_count_cost(400) == pytest.approx(2 * tsv_count_cost(100))

    def test_location_factors(self):
        tc = tsv_count_cost(100)
        assert tsv_location_cost(TSVLocation.CENTER, 100) == 0.0
        assert tsv_location_cost(TSVLocation.EDGE, 100) == pytest.approx(0.5 * tc)
        assert tsv_location_cost(TSVLocation.DISTRIBUTED, 100) == pytest.approx(tc)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            m2_cost(0.0)
        with pytest.raises(ConfigurationError):
            tsv_count_cost(0)

    @given(st.integers(min_value=15, max_value=479))
    def test_tc_cost_monotone(self, tc):
        assert tsv_count_cost(tc + 1) > tsv_count_cost(tc)


class TestConfigCost:
    def test_breakdown_total(self):
        breakdown = config_cost(PDNConfig())
        assert breakdown.total == pytest.approx(sum(breakdown.terms.values()))
        assert breakdown.terms["TD"] == 0.0
        assert breakdown.terms["BD"] == pytest.approx(0.045)

    def test_options_add_cost(self):
        base = config_cost(PDNConfig()).total
        for kwargs in (
            {"bonding": Bonding.F2F},
            {"rdl": RDLScope.ALL},
            {"wire_bond": True},
            {"dedicated_tsv": True},
        ):
            assert config_cost(PDNConfig().with_options(**kwargs)).total > base


#: The sixteen Table 9 (config, cost) pairs; the model must reproduce all.
TABLE9_COSTS = [
    ("ddr3_off", dict(m2_usage=0.10, m3_usage=0.10, tsv_count=15,
                      tsv_location=TSVLocation.CENTER, bump_location=BumpLocation.CENTER), 0.23),
    ("ddr3_off", dict(m2_usage=0.20, m3_usage=0.22, tsv_count=24,
                      bonding=Bonding.F2F), 0.37),
    ("ddr3_off", dict(m2_usage=0.20, m3_usage=0.40, tsv_count=360,
                      bonding=Bonding.F2F, wire_bond=True), 0.87),
    ("ddr3_off", dict(), 0.35),
    ("ddr3_on", dict(m2_usage=0.10, m3_usage=0.10, tsv_count=15,
                     tsv_location=TSVLocation.CENTER, bump_location=BumpLocation.CENTER), 0.17),
    ("ddr3_on", dict(m2_usage=0.20, m3_usage=0.22, tsv_count=21, wire_bond=True), 0.32),
    ("ddr3_on", dict(m2_usage=0.20, m3_usage=0.40, tsv_count=420,
                     dedicated_tsv=True, bonding=Bonding.F2F, wire_bond=True), 0.92),
    ("ddr3_on", dict(dedicated_tsv=True), 0.35),
    ("wideio", dict(m2_usage=0.10, m3_usage=0.10, tsv_count=160,
                    tsv_location=TSVLocation.CENTER, bump_location=BumpLocation.CENTER), 0.35),
    ("wideio", dict(m2_usage=0.20, m3_usage=0.40, tsv_count=160, dedicated_tsv=True,
                    bonding=Bonding.F2F, rdl=RDLScope.ALL, wire_bond=True,
                    bump_location=BumpLocation.CENTER), 0.73),
    ("wideio", dict(tsv_count=160, dedicated_tsv=True, rdl=RDLScope.ALL,
                    bump_location=BumpLocation.CENTER), 0.62),
    ("hmc", dict(m2_usage=0.10, m3_usage=0.10, tsv_count=160,
                 tsv_location=TSVLocation.CENTER, bump_location=BumpLocation.CENTER), 0.35),
    ("hmc", dict(m2_usage=0.20, m3_usage=0.25, tsv_count=160,
                 tsv_location=TSVLocation.DISTRIBUTED, dedicated_tsv=True,
                 wire_bond=True), 0.76),
    ("hmc", dict(m2_usage=0.20, m3_usage=0.40, tsv_count=480,
                 tsv_location=TSVLocation.DISTRIBUTED, dedicated_tsv=True,
                 wire_bond=True), 1.17),
    ("hmc", dict(tsv_count=384, dedicated_tsv=True), 0.77),
]


@pytest.mark.parametrize("bench_key,kwargs,paper_cost", TABLE9_COSTS)
def test_table9_cost_reproduction(bench_key, kwargs, paper_cost):
    """Every Table 9 cost entry reproduces to within 0.02."""
    bench = all_benchmarks()[bench_key]
    config = PDNConfig(**kwargs)
    total = config_cost(config, bench.package_cost).total
    assert total == pytest.approx(paper_cost, abs=0.02)
