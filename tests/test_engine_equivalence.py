"""The event-driven engine is decision-exact against the legacy loop.

The engine replaces the per-cycle ``run_legacy`` loop with event
skipping, vectorized bank state, and per-channel scheduling caches, but
its *decisions* must be identical: every field of :class:`SimResult`
(command counts, per-cycle state histogram, latencies) has to match the
legacy loop exactly on seeded workloads spanning all shipped policies.
"""

from dataclasses import asdict

import numpy as np
import pytest

from repro.controller import (
    IRAwareDistR,
    IRAwareFCFS,
    MemoryControllerSim,
    SimConfig,
    StandardJEDEC,
    WorkloadConfig,
    generate_workload,
)
from repro.controller.engine import (
    _FAR,
    BankStateVec,
    EventDrivenEngine,
    OccupancyAccumulator,
)
from repro.dram import TimingParams

SEEDS = (1, 20150607, 999)
POLICIES = ("standard", "ir_fcfs", "ir_distr")


@pytest.fixture(scope="module")
def timing():
    return TimingParams.ddr3_1600()


def _make_policy(name, timing, lut):
    if name == "standard":
        return StandardJEDEC(timing)
    if name == "ir_fcfs":
        return IRAwareFCFS(lut, 24.0)
    return IRAwareDistR(lut, 24.0)


def _run_both(cfg, name, timing, lut, wc):
    legacy = MemoryControllerSim(
        cfg, _make_policy(name, timing, lut), generate_workload(wc), lut
    ).run_legacy()
    event = MemoryControllerSim(
        cfg, _make_policy(name, timing, lut), generate_workload(wc), lut
    ).run()
    return legacy, event


def _assert_identical(legacy, event):
    d_old, d_new = asdict(legacy), asdict(event)
    # Compare field by field for a readable failure.
    for key in d_old:
        assert d_new[key] == d_old[key], f"SimResult.{key} diverged"


class TestDecisionExactness:
    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("policy", POLICIES)
    def test_base_config(self, timing, ddr3_lut, seed, policy):
        cfg = SimConfig(timing=timing)
        wc = WorkloadConfig(num_requests=1200, seed=seed)
        _assert_identical(*_run_both(cfg, policy, timing, ddr3_lut, wc))

    @pytest.mark.parametrize("policy", POLICIES)
    def test_refresh_multichannel_writes(self, timing, ddr3_lut, policy):
        cfg = SimConfig(
            timing=timing, refresh_enabled=True, num_channels=2
        )
        wc = WorkloadConfig(num_requests=1200, seed=7, write_fraction=0.2)
        _assert_identical(*_run_both(cfg, policy, timing, ddr3_lut, wc))


class TestStreamingWorkload:
    def test_generator_input_matches_list(self, timing):
        """A workload consumed as a stream (never materialized) produces
        the same result as the same workload passed as a list."""
        cfg = SimConfig(timing=timing)
        wc = WorkloadConfig(num_requests=800, seed=3)
        as_list = EventDrivenEngine(
            cfg, StandardJEDEC(timing), generate_workload(wc)
        ).run()
        as_stream = EventDrivenEngine(
            cfg, StandardJEDEC(timing), iter(generate_workload(wc))
        ).run()
        assert asdict(as_stream) == asdict(as_list)

    def test_empty_stream(self, timing):
        res = EventDrivenEngine(cfg := SimConfig(timing=timing),
                                StandardJEDEC(timing), iter(())).run()
        assert res.completed == 0
        assert res.finished


class TestBoundedOccupancy:
    def test_cap_diverts_to_dropped(self, timing):
        """With a tiny state cap, overflow cycles land in states_dropped
        and the histogram never exceeds the cap."""
        cfg = SimConfig(timing=timing, max_tracked_states=2)
        wl = generate_workload(WorkloadConfig(num_requests=600, seed=5))
        res = EventDrivenEngine(cfg, StandardJEDEC(timing), wl).run()
        assert len(res.state_occupancy) <= 2
        assert res.states_dropped > 0
        # Total accounted cycles (tracked + dropped) equals the run.
        assert sum(res.state_occupancy.values()) + res.states_dropped == res.cycles

    def test_both_engines_drop_identically(self, timing):
        cfg = SimConfig(timing=timing, max_tracked_states=3)
        wc = WorkloadConfig(num_requests=600, seed=5)
        legacy = MemoryControllerSim(
            cfg, StandardJEDEC(timing), generate_workload(wc)
        ).run_legacy()
        event = MemoryControllerSim(
            cfg, StandardJEDEC(timing), generate_workload(wc)
        ).run()
        assert legacy.states_dropped == event.states_dropped
        assert legacy.state_occupancy == event.state_occupancy

    def test_accumulator_semantics(self):
        acc = OccupancyAccumulator(cap=2)
        acc.add((1, 0), 3)
        acc.add((0, 1), 2)
        acc.add((2, 2), 5)  # third distinct state: over the cap
        acc.add((1, 0), 1)  # already tracked: always accumulates
        assert acc.table == {(1, 0): 4, (0, 1): 2}
        assert acc.dropped == 5


class TestVectorScalarParity:
    @pytest.mark.parametrize("seed", range(5))
    def test_next_event_vector_matches_scalar(self, seed):
        """The masked vector min equals the scalar scan on random bank
        state (the engine switches between them on bank count)."""
        rng = np.random.default_rng(seed)
        n = 64
        vec = BankStateVec(n)
        for i in range(n):
            vec.set_st(i, int(rng.integers(0, 4)))
            vec.set_rdy(i, int(rng.integers(0, 300)))
            vec.set_act(i, int(rng.integers(0, 200)))
            vec.set_col(i, int(rng.integers(0, 250)))
            vec.set_lact(i, int(rng.integers(0, 250)))
        now = 100
        tCCD, tRAS, tWR, cw = 4, 28, 12, 8
        got = EventDrivenEngine._bank_events_vec(vec, now, tCCD, tRAS, tWR, cw)
        best = _FAR
        for i in range(n):
            st = vec.st_l[i]
            if st in (1, 3):
                v = vec.rdy_l[i]
                if now < v < best:
                    best = v
            elif st == 2:
                for v in (
                    max(vec.col_l[i] + tCCD, vec.rdy_l[i]),
                    vec.act_l[i] + tRAS,
                    vec.col_l[i] + tWR,
                    vec.lact_l[i] + cw,
                ):
                    if now < v < best:
                        best = v
        assert got == best

    def test_bank_state_vec_consistency(self):
        vec = BankStateVec(8)
        assert vec.consistent()
        vec.set_st(3, 2)
        vec.set_row(3, 41)
        vec.set_rdy(3, 17)
        vec.set_act(3, 9)
        vec.set_col(3, 13)
        vec.set_lact(3, 9)
        assert vec.consistent()
        assert vec.st[3] == vec.st_l[3] == 2
        # A raw array write (bypassing set_*) is exactly what
        # consistent() exists to catch.
        vec.st[3] = 0
        assert not vec.consistent()


class TestBatchedAdmission:
    def test_default_loop_matches_scalar(self, timing):
        pol = StandardJEDEC(timing)
        pol.on_activate(0, 50)
        counts = (1, 0, 0, 0)
        dies = [0, 1, 2, 3]
        assert pol.admit_activations(dies, 51, counts) == [
            pol.may_activate(d, 51, counts) for d in dies
        ]

    def test_ir_batch_matches_scalar(self, ddr3_lut):
        pol = IRAwareFCFS(ddr3_lut, 24.0)
        for counts in ((0, 0, 0, 0), (1, 0, 1, 0), (2, 1, 0, 0), (2, 2, 2, 2)):
            dies = [0, 1, 2, 3, 0]
            batched = pol.admit_activations(dies, 10, counts)
            scalar = [pol.may_activate(d, 10, counts) for d in dies]
            assert batched == scalar, counts

    def test_empty_batch(self, ddr3_lut):
        assert IRAwareFCFS(ddr3_lut, 24.0).admit_activations([], 0, (0,) * 4) == []

    def test_lut_batch_matches_scalar(self, ddr3_lut):
        counts = [
            (0, 0, 0, 0),
            (1, 0, 0, 0),
            (2, 0, 0, 2),
            (3, 0, 0, 0),  # out of range -> False, not an error
            (2, 2, 2, 2),
        ]
        batch = np.array(counts, dtype=np.int64)
        for constraint in (None, 24.0, 1.0):
            got = ddr3_lut.allows_batch(batch, constraint)
            for state, ok in zip(counts, got):
                if max(state) > ddr3_lut.max_banks_per_die:
                    assert not ok
                else:
                    assert bool(ok) == ddr3_lut.allows(state, constraint)

    def test_as_array_matches_lookup(self, ddr3_lut):
        arr = ddr3_lut.as_array()
        assert arr.shape == (3, 3, 3, 3)
        for state, value in ddr3_lut.as_dict().items():
            assert arr[state] == value
