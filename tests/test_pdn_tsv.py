"""TSV / bump / wire-bond placement and the alignment model."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.floorplan import hmc_dram_die_floorplan
from repro.geometry import Point, Rect
from repro.pdn import PDNConfig, TSVLocation
from repro.pdn.tsv import (
    alignment_detours,
    center_tsv_points,
    distributed_tsv_points,
    edge_tsv_points,
    mean_alignment_distance,
    nearest_c4_distance,
    tsv_points_for_config,
    wirebond_points,
)
from repro.tech.vertical import C4Tech

OUTLINE = Rect(0, 0, 6.8, 6.7)


class TestCenterCluster:
    def test_count(self):
        pts = center_tsv_points(OUTLINE, 33)
        assert len(pts) == 33

    def test_clustered_at_center(self):
        pts = center_tsv_points(OUTLINE, 33)
        c = OUTLINE.center
        for p in pts:
            assert p.manhattan_to(c) < 2.5

    def test_cluster_size_scales_with_count(self):
        small = center_tsv_points(OUTLINE, 15)
        large = center_tsv_points(OUTLINE, 480)
        spread = lambda pts: max(p.x for p in pts) - min(p.x for p in pts)
        assert spread(small) < spread(large)

    def test_zero_rejected(self):
        with pytest.raises(ConfigurationError):
            center_tsv_points(OUTLINE, 0)


class TestEdgeRing:
    def test_count_and_location(self):
        pts = edge_tsv_points(OUTLINE, 33)
        assert len(pts) == 33
        ring = OUTLINE.inset(0.25)
        for p in pts:
            on_ring = (
                abs(p.x - ring.x0) < 1e-6
                or abs(p.x - ring.x1) < 1e-6
                or abs(p.y - ring.y0) < 1e-6
                or abs(p.y - ring.y1) < 1e-6
            )
            assert on_ring

    @given(st.integers(min_value=4, max_value=480))
    def test_any_count(self, count):
        assert len(edge_tsv_points(OUTLINE, count)) == count


class TestDistributed:
    def test_uniform_without_floorplan(self):
        pts = distributed_tsv_points(OUTLINE, 64)
        assert len(pts) == 64
        xs = sorted(p.x for p in pts)
        assert xs[0] < OUTLINE.width * 0.35
        assert xs[-1] > OUTLINE.width * 0.65

    def test_hmc_regions_used(self):
        fp = hmc_dram_die_floorplan()
        pts = distributed_tsv_points(fp.outline, 160, fp)
        assert len(pts) == 160
        regions = [b.rect for b in fp.blocks if b.type.value == "tsv_region"]
        for p in pts:
            assert any(r.contains(p, tol=1e-9) for r in regions)


class TestConfigDispatch:
    def test_styles(self):
        for loc in TSVLocation:
            config = PDNConfig(
                tsv_count=40,
                tsv_location=loc,
            )
            pts = tsv_points_for_config(OUTLINE, config)
            assert len(pts) == 40


class TestWirebond:
    def test_groups(self):
        pts = wirebond_points(OUTLINE, groups_per_edge=4)
        assert len(pts) == 16
        ring = OUTLINE.inset(0.12)
        for p in pts:
            assert ring.contains(p, tol=1e-9)


class TestAlignment:
    C4 = C4Tech(resistance=0.01, pitch=0.2, detour_res_per_mm=0.45)

    def test_on_bump_distance_zero(self):
        # Bumps at half-pitch offsets: (0.1, 0.1) is a bump.
        d = nearest_c4_distance(Point(0.1, 0.1), OUTLINE, 0.2)
        assert d == pytest.approx(0.0)

    def test_worst_case_half_pitch(self):
        d = nearest_c4_distance(Point(0.2, 0.2), OUTLINE, 0.2)
        assert d == pytest.approx(0.2)  # 0.1 in each axis, Manhattan

    def test_aligned_zero_detours(self):
        pts = edge_tsv_points(OUTLINE, 20)
        assert alignment_detours(pts, OUTLINE, self.C4, aligned=True) == [0.0] * 20

    def test_misaligned_nonnegative(self):
        pts = edge_tsv_points(OUTLINE, 20)
        detours = alignment_detours(pts, OUTLINE, self.C4, aligned=False)
        assert all(d >= 0.0 for d in detours)
        assert any(d > 0.0 for d in detours)

    def test_mean_distance_bounded_by_pitch(self):
        pts = distributed_tsv_points(OUTLINE, 100)
        mean = mean_alignment_distance(pts, OUTLINE, 0.2)
        assert 0.0 <= mean <= 0.25  # ~half-pitch per axis on average

    def test_empty_points(self):
        assert mean_alignment_distance([], OUTLINE, 0.2) == 0.0

    def test_bad_pitch(self):
        with pytest.raises(ConfigurationError):
            nearest_c4_distance(Point(0, 0), OUTLINE, 0.0)

    @settings(max_examples=50)
    @given(
        st.floats(min_value=0.0, max_value=6.8),
        st.floats(min_value=0.0, max_value=6.7),
    )
    def test_distance_bounded(self, x, y):
        # Interior points are within half a pitch per axis; at the die
        # boundary the clamped bump row can be up to a full pitch away.
        d = nearest_c4_distance(Point(x, y), OUTLINE, 0.2)
        assert 0.0 <= d <= 0.4 + 1e-9
