"""Extension features: ground-net analysis, heatmaps, LUT serialization."""

import json

import pytest

from repro.controller import IRAwareDistR, IRDropLUT
from repro.controller.lut import StaticIRDropLUT
from repro.errors import ConfigurationError
from repro.pdn.ground import GroundNetAnalysis, vss_config
from repro.power import MemoryState


class TestGroundNet:
    def test_symmetric_vss_mirrors_vdd(self, ddr3_off_bench, ddr3_floorplan):
        analysis = GroundNetAnalysis(ddr3_off_bench.stack, ddr3_off_bench.baseline)
        state = MemoryState.from_string("0-0-0-2", ddr3_floorplan)
        result = analysis.solve_state(state)
        # A perfectly symmetric VSS network bounces exactly as VDD droops.
        assert result.vss_bounce_mv == pytest.approx(result.vdd_droop_mv)
        assert result.total_noise_mv == pytest.approx(2 * result.vdd_droop_mv)

    def test_starved_vss_bounces_more(self, ddr3_off_bench, ddr3_floorplan):
        analysis = GroundNetAnalysis(
            ddr3_off_bench.stack, ddr3_off_bench.baseline, vss_usage_ratio=0.6
        )
        state = MemoryState.from_string("0-0-0-2", ddr3_floorplan)
        result = analysis.solve_state(state)
        assert result.vss_bounce_mv > result.vdd_droop_mv

    def test_vss_config_clamps_to_table8(self):
        from repro.pdn import PDNConfig

        cfg = vss_config(PDNConfig(m3_usage=0.40), usage_ratio=2.0)
        assert cfg.m3_usage == pytest.approx(0.40)  # clamped at the cap
        with pytest.raises(ConfigurationError):
            vss_config(PDNConfig(), usage_ratio=0.0)


class TestHeatmap:
    def test_shape_and_header(self, ddr3_stack, ddr3_floorplan):
        state = MemoryState.from_string("0-0-0-2", ddr3_floorplan)
        res = ddr3_stack.solve_state(state)
        art = res.raw.ascii_heatmap("dram4/M1")
        lines = art.split("\n")
        grid = ddr3_stack.model.layer_grid("dram4/M1")
        assert len(lines) == grid.ny + 1
        assert all(len(line) == grid.nx for line in lines[1:])
        assert "mV" in lines[0]
        # The hottest character appears somewhere.
        assert "@" in art

    def test_idle_die_renders(self, ddr3_stack):
        res = ddr3_stack.solve_state(MemoryState.idle(4))
        art = res.raw.ascii_heatmap("dram1/M1")
        assert art  # zero-drop field must not crash


class TestLUTSerialization:
    def test_roundtrip(self, ddr3_lut):
        restored = IRDropLUT.from_json(ddr3_lut.to_json())
        assert restored.size == ddr3_lut.size
        for counts, value in ddr3_lut.as_dict().items():
            assert restored.lookup(counts) == pytest.approx(value, abs=1e-3)
        assert restored.min_active_ir() == pytest.approx(
            ddr3_lut.min_active_ir(), abs=1e-3
        )

    def test_json_is_valid_and_labeled(self, ddr3_lut):
        payload = json.loads(ddr3_lut.to_json())
        assert payload["num_dies"] == 4
        assert "M2=10%" in payload["design"]
        assert len(payload["table"]) == 81

    def test_static_lut_drives_a_policy(self, ddr3_lut):
        """A shipped table is enough to run the IR-aware policy."""
        static = IRDropLUT.from_json(ddr3_lut.to_json())
        policy = IRAwareDistR(static, 24.0)
        assert not policy.may_activate(3, 0, (0, 0, 0, 1))
        assert policy.may_activate(0, 0, (0, 0, 0, 0))

    def test_static_lut_validation(self):
        with pytest.raises(ConfigurationError):
            StaticIRDropLUT({}, num_dies=4, max_banks_per_die=2)
        static = StaticIRDropLUT({(1, 0): 10.0}, num_dies=2, max_banks_per_die=2)
        with pytest.raises(ConfigurationError):
            static.lookup((9, 9))
