"""Tests for the observability layer: spans, metrics, logging, manifests."""

from __future__ import annotations

import io
import json
import logging
import pickle

import pytest

from repro.errors import ConfigurationError, SolverError
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.obs.log import configure, get_logger, log_event, resolve_level
from repro.obs.manifest import (
    build_manifest,
    config_hash_of,
    load_manifest,
    validate_manifest,
)
from repro.obs.metrics import MetricsRegistry
from repro.perf.parallel import map_design_points
from repro.perf.timers import reset_timers, snapshot, timed


@pytest.fixture
def clean_logging():
    """Strip handlers configure() installed so later tests stay silent."""
    yield
    root = logging.getLogger("repro")
    for handler in list(root.handlers):
        if getattr(handler, "_repro_obs", False):
            root.removeHandler(handler)
            handler.close()


# -- tracing ------------------------------------------------------------------


def test_span_nesting_order_and_containment():
    base = obs_trace.span_count()
    with obs_trace.span("test.outer", kind="unit") as outer:
        with obs_trace.span("test.inner"):
            pass
    recs = obs_trace.spans(since=base)
    # Spans record at exit: inner completes first.
    assert [r.name for r in recs] == ["test.inner", "test.outer"]
    inner, outer_rec = recs
    assert inner.parent == "test.outer"
    assert inner.depth == 1 and outer_rec.depth == 0
    assert outer_rec.parent is None
    assert outer is outer_rec and outer.attrs == {"kind": "unit"}
    # Temporal containment: the child lies inside the parent interval.
    assert inner.ts_us >= outer_rec.ts_us
    assert (
        inner.ts_us + inner.dur_us
        <= outer_rec.ts_us + outer_rec.dur_us + 1e-6
    )


def test_span_records_on_exception():
    base = obs_trace.span_count()
    with pytest.raises(ValueError):
        with obs_trace.span("test.fails"):
            raise ValueError("boom")
    assert [r.name for r in obs_trace.spans(since=base)] == ["test.fails"]


def test_chrome_trace_export(tmp_path):
    with obs_trace.span("test.chrome_outer"):
        with obs_trace.span("test.chrome_inner", count=3):
            pass
    path = tmp_path / "trace.json"
    obs_trace.write_chrome_trace(path)
    doc = json.loads(path.read_text())
    assert doc["displayTimeUnit"] == "ms"
    by_name = {e["name"]: e for e in doc["traceEvents"]}
    inner = by_name["test.chrome_inner"]
    assert inner["ph"] == "X"
    assert inner["args"]["parent"] == "test.chrome_outer"
    assert inner["args"]["count"] == 3
    assert all(e["ts"] >= 0 for e in doc["traceEvents"])


def test_timed_regions_feed_flat_timers():
    reset_timers()
    with timed("test.obs.region"):
        pass
    with timed("test.obs.region"):
        pass
    total, count = snapshot()["test.obs.region"]
    assert count == 2
    assert total >= 0.0


# -- metrics ------------------------------------------------------------------


def test_metrics_diff_and_merge():
    a = MetricsRegistry()
    a.inc("c", 2)
    a.observe("h", 1.0)
    a.set_gauge("g", 0.5)
    before = a.snapshot()
    a.inc("c", 3)
    a.observe("h", 3.0)
    a.set_gauge("g", 0.25)
    delta = MetricsRegistry.diff(before, a.snapshot())
    assert delta["counters"] == {"c": 3}
    assert delta["histograms"]["h"]["count"] == 1
    assert delta["histograms"]["h"]["total"] == pytest.approx(3.0)

    b = MetricsRegistry()
    b.inc("c", 10)
    b.set_gauge("g", 0.75)
    b.observe("h", 7.0)
    b.merge(delta)
    assert b.get_counter("c") == 13
    assert b.get_gauge("g") == 0.75  # gauges merge by max
    h = b.get_histogram("h")
    assert h["count"] == 2
    assert h["total"] == pytest.approx(10.0)
    assert h["min"] == 1.0 and h["max"] == 7.0


def _count_and_square(x: int) -> int:
    obs_metrics.inc("test.obs.worker_calls")
    obs_metrics.observe("test.obs.worker_inputs", float(x))
    return x * x


@pytest.mark.parametrize("workers", [1, 2])
def test_worker_metrics_merge_into_parent(workers):
    """The fix for the worker-observability blackout: parallel == serial."""
    before = obs_metrics.snapshot()
    assert map_design_points(_count_and_square, [1, 2, 3], workers=workers) == [
        1,
        4,
        9,
    ]
    delta = MetricsRegistry.diff(before, obs_metrics.snapshot())
    assert delta["counters"]["test.obs.worker_calls"] == 3
    assert delta["histograms"]["test.obs.worker_inputs"]["count"] == 3
    assert delta["histograms"]["test.obs.worker_inputs"]["total"] == 6.0


def test_histogram_percentiles():
    r = MetricsRegistry()
    for v in range(1, 101):
        r.observe("h", float(v))
    h = r.get_histogram("h")
    assert h["p50"] == pytest.approx(50.5)
    assert h["p95"] == pytest.approx(95.05)
    assert h["p99"] == pytest.approx(99.01)
    # Snapshots carry the same estimates plus the sample reservoir.
    snap = r.snapshot()["histograms"]["h"]
    assert snap["p50"] == h["p50"]
    assert len(snap["samples"]) == 100


def test_histogram_percentiles_single_value():
    r = MetricsRegistry()
    r.observe("h", 7.0)
    h = r.get_histogram("h")
    assert h["p50"] == h["p95"] == h["p99"] == 7.0


def test_histogram_sample_cap_bounds_reservoir():
    r = MetricsRegistry()
    for v in range(obs_metrics.HIST_SAMPLE_CAP + 50):
        r.observe("h", float(v))
    h = r.get_histogram("h")
    assert h["count"] == obs_metrics.HIST_SAMPLE_CAP + 50  # counts stay exact
    assert len(h["samples"]) == obs_metrics.HIST_SAMPLE_CAP
    assert h["max"] == float(obs_metrics.HIST_SAMPLE_CAP + 49)  # max stays exact


def test_percentiles_survive_diff_and_merge():
    """Worker-delta percentiles cover only the delta; merge folds them back."""
    worker = MetricsRegistry()
    worker.observe("h", 1000.0)  # pre-task observation
    before = worker.snapshot()
    for v in (1.0, 2.0, 3.0, 4.0, 5.0):
        worker.observe("h", v)
    delta = MetricsRegistry.diff(before, worker.snapshot())
    d = delta["histograms"]["h"]
    assert d["count"] == 5
    assert d["samples"] == [1.0, 2.0, 3.0, 4.0, 5.0]  # delta only
    assert d["p50"] == 3.0

    parent = MetricsRegistry()
    parent.observe("h", 10.0)
    parent.merge(delta)
    h = parent.get_histogram("h")
    assert h["count"] == 6
    assert sorted(h["samples"]) == [1.0, 2.0, 3.0, 4.0, 5.0, 10.0]
    assert h["p50"] == pytest.approx(3.5)
    # Derived keys are recomputed, not accumulated, on every read.
    assert set(h) == {"count", "total", "min", "max", "samples", "p50", "p95", "p99"}


def test_residual_norm_gauge_on_known_mesh(ddr3_stack, ddr3_off_bench):
    ddr3_stack.solve_state(ddr3_off_bench.reference_state())
    residual = obs_metrics.get_gauge("solver.residual_norm")
    assert residual is not None
    assert 0.0 <= residual < 1e-8  # direct LU solve: machine-precision


# -- logging ------------------------------------------------------------------


def test_log_level_filtering(clean_logging):
    stream = io.StringIO()
    configure(level="warning", stream=stream)
    logger = get_logger("test.obs")
    logger.info("invisible")
    logger.warning("visible")
    assert stream.getvalue() == "visible\n"


def test_quiet_suppresses_info(clean_logging):
    stream = io.StringIO()
    configure(level="info", quiet=True, stream=stream)
    logger = get_logger("test.obs")
    logger.info("invisible")
    logger.error("shown")
    assert stream.getvalue() == "shown\n"


def test_json_log_sink(tmp_path, clean_logging):
    stream = io.StringIO()
    path = tmp_path / "log.jsonl"
    configure(level="info", json_path=str(path), stream=stream)
    logger = get_logger("test.obs")
    log_event(logger, "info", "solve done", residual=1e-12, nodes=42)
    records = [json.loads(line) for line in path.read_text().splitlines()]
    assert len(records) == 1
    rec = records[0]
    assert rec["level"] == "info"
    assert rec["logger"] == "repro.test.obs"
    assert rec["message"] == "solve done"
    assert rec["fields"] == {"residual": 1e-12, "nodes": 42}
    # The stdout handler rendered the bare message (print-compatible).
    assert stream.getvalue() == "solve done\n"


def test_resolve_level_rejects_unknown():
    with pytest.raises(ConfigurationError):
        resolve_level("chatty")


# -- manifests ----------------------------------------------------------------


def test_manifest_roundtrip(tmp_path):
    manifest = build_manifest(
        "unit_test", title="unit", config={"a": 1}, duration_s=1.5
    )
    path = manifest.write(tmp_path / "run.manifest.json")
    loaded = load_manifest(path)
    assert loaded.to_dict() == manifest.to_dict()
    assert loaded.git["sha"]
    assert loaded.seeds["workload"] == 20150607
    assert loaded.config_hash == config_hash_of({"a": 1})
    assert loaded.workers >= 1


def test_manifest_validation_rejects_bad_documents():
    data = build_manifest("unit_test").to_dict()
    missing = dict(data)
    del missing["git"]
    with pytest.raises(ConfigurationError):
        validate_manifest(missing)
    wrong_version = dict(data)
    wrong_version["schema_version"] = 99
    with pytest.raises(ConfigurationError):
        validate_manifest(wrong_version)
    no_sha = dict(data)
    no_sha["git"] = {"dirty": False}
    with pytest.raises(ConfigurationError):
        validate_manifest(no_sha)


def test_run_experiment_attaches_manifest(tmp_path):
    from repro.experiments import run_experiment

    out = tmp_path / "table8.manifest.json"
    result = run_experiment("table8", manifest_out=out)
    assert result.manifest is not None
    assert result.manifest.experiment_id == "table8"
    assert result.manifest.config == {"experiment": "table8", "fast": True}
    assert load_manifest(out).experiment_id == "table8"


def test_report_includes_provenance():
    from repro.experiments import run_experiment
    from repro.reporting import results_to_markdown

    result = run_experiment("table8")
    md = results_to_markdown([result])
    assert "## Provenance" in md
    assert result.manifest.git["sha"][:12] in md


# -- error context ------------------------------------------------------------


def test_error_context_renders_and_pickles():
    exc = SolverError("factorization failed", num_nodes=10)
    exc.add_context(spec="ddr3", num_nodes=99)  # inner key wins
    assert exc.context == {"num_nodes": 10, "spec": "ddr3"}
    text = str(exc)
    assert "factorization failed" in text
    assert "num_nodes=10" in text and "spec=ddr3" in text

    clone = pickle.loads(pickle.dumps(exc))
    assert isinstance(clone, SolverError)
    assert clone.args == exc.args
    assert clone.context == exc.context


# -- CLI ----------------------------------------------------------------------


def test_cli_quiet_and_artifacts(tmp_path, capsys, clean_logging):
    from repro.cli import main

    metrics_path = tmp_path / "m.json"
    trace_path = tmp_path / "t.json"
    code = main(
        [
            "run",
            "table8",
            "--quiet",
            "--metrics-out",
            str(metrics_path),
            "--trace-out",
            str(trace_path),
        ]
    )
    assert code == 0
    assert capsys.readouterr().out == ""  # quiet: nothing on stdout
    metrics = json.loads(metrics_path.read_text())
    assert "metrics" in metrics and "timers" in metrics
    assert json.loads(trace_path.read_text())["traceEvents"]
    # Asking for metrics implies provenance: the manifest lands alongside.
    manifest = load_manifest(tmp_path / "m.manifest.json")
    assert manifest.experiment_id == "table8"


def test_cli_default_output_unchanged(capsys, clean_logging):
    from repro.cli import main

    assert main(["run", "table8"]) == 0
    out = capsys.readouterr().out
    assert out.startswith("== table8:")
    assert out.endswith("\n")
