"""Benchmark telemetry subsystem: records, comparator, registry, runner, CLI."""

from __future__ import annotations

import json

import pytest

from repro.bench import (
    REGISTRY,
    BenchmarkEntry,
    BenchSpec,
    SuiteRecord,
    Thresholds,
    baseline_path,
    compare,
    compare_against_root,
    discover,
    find_records,
    load_baseline,
    load_record,
    load_trajectory,
    register_bench,
    run_bench,
    run_suite,
    select,
    update_baseline,
    validate_record,
)
from repro.bench.record import RECORD_NAME_RE
from repro.bench.report import comparison_to_markdown, record_summary
from repro.cli import main
from repro.errors import ConfigurationError
from repro.obs.manifest import build_manifest


def make_entry(
    name="table1",
    wall=1.0,
    walls=None,
    max_ir=30.0,
    anchors=(),
    status="ok",
    error=None,
):
    return BenchmarkEntry(
        name=name,
        status=status,
        wall_s=wall,
        wall_s_all=list(walls) if walls is not None else [wall],
        peak_rss_kb=1000.0,
        counters={"solver.rhs_solved": 4},
        max_ir_mv=max_ir,
        anchors=list(anchors),
        error=error,
    )


def make_record(entries, created="2026-08-06T10:00:00Z", sha="a" * 40):
    manifest = build_manifest(experiment_id="bench.suite", title="test suite")
    return SuiteRecord(
        suite="smoke",
        created=created,
        smoke=True,
        repeats=1,
        git={"sha": sha, "dirty": False},
        workers=1,
        environment={"python": "3.x"},
        manifest=manifest.to_dict(),
        benchmarks=list(entries),
    )


ANCHOR = {
    "row": "standard",
    "metric": "runtime_us",
    "paper": 109.3,
    "model": 110.0,
    "deviation_pct": 0.64,
}


class TestRecord:
    def test_round_trip(self, tmp_path):
        record = make_record([make_entry(), make_entry(name="fig4", anchors=[ANCHOR])])
        path = record.write(tmp_path / "BENCH_test.json")
        loaded = load_record(path)
        assert loaded.names() == ["table1", "fig4"]
        assert loaded.entry("fig4").anchors == [ANCHOR]
        assert loaded.entry("table1").counters["solver.rhs_solved"] == 4
        assert loaded.git["sha"] == "a" * 40
        validate_record(loaded.to_dict())

    def test_missing_field_rejected(self):
        data = make_record([make_entry()]).to_dict()
        del data["git"]
        with pytest.raises(ConfigurationError, match="missing field 'git'"):
            validate_record(data)

    def test_bad_entry_status_rejected(self):
        data = make_record([make_entry(status="weird")]).to_dict()
        with pytest.raises(ConfigurationError, match="status 'weird'"):
            validate_record(data)

    def test_duplicate_entry_rejected(self):
        data = make_record([make_entry(), make_entry()]).to_dict()
        with pytest.raises(ConfigurationError, match="duplicate benchmark"):
            validate_record(data)

    def test_stale_schema_version_rejected(self):
        data = make_record([make_entry()]).to_dict()
        data["schema_version"] = 99
        with pytest.raises(ConfigurationError, match="schema_version"):
            validate_record(data)

    def test_embedded_manifest_validated(self):
        data = make_record([make_entry()]).to_dict()
        data["manifest"] = {"nonsense": True}
        with pytest.raises(ConfigurationError, match="embedded manifest"):
            validate_record(data)

    def test_record_name_format(self):
        record = make_record([make_entry()])
        name = record.record_name()
        assert RECORD_NAME_RE.match(name), name
        assert name == "BENCH_20260806T100000Z_aaaaaaa.json"

    def test_trajectory_discovery_and_ordering(self, tmp_path):
        older = make_record([make_entry(wall=1.0)], created="2026-08-01T00:00:00Z")
        newer = make_record([make_entry(wall=2.0)], created="2026-08-05T00:00:00Z")
        newer.write(tmp_path / newer.record_name())
        older.write(tmp_path / older.record_name())
        (tmp_path / "BENCH_20260803T000000Z_aaaaaaa.json").write_text("{broken")
        (tmp_path / "unrelated.json").write_text("{}")
        paths = find_records(tmp_path)
        assert [p.name for p in paths] == [
            "BENCH_20260801T000000Z_aaaaaaa.json",
            "BENCH_20260803T000000Z_aaaaaaa.json",
            "BENCH_20260805T000000Z_aaaaaaa.json",
        ]
        # The broken file is skipped, order is oldest-first.
        records = load_trajectory(tmp_path)
        assert [r.entry("table1").wall_s for r in records] == [1.0, 2.0]
        # exclude drops the excluded record.
        records = load_trajectory(tmp_path, exclude=(tmp_path / newer.record_name(),))
        assert [r.entry("table1").wall_s for r in records] == [1.0]


class TestComparator:
    def baseline(self, **kwargs):
        return make_record([make_entry(anchors=[ANCHOR], **kwargs)])

    def test_identical_run_is_ok(self):
        comparison = compare(self.baseline(), self.baseline())
        assert comparison.status == "ok"
        assert comparison.ok

    def test_improvement_is_ok(self):
        current = make_record([make_entry(wall=0.4, anchors=[ANCHOR])])
        comparison = compare(current, self.baseline())
        assert comparison.status == "ok"

    def test_2x_slowdown_is_perf_regression(self):
        current = make_record([make_entry(wall=2.0, anchors=[ANCHOR])])
        comparison = compare(current, self.baseline())
        verdict = comparison.verdicts[0]
        assert verdict.status == "perf_regression"
        assert "vs median 1.000s" in verdict.detail
        assert not comparison.ok

    def test_jitter_within_band_is_ok(self):
        current = make_record([make_entry(wall=1.4, anchors=[ANCHOR])])
        assert compare(current, self.baseline()).status == "ok"

    def test_sub_min_wall_never_perf_gated(self):
        base = make_record([make_entry(wall=0.005)])
        current = make_record([make_entry(wall=0.05)])  # 10x but micro
        assert compare(current, base).status == "ok"

    def test_trajectory_widens_the_noise_band(self):
        # Historical MADs show 1.8s is normal for this bench even though
        # the blessed baseline median alone would flag it.
        base = self.baseline()
        trajectory = [
            make_record([make_entry(wall=w, anchors=[ANCHOR])])
            for w in (0.8, 1.6, 0.9, 1.7, 1.2)
        ]
        current = make_record([make_entry(wall=1.8, anchors=[ANCHOR])])
        tight = compare(current, base)
        assert tight.status == "perf_regression"
        widened = compare(current, base, trajectory=trajectory)
        assert widened.status == "ok"

    def test_max_ir_change_is_accuracy_drift(self):
        current = make_record([make_entry(max_ir=30.1, anchors=[ANCHOR])])
        comparison = compare(current, self.baseline())
        assert comparison.status == "accuracy_drift"
        assert "max IR" in comparison.verdicts[0].detail

    def test_anchor_change_is_accuracy_drift(self):
        moved = dict(ANCHOR, model=120.0, deviation_pct=9.79)
        current = make_record([make_entry(anchors=[moved])])
        comparison = compare(current, self.baseline())
        assert comparison.status == "accuracy_drift"
        assert "runtime_us" in comparison.verdicts[0].detail

    def test_noisy_metric_exempt_from_drift(self):
        base_anchor = dict(ANCHOR, metric="speedup", deviation_pct=-99.3)
        cur_anchor = dict(ANCHOR, metric="speedup", deviation_pct=-99.1)
        base = make_record([make_entry(anchors=[base_anchor])])
        current = make_record([make_entry(anchors=[cur_anchor])])
        assert compare(current, base).status == "ok"

    def test_new_benchmark(self):
        current = make_record([make_entry(), make_entry(name="brand_new")])
        comparison = compare(current, self.baseline())
        by_name = {v.name: v for v in comparison.verdicts}
        assert by_name["brand_new"].status == "new_benchmark"
        assert comparison.status == "new_benchmark"
        assert comparison.ok  # new benches never fail the gate

    def test_failed_bench_is_worst_verdict(self):
        current = make_record(
            [make_entry(status="failed", error="AssertionError: boom")]
        )
        comparison = compare(current, self.baseline())
        assert comparison.status == "failed"
        assert not comparison.ok
        assert comparison.counts() == {"failed": 1}

    def test_thresholds_are_tunable(self):
        current = make_record([make_entry(wall=2.0, anchors=[ANCHOR])])
        loose = Thresholds(perf_rel_tol=1.5)
        assert compare(current, self.baseline(), thresholds=loose).status == "ok"

    def test_report_renders_verdicts(self):
        current = make_record([make_entry(wall=2.0, anchors=[ANCHOR])])
        comparison = compare(current, self.baseline())
        text = comparison_to_markdown(comparison)
        assert "perf_regression !!" in text
        assert "suite verdict: perf_regression" in text
        summary = record_summary(current)
        assert "table1" in summary and "suite 'smoke'" in summary


class TestBaselineStore:
    def test_update_and_load(self, tmp_path):
        path = tmp_path / "benchmarks" / "BASELINE.json"
        record = make_record([make_entry()])
        update_baseline(record, path)
        loaded = load_baseline(path)
        assert loaded is not None and loaded.names() == ["table1"]

    def test_missing_baseline_is_none(self, tmp_path):
        assert load_baseline(tmp_path / "nope.json") is None

    def test_update_baseline_blesses_a_regression(self, tmp_path):
        """--update-baseline semantics: after blessing, the same numbers pass."""
        path = tmp_path / "BASELINE.json"
        update_baseline(make_record([make_entry(wall=1.0)]), path)
        slow = make_record([make_entry(wall=3.0)])
        assert compare(slow, load_baseline(path)).status == "perf_regression"
        update_baseline(slow, path)
        assert compare(slow, load_baseline(path)).status == "ok"

    def test_compare_against_root(self, tmp_path):
        base = make_record([make_entry(wall=1.0)])
        update_baseline(base, baseline_path(tmp_path))
        older = make_record([make_entry(wall=1.1)], created="2026-08-01T00:00:00Z")
        older.write(tmp_path / older.record_name())
        current = make_record([make_entry(wall=1.2)])
        comparison = compare_against_root(current, tmp_path)
        assert comparison is not None and comparison.status == "ok"
        # No baseline -> None (first-ever run).
        assert compare_against_root(current, tmp_path / "empty") is None


class TestRegistry:
    def test_discover_finds_the_repo_benches(self):
        registry = discover()
        assert len(registry) >= 10
        for expected in ("table1", "table6", "fig4", "perf_sampling"):
            assert expected in registry
        # Discovery is idempotent.
        assert discover() is registry

    def test_smoke_selection_excludes_heavy(self):
        registry = discover()
        smoke = select(None, smoke=True, registry=registry)
        full = select(None, smoke=False, registry=registry)
        assert len(smoke) >= 10
        assert {s.name for s in full} - {s.name for s in smoke} >= {
            "fig9",
            "table6",
            "perf_sampling",
        }
        assert not any(s.heavy for s in smoke)

    def test_explicit_names_may_include_heavy(self):
        registry = discover()
        specs = select(["table6"], smoke=True, registry=registry)
        assert [s.name for s in specs] == ["table6"]

    def test_unknown_name_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown bench"):
            select(["bogus"], registry=discover())

    def test_harness_inference(self):
        registry = discover()
        assert registry["table1"].harness == "experiment"
        assert registry["ablation_mesh_resolution"].harness == "pedantic"
        assert registry["perf_sampling"].harness == "plain"

    def test_unsupported_signature_rejected(self):
        spec = BenchSpec(name="bad", func=lambda weird_arg: None)
        with pytest.raises(ConfigurationError, match="cannot drive"):
            spec.harness

    def test_cross_file_name_collision_rejected(self):
        REGISTRY["__collision"] = BenchSpec(
            name="__collision", func=lambda: None, source="/somewhere/else.py"
        )
        try:
            with pytest.raises(ConfigurationError, match="duplicate bench"):
                register_bench("__collision")(lambda: None)
        finally:
            del REGISTRY["__collision"]


class TestRunner:
    def test_run_suite_single_bench(self):
        record = run_suite(names=["table1"], smoke=True, archive=False)
        validate_record(record.to_dict())
        assert record.suite == "custom"
        entry = record.entry("table1")
        assert entry.status == "ok"
        assert entry.wall_s > 0 and entry.wall_s_all
        assert entry.anchors, "experiment bench must carry paper anchors"
        assert all(
            set(a) == {"row", "metric", "paper", "model", "deviation_pct"}
            for a in entry.anchors
        )
        assert record.manifest["experiment_id"] == "bench.suite"

    def test_run_suite_captures_solver_counters_and_ir(self):
        record = run_suite(names=["fig4"], smoke=True, archive=False)
        entry = record.entry("fig4")
        assert entry.counters.get("solver.rhs_solved", 0) > 0
        assert entry.max_ir_mv is not None and entry.max_ir_mv > 0

    def test_failing_bench_recorded_not_raised(self):
        def exploding():
            raise AssertionError("physics broke")

        spec = BenchSpec(name="__boom", func=exploding, source=__file__)
        entry = run_bench(spec, archive=False, isolate=True)
        assert entry.status == "failed"
        assert "physics broke" in entry.error
        assert entry.wall_s_all

    def test_repeats_record_every_wall_time(self):
        registry = discover()
        entry = run_bench(
            registry["table1"], repeats=3, archive=False, isolate=True
        )
        assert len(entry.wall_s_all) == 3
        assert entry.wall_s == sorted(entry.wall_s_all)[1]

    def test_isolated_repeats_are_cold_cache(self):
        # Every repeat must re-miss the perf caches: a warm-cache
        # median-of-k baseline would make any single-repeat run look
        # like a regression by the full cache-miss cost.
        registry = discover()
        one = run_bench(registry["fig4"], repeats=1, archive=False, isolate=True)
        two = run_bench(registry["fig4"], repeats=2, archive=False, isolate=True)
        misses = one.counters.get("cache.power_map.misses", 0)
        assert misses > 0
        assert two.counters.get("cache.power_map.misses", 0) == 2 * misses


class TestWorkersEnvFix:
    """REPRO_BENCH_WORKERS=1 must be respected (single-worker CI runs)."""

    def _bench_workers(self):
        registry = discover()  # loads benchmarks/bench_perf_sampling.py
        assert "perf_sampling" in registry
        import sys

        return sys.modules["repro_bench_cases.bench_perf_sampling"]._bench_workers

    @pytest.mark.parametrize(
        "value,expected",
        [("1", 1), ("2", 2), ("8", 8), ("0", 4), ("-3", 4), ("junk", 4)],
    )
    def test_explicit_values(self, monkeypatch, value, expected):
        monkeypatch.setenv("REPRO_BENCH_WORKERS", value)
        assert self._bench_workers()() == expected

    def test_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_BENCH_WORKERS", raising=False)
        assert self._bench_workers()() == 4


class TestCLI:
    def test_bench_list(self, capsys):
        assert main(["bench", "--list"]) == 0
        out = capsys.readouterr().out
        assert "table1" in out and "perf_sampling" in out

    def test_bench_emit_and_update_baseline(self, tmp_path, capsys):
        out = tmp_path / "BENCH_cli.json"
        base = tmp_path / "BASELINE.json"
        code = main(
            [
                "bench",
                "--only",
                "table1",
                "--out",
                str(out),
                "--baseline",
                str(base),
                "--update-baseline",
            ]
        )
        assert code == 0
        record = load_record(out)
        assert record.entry("table1").status == "ok"
        assert load_record(base).names() == ["table1"]
        assert "baseline updated" in capsys.readouterr().out

    def test_bench_gate_passes_then_fails(self, tmp_path, capsys):
        base = tmp_path / "BASELINE.json"
        out1 = tmp_path / "BENCH_one.json"
        assert (
            main(
                [
                    "bench",
                    "--only",
                    "table1",
                    "--out",
                    str(out1),
                    "--baseline",
                    str(base),
                    "--update-baseline",
                ]
            )
            == 0
        )
        # Same numbers against the blessed baseline: ok, exit 0.
        out2 = tmp_path / "BENCH_two.json"
        assert (
            main(
                [
                    "bench",
                    "--only",
                    "table1",
                    "--out",
                    str(out2),
                    "--baseline",
                    str(base),
                    "--gate",
                ]
            )
            == 0
        )
        assert "suite verdict: ok" in capsys.readouterr().out
        # Doctor the baseline so the live run looks 100x slower: gate trips.
        data = json.loads(base.read_text())
        for entry in data["benchmarks"]:
            entry["wall_s"] = entry["wall_s"] / 100.0
            entry["wall_s_all"] = [entry["wall_s"]]
            entry["max_ir_mv"] = None  # perf only; IR of table1 is None anyway
        base.write_text(json.dumps(data))
        out3 = tmp_path / "BENCH_three.json"
        code = main(
            [
                "bench",
                "--only",
                "ablation_decoder_fraction",
                "--out",
                str(out3),
                "--baseline",
                str(base),
                "--gate",
            ]
        )
        # A bench absent from the baseline is new_benchmark: not a failure.
        assert code == 0
        assert "new_benchmark" in capsys.readouterr().out

    def test_bench_gate_fails_on_synthetic_regression(self, tmp_path, capsys):
        base = tmp_path / "BASELINE.json"
        bench = "ablation_mesh_resolution"  # ~0.5s: safely above min_wall_s
        out1 = tmp_path / "BENCH_one.json"
        assert (
            main(
                [
                    "bench", "--only", bench,
                    "--out", str(out1),
                    "--baseline", str(base),
                    "--update-baseline",
                ]
            )
            == 0
        )
        data = json.loads(base.read_text())
        for entry in data["benchmarks"]:
            entry["wall_s"] = round(entry["wall_s"] / 100.0, 6)
            entry["wall_s_all"] = [entry["wall_s"]]
        base.write_text(json.dumps(data))
        out2 = tmp_path / "BENCH_two.json"
        delta_out = tmp_path / "delta.md"
        code = main(
            [
                "bench", "--only", bench,
                "--out", str(out2),
                "--baseline", str(base),
                "--gate",
                "--delta-out", str(delta_out),
            ]
        )
        assert code == 1
        assert "perf_regression" in capsys.readouterr().out
        assert "perf_regression" in delta_out.read_text()
