"""Workload generation and the request queue."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.controller import ReadRequest, RequestQueue, WorkloadConfig, generate_workload
from repro.controller.request import measured_row_hit_rate
from repro.errors import ConfigurationError, SimulationError


class TestWorkloadConfig:
    def test_defaults_match_paper(self):
        config = WorkloadConfig()
        assert config.num_requests == 10_000
        assert config.arrival_interval == 5
        assert config.row_hit_rate == 0.80
        assert config.num_dies == 4 and config.banks_per_die == 8

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"num_requests": 0},
            {"arrival_interval": 0},
            {"row_hit_rate": 1.5},
            {"same_die_rate": -0.1},
            {"num_rows": 1},
            {"locality_window": 0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ConfigurationError):
            WorkloadConfig(**kwargs)


class TestGenerator:
    def test_deterministic(self):
        a = generate_workload(WorkloadConfig(num_requests=200))
        b = generate_workload(WorkloadConfig(num_requests=200))
        assert [(r.die, r.bank, r.row) for r in a] == [
            (r.die, r.bank, r.row) for r in b
        ]

    def test_different_seeds_differ(self):
        a = generate_workload(WorkloadConfig(num_requests=200, seed=1))
        b = generate_workload(WorkloadConfig(num_requests=200, seed=2))
        assert [(r.die, r.bank) for r in a] != [(r.die, r.bank) for r in b]

    def test_arrival_spacing(self):
        wl = generate_workload(WorkloadConfig(num_requests=10, arrival_interval=5))
        assert [r.arrival_cycle for r in wl] == [5 * i for i in range(10)]

    def test_targets_in_range(self):
        wl = generate_workload(WorkloadConfig(num_requests=500))
        for r in wl:
            assert 0 <= r.die < 4
            assert 0 <= r.bank < 8
            assert 0 <= r.row < 4096

    def test_short_range_hit_rate_near_nominal(self):
        """Immediate re-touches hit close to the configured 80%."""
        config = WorkloadConfig(
            num_requests=20_000, banks_per_die=1, num_dies=1, same_die_rate=1.0
        )
        wl = generate_workload(config)
        assert measured_row_hit_rate(wl) == pytest.approx(0.80, abs=0.02)

    def test_all_dies_covered(self):
        wl = generate_workload(WorkloadConfig(num_requests=1000))
        assert {r.die for r in wl} == {0, 1, 2, 3}

    def test_latency_none_until_complete(self):
        req = ReadRequest(0, 0, 0, 0, arrival_cycle=0)
        assert req.latency is None
        req.complete_cycle = 42
        assert req.latency == 42


class TestQueue:
    def test_fifo_order(self):
        q = RequestQueue(depth=4)
        reqs = [ReadRequest(i, 0, 0, 0, i) for i in range(3)]
        for r in reqs:
            q.push(r)
        assert q.in_arrival_order() == reqs
        assert len(q) == 3
        assert not q.full

    def test_overflow(self):
        q = RequestQueue(depth=2)
        q.push(ReadRequest(0, 0, 0, 0, 0))
        q.push(ReadRequest(1, 0, 0, 0, 0))
        assert q.full
        with pytest.raises(SimulationError):
            q.push(ReadRequest(2, 0, 0, 0, 0))

    def test_remove(self):
        q = RequestQueue()
        r = ReadRequest(0, 0, 0, 0, 0)
        q.push(r)
        q.remove(r)
        assert q.empty
        with pytest.raises(SimulationError):
            q.remove(r)

    def test_targets_bank_row(self):
        q = RequestQueue()
        q.push(ReadRequest(0, die=1, bank=2, row=3, arrival_cycle=0))
        assert q.targets_bank_row(1, 2, 3)
        assert not q.targets_bank_row(1, 2, 4)
        assert not q.targets_bank_row(0, 2, 3)

    def test_occupancy_stats(self):
        q = RequestQueue()
        q.push(ReadRequest(0, 0, 0, 0, 0))
        q.sample_occupancy(weight=10)
        q.push(ReadRequest(1, 0, 0, 0, 0))
        q.sample_occupancy(weight=10)
        assert q.mean_occupancy == pytest.approx(1.5)
        assert q.peak_occupancy == 2

    def test_bad_depth(self):
        with pytest.raises(SimulationError):
            RequestQueue(depth=0)

    @settings(max_examples=20)
    @given(st.integers(min_value=50, max_value=400))
    def test_generator_request_count(self, n):
        wl = generate_workload(WorkloadConfig(num_requests=n))
        assert len(wl) == n
        assert [r.req_id for r in wl] == list(range(n))


class TestExplicitRNG:
    """Randomness threading: the default path is byte-identical to the
    historical seeded stream; an explicit numpy Generator is supported
    and reproducible from its own seed."""

    def _key(self, wl):
        return [
            (r.die, r.bank, r.row, r.arrival_cycle, r.is_write) for r in wl
        ]

    def test_default_path_unchanged(self):
        """No rng argument -> the config-seeded stream (regression pin
        for Table 5/6: the draw sequence must never move)."""
        cfg = WorkloadConfig(num_requests=500, seed=42)
        assert self._key(generate_workload(cfg)) == self._key(
            generate_workload(cfg)
        )

    @given(seed=st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=20, deadline=None)
    def test_numpy_generator_reproducible(self, seed):
        np = pytest.importorskip("numpy")
        cfg = WorkloadConfig(num_requests=120, write_fraction=0.3)
        a = generate_workload(cfg, rng=np.random.default_rng(seed))
        b = generate_workload(cfg, rng=np.random.default_rng(seed))
        assert self._key(a) == self._key(b)

    def test_numpy_generator_advances(self):
        """One Generator threaded through two calls yields two different
        workloads (the caller owns the stream position)."""
        np = pytest.importorskip("numpy")
        cfg = WorkloadConfig(num_requests=120)
        gen = np.random.default_rng(7)
        a = generate_workload(cfg, rng=gen)
        b = generate_workload(cfg, rng=gen)
        assert self._key(a) != self._key(b)

    def test_numpy_path_respects_config_shape(self):
        np = pytest.importorskip("numpy")
        cfg = WorkloadConfig(num_requests=300, num_dies=2, banks_per_die=4)
        wl = generate_workload(cfg, rng=np.random.default_rng(0))
        assert len(wl) == 300
        assert all(0 <= r.die < 2 and 0 <= r.bank < 4 for r in wl)
