"""Floorplans: block validation, die generators, edge-bank ranking."""

import pytest

from repro.errors import FloorplanError
from repro.floorplan import (
    Block,
    BlockType,
    DieFloorplan,
    ddr3_die_floorplan,
    hmc_dram_die_floorplan,
    hmc_logic_floorplan,
    t2_logic_floorplan,
    wideio_die_floorplan,
)
from repro.floorplan.blocks import grid_rects
from repro.geometry import Rect


class TestBlock:
    def test_bank_requires_id(self):
        with pytest.raises(FloorplanError):
            Block(Rect(0, 0, 1, 1), BlockType.BANK, "b")

    def test_non_bank_rejects_id(self):
        with pytest.raises(FloorplanError):
            Block(Rect(0, 0, 1, 1), BlockType.IO, "io", bank_id=0)


class TestDieFloorplanValidation:
    def test_block_outside_outline(self):
        with pytest.raises(FloorplanError):
            DieFloorplan(
                "bad",
                Rect(0, 0, 1, 1),
                [Block(Rect(0, 0, 2, 1), BlockType.IO, "io")],
            )

    def test_bank_ids_must_be_dense(self):
        with pytest.raises(FloorplanError):
            DieFloorplan(
                "bad",
                Rect(0, 0, 4, 4),
                [Block(Rect(0, 0, 1, 1), BlockType.BANK, "b", bank_id=1)],
            )

    def test_overlapping_banks_rejected(self):
        with pytest.raises(FloorplanError):
            DieFloorplan(
                "bad",
                Rect(0, 0, 4, 4),
                [
                    Block(Rect(0, 0, 2, 2), BlockType.BANK, "b0", bank_id=0),
                    Block(Rect(1, 1, 3, 3), BlockType.BANK, "b1", bank_id=1),
                ],
            )


class TestDDR3Die:
    def test_table1_geometry(self):
        fp = ddr3_die_floorplan()
        assert fp.outline.width == pytest.approx(6.8)
        assert fp.outline.height == pytest.approx(6.7)
        assert fp.num_banks == 8
        assert fp.num_channels == 1

    def test_bank_layout_two_rows_of_four(self):
        fp = ddr3_die_floorplan()
        upper = [fp.bank_rect(i).center.y for i in range(4)]
        lower = [fp.bank_rect(i).center.y for i in range(4, 8)]
        assert min(upper) > max(lower)
        # Columns align between rows (position classes a..d).
        for col in range(4):
            assert fp.bank_rect(col).center.x == pytest.approx(
                fp.bank_rect(col + 4).center.x
            )

    def test_edge_banks_prefer_left_column(self):
        fp = ddr3_die_floorplan()
        assert fp.edge_banks(2) == [0, 4]

    def test_edge_banks_too_many(self):
        with pytest.raises(FloorplanError):
            ddr3_die_floorplan().edge_banks(9)

    def test_spine_present(self):
        fp = ddr3_die_floorplan()
        spines = fp.blocks_of_type(BlockType.IO)
        assert len(spines) == 1
        spine = spines[0].rect
        assert spine.center.y == pytest.approx(fp.outline.center.y)


class TestWideIODie:
    def test_table1_geometry(self):
        fp = wideio_die_floorplan()
        assert fp.outline.width == pytest.approx(7.2)
        assert fp.num_banks == 16
        assert fp.num_channels == 4

    def test_channels_are_quadrants(self):
        fp = wideio_die_floorplan()
        for chan in range(4):
            banks = fp.banks_in_channel(chan)
            assert len(banks) == 4
        # Channel 0 is the lower-left quadrant.
        for b in fp.banks_in_channel(0):
            assert b.rect.center.x < fp.outline.center.x
            assert b.rect.center.y < fp.outline.center.y

    def test_center_pads(self):
        fp = wideio_die_floorplan()
        io = fp.blocks_of_type(BlockType.IO)
        assert io, "JEDEC Wide I/O requires center pads"
        # The pad cross covers the die center.
        assert any(b.rect.contains(fp.outline.center) for b in io)


class TestHMCDie:
    def test_table1_geometry(self):
        fp = hmc_dram_die_floorplan()
        assert fp.outline.width == pytest.approx(7.2)
        assert fp.outline.height == pytest.approx(6.4)
        assert fp.num_banks == 32
        assert fp.num_channels == 16

    def test_two_banks_per_vault(self):
        fp = hmc_dram_die_floorplan()
        for vault in range(16):
            assert len(fp.banks_in_channel(vault)) == 2

    def test_distributed_tsv_regions(self):
        fp = hmc_dram_die_floorplan()
        assert len(fp.blocks_of_type(BlockType.TSV_REGION)) == 16


class TestLogicDies:
    def test_t2(self):
        fp = t2_logic_floorplan()
        assert fp.outline.width == pytest.approx(9.0)
        assert fp.outline.height == pytest.approx(8.0)
        assert len(fp.blocks_of_type(BlockType.CORE)) == 8
        assert len(fp.blocks_of_type(BlockType.CACHE)) == 1
        assert fp.num_banks == 0

    def test_hmc_logic(self):
        fp = hmc_logic_floorplan()
        assert fp.outline.width == pytest.approx(8.8)
        assert len(fp.blocks_of_type(BlockType.VAULT_CTRL)) == 16
        assert len(fp.blocks_of_type(BlockType.SERDES)) == 2


class TestGridRects:
    def test_dimensions(self):
        cells = grid_rects(Rect(0, 0, 4, 2), cols=4, rows=2, gap_x=0.0, gap_y=0.0)
        assert len(cells) == 2 and len(cells[0]) == 4
        assert cells[0][0].area == pytest.approx(1.0)

    def test_gaps_respected(self):
        cells = grid_rects(Rect(0, 0, 4, 2), cols=2, rows=1, gap_x=1.0)
        assert cells[0][0].x1 == pytest.approx(1.5)
        assert cells[0][1].x0 == pytest.approx(2.5)

    def test_degenerate_rejected(self):
        with pytest.raises(FloorplanError):
            grid_rects(Rect(0, 0, 1, 1), cols=10, rows=1, gap_x=0.2)


def test_summary_counts():
    fp = ddr3_die_floorplan()
    summary = fp.summary()
    assert summary["bank"] == 8
    assert summary["io"] == 1
