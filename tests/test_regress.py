"""Regression surrogate: exactness, combo coverage, design-space sampling."""

import numpy as np
import pytest

from repro.designs import off_chip_ddr3, wide_io
from repro.errors import RegressionError
from repro.pdn import Bonding, PDNConfig, TSVLocation
from repro.regress import DesignSample, IRDropSurrogate, sample_design_space
from repro.regress.model import (
    _basis,
    config_from_parts,
    continuous_sample_grid,
    discrete_key,
    valid_discrete_combos,
)


class TestCombos:
    def test_ddr3_off_combo_count(self):
        bench = off_chip_ddr3()
        combos = valid_discrete_combos(bench)
        # TL {C,E} x TD {N} x BD {F2B,F2F} x RL {N,Y} x WB {N,Y} = 16.
        assert len(combos) == 16
        assert all(not td for (_, td, _, _, _) in combos)

    def test_wideio_combos_respect_rdl_rule(self):
        bench = wide_io()
        for tl, td, bd, rl, wb in valid_discrete_combos(bench):
            if tl is TSVLocation.EDGE:
                assert rl, "edge TSVs with center bumps require the RDL"

    def test_config_from_parts_roundtrip(self):
        bench = off_chip_ddr3()
        for key in valid_discrete_combos(bench)[:4]:
            config = config_from_parts(bench, key, 0.15, 0.25, 40)
            assert discrete_key(config) == key


class TestSampling:
    def test_grid_shape(self):
        grid = continuous_sample_grid(off_chip_ddr3(), 2, 2, 2)
        assert len(grid) == 8
        for m2, m3, tc in grid:
            assert 0.10 <= m2 <= 0.20
            assert 0.10 <= m3 <= 0.40
            assert 15 <= tc <= 480

    def test_pinned_tc(self):
        grid = continuous_sample_grid(wide_io(), 2, 2, 3)
        assert {tc for (_, _, tc) in grid} == {160}

    def test_sample_design_space_restricted_combo(self):
        bench = off_chip_ddr3()
        combos = valid_discrete_combos(bench)[:1]
        samples = sample_design_space(
            bench, m2_points=2, m3_points=2, tc_points=2, combos=combos
        )
        assert len(samples) == 8
        assert all(s.ir_mv > 0 for s in samples)


class TestFit:
    def _synthetic_samples(self, coeffs, key_config):
        samples = []
        for m2 in (0.10, 0.15, 0.20):
            for m3 in (0.10, 0.25, 0.40):
                for tc in (15, 60, 240):
                    config = key_config.with_options(
                        m2_usage=m2, m3_usage=m3, tsv_count=tc
                    )
                    ir = float(_basis(m2, m3, tc) @ coeffs)
                    samples.append(DesignSample(config=config, ir_mv=ir))
        return samples

    def test_exact_recovery_on_basis_data(self):
        """Data generated from the basis is fit exactly (R^2 = 1)."""
        coeffs = np.array([5.0, 0.4, 0.9, 30.0, 10.0, 2.0])
        samples = self._synthetic_samples(coeffs, PDNConfig())
        surrogate = IRDropSurrogate()
        report = surrogate.fit(samples)
        assert report.rmse_mv == pytest.approx(0.0, abs=1e-9)
        assert report.r_squared == pytest.approx(1.0)
        config = PDNConfig(m2_usage=0.13, m3_usage=0.33, tsv_count=100)
        expected = float(_basis(0.13, 0.33, 100) @ coeffs)
        assert surrogate.predict(config) == pytest.approx(expected)

    def test_separate_fits_per_combo(self):
        a = self._synthetic_samples(
            np.array([5.0, 0.4, 0.9, 30.0, 10.0, 2.0]), PDNConfig()
        )
        b = self._synthetic_samples(
            np.array([1.0, 0.1, 0.2, 5.0, 1.0, 0.5]),
            PDNConfig(bonding=Bonding.F2F),
        )
        surrogate = IRDropSurrogate()
        report = surrogate.fit(a + b)
        assert report.num_combos == 2
        assert report.rmse_mv == pytest.approx(0.0, abs=1e-9)
        f2b = surrogate.predict(PDNConfig(m2_usage=0.12, m3_usage=0.2, tsv_count=50))
        f2f = surrogate.predict(
            PDNConfig(m2_usage=0.12, m3_usage=0.2, tsv_count=50, bonding=Bonding.F2F)
        )
        assert f2b != pytest.approx(f2f)

    def test_unknown_combo_rejected(self):
        surrogate = IRDropSurrogate()
        surrogate.fit(self._synthetic_samples(np.ones(6), PDNConfig()))
        with pytest.raises(RegressionError):
            surrogate.predict(PDNConfig(wire_bond=True))

    def test_empty_fit_rejected(self):
        with pytest.raises(RegressionError):
            IRDropSurrogate().fit([])

    def test_fit_on_real_solves_is_accurate(self):
        """On actual R-Mesh data one combo fits to high R^2."""
        bench = off_chip_ddr3()
        combos = valid_discrete_combos(bench)[:1]
        samples = sample_design_space(bench, combos=combos)
        surrogate = IRDropSurrogate()
        report = surrogate.fit(samples)
        assert report.r_squared > 0.97
        # Interpolation sanity: mid-space prediction between neighbors.
        config = config_from_parts(bench, combos[0], 0.15, 0.25, 60)
        assert 5.0 < surrogate.predict(config) < 80.0
