"""Tests for the performance layer: batched solves, caches, fan-out, timers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.controller import IRDropLUT
from repro.controller.lut import StaticIRDropLUT
from repro.errors import SolverError
from repro.perf.cache import (
    LRUCache,
    cache_stats,
    cached_build_stack,
    clear_caches,
    stack_cache,
)
from repro.perf.parallel import (
    WORKERS_ENV,
    iter_chunks,
    map_design_points,
    resolve_workers,
)
from repro.perf.timers import add_time, report, reset_timers, snapshot, timed
from repro.power.state import MemoryState
from repro.regress.model import sample_design_space, valid_discrete_combos


# -- batched multi-RHS solves -------------------------------------------------


def test_solve_many_bitwise_matches_solve_currents(ddr3_stack, ddr3_off_bench):
    solver = ddr3_stack.solver
    states = [
        MemoryState.from_counts(counts, ddr3_off_bench.stack.dram_floorplan)
        for counts in [(0, 0, 0, 2), (2, 0, 0, 0), (1, 1, 1, 1)]
    ]
    columns = [
        solver.currents_from_maps(ddr3_stack.power_maps(s)) for s in states
    ]
    batched = solver.solve_many(np.stack(columns, axis=1))
    assert len(batched) == len(states)
    for column, result in zip(columns, batched):
        single = solver.solve_currents(column)
        assert np.array_equal(single.drops, result.drops)


def test_solve_many_validates_shape_and_sign(ddr3_stack):
    solver = ddr3_stack.solver
    with pytest.raises(SolverError):
        solver.solve_many(np.zeros(5))
    with pytest.raises(SolverError):
        solver.solve_many(np.zeros((5, 2)))
    bad = np.zeros((ddr3_stack.model.num_nodes, 1))
    bad[0, 0] = -1.0
    with pytest.raises(SolverError):
        solver.solve_many(bad)


def test_solve_many_empty_block(ddr3_stack):
    assert ddr3_stack.solver.solve_many(
        np.zeros((ddr3_stack.model.num_nodes, 0))
    ) == []


def test_solve_states_matches_solve_state(ddr3_stack, ddr3_off_bench):
    fp = ddr3_off_bench.stack.dram_floorplan
    states = [
        MemoryState.from_counts(c, fp)
        for c in [(0, 0, 0, 2), (2, 2, 2, 2), (0, 1, 0, 0)]
    ]
    batched = ddr3_stack.solve_states(states)
    for state, got in zip(states, batched):
        ref = ddr3_stack.solve_state(state)
        assert got.dram_max_mv == ref.dram_max_mv
        assert got.per_die_mv == ref.per_die_mv
        assert got.total_power_mw == pytest.approx(ref.total_power_mw)
    assert ddr3_stack.solve_states([]) == []


# -- keyed solver/stack cache -------------------------------------------------


def test_cached_build_stack_matches_fresh(ddr3_stack, ddr3_off_bench):
    clear_caches()
    bench = ddr3_off_bench
    cached = cached_build_stack(bench.stack, bench.baseline)
    state = bench.reference_state()
    assert cached.dram_max_mv(state) == ddr3_stack.dram_max_mv(state)
    # Second lookup returns the same object (factorization reused).
    again = cached_build_stack(bench.stack, bench.baseline)
    assert again is cached
    assert stack_cache.stats()["hits"] >= 1


def test_cache_distinguishes_configs(ddr3_off_bench):
    clear_caches()
    bench = ddr3_off_bench
    base = cached_build_stack(bench.stack, bench.baseline)
    wider = cached_build_stack(
        bench.stack, bench.baseline.with_options(m3_usage=0.40)
    )
    assert base is not wider
    state = bench.reference_state()
    assert wider.dram_max_mv(state) < base.dram_max_mv(state)


def test_lru_eviction_and_stats():
    lru = LRUCache(maxsize=2)
    lru.put("a", 1)
    lru.put("b", 2)
    assert lru.get("a") == 1  # refreshes "a"
    lru.put("c", 3)  # evicts "b", the least recently used
    assert lru.get("b") is None
    assert lru.get("a") == 1
    assert lru.get("c") == 3
    stats = lru.stats()
    assert stats["evictions"] == 1
    assert stats["size"] == 2
    assert cache_stats().keys() == {"stack", "plan", "assembled", "power_map"}


def test_lru_rejects_bad_maxsize():
    with pytest.raises(ValueError):
        LRUCache(maxsize=0)


# -- process fan-out ----------------------------------------------------------


def test_sample_design_space_workers_matches_serial(ddr3_off_bench):
    combos = valid_discrete_combos(ddr3_off_bench)[:2]
    kwargs = dict(m2_points=2, m3_points=1, tc_points=1, combos=combos)
    serial = sample_design_space(ddr3_off_bench, workers=1, **kwargs)
    parallel = sample_design_space(ddr3_off_bench, workers=2, **kwargs)
    assert [s.config for s in serial] == [s.config for s in parallel]
    assert [s.ir_mv for s in serial] == [s.ir_mv for s in parallel]


def test_map_design_points_preserves_order():
    items = list(range(7))
    assert map_design_points(_square, items, workers=1) == [i * i for i in items]
    assert map_design_points(_square, items, workers=2) == [i * i for i in items]


def _square(x: int) -> int:
    return x * x


def test_resolve_workers_env(monkeypatch):
    monkeypatch.delenv(WORKERS_ENV, raising=False)
    assert resolve_workers(None) == 1
    assert resolve_workers(1) == 1
    monkeypatch.setenv(WORKERS_ENV, "3")
    assert resolve_workers(None) >= 1  # clamped to <= 2x cpu count
    monkeypatch.setenv(WORKERS_ENV, "garbage")
    assert resolve_workers(None) == 1
    with pytest.raises(ValueError):
        resolve_workers(-2)


def test_iter_chunks():
    assert list(iter_chunks([1, 2, 3, 4, 5], 2)) == [[1, 2], [3, 4], [5]]
    with pytest.raises(ValueError):
        list(iter_chunks([1], 0))


# -- LUT batching and serialization ------------------------------------------


def test_lut_batched_equals_per_state(ddr3_stack, ddr3_lut):
    # Rebuild lazily and resolve every entry one back-substitution at a
    # time; the batched precompute (ddr3_lut fixture) must agree exactly.
    lazy = IRDropLUT(ddr3_stack, precompute=False)
    for counts in ddr3_lut.as_dict():
        assert lazy.lookup(counts) == ddr3_lut.lookup(counts)
    assert lazy.as_dict() == ddr3_lut.as_dict()


def test_lut_precompute_idempotent(ddr3_lut):
    before = ddr3_lut.as_dict()
    ddr3_lut.precompute_all()  # no pending states: must be a no-op
    assert ddr3_lut.as_dict() == before


def test_to_json_completes_partial_table(ddr3_stack):
    partial = IRDropLUT(ddr3_stack, precompute=False)
    partial.lookup((0, 0, 0, 1))
    assert partial.size < 3**4
    restored = IRDropLUT.from_json(partial.to_json())
    assert isinstance(restored, StaticIRDropLUT)
    # The shipped table is complete: any in-range state resolves.
    assert restored.size == 3**4
    assert restored.lookup((2, 2, 2, 2)) == pytest.approx(
        partial.lookup((2, 2, 2, 2)), abs=1e-4
    )


# -- timers -------------------------------------------------------------------


def test_timers_accumulate_and_report():
    reset_timers()
    add_time("unit.test", 0.5)
    add_time("unit.test", 0.25, count=2)
    with timed("unit.other"):
        pass
    snap = snapshot()
    assert snap["unit.test"] == (0.75, 3)
    assert snap["unit.other"][1] == 1
    text = report()
    assert "unit.test" in text and "unit.other" in text
    reset_timers()
    assert report() == "perf: no timers recorded"


def test_solver_paths_record_timers(ddr3_off_bench):
    reset_timers()
    clear_caches()
    bench = ddr3_off_bench
    stack = cached_build_stack(bench.stack, bench.baseline)
    stack.dram_max_mv(bench.reference_state())
    names = set(snapshot())
    assert "stackup.build" in names
    assert "solver.factorize" in names
    assert "solver.solve" in names
