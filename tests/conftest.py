"""Shared fixtures.

Expensive objects (built stacks, factorized solvers, the IR-drop LUT) are
session-scoped: they are immutable after construction and shared by many
tests.
"""

from __future__ import annotations

import pytest

from repro.controller import IRDropLUT
from repro.designs import hmc, off_chip_ddr3, on_chip_ddr3, wide_io
from repro.pdn import Bonding, build_stack


@pytest.fixture(scope="session")
def ddr3_off_bench():
    return off_chip_ddr3()


@pytest.fixture(scope="session")
def ddr3_on_bench():
    return on_chip_ddr3()


@pytest.fixture(scope="session")
def wideio_bench():
    return wide_io()


@pytest.fixture(scope="session")
def hmc_bench():
    return hmc()


@pytest.fixture(scope="session")
def ddr3_stack(ddr3_off_bench):
    """Off-chip stacked DDR3 at its baseline configuration."""
    return build_stack(ddr3_off_bench.stack, ddr3_off_bench.baseline)


@pytest.fixture(scope="session")
def ddr3_f2f_stack(ddr3_off_bench):
    return build_stack(
        ddr3_off_bench.stack,
        ddr3_off_bench.baseline.with_options(bonding=Bonding.F2F),
    )


@pytest.fixture(scope="session")
def onchip_stack(ddr3_on_bench):
    """On-chip stack with coupled PDNs (no dedicated TSVs)."""
    return build_stack(
        ddr3_on_bench.stack,
        ddr3_on_bench.baseline.with_options(dedicated_tsv=False),
    )


@pytest.fixture(scope="session")
def paper_stacks(ddr3_off_bench, ddr3_on_bench, wideio_bench, hmc_bench):
    """All four paper benchmarks at baseline: {key: (bench, stack)}."""
    benches = (ddr3_off_bench, ddr3_on_bench, wideio_bench, hmc_bench)
    return {b.key: (b, build_stack(b.stack, b.baseline)) for b in benches}


@pytest.fixture(scope="session")
def ddr3_lut(ddr3_stack):
    """Fully precomputed IR-drop LUT on the DDR3 baseline."""
    return IRDropLUT(ddr3_stack)


@pytest.fixture(scope="session")
def ddr3_lut_json(ddr3_lut):
    """The DDR3 LUT serialized as firmware-style JSON."""
    return ddr3_lut.to_json()


@pytest.fixture(scope="session")
def ddr3_floorplan(ddr3_off_bench):
    return ddr3_off_bench.stack.dram_floorplan
