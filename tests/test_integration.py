"""Cross-module integration scenarios a downstream user would hit."""

import pytest

from repro import MemoryState, benchmark, build_stack
from repro.controller import (
    IRAwareDistR,
    IRDropLUT,
    MemoryControllerSim,
    SimConfig,
    WorkloadConfig,
    generate_workload,
)
from repro.cost import config_cost
from repro.dram.timing import TimingParams
from repro.opt import ir_cost
from repro.pdn import Bonding


class TestAllBenchmarksSolve:
    """Every benchmark builds and solves its baseline and reference state."""

    @pytest.mark.parametrize("key", ["ddr3_off", "ddr3_on", "wideio", "hmc"])
    def test_baseline_reference_state(self, key):
        bench = benchmark(key)
        stack = build_stack(bench.stack, bench.baseline)
        result = stack.solve_state(bench.reference_state())
        assert 1.0 < result.dram_max_mv < 500.0
        assert result.total_power_mw > 0
        # Every DRAM die reports a drop.
        assert set(result.per_die_mv) == set(stack.dram_die_names)

    @pytest.mark.parametrize("key", ["ddr3_on", "wideio", "hmc"])
    def test_hosted_designs_report_logic_noise(self, key):
        bench = benchmark(key)
        stack = build_stack(bench.stack, bench.baseline)
        result = stack.solve_state(bench.reference_state())
        assert result.logic_max_mv is not None
        assert result.logic_max_mv > 0


class TestFullPipeline:
    def test_design_to_policy_flow(self, ddr3_off_bench):
        """The paper's full loop: design -> LUT -> scheduled workload."""
        stack = build_stack(
            ddr3_off_bench.stack,
            ddr3_off_bench.baseline.with_options(bonding=Bonding.F2F),
        )
        lut = IRDropLUT(stack)
        timing = TimingParams.ddr3_1600()
        policy = IRAwareDistR(lut, 20.0)
        sim = MemoryControllerSim(
            SimConfig(timing=timing),
            policy,
            generate_workload(WorkloadConfig(num_requests=600)),
            report_lut=lut,
        )
        res = sim.run()
        assert res.finished
        assert res.max_ir_mv <= 20.0
        # The F2F design admits states the F2B design would forbid:
        # its LUT is globally lower.
        assert lut.lookup((0, 0, 0, 2)) < 22.0

    def test_better_pdn_lower_lut_everywhere(self, ddr3_off_bench, ddr3_lut):
        strong = build_stack(
            ddr3_off_bench.stack,
            ddr3_off_bench.baseline.with_options(m2_usage=0.20, m3_usage=0.40),
        )
        strong_lut = IRDropLUT(strong)
        for counts, value in ddr3_lut.as_dict().items():
            assert strong_lut.lookup(counts) <= value + 1e-9

    def test_ir_cost_tradeoff_between_designs(self, ddr3_off_bench):
        """A cheap-weak and an expensive-strong design swap ranking as
        alpha moves from cost-driven to IR-driven."""
        bench = ddr3_off_bench
        state = bench.reference_state()
        weak_cfg = bench.baseline.with_options(m3_usage=0.10, tsv_count=15)
        strong_cfg = bench.baseline.with_options(
            m2_usage=0.20, m3_usage=0.40, tsv_count=240, wire_bond=True
        )
        results = {}
        for name, cfg in (("weak", weak_cfg), ("strong", strong_cfg)):
            ir = build_stack(bench.stack, cfg).dram_max_mv(state)
            cost = config_cost(cfg, bench.package_cost).total
            results[name] = (ir, cost)
        weak_ir, weak_cost = results["weak"]
        strong_ir, strong_cost = results["strong"]
        assert ir_cost(weak_ir, weak_cost, 0.0) < ir_cost(strong_ir, strong_cost, 0.0)
        assert ir_cost(weak_ir, weak_cost, 1.0) > ir_cost(strong_ir, strong_cost, 1.0)

    def test_state_energy_accounting(self, ddr3_stack, ddr3_floorplan):
        """Solved total power equals the analytic model's stack power."""
        from repro.power.model import DDR3_POWER, stack_power_mw

        state = MemoryState.from_string("0-0-2-2", ddr3_floorplan)
        res = ddr3_stack.solve_state(state)
        assert res.total_power_mw == pytest.approx(
            stack_power_mw(DDR3_POWER, ddr3_floorplan, state), rel=1e-9
        )
