"""CLI coverage for the extension experiments and report script."""


from repro.cli import main
from repro.experiments import registry


class TestExtensionRegistry:
    def test_extensions_registered(self):
        assert {"ext_crowding", "ext_transient", "ext_hmc"} <= set(registry)

    def test_run_ext_crowding(self, capsys):
        assert main(["run", "ext_crowding"]) == 0
        out = capsys.readouterr().out
        assert "crowding" in out
        assert "crowding_factor" in out


class TestReportScript:
    def test_generate_report_runs(self):
        import importlib.util
        from pathlib import Path

        script = Path(__file__).parent.parent / "scripts" / "generate_report.py"
        spec = importlib.util.spec_from_file_location("generate_report", script)
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        # Running a single cheap experiment through the script API.
        assert module.main(["table8"]) == 0
