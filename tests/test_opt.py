"""Co-optimizer: Equation (1), alpha behaviour, feasibility rules."""

import pytest

from repro.designs import off_chip_ddr3
from repro.errors import OptimizationError
from repro.opt import CoOptimizer, ir_cost
from repro.pdn import TSVLocation


class TestIRCost:
    def test_alpha_limits(self):
        assert ir_cost(50.0, 0.5, alpha=0.0) == pytest.approx(0.5)
        assert ir_cost(50.0, 0.5, alpha=1.0) == pytest.approx(50.0)

    def test_geometric_blend(self):
        assert ir_cost(100.0, 0.25, 0.5) == pytest.approx((100.0 * 0.25) ** 0.5)

    def test_validation(self):
        with pytest.raises(OptimizationError):
            ir_cost(10.0, 1.0, alpha=1.5)
        with pytest.raises(OptimizationError):
            ir_cost(-1.0, 1.0, alpha=0.5)


@pytest.fixture(scope="module")
def optimizer():
    """A coarse co-optimizer for the off-chip benchmark (module-shared)."""
    return CoOptimizer(off_chip_ddr3(), tc_points=2)


class TestOptimize:
    def test_alpha0_minimizes_cost(self, optimizer):
        result = optimizer.optimize(0.0, verify=False)
        config = result.config
        # The cheapest corner of the space: minimum metal, minimum TSVs,
        # center location, F2B, no extras (the paper's Table 9 alpha=0 row).
        assert config.m2_usage == pytest.approx(0.10)
        assert config.m3_usage == pytest.approx(0.10)
        assert config.tsv_count == 15
        assert config.tsv_location is TSVLocation.CENTER
        assert not config.wire_bond and not config.rdl.enabled

    def test_alpha1_minimizes_ir(self, optimizer):
        low_cost = optimizer.optimize(0.0, verify=False)
        low_ir = optimizer.optimize(1.0, verify=False)
        assert low_ir.predicted_ir_mv < low_cost.predicted_ir_mv
        assert low_ir.cost > low_cost.cost
        # The IR-optimal corner maxes the metal.
        assert low_ir.config.m2_usage == pytest.approx(0.20)
        assert low_ir.config.m3_usage == pytest.approx(0.40)

    def test_alpha_monotone_tradeoff(self, optimizer):
        results = optimizer.alpha_sweep((0.0, 0.3, 1.0), verify=False)
        irs = [r.predicted_ir_mv for r in results]
        costs = [r.cost for r in results]
        assert irs[0] >= irs[1] >= irs[2]
        assert costs[0] <= costs[1] <= costs[2]

    def test_verification_close_to_prediction(self, optimizer):
        result = optimizer.optimize(1.0, verify=True)
        assert result.verified_ir_mv == pytest.approx(
            result.predicted_ir_mv, rel=0.35
        )

    def test_baseline_result(self, optimizer):
        base = optimizer.baseline_result()
        assert base.cost == pytest.approx(0.35, abs=0.01)  # Table 9
        assert base.verified_ir_mv > 0

    def test_optimum_beats_baseline_at_its_alpha(self, optimizer):
        """The alpha=0.3 solution dominates the baseline on the objective."""
        base = optimizer.baseline_result()
        best = optimizer.optimize(0.3, verify=True)
        base_obj = ir_cost(base.verified_ir_mv, base.cost, 0.3)
        best_obj = ir_cost(best.verified_ir_mv, best.cost, 0.3)
        assert best_obj < base_obj

    def test_table9_row_format(self, optimizer):
        row = optimizer.optimize(0.0, verify=False).table9_row()
        assert "M2" in row and "cost" in row

    def test_brute_force_projection_large(self, optimizer):
        assert optimizer.brute_force_size() > 100_000
