"""Technology layer: metals, vertical elements, calibration constants."""

import pytest

from repro.tech import (
    DEFAULT_TECH,
    C4Tech,
    F2FViaTech,
    MetalLayer,
    MetalStack,
    RDLTech,
    RouteDirection,
    TSVTech,
    WireBondTech,
    dram_metal_stack,
    logic_metal_stack,
)


class TestMetalLayer:
    def test_effective_sheet_res(self):
        layer = MetalLayer("M3", 0.27, RouteDirection.HORIZONTAL)
        assert layer.effective_sheet_res(0.20) == pytest.approx(1.35)
        assert layer.effective_sheet_res(1.0) == pytest.approx(0.27)

    def test_usage_validation(self):
        layer = MetalLayer("M3", 0.27, RouteDirection.HORIZONTAL)
        for bad in (0.0, -0.1, 1.5):
            with pytest.raises(ValueError):
                layer.effective_sheet_res(bad)

    def test_negative_sheet_res(self):
        with pytest.raises(ValueError):
            MetalLayer("bad", -1.0, RouteDirection.BOTH)

    def test_direction_weights(self):
        assert RouteDirection.HORIZONTAL.direction_weights() == (1.0, 0.15)
        assert RouteDirection.VERTICAL.direction_weights() == (0.15, 1.0)
        assert RouteDirection.BOTH.direction_weights() == (1.0, 1.0)


class TestMetalStack:
    def test_dram_stack_structure(self):
        stack = dram_metal_stack()
        assert stack.names == ["M1", "M2", "M3"]
        assert stack.top.name == "M3"
        assert stack.bottom.name == "M1"
        assert not stack.bottom.power_capable  # M1 is signal-only
        assert stack.layer_index("M2") == 1

    def test_logic_stack_structure(self):
        stack = logic_metal_stack()
        assert stack.names == ["ML1", "ML2", "MTOP"]

    def test_duplicate_names_rejected(self):
        layer = MetalLayer("M1", 0.1, RouteDirection.BOTH)
        with pytest.raises(ValueError):
            MetalStack(layers=(layer, layer))

    def test_missing_layer(self):
        with pytest.raises(KeyError):
            dram_metal_stack().layer_index("M9")


class TestVerticalElements:
    def test_tsv_series(self):
        tsv = TSVTech(resistance=0.1)
        assert tsv.conductance == pytest.approx(10.0)
        assert tsv.series(2) == pytest.approx(0.2)  # B2B = two in series
        with pytest.raises(ValueError):
            tsv.series(0)

    def test_tsv_validation(self):
        with pytest.raises(ValueError):
            TSVTech(resistance=0.0)
        with pytest.raises(ValueError):
            TSVTech(resistance=0.1, keepout=-1.0)

    def test_c4_detour(self):
        c4 = C4Tech(resistance=0.01, pitch=0.2, detour_res_per_mm=0.5)
        assert c4.detour_resistance(0.1) == pytest.approx(0.05)
        assert c4.detour_resistance(0.0) == 0.0
        with pytest.raises(ValueError):
            c4.detour_resistance(-0.1)

    def test_f2f_area_conductance(self):
        f2f = F2FViaTech(via_resistance=0.01, density=64.0)
        assert f2f.conductance_per_mm2 == pytest.approx(6400.0)

    def test_rdl_as_layer(self):
        rdl = RDLTech(sheet_res=0.18)
        layer = rdl.as_layer()
        assert layer.name == "RDL"
        assert layer.direction is RouteDirection.BOTH  # non-manhattan

    def test_wirebond(self):
        wb = WireBondTech(group_resistance=0.32, groups_per_edge=4)
        assert wb.group_conductance == pytest.approx(1.0 / 0.32)
        with pytest.raises(ValueError):
            WireBondTech(group_resistance=0.1, groups_per_edge=0)


class TestDefaults:
    def test_default_tech_sane(self):
        t = DEFAULT_TECH
        assert t.vdd == pytest.approx(1.5)
        assert t.mesh_pitch > t.reference_pitch  # reference is finer
        assert t.dedicated_tsv.resistance < t.tsv.resistance  # via-last wins
        assert t.dedicated_tsv.via_last
        # The logic via stack is far weaker than the DRAM's short stack.
        assert t.via_density_logic < t.via_density_global
