"""Fault-tolerance layer: injection, retry, executor, checkpoint, escalation.

Chaos tests run under ``REPRO_FAULT_SPEC`` (deterministic, seeded), so a
failure here replays identically -- there are no flaky-by-design tests
in this file.  Process-pool tests use small item counts and tiny
backoff delays to stay inside the tier-1 time budget.
"""

from __future__ import annotations

import json
import os
import pickle
from concurrent.futures import ProcessPoolExecutor

import numpy as np
import pytest

from repro import envcfg
from repro.errors import ConfigurationError, ReproError, SolverError
from repro.obs import metrics as obs_metrics
from repro.perf.parallel import map_design_points
from repro.resil import faults
from repro.resil.checkpoint import (
    CheckpointedResult,
    SweepCheckpoint,
    default_checkpoint,
    point_key,
    reset_default_checkpoint,
)
from repro.resil.execute import run_tasks
from repro.resil.retry import RetryPolicy, TaskFailure, protected_call
from repro.rmesh.backends import (
    CGOperator,
    DirectOperator,
    EscalatingOperator,
    make_operator,
)
from repro.rmesh.workloads import synthetic_workload


@pytest.fixture(autouse=True)
def _clean_resil_env(monkeypatch):
    """Every test starts with no fault spec / checkpoint / retry knobs."""
    for var in (
        "REPRO_FAULT_SPEC",
        "REPRO_CHECKPOINT",
        "REPRO_RETRY_MAX",
        "REPRO_RETRY_DELAY",
        "REPRO_TASK_TIMEOUT",
        "REPRO_POOL_REBUILDS",
    ):
        monkeypatch.delenv(var, raising=False)
    reset_default_checkpoint()
    yield
    reset_default_checkpoint()


def _fast_retry_env(monkeypatch, spec=None, max_attempts=6):
    if spec is not None:
        monkeypatch.setenv("REPRO_FAULT_SPEC", spec)
    monkeypatch.setenv("REPRO_RETRY_MAX", str(max_attempts))
    monkeypatch.setenv("REPRO_RETRY_DELAY", "0.001")


# -- fault spec grammar -------------------------------------------------------


def test_parse_fault_spec_full_grammar():
    rules = faults.parse_fault_spec(
        "worker_crash:p=0.2:seed=7,slow_task:p=0.1:ms=20:seed=3,cg_stall:n=1"
    )
    assert [r.kind for r in rules] == ["worker_crash", "slow_task", "cg_stall"]
    assert rules[0].p == 0.2 and rules[0].seed == 7
    assert rules[1].ms == 20
    assert rules[2].n == 1


@pytest.mark.parametrize(
    "bad",
    [
        "meteor_strike:p=0.5",  # unknown kind
        "transient:p=banana",  # malformed number
        "transient:p",  # not name=value
        "transient:p=2.0",  # probability out of range
        "transient:seed=1",  # never fires
        "transient:p=0.5:color=red",  # unknown parameter
    ],
)
def test_parse_fault_spec_rejects(bad):
    with pytest.raises(ConfigurationError):
        faults.parse_fault_spec(bad)


def test_fault_decisions_are_deterministic():
    a = faults._uniform_draw(7, "task", "3", 0)
    b = faults._uniform_draw(7, "task", "3", 0)
    assert a == b
    assert 0.0 <= a < 1.0
    # Different attempt re-rolls the draw.
    assert a != faults._uniform_draw(7, "task", "3", 1)


def test_active_plan_tracks_env(monkeypatch):
    assert faults.active_plan() is None
    monkeypatch.setenv("REPRO_FAULT_SPEC", "transient:p=0.5:seed=1")
    plan = faults.active_plan()
    assert plan is not None and plan.rules[0].kind == "transient"
    assert faults.active_plan() is plan  # cached per spec string
    monkeypatch.setenv("REPRO_FAULT_SPEC", "transient:p=0.9:seed=1")
    assert faults.active_plan() is not plan  # spec changed -> new plan


def test_n_rule_fires_exactly_n_times(monkeypatch):
    monkeypatch.setenv("REPRO_FAULT_SPEC", "transient:n=2")
    fired = 0
    for i in range(10):
        try:
            faults.check_task(str(i))
        except faults.TransientFault:
            fired += 1
    assert fired == 2


def test_worker_crash_degrades_to_raise_in_parent(monkeypatch):
    # p=1 always fires; in the parent process it must raise, not _exit.
    monkeypatch.setenv("REPRO_FAULT_SPEC", "worker_crash:p=1:seed=1")
    with pytest.raises(faults.WorkerCrashFault):
        faults.check_task("0")


def test_cg_stall_is_a_solver_error(monkeypatch):
    monkeypatch.setenv("REPRO_FAULT_SPEC", "cg_stall:p=1")
    with pytest.raises(SolverError):
        faults.check_cg("64")
    # and task-level checks ignore cg_stall rules entirely
    faults.check_task("0")


# -- TaskFailure / ReproError round-trips (satellite d) -----------------------


def test_task_failure_round_trip():
    exc = SolverError("singular", num_nodes=23000)
    failure = TaskFailure.from_exception(3, {"pitch": 0.1}, exc, attempts=4)
    assert failure.context["num_nodes"] == 23000
    data = json.loads(json.dumps(failure.to_dict()))
    back = TaskFailure.from_dict(data)
    assert back.index == 3
    assert back.error_type == "SolverError"
    assert back.attempts == 4
    assert back.context["num_nodes"] == 23000
    assert back.exception is None  # exceptions never serialize


def test_repro_error_context_survives_pickle():
    exc = SolverError("cg failed", iterations=17)
    exc.add_context(spec="ddr3", plan_hash="abc123")
    back = pickle.loads(pickle.dumps(exc))
    assert isinstance(back, SolverError)
    assert back.context == {
        "iterations": 17,
        "spec": "ddr3",
        "plan_hash": "abc123",
    }
    assert "plan_hash=abc123" in str(back)


def _raise_with_context(tag):
    raise SolverError("worker-side failure", tag=tag).add_context(layer="m3")


def test_repro_error_context_through_spawn_workers():
    # The real cross-process path: a ReproError raised in a spawned
    # worker must arrive in the parent with its context dict intact.
    ctx = __import__("multiprocessing").get_context("spawn")
    with ProcessPoolExecutor(max_workers=1, mp_context=ctx) as ex:
        fut = ex.submit(_raise_with_context, "t7")
        with pytest.raises(SolverError) as info:
            fut.result(timeout=60)
    assert info.value.context["tag"] == "t7"
    assert info.value.context["layer"] == "m3"


# -- retry policy / protected_call --------------------------------------------


def test_retry_policy_env_knobs_warn_and_default(monkeypatch):
    envcfg.reset_warnings()
    monkeypatch.setenv("REPRO_RETRY_MAX", "many")
    monkeypatch.setenv("REPRO_RETRY_DELAY", "-3")
    policy = RetryPolicy.from_env()
    assert policy.max_attempts == 4  # default, not a crash
    assert policy.base_delay_s == 0.05


def test_backoff_is_bounded_and_deterministic():
    policy = RetryPolicy(base_delay_s=0.1, max_delay_s=0.5)
    delays = [policy.backoff_s(a, key="k") for a in range(1, 8)]
    assert delays == [policy.backoff_s(a, key="k") for a in range(1, 8)]
    assert all(d <= 0.5 for d in delays)
    assert delays[0] >= 0.1


def test_protected_call_is_passthrough_without_faults():
    calls = []
    assert protected_call(lambda: calls.append(1) or 42, "s", "k") == 42
    assert calls == [1]


def test_protected_call_retries_injected_transients(monkeypatch):
    _fast_retry_env(monkeypatch, spec="transient:n=2")
    calls = []
    result = protected_call(lambda: calls.append(1) or "ok", "solve", "p1")
    assert result == "ok"
    # two injected faults consumed before fn ever ran twice
    assert len(calls) == 1


def test_protected_call_exhaustion_adds_context(monkeypatch):
    _fast_retry_env(monkeypatch, spec="transient:p=1:seed=1", max_attempts=3)
    with pytest.raises(faults.TransientFault) as info:
        protected_call(lambda: 1, "solve", "p2")
    assert info.value.context["attempts"] == 3
    assert info.value.context["task_key"] == "p2"


# -- env knob validation (satellite b) ----------------------------------------


def test_solver_env_knobs_warn_and_default(monkeypatch):
    envcfg.reset_warnings()
    matrix = synthetic_workload(6, 6, layers=1, bump_every=3).model
    m = matrix.conductance_matrix().tocsc()
    monkeypatch.setenv("REPRO_CG_RTOL", "1e-1O")  # letter O typo
    monkeypatch.setenv("REPRO_CG_MAXITER", "lots")
    monkeypatch.setenv("REPRO_CG_PRECOND", "ilu")
    op = CGOperator(m)
    assert op.rtol == 1e-10
    assert op.preconditioner.kind == "factor"
    assert op.maxiter >= 2000


def test_workers_env_invalid_degrades_serial(monkeypatch):
    from repro.perf.parallel import resolve_workers

    envcfg.reset_warnings()
    monkeypatch.setenv("REPRO_WORKERS", "all-of-them")
    assert resolve_workers(None) == 1
    monkeypatch.setenv("REPRO_WORKERS", "-4")
    assert resolve_workers(None) == 1


def test_env_invalid_values_counted(monkeypatch):
    envcfg.reset_warnings()
    before = obs_metrics.snapshot()
    monkeypatch.setenv("REPRO_RETRY_MAX", "nope")
    RetryPolicy.from_env()
    delta = obs_metrics.diff(before, obs_metrics.snapshot())
    assert delta["counters"].get("env.invalid_values", 0) >= 1


# -- run_tasks executor -------------------------------------------------------


def _square(x):
    """Module-level so pool workers can unpickle it."""
    return x * x


def test_run_tasks_serial_partial_results():
    def flaky(x):
        if x == 2:
            raise ValueError("poisoned point")
        return x * 10

    report = run_tasks(flaky, [0, 1, 2, 3], workers=1)
    assert report.results == [0, 10, None, 30]
    assert not report.ok
    assert report.completed == 3
    [failure] = report.failures
    assert failure.index == 2
    assert failure.error_type == "ValueError"
    assert report.summary()["completed"] == 3


def test_run_tasks_serial_retries_injected(monkeypatch):
    _fast_retry_env(monkeypatch, spec="transient:n=1")
    report = run_tasks(lambda x: x + 1, [1, 2, 3], workers=1)
    assert report.results == [2, 3, 4]
    assert report.ok
    assert report.retries == 1


def test_map_design_points_raises_first_failure():
    def flaky(x):
        if x == 1:
            raise ValueError("bad point")
        return x

    with pytest.raises(ValueError):
        map_design_points(flaky, [0, 1, 2], workers=1)


def test_map_design_points_parallel_survives_worker_crashes(monkeypatch):
    # Real os._exit crashes inside pool workers: the pool breaks, is
    # rebuilt, and every completed result is preserved -- the
    # BrokenProcessPool satellite plus the tentpole retry path.
    _fast_retry_env(monkeypatch, spec="worker_crash:p=0.3:seed=1")
    before = obs_metrics.snapshot()
    result = map_design_points(abs, list(range(-12, 0)), workers=2)
    assert result == [abs(x) for x in range(-12, 0)]
    delta = obs_metrics.diff(before, obs_metrics.snapshot())
    assert (
        delta["counters"].get("resil.pool_rebuilds", 0) > 0
        or delta["counters"].get("resil.serial_fallbacks", 0) > 0
    )


def test_run_tasks_timeout_retries_slow_task(monkeypatch):
    # First attempt of every task sleeps 1s (n=1 consumes one global
    # firing); with a 0.25s deadline it times out, and the retry -- no
    # fault left to fire -- completes.
    _fast_retry_env(monkeypatch, spec="slow_task:n=1:ms=1000")
    monkeypatch.setenv("REPRO_TASK_TIMEOUT", "0.25")
    from repro.perf.parallel import _ResilTask, _merge_worker_return

    report = run_tasks(
        str,
        [11, 22],
        workers=2,
        task_factory=_ResilTask,
        merge=_merge_worker_return,
    )
    assert report.results == ["11", "22"]
    assert report.timeouts >= 1


def test_run_tasks_preserves_order_under_chaos(monkeypatch):
    _fast_retry_env(
        monkeypatch, spec="transient:p=0.25:seed=9,worker_crash:p=0.15:seed=4"
    )
    from repro.perf.parallel import _ResilTask, _merge_worker_return

    items = list(range(16))
    report = run_tasks(
        _square,
        items,
        workers=2,
        task_factory=_ResilTask,
        merge=_merge_worker_return,
    )
    assert report.results == [x * x for x in items]
    assert report.ok


# -- solver escalation --------------------------------------------------------


def _hard_workload():
    return synthetic_workload(16, 16, layers=2, bump_every=8)


def test_escalation_ladder_jacobi_to_factor():
    wl = _hard_workload()
    matrix = wl.model.conductance_matrix().tocsc()
    # maxiter=2 cannot converge with jacobi; the ladder retries with a
    # complete factorization, which converges in ~1 iteration.
    op = make_operator("cg", matrix, precond_kind="jacobi", maxiter=2)
    assert isinstance(op, EscalatingOperator)
    x = op.solve(wl.currents)
    assert op.escalation in ("factor", "direct")
    reference = DirectOperator(matrix).solve(wl.currents)
    np.testing.assert_allclose(x, reference, rtol=1e-8)


def test_escalation_direct_fallback_is_bitwise_direct(monkeypatch):
    monkeypatch.setenv("REPRO_FAULT_SPEC", "cg_stall:p=1")
    wl = _hard_workload()
    matrix = wl.model.conductance_matrix().tocsc()
    op = make_operator("cg", matrix)
    x = op.solve(wl.currents)
    assert op.escalation == "direct"
    reference = DirectOperator(matrix.tocsc()).solve(wl.currents)
    assert np.array_equal(x, reference)  # bitwise, not just close
    # sticky: next solve goes straight to the direct rung
    x2 = op.solve(wl.currents)
    assert np.array_equal(x2, reference)


def test_escalation_records_metrics_and_provenance(monkeypatch):
    from repro.rmesh.solve import StackSolver

    monkeypatch.setenv("REPRO_FAULT_SPEC", "cg_stall:p=1")
    wl = _hard_workload()
    before = obs_metrics.snapshot()
    solver = StackSolver(wl.model, backend="cg")
    result = solver.solve_currents(wl.currents)
    delta = obs_metrics.diff(before, obs_metrics.snapshot())
    assert delta["counters"].get("resil.solver_escalations", 0) >= 1
    assert result.escalated == "direct"
    assert result.backend == "cg"  # configured backend, degraded rung


def test_escalation_disabled_keeps_historical_raise(monkeypatch):
    monkeypatch.setenv("REPRO_SOLVER_ESCALATE", "0")
    wl = _hard_workload()
    matrix = wl.model.conductance_matrix().tocsc()
    op = make_operator("cg", matrix, precond_kind="jacobi", maxiter=2)
    assert isinstance(op, CGOperator)
    with pytest.raises(SolverError):
        op.solve(wl.currents)


# -- checkpoint / resume ------------------------------------------------------


class _FakeResult:
    dram_max_mv = 55.5
    logic_max_mv = 12.5
    total_power_mw = 800.0
    per_die_mv = {"dram0": 55.5, "dram1": 44.0}
    state = None


def test_checkpoint_round_trip(tmp_path):
    path = tmp_path / "sweep.ckpt.jsonl"
    ck = SweepCheckpoint(path)
    key = point_key("abc123", "all_idle", 1.0)
    assert ck.lookup(key) is None
    ck.record(key, _FakeResult())
    # Fresh instance (fresh process): reads the journal back.
    ck2 = SweepCheckpoint(path)
    hit = ck2.lookup(key)
    assert hit is not None
    assert hit.dram_max_mv == 55.5
    assert hit.per_die_mv == {"dram0": 55.5, "dram1": 44.0}
    assert hit.from_checkpoint


def test_checkpoint_tolerates_truncated_tail(tmp_path):
    path = tmp_path / "sweep.ckpt.jsonl"
    ck = SweepCheckpoint(path)
    ck.record(point_key("h1", "s1", 1.0), _FakeResult())
    # Simulate a SIGKILL mid-append: a half-written trailing line.
    with open(path, "a", encoding="utf-8") as fh:
        fh.write('{"key": "h2:s2:1.0", "result": {"dram_ma')
    ck2 = SweepCheckpoint(path)
    assert ck2.corrupt_lines == 1
    assert ck2.lookup(point_key("h1", "s1", 1.0)) is not None
    # The next record starts on a fresh line and survives a reload.
    ck2.record(point_key("h3", "s3", 1.0), _FakeResult())
    ck3 = SweepCheckpoint(path)
    assert ck3.lookup(point_key("h3", "s3", 1.0)) is not None


def test_default_checkpoint_from_env(tmp_path, monkeypatch):
    assert default_checkpoint() is None
    path = tmp_path / "run.ckpt"
    monkeypatch.setenv("REPRO_CHECKPOINT", str(path))
    reset_default_checkpoint()
    ck = default_checkpoint()
    assert ck is not None and ck.path == path
    assert default_checkpoint() is ck  # shared instance


def test_sweep_session_resume_solves_zero_points(tmp_path, monkeypatch, ddr3_off_bench):
    from repro.pdn.sweep import SweepSolveSession
    from repro.perf.cache import clear_caches
    from repro.power.state import MemoryState

    fp = ddr3_off_bench.stack.dram_floorplan
    state = MemoryState.from_string("0-0-0-2", fp)
    configs = [
        ddr3_off_bench.baseline.with_options(tsv_count=n) for n in (16, 24)
    ]
    path = tmp_path / "resume.ckpt.jsonl"
    monkeypatch.setenv("REPRO_CHECKPOINT", str(path))
    reset_default_checkpoint()
    clear_caches()

    session = SweepSolveSession()
    first = [
        session.solve(ddr3_off_bench, cfg, state).dram_max_mv
        for cfg in configs
    ]
    # "Kill" the run: new process state, same checkpoint file.
    clear_caches()
    reset_default_checkpoint()
    before = obs_metrics.registry.get_counter("solver.rhs_solved")
    resumed = SweepSolveSession()
    second = [
        resumed.solve(ddr3_off_bench, cfg, state).dram_max_mv
        for cfg in configs
    ]
    after = obs_metrics.registry.get_counter("solver.rhs_solved")
    assert second == first  # bitwise: journaled floats round-trip JSON
    assert after == before  # zero re-solves


def test_checkpoint_misses_on_changed_plan(tmp_path, monkeypatch, ddr3_off_bench):
    from repro.pdn.sweep import SweepSolveSession
    from repro.perf.cache import clear_caches
    from repro.power.state import MemoryState

    fp = ddr3_off_bench.stack.dram_floorplan
    state = MemoryState.from_string("0-0-0-2", fp)
    path = tmp_path / "stale.ckpt.jsonl"
    monkeypatch.setenv("REPRO_CHECKPOINT", str(path))
    reset_default_checkpoint()
    clear_caches()
    session = SweepSolveSession()
    session.solve(ddr3_off_bench, ddr3_off_bench.baseline.with_options(tsv_count=16), state)
    ck = default_checkpoint()
    assert ck is not None
    hits_before = ck.hits
    # A different design point must miss (content-addressed key).
    session.solve(ddr3_off_bench, ddr3_off_bench.baseline.with_options(tsv_count=48), state)
    assert ck.hits == hits_before


# -- obs.store truncated tail (satellite c) -----------------------------------


def test_store_append_repairs_truncated_tail(tmp_path):
    from repro.obs.store import RunHistoryStore

    store = RunHistoryStore(root=tmp_path)
    store.append({"experiment_id": "fig4", "kind": "experiment"})
    # SIGKILL mid-append leaves a partial line with no newline.
    with open(store.index_path, "a", encoding="utf-8") as fh:
        fh.write('{"experiment_id": "fig5", "ki')
    store.append({"experiment_id": "fig9", "kind": "experiment"})
    runs = store.runs()
    ids = [r["experiment_id"] for r in runs]
    assert ids == ["fig4", "fig9"]  # corrupt line skipped, rest intact


def test_store_runs_counts_corrupt_lines(tmp_path):
    from repro.obs.store import RunHistoryStore

    store = RunHistoryStore(root=tmp_path)
    store.append({"experiment_id": "fig4", "kind": "experiment"})
    with open(store.index_path, "a", encoding="utf-8") as fh:
        fh.write("not json at all\n")
    before = obs_metrics.snapshot()
    assert len(store.runs()) == 1
    delta = obs_metrics.diff(before, obs_metrics.snapshot())
    assert delta["counters"].get("obs.store.corrupt_lines", 0) >= 1


# -- CLI --resume flag --------------------------------------------------------


def test_cli_resume_flag_sets_env(tmp_path, capsys):
    from repro.cli import main
    from repro.resil.checkpoint import CHECKPOINT_ENV

    # main() exports the flag via os.environ (so workers inherit it);
    # clean up directly -- monkeypatch.delenv would record the value
    # main() set as the "original" and restore it after the test.
    path = tmp_path / "cli.ckpt.jsonl"
    try:
        assert main(["--resume", str(path), "list"]) == 0
        assert os.environ.get(CHECKPOINT_ENV) == str(path)
    finally:
        os.environ.pop(CHECKPOINT_ENV, None)
