"""Benchmark definitions and their design-space rules."""

import pytest

from repro.designs import all_benchmarks, benchmark
from repro.errors import ConfigurationError
from repro.pdn import Bonding, BumpLocation, Mounting, PDNConfig, TSVLocation


class TestRegistry:
    def test_four_benchmarks(self):
        marks = all_benchmarks()
        assert set(marks) == {"ddr3_off", "ddr3_on", "wideio", "hmc"}

    def test_lookup(self):
        assert benchmark("hmc").key == "hmc"
        with pytest.raises(ConfigurationError):
            benchmark("nope")


class TestMounting:
    def test_off_chip_standalone(self):
        b = benchmark("ddr3_off")
        assert b.stack.mounting is Mounting.OFF_CHIP
        assert b.stack.logic_floorplan is None
        assert not b.dedicated_tsv_available
        assert b.package_cost == pytest.approx(0.057)

    def test_hosted_designs(self):
        for key in ("ddr3_on", "wideio", "hmc"):
            b = benchmark(key)
            assert b.stack.mounting is Mounting.ON_CHIP
            assert b.stack.logic_floorplan is not None
            assert b.dedicated_tsv_available
            assert b.package_cost == 0.0


class TestBaselines:
    def test_table9_baselines(self):
        base = benchmark("ddr3_off").baseline
        assert base.tsv_count == 33
        assert base.tsv_location is TSVLocation.EDGE
        assert base.bonding is Bonding.F2B
        assert benchmark("ddr3_on").baseline.dedicated_tsv
        assert benchmark("wideio").baseline.tsv_count == 160
        assert benchmark("wideio").baseline.rdl.enabled
        assert benchmark("hmc").baseline.tsv_count == 384

    def test_baselines_are_valid(self):
        for b in all_benchmarks().values():
            b.validate_config(b.baseline)


class TestConstraints:
    def test_wideio_pins_tsv_count(self):
        b = benchmark("wideio")
        with pytest.raises(ConfigurationError):
            b.validate_config(b.baseline.with_options(tsv_count=100))

    def test_wideio_forces_center_bumps(self):
        b = benchmark("wideio")
        assert b.stack.forced_bump_location is BumpLocation.CENTER
        assert (
            b.stack.effective_bump_location(PDNConfig()) is BumpLocation.CENTER
        )

    def test_hmc_min_tsv_count(self):
        b = benchmark("hmc")
        with pytest.raises(ConfigurationError):
            b.validate_config(b.baseline.with_options(tsv_count=100))

    def test_distributed_only_for_hmc(self):
        ddr3 = benchmark("ddr3_off")
        with pytest.raises(ConfigurationError):
            ddr3.validate_config(
                ddr3.baseline.with_options(tsv_location=TSVLocation.DISTRIBUTED)
            )
        hmc = benchmark("hmc")
        hmc.validate_config(
            hmc.baseline.with_options(tsv_location=TSVLocation.DISTRIBUTED)
        )

    def test_off_chip_rejects_dedicated(self):
        b = benchmark("ddr3_off")
        with pytest.raises(ConfigurationError):
            b.validate_config(b.baseline.with_options(dedicated_tsv=True))


class TestReferenceStates:
    def test_shapes(self):
        assert benchmark("ddr3_off").reference_state().counts == (0, 0, 0, 2)
        assert benchmark("wideio").reference_state().counts == (0, 0, 0, 8)
        assert benchmark("hmc").reference_state().counts == (8, 8, 8, 8)

    def test_states_fit_floorplans(self):
        for b in all_benchmarks().values():
            state = b.reference_state()
            assert state.total_active <= b.stack.dram_floorplan.num_banks * 4
