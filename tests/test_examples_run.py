"""The shipped examples stay runnable.

Each fast example is executed as a real subprocess (the way a user runs
it); the two slow ones (full design-space exploration, policy tuning)
are exercised through their underlying APIs elsewhere and only
syntax-checked here.
"""

import py_compile
import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).parent.parent / "examples"

FAST = ["quickstart.py", "custom_stack.py", "supply_window.py"]
SLOW = ["design_space_exploration.py", "policy_tuning.py"]


@pytest.mark.parametrize("name", FAST)
def test_fast_example_runs(name):
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True,
        text=True,
        timeout=240,
    )
    assert proc.returncode == 0, proc.stderr
    assert proc.stdout.strip(), "example produced no output"


@pytest.mark.parametrize("name", FAST + SLOW)
def test_example_compiles(name):
    py_compile.compile(str(EXAMPLES / name), doraise=True)


def test_quickstart_shows_packaging_options():
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / "quickstart.py")],
        capture_output=True,
        text=True,
        timeout=240,
    )
    out = proc.stdout
    assert "baseline state 0-0-0-2" in out
    assert "F2F" in out and "wire bonding" in out
    # The packaging options all reduce the baseline IR drop.
    for line in out.splitlines():
        if "(" in line and "%" in line and "mV" in line:
            assert "(-" in line
