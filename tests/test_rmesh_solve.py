"""StackModel assembly and solver, verified against analytic networks."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import MeshError, SolverError
from repro.geometry import Grid2D, Point, Rect
from repro.rmesh import LayerMesh, StackModel, StackSolver

def line_mesh(n: int, g: float, name: str = "line") -> LayerMesh:
    """A 1D chain of n nodes with edge conductance g (ny=1)."""
    grid = Grid2D(Rect(0, 0, float(n), 1.0), nx=n, ny=1)
    return LayerMesh(
        grid,
        gx=np.full((1, n - 1), g),
        gy=np.zeros((0, n)),
        name=name,
    )


def build_chain(n: int, g_edge: float, g_supply: float) -> StackModel:
    """Supply at node 0 of an n-node resistor chain."""
    model = StackModel()
    key = model.add_layer("die", line_mesh(n, g_edge))
    model.connect_supply_at_points(key, [Point(0.5, 0.5)], g_supply)
    return model


class TestAnalyticNetworks:
    def test_single_resistor_drop(self):
        """1 A through a 2-ohm supply link drops exactly 2 V."""
        model = build_chain(2, g_edge=1.0, g_supply=0.5)
        solver = StackSolver(model)
        currents = np.zeros(2)
        currents[0] = 1.0
        res = solver.solve_currents(currents)
        assert res.drops[0] == pytest.approx(2.0)

    def test_series_chain(self):
        """Drop accumulates along a series chain: V_k = I*(R_s + k*R)."""
        g_edge, g_supply, current = 2.0, 4.0, 0.5
        model = build_chain(4, g_edge, g_supply)
        solver = StackSolver(model)
        currents = np.zeros(4)
        currents[3] = current  # load at the far end
        res = solver.solve_currents(currents)
        for k in range(4):
            expected = current * (1.0 / g_supply + k / g_edge)
            assert res.drops[k] == pytest.approx(expected)

    def test_superposition(self):
        """The network is linear: solve(a + b) == solve(a) + solve(b)."""
        model = build_chain(5, 1.0, 2.0)
        solver = StackSolver(model)
        rng = np.random.default_rng(7)
        a = rng.random(5) * 0.1
        b = rng.random(5) * 0.1
        sum_res = solver.solve_currents(a + b).drops
        sep = solver.solve_currents(a).drops + solver.solve_currents(b).drops
        assert np.allclose(sum_res, sep)

    def test_two_parallel_supplies(self):
        """Two equal supply links halve the entry resistance."""
        model = StackModel()
        key = model.add_layer("die", line_mesh(2, 100.0))
        model.connect_supply_at_points(
            key, [Point(0.5, 0.5), Point(1.5, 0.5)], 1.0
        )
        solver = StackSolver(model)
        res = solver.solve_currents(np.array([1.0, 0.0]))
        # Strong edge ties the nodes; total supply conductance 2 S.
        assert res.max_drop() == pytest.approx(0.5, rel=0.02)

    def test_vertical_link_in_series(self):
        """Two stacked layers joined by one link behave as series Rs."""
        model = StackModel()
        bottom = model.add_layer("die", line_mesh(2, 1.0, "bot"))
        top = model.add_layer("die", line_mesh(2, 1.0, "top"), key="die/top")
        model.connect_supply_at_points(bottom, [Point(0.5, 0.5)], 1.0)
        model.connect_layers_at_points(bottom, top, [Point(0.5, 0.5)], 0.5)
        solver = StackSolver(model)
        currents = np.zeros(4)
        currents[2] = 1.0  # top layer node 0
        res = solver.solve_currents(currents)
        # Path: supply (1 ohm) + link (2 ohm) = 3 ohm.
        assert res.drops[2] == pytest.approx(3.0)


class TestStackModel:
    def test_no_supply_rejected(self):
        model = StackModel()
        model.add_layer("die", line_mesh(3, 1.0))
        with pytest.raises(MeshError):
            model.conductance_matrix()

    def test_empty_model_rejected(self):
        with pytest.raises(MeshError):
            StackModel().conductance_matrix()

    def test_duplicate_key_rejected(self):
        model = StackModel()
        model.add_layer("die", line_mesh(2, 1.0), key="k")
        with pytest.raises(MeshError):
            model.add_layer("die", line_mesh(2, 1.0), key="k")

    def test_nonpositive_link_rejected(self):
        model = StackModel()
        a = model.add_layer("d", line_mesh(2, 1.0, "a"))
        b = model.add_layer("d", line_mesh(2, 1.0, "b"), key="d/b")
        with pytest.raises(MeshError):
            model.connect_layers_at_points(a, b, [Point(0.5, 0.5)], 0.0)

    def test_mismatched_conductance_list(self):
        model = StackModel()
        a = model.add_layer("d", line_mesh(2, 1.0, "a"))
        with pytest.raises(MeshError):
            model.connect_supply_at_points(
                a, [Point(0.5, 0.5), Point(1.5, 0.5)], [1.0]
            )

    def test_die_node_ids(self):
        model = StackModel()
        model.add_layer("a", line_mesh(3, 1.0, "l1"))
        model.add_layer("b", line_mesh(2, 1.0, "l2"))
        assert model.die_node_ids("a").tolist() == [0, 1, 2]
        assert model.die_node_ids("b").tolist() == [3, 4]
        with pytest.raises(MeshError):
            model.die_node_ids("c")

    def test_layer_origin_offsets_node_lookup(self):
        model = StackModel()
        key = model.add_layer("d", line_mesh(2, 1.0), origin=Point(10.0, 0.0))
        # Stack coordinate 10.5 is local 0.5 -> node 0.
        assert model.node_at(key, Point(10.5, 0.5)) == 0

    def test_matrix_symmetric_diagonally_dominant(self):
        model = build_chain(6, 1.3, 0.7)
        m = model.conductance_matrix().toarray()
        assert np.allclose(m, m.T)
        # Diagonal dominance (strict at the supplied node).
        off = np.abs(m).sum(axis=1) - np.abs(np.diag(m))
        assert np.all(np.diag(m) >= off - 1e-12)
        assert np.diag(m)[0] > off[0]


class TestSolver:
    def test_wrong_shape_rejected(self):
        solver = StackSolver(build_chain(3, 1.0, 1.0))
        with pytest.raises(SolverError):
            solver.solve_currents(np.zeros(5))

    def test_negative_current_rejected(self):
        solver = StackSolver(build_chain(3, 1.0, 1.0))
        with pytest.raises(SolverError):
            solver.solve_currents(np.array([-1.0, 0.0, 0.0]))

    def test_zero_load_zero_drop(self):
        solver = StackSolver(build_chain(3, 1.0, 1.0))
        res = solver.solve_currents(np.zeros(3))
        assert np.allclose(res.drops, 0.0)

    def test_worst_node_location(self):
        model = build_chain(4, 1.0, 1.0)
        solver = StackSolver(model)
        res = solver.solve_currents(np.array([0.0, 0.0, 0.0, 1.0]))
        key, point = res.worst_node_location()
        assert key == "die/line"
        assert point.x == pytest.approx(3.5)  # last node's cell center

    @settings(max_examples=25, deadline=None)
    @given(
        st.lists(
            st.floats(min_value=0.0, max_value=1.0), min_size=4, max_size=4
        )
    )
    def test_drops_nonnegative_and_monotone_from_supply(self, loads):
        """All drops >= 0, and scaling loads up never lowers any drop."""
        solver = StackSolver(build_chain(4, 1.0, 1.0))
        base = solver.solve_currents(np.array(loads)).drops
        double = solver.solve_currents(np.array(loads) * 2.0).drops
        assert np.all(base >= -1e-12)
        assert np.all(double >= base - 1e-12)
        assert np.allclose(double, 2.0 * base)  # linearity
