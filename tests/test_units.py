"""Unit conversion helpers."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro import units


def test_length_conversions():
    assert units.um(1000.0) == pytest.approx(1.0)
    assert units.mm(2.5) == 2.5
    assert units.cm(1.0) == pytest.approx(10.0)
    assert units.to_um(0.025) == pytest.approx(25.0)


def test_electrical_conversions():
    assert units.mohm(50.0) == pytest.approx(0.05)
    assert units.ohm(1.2) == 1.2
    assert units.mv(30.0) == pytest.approx(0.030)
    assert units.to_mv(0.030) == pytest.approx(30.0)
    assert units.ma(150.0) == pytest.approx(0.150)
    assert units.to_ma(0.150) == pytest.approx(150.0)
    assert units.mw(220.5) == pytest.approx(0.2205)
    assert units.to_mw(0.2205) == pytest.approx(220.5)


def test_time_conversions():
    assert units.ns(1.25) == pytest.approx(1.25e-9)
    assert units.us(109.3) == pytest.approx(109.3e-6)
    assert units.to_us(109.3e-6) == pytest.approx(109.3)
    assert units.mhz(800.0) == pytest.approx(8e8)


@given(st.floats(min_value=1e-9, max_value=1e9, allow_nan=False))
def test_round_trips(value):
    assert units.to_um(units.um(value)) == pytest.approx(value, rel=1e-12)
    assert units.to_mv(units.mv(value)) == pytest.approx(value, rel=1e-12)
    assert units.to_ma(units.ma(value)) == pytest.approx(value, rel=1e-12)
    assert units.to_mw(units.mw(value)) == pytest.approx(value, rel=1e-12)
    assert units.to_us(units.us(value)) == pytest.approx(value, rel=1e-12)
