"""Property-based tests of the stack physics on the real DDR3 design.

These run against the session-shared factorized baseline stack, so each
property evaluation is a cheap back-substitution.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.power import MemoryState
from repro.power.powermap import PowerMap

counts_strategy = st.lists(
    st.integers(min_value=0, max_value=2), min_size=4, max_size=4
).map(tuple)

shared = settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)


class TestStackPhysicsProperties:
    @shared
    @given(counts_strategy)
    def test_drops_nonnegative(self, ddr3_stack, ddr3_floorplan, counts):
        state = MemoryState.from_counts(counts, ddr3_floorplan)
        res = ddr3_stack.solve_state(state)
        assert np.all(res.raw.drops >= -1e-12)
        assert res.dram_max_mv >= 0.0

    @shared
    @given(counts_strategy)
    def test_superposition_on_states(self, ddr3_stack, ddr3_floorplan, counts):
        """Doubling every load current exactly doubles every drop."""
        state = MemoryState.from_counts(counts, ddr3_floorplan)
        maps = ddr3_stack.power_maps(state)
        solver = ddr3_stack.solver
        base = solver.solve_power_maps(maps).drops
        doubled = {
            key: PowerMap(pmap.grid, pmap.current * 2.0)
            for key, pmap in maps.items()
        }
        twice = solver.solve_power_maps(doubled).drops
        assert np.allclose(twice, 2.0 * base, rtol=1e-9, atol=1e-12)

    @shared
    @given(counts_strategy)
    def test_activity_share_never_raises_per_die_power_drop(
        self, ddr3_stack, ddr3_floorplan, counts
    ):
        """Adding active banks on OTHER dies never increases the total
        current drawn by a fixed die (its activity share shrinks)."""
        state = MemoryState.from_counts(counts, ddr3_floorplan)
        fuller = MemoryState.from_counts(
            tuple(max(c, 1) for c in counts), ddr3_floorplan
        )
        maps_a = ddr3_stack.power_maps(state)
        maps_b = ddr3_stack.power_maps(fuller)
        for die in range(4):
            if counts[die] > 0:
                key = ddr3_stack.load_layer_key(die)
                assert (
                    maps_b[key].total_current
                    <= maps_a[key].total_current + 1e-12
                )

    @shared
    @given(counts_strategy, counts_strategy)
    def test_more_banks_more_total_current(
        self, ddr3_stack, ddr3_floorplan, a, b
    ):
        """Pointwise-larger states draw at least as much total current."""
        hi = tuple(max(x, y) for x, y in zip(a, b))
        state_a = MemoryState.from_counts(a, ddr3_floorplan)
        state_hi = MemoryState.from_counts(hi, ddr3_floorplan)
        total_a = sum(m.total_current for m in ddr3_stack.power_maps(state_a).values())
        total_hi = sum(m.total_current for m in ddr3_stack.power_maps(state_hi).values())
        assert total_hi >= total_a - 1e-12

    @pytest.mark.parametrize("backend", ["direct", "cg"])
    @pytest.mark.parametrize("key", ["ddr3_off", "ddr3_on", "wideio", "hmc"])
    def test_branch_currents_conserve_charge(self, paper_stacks, key, backend):
        """KCL on the recovered branch currents: at every interior node
        the net branch current equals the injected load, within 1e-9
        relative, on all four paper stacks and both solver backends."""
        from repro.rmesh import extract_branches

        bench, stack = paper_stacks[key]
        solver = stack.solver_for(backend)
        currents = solver.currents_from_maps(
            stack.power_maps(bench.reference_state())
        )
        raw = solver.solve_currents(currents)
        branches = extract_branches(raw.model, np.asarray(raw.drops))
        residual = branches.kcl_residual(currents)
        assert residual["max_rel"] < 1e-9
        # Global conservation: every injected amp returns via the supply.
        assert residual["supply_return_a"] == pytest.approx(
            residual["injected_a"], rel=1e-9
        )

    def test_reciprocity(self, ddr3_stack):
        """Transfer resistance is symmetric: injecting at i and measuring
        at j equals injecting at j and measuring at i."""
        solver = ddr3_stack.solver
        n = ddr3_stack.model.num_nodes
        rng = np.random.default_rng(3)
        for _ in range(4):
            i, j = rng.integers(1, n, size=2)
            e_i = np.zeros(n)
            e_i[i] = 1.0
            e_j = np.zeros(n)
            e_j[j] = 1.0
            v_from_i = solver.solve_currents(e_i).drops
            v_from_j = solver.solve_currents(e_j).drops
            assert v_from_i[j] == pytest.approx(v_from_j[i], rel=1e-9, abs=1e-15)
