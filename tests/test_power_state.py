"""Memory state representation and I/O activity semantics."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.floorplan import ddr3_die_floorplan, wideio_die_floorplan
from repro.power import MemoryState


@pytest.fixture(scope="module")
def fp():
    return ddr3_die_floorplan()


class TestConstruction:
    def test_idle(self):
        state = MemoryState.idle(4)
        assert state.counts == (0, 0, 0, 0)
        assert state.total_active == 0
        assert state.active_dies == ()

    def test_duplicate_banks_rejected(self):
        with pytest.raises(ConfigurationError):
            MemoryState(((0, 0), (), (), ()))

    def test_from_counts_edge(self, fp):
        state = MemoryState.from_counts((0, 0, 0, 2), fp)
        assert state.counts == (0, 0, 0, 2)
        assert state.active[3] == (0, 4)  # left edge column, worst case

    def test_from_counts_spread(self, fp):
        state = MemoryState.from_counts((4, 0, 0, 0), fp, placement="spread")
        assert state.active[0] == (0, 2, 4, 6)

    def test_from_counts_too_many(self, fp):
        with pytest.raises(ConfigurationError):
            MemoryState.from_counts((9, 0, 0, 0), fp)

    def test_bad_placement(self, fp):
        with pytest.raises(ConfigurationError):
            MemoryState.from_counts((1, 0, 0, 0), fp, placement="weird")


class TestParsing:
    def test_plain_counts(self, fp):
        state = MemoryState.from_string("0-0-0-2", fp)
        assert state.counts == (0, 0, 0, 2)
        assert state.label() == "0-0-0-2"

    def test_position_classes(self, fp):
        state = MemoryState.from_string("0-0-2b-2a", fp)
        assert state.active[2] == (1, 5)  # class b
        assert state.active[3] == (0, 4)  # class a

    def test_single_bank_of_class(self, fp):
        state = MemoryState.from_string("1d-0-0-0", fp)
        assert state.active[0] == (3,)

    def test_bad_token(self, fp):
        with pytest.raises(ConfigurationError):
            MemoryState.from_string("0-x-0-2", fp)

    def test_class_overflow(self, fp):
        with pytest.raises(ConfigurationError):
            MemoryState.from_string("3a-0-0-0", fp)


class TestIOActivity:
    def test_single_die_full_activity(self, fp):
        state = MemoryState.from_string("0-0-0-2", fp)
        assert state.io_activity(3) == pytest.approx(1.0)
        assert state.io_activity(0) == 0.0

    def test_shared_across_dies(self, fp):
        state = MemoryState.from_string("2-2-2-2", fp)
        for die in range(4):
            assert state.io_activity(die) == pytest.approx(0.25)

    def test_two_dies(self, fp):
        state = MemoryState.from_string("0-0-2-2", fp)
        assert state.io_activity(2) == pytest.approx(0.5)

    def test_channel_activity_wideio(self):
        wfp = wideio_die_floorplan()
        # Channel 0 banks are 0-3.  Active on two dies -> 50% each.
        state = MemoryState(((0,), (1,), (), ()))
        assert state.channel_io_activity(0, 0, wfp) == pytest.approx(0.5)
        assert state.channel_io_activity(2, 0, wfp) == 0.0
        # A different channel is unaffected.
        assert state.channel_io_activity(0, 1, wfp) == 0.0

    @given(st.lists(st.integers(min_value=0, max_value=2), min_size=4, max_size=4))
    def test_activity_sums_to_one_when_active(self, counts):
        fp = ddr3_die_floorplan()
        state = MemoryState.from_counts(counts, fp)
        total = sum(state.io_activity(d) for d in range(4))
        if state.total_active:
            assert total == pytest.approx(1.0)
        else:
            assert total == 0.0


def test_with_die(fp):
    state = MemoryState.from_string("0-0-0-2", fp)
    new = state.with_die(0, (1,))
    assert new.counts == (1, 0, 0, 2)
    assert state.counts == (0, 0, 0, 2)  # original untouched
