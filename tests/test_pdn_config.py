"""PDNConfig validation (Table 8 ranges and constraints)."""

import pytest

from repro.errors import ConfigurationError
from repro.pdn import Bonding, BumpLocation, PDNConfig, RDLScope, TSVLocation


class TestRanges:
    def test_defaults_are_the_baseline(self):
        config = PDNConfig()
        assert config.m2_usage == 0.10
        assert config.m3_usage == 0.20
        assert config.tsv_count == 33
        assert config.tsv_location is TSVLocation.EDGE
        assert config.bonding is Bonding.F2B
        assert not config.rdl.enabled
        assert not config.wire_bond

    @pytest.mark.parametrize("m2", [0.05, 0.25])
    def test_m2_range(self, m2):
        with pytest.raises(ConfigurationError):
            PDNConfig(m2_usage=m2)

    @pytest.mark.parametrize("m3", [0.05, 0.45])
    def test_m3_range(self, m3):
        with pytest.raises(ConfigurationError):
            PDNConfig(m3_usage=m3)

    @pytest.mark.parametrize("tc", [14, 481])
    def test_tc_range(self, tc):
        with pytest.raises(ConfigurationError):
            PDNConfig(tsv_count=tc)

    def test_boundary_values_legal(self):
        PDNConfig(m2_usage=0.10, m3_usage=0.40, tsv_count=15)
        PDNConfig(m2_usage=0.20, m3_usage=0.10, tsv_count=480)


class TestCrossConstraints:
    def test_edge_tsv_center_bumps_need_rdl(self):
        with pytest.raises(ConfigurationError):
            PDNConfig(
                tsv_location=TSVLocation.EDGE,
                bump_location=BumpLocation.CENTER,
            )

    def test_edge_tsv_center_bumps_with_rdl_ok(self):
        PDNConfig(
            tsv_location=TSVLocation.EDGE,
            bump_location=BumpLocation.CENTER,
            rdl=RDLScope.ALL,
        )


class TestHelpers:
    def test_with_options(self):
        base = PDNConfig()
        changed = base.with_options(bonding=Bonding.F2F, wire_bond=True)
        assert changed.bonding is Bonding.F2F
        assert changed.wire_bond
        assert base.bonding is Bonding.F2B  # original untouched

    def test_with_options_validates(self):
        with pytest.raises(ConfigurationError):
            PDNConfig().with_options(tsv_count=5)

    def test_label(self):
        label = PDNConfig().label()
        assert "M2=10%" in label
        assert "TC=33" in label
        assert "TL=E" in label
        assert "BD=F2B" in label

    def test_rdl_scope_enabled(self):
        assert not RDLScope.NONE.enabled
        assert RDLScope.BOTTOM.enabled
        assert RDLScope.ALL.enabled
