"""DRAM device models: timing, bank FSM, channel buses."""

import pytest

from repro.dram import Bank, BankState, ChannelBus, TimingParams
from repro.errors import ConfigurationError, SimulationError


@pytest.fixture
def timing():
    return TimingParams.ddr3_1600()


class TestTiming:
    def test_ddr3_values(self, timing):
        assert timing.clock_mhz == 800.0
        assert timing.tRRD == 8 and timing.tFAW == 32  # the paper's values
        assert timing.tRC == timing.tRAS + timing.tRP
        assert timing.tCCD == timing.burst_cycles  # zero-bubble capable

    def test_cycles_to_us(self, timing):
        # 87,440 cycles at 800 MHz = the paper's 109.3 us.
        assert timing.cycles_to_us(87440) == pytest.approx(109.3)

    def test_all_presets_valid(self):
        for preset in (
            TimingParams.ddr3_1600,
            TimingParams.wideio_200,
            TimingParams.hmc_2500,
        ):
            t = preset()
            assert t.tRAS >= t.tRCD

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            TimingParams(800, 11, 11, 11, 5, 4, 8, 32, 12, 4)  # tRAS < tRCD
        with pytest.raises(ConfigurationError):
            TimingParams(-1, 11, 11, 11, 28, 4, 8, 32, 12, 4)
        with pytest.raises(ConfigurationError):
            TimingParams(800, 0, 11, 11, 28, 4, 8, 32, 12, 4)


class TestBankFSM:
    def test_lifecycle(self, timing):
        bank = Bank(0, 0, timing)
        assert bank.state is BankState.IDLE
        assert bank.can_activate(0)

        bank.activate(0, row=7)
        assert bank.state is BankState.ACTIVATING
        assert not bank.can_read(timing.tRCD - 1, 7)
        assert bank.can_read(timing.tRCD, 7)

        end = bank.read(timing.tRCD, 7)
        assert end == timing.tRCD + timing.tCL + timing.burst_cycles

        # tCCD between reads.
        assert not bank.can_read(timing.tRCD + 1, 7)
        assert bank.can_read(timing.tRCD + timing.tCCD, 7)

        # Precharge only after tRAS and the write-back window.
        t_pre = max(timing.tRAS, timing.tRCD + timing.tWR)
        assert not bank.can_precharge(t_pre - 1)
        assert bank.can_precharge(t_pre)
        bank.precharge(t_pre)
        assert bank.state is BankState.PRECHARGING
        assert bank.open_row is None
        assert not bank.can_activate(t_pre + timing.tRP - 1)
        assert bank.can_activate(t_pre + timing.tRP)

    def test_wrong_row_read_rejected(self, timing):
        bank = Bank(0, 0, timing)
        bank.activate(0, row=7)
        assert not bank.can_read(timing.tRCD, 8)
        with pytest.raises(SimulationError):
            bank.read(timing.tRCD, 8)

    def test_double_activate_rejected(self, timing):
        bank = Bank(0, 0, timing)
        bank.activate(0, 1)
        with pytest.raises(SimulationError):
            bank.activate(1, 2)

    def test_premature_precharge_rejected(self, timing):
        bank = Bank(0, 0, timing)
        bank.activate(0, 1)
        with pytest.raises(SimulationError):
            bank.precharge(5)

    def test_is_active_states(self, timing):
        bank = Bank(0, 0, timing)
        assert not bank.is_active()
        bank.activate(0, 1)
        assert bank.is_active()  # ACTIVATING counts for IR purposes
        bank.sync(timing.tRCD)
        assert bank.is_active()

    def test_next_interesting_cycle(self, timing):
        bank = Bank(0, 0, timing)
        assert bank.next_interesting_cycle(0) is None  # idle, nothing pending
        bank.activate(0, 1)
        assert bank.next_interesting_cycle(0) == timing.tRCD


class TestChannelBus:
    def test_one_command_per_cycle(self, timing):
        chan = ChannelBus(0, timing)
        chan.issue_command(0)
        assert not chan.can_issue_command(0)
        assert chan.can_issue_command(1)
        with pytest.raises(SimulationError):
            chan.issue_command(0)

    def test_read_occupies_data_bus(self, timing):
        chan = ChannelBus(0, timing)
        end = chan.issue_read(0)
        assert end == timing.tCL + timing.burst_cycles
        # A back-to-back read at tCCD slots in with zero bubble.
        assert chan.can_issue_read(timing.tCCD)
        # But an earlier read would collide.
        assert not chan.can_issue_read(timing.tCCD - 1)

    def test_conflicting_read_rejected(self, timing):
        chan = ChannelBus(0, timing)
        chan.issue_read(0)
        with pytest.raises(SimulationError):
            chan.issue_read(1)

    def test_utilization(self, timing):
        chan = ChannelBus(0, timing)
        chan.issue_read(0)
        chan.issue_read(timing.tCCD)
        assert chan.utilization(32) == pytest.approx(2 * timing.burst_cycles / 32)
        assert chan.utilization(0) == 0.0

    def test_next_data_slot(self, timing):
        chan = ChannelBus(0, timing)
        chan.issue_read(0)
        slot = chan.next_data_slot(1)
        assert chan.can_issue_read(slot) or not chan.can_issue_command(slot)
