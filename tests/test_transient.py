"""Transient RC extension: settling, decap behaviour, schedules."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, SolverError
from repro.power import MemoryState
from repro.rmesh.transient import DecapConfig, TransientSolver


@pytest.fixture(scope="module")
def states(ddr3_floorplan):
    return {
        "idle": MemoryState.idle(4),
        "active": MemoryState.from_string("0-0-0-2", ddr3_floorplan),
    }


@pytest.fixture(scope="module")
def solver(ddr3_stack):
    return TransientSolver(ddr3_stack, DecapConfig(), dt_ns=1.0)


class TestConfig:
    def test_validation(self, ddr3_stack):
        with pytest.raises(ConfigurationError):
            DecapConfig(die_nf_per_mm2=-1.0)
        with pytest.raises(ConfigurationError):
            TransientSolver(ddr3_stack, dt_ns=0.0)

    def test_empty_schedule_rejected(self, solver):
        with pytest.raises(ConfigurationError):
            solver.simulate([])

    def test_nonpositive_duration_rejected(self, solver, states):
        with pytest.raises(ConfigurationError):
            solver.simulate([(states["active"], 0.0)])


class TestStepResponse:
    def test_settles_to_dc(self, solver, ddr3_stack, states):
        """The RC step response converges to the DC solve."""
        dc = ddr3_stack.dram_max_mv(states["active"])
        res = solver.step_response(states["active"], duration_ns=400.0)
        assert res.final_mv == pytest.approx(dc, rel=0.02)
        # RC networks approach monotonically: no overshoot beyond DC.
        assert res.peak_mv <= dc * 1.02

    def test_monotone_rise(self, solver, states):
        res = solver.step_response(states["active"], duration_ns=200.0)
        diffs = np.diff(res.dram_max_mv)
        assert np.all(diffs >= -1e-6)

    def test_initial_droop_suppressed_by_decap(self, ddr3_stack, states):
        """Right after the step, a bigger decap holds the rail up."""
        small = TransientSolver(
            ddr3_stack, DecapConfig(die_nf_per_mm2=0.01, package_uf=0.05), dt_ns=1.0
        )
        big = TransientSolver(
            ddr3_stack, DecapConfig(die_nf_per_mm2=1.0, package_uf=5.0), dt_ns=1.0
        )
        early_small = small.step_response(states["active"], 10.0).dram_max_mv[2]
        early_big = big.step_response(states["active"], 10.0).dram_max_mv[2]
        assert early_big < early_small

    def test_settling_time_grows_with_decap(self, ddr3_stack, states):
        fast = TransientSolver(
            ddr3_stack, DecapConfig(die_nf_per_mm2=0.02, package_uf=0.1), dt_ns=1.0
        )
        slow = TransientSolver(
            ddr3_stack, DecapConfig(die_nf_per_mm2=1.0, package_uf=5.0), dt_ns=1.0
        )
        t_fast = fast.step_response(states["active"], 500.0).settling_time_ns()
        t_slow = slow.step_response(states["active"], 500.0).settling_time_ns()
        assert t_slow > t_fast


class TestBurst:
    def test_short_burst_peak_below_dc(self, ddr3_stack, states):
        """A brief activation burst never reaches the DC droop: the decap
        sources the transient charge -- the AC benefit the paper credits
        to the decoupling capacitors behind the bond wires."""
        solver = TransientSolver(
            ddr3_stack, DecapConfig(die_nf_per_mm2=3.0, package_uf=5.0), dt_ns=1.0
        )
        dc = ddr3_stack.dram_max_mv(states["active"])
        burst = solver.simulate(
            [(states["idle"], 10.0), (states["active"], 8.0), (states["idle"], 50.0)]
        )
        assert burst.peak_mv < 0.8 * dc

    def test_recovery_after_burst(self, solver, states):
        res = solver.simulate(
            [(states["active"], 100.0), (states["idle"], 300.0)]
        )
        # After the load stops, the rail recovers toward the idle level.
        assert res.dram_max_mv[-1] < 0.2 * res.peak_mv

    def test_per_die_series_shapes(self, solver, states):
        res = solver.step_response(states["active"], 50.0)
        assert set(res.per_die_mv) == {"dram1", "dram2", "dram3", "dram4"}
        for series in res.per_die_mv.values():
            assert series.shape == res.times_ns.shape

    def test_v0_shape_checked(self, solver, states):
        with pytest.raises(SolverError):
            solver.simulate([(states["active"], 10.0)], v0=np.zeros(3))
