"""Paper-anchor regression tests.

Pins the calibrated model to the paper's published aggregate numbers so
that future changes to the technology constants or the stack assembler
cannot silently drift the reproduction.  Tolerances reflect the achieved
calibration quality (see EXPERIMENTS.md); they are deliberately tighter
than the bench assertions.
"""

import pytest

from repro.pdn import build_stack
from repro.power import MemoryState


@pytest.fixture(scope="module")
def s0002(ddr3_floorplan):
    return MemoryState.from_string("0-0-0-2", ddr3_floorplan)


class TestSection31Anchors:
    def test_off_chip_baseline(self, ddr3_stack, s0002):
        """Paper: 30.03 mV."""
        assert ddr3_stack.dram_max_mv(s0002) == pytest.approx(30.03, rel=0.08)

    def test_on_chip_coupled(self, onchip_stack, s0002):
        """Paper: 64.41 mV DRAM, 50.05 mV logic."""
        res = onchip_stack.solve_state(s0002)
        assert res.dram_max_mv == pytest.approx(64.41, rel=0.08)
        assert res.logic_max_mv == pytest.approx(50.05, rel=0.10)

    def test_on_chip_dedicated(self, ddr3_on_bench, s0002):
        """Paper: 31.18 mV."""
        stack = build_stack(ddr3_on_bench.stack, ddr3_on_bench.baseline)
        assert stack.dram_max_mv(s0002) == pytest.approx(31.18, rel=0.08)


class TestPackagingAnchors:
    def test_f2f(self, ddr3_f2f_stack, s0002):
        """Paper: 17.18 mV (-42.8% vs F2B)."""
        assert ddr3_f2f_stack.dram_max_mv(s0002) == pytest.approx(17.18, rel=0.08)

    def test_off_chip_wirebond_delta(self, ddr3_off_bench, ddr3_stack, s0002):
        """Paper: -9.76%."""
        wb = build_stack(
            ddr3_off_bench.stack,
            ddr3_off_bench.baseline.with_options(wire_bond=True),
        )
        delta = wb.dram_max_mv(s0002) / ddr3_stack.dram_max_mv(s0002) - 1.0
        assert delta == pytest.approx(-0.0976, abs=0.04)


class TestTable5Anchors:
    @pytest.mark.parametrize(
        "state_text,f2b_mv,f2f_mv",
        [
            ("0-0-0-2", 30.03, 17.18),
            ("2-0-0-0", 26.26, 14.61),
            ("0-0-2-2", 28.14, 27.21),
            ("2-2-2-2", 24.82, 23.57),
        ],
    )
    def test_state_ir(
        self, ddr3_stack, ddr3_f2f_stack, ddr3_floorplan, state_text, f2b_mv, f2f_mv
    ):
        state = MemoryState.from_string(state_text, ddr3_floorplan)
        assert ddr3_stack.dram_max_mv(state) == pytest.approx(f2b_mv, rel=0.13)
        assert ddr3_f2f_stack.dram_max_mv(state) == pytest.approx(f2f_mv, rel=0.13)


class TestBenchmarkBaselineAnchors:
    @pytest.mark.parametrize(
        "fixture_name,paper_mv,tol",
        [
            ("ddr3_off_bench", 30.03, 0.08),
            ("ddr3_on_bench", 31.18, 0.08),
            ("wideio_bench", 13.62, 0.25),
            ("hmc_bench", 47.90, 0.08),
        ],
    )
    def test_table9_baseline(self, request, fixture_name, paper_mv, tol):
        bench = request.getfixturevalue(fixture_name)
        stack = build_stack(bench.stack, bench.baseline)
        ir = stack.dram_max_mv(bench.reference_state())
        assert ir == pytest.approx(paper_mv, rel=tol)
