"""Solver backend abstraction, warm-start session, and solve-path edges.

Covers the pluggable backends (:mod:`repro.rmesh.backends`), the
sweep warm-start layer (:mod:`repro.pdn.sweep`), the synthetic stress
workloads (:mod:`repro.rmesh.workloads`), and the ``IRDropResult`` /
``SolverError`` paths of :mod:`repro.rmesh.solve` that predate this PR
but were previously untested.
"""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp

from repro.errors import ConfigurationError, SolverError
from repro.geometry import Point
from repro.obs import metrics as obs_metrics
from repro.pdn.config import RDLScope
from repro.pdn.plan import PlanDiff
from repro.pdn.sweep import SweepSolveSession, knob_only_diff
from repro.perf.cache import cached_build_stack, clear_caches
from repro.rmesh.backends import (
    BACKENDS,
    CGOperator,
    DirectOperator,
    EscalatingOperator,
    FactorPreconditioner,
    JacobiPreconditioner,
    amg_available,
    make_operator,
    make_preconditioner,
    resolve_backend,
)
from repro.rmesh.solve import IRDropResult, StackSolver
from repro.rmesh.workloads import synthetic_workload, workload_for_nodes

#: A mesh big enough that jacobi-CG takes real iterations, small enough
#: that every solve here is milliseconds.
WORKLOAD = synthetic_workload(12, 12, layers=2, bump_every=4, hotspots=3)


def _spd_matrix(n: int = 16) -> sp.csc_matrix:
    """A tiny SPD test system (1-D resistor chain grounded at node 0)."""
    main = np.full(n, 2.0)
    main[0] += 1.0  # supply link -> nonsingular
    off = np.full(n - 1, -1.0)
    return sp.diags([off, main, off], [-1, 0, 1], format="csc")


@pytest.fixture(autouse=True)
def _clean_backend_env(monkeypatch):
    for var in ("REPRO_SOLVER", "REPRO_CG_PRECOND", "REPRO_CG_RTOL",
                "REPRO_CG_MAXITER", "REPRO_RESIDUAL_EVERY"):
        monkeypatch.delenv(var, raising=False)


# -- backend resolution -------------------------------------------------------


def test_resolve_backend_defaults_to_direct():
    assert resolve_backend() == "direct"
    assert resolve_backend(None) == "direct"


def test_resolve_backend_env(monkeypatch):
    monkeypatch.setenv("REPRO_SOLVER", "cg")
    assert resolve_backend() == "cg"
    # Explicit argument beats the environment.
    assert resolve_backend("direct") == "direct"


def test_resolve_backend_normalizes_case():
    assert resolve_backend(" CG ") == "cg"


def test_resolve_backend_rejects_unknown(monkeypatch):
    with pytest.raises(ConfigurationError):
        resolve_backend("superlu")
    monkeypatch.setenv("REPRO_SOLVER", "nope")
    with pytest.raises(ConfigurationError):
        resolve_backend()


def test_invalid_cg_precond_env_defaults(monkeypatch):
    # Env knobs warn-and-default instead of raising mid-sweep: a typo'd
    # REPRO_CG_PRECOND must not throw away a half-finished run.
    monkeypatch.setenv("REPRO_CG_PRECOND", "ilu")
    op = CGOperator(_spd_matrix())
    assert op.preconditioner.kind == "factor"


# -- preconditioners ----------------------------------------------------------


def test_jacobi_rejects_nonpositive_diagonal():
    bad = sp.diags([1.0, 0.0, 1.0]).tocsc()
    with pytest.raises(SolverError):
        JacobiPreconditioner(bad)


def test_preconditioner_compatibility_is_shape_based():
    pre = FactorPreconditioner(_spd_matrix(16))
    assert pre.compatible_with(_spd_matrix(16))
    assert not pre.compatible_with(_spd_matrix(17))


def test_factor_preconditioner_is_exact_inverse():
    matrix = _spd_matrix()
    pre = FactorPreconditioner(matrix)
    rhs = np.linspace(1.0, 2.0, matrix.shape[0])
    x = pre.operator() @ rhs
    assert np.allclose(matrix @ x, rhs)


def test_make_preconditioner_rejects_unknown_kind():
    with pytest.raises(ConfigurationError):
        make_preconditioner("ilu", _spd_matrix())


# -- operators ----------------------------------------------------------------


def test_make_operator_direct():
    op = make_operator("direct", _spd_matrix())
    assert isinstance(op, DirectOperator)
    assert op.preconditioner is None


def test_make_operator_rejects_unknown():
    with pytest.raises(ConfigurationError):
        make_operator("gauss-seidel", _spd_matrix())


def test_amg_falls_back_to_cg_without_pyamg():
    if amg_available():  # pragma: no cover - container has no pyamg
        pytest.skip("pyamg installed; fallback path not reachable")
    before = obs_metrics.snapshot()
    op = make_operator("amg", _spd_matrix())
    assert isinstance(op, EscalatingOperator)
    assert isinstance(op.inner, CGOperator)
    delta = obs_metrics.diff(before, obs_metrics.snapshot())
    assert delta["counters"].get("solver.amg_fallbacks") == 1


def test_warm_from_reuses_compatible_preconditioner():
    matrix = _spd_matrix()
    cold = make_operator("cg", matrix)
    assert not cold.reused_preconditioner
    warm = make_operator("cg", matrix, warm_from=cold)
    assert warm.reused_preconditioner
    assert warm.preconditioner is cold.preconditioner


def test_warm_from_shape_mismatch_builds_fresh():
    cold = make_operator("cg", _spd_matrix(16))
    warm = make_operator("cg", _spd_matrix(17), warm_from=cold)
    assert not warm.reused_preconditioner
    assert warm.preconditioner is not cold.preconditioner


def test_cg_exact_x0_short_circuits():
    matrix = _spd_matrix(64)
    rhs = np.linspace(0.0, 1.0, 64)
    op = CGOperator(matrix, precond_kind="jacobi")
    exact = op.solve(rhs)
    cold_iters = op.iterations
    assert cold_iters > 0
    op.solve(rhs, x0=exact)
    assert op.iterations < cold_iters
    assert op.total_iterations == cold_iters + op.iterations


def test_cg_raises_on_nonconvergence():
    big = synthetic_workload(16, 16, layers=2, bump_every=8)
    matrix = big.model.conductance_matrix().tocsc()
    op = CGOperator(matrix, precond_kind="jacobi", maxiter=2)
    with pytest.raises(SolverError):
        op.solve(big.currents)


# -- StackSolver across backends ---------------------------------------------


def test_backends_agree_on_max_ir():
    direct = StackSolver(WORKLOAD.model, backend="direct")
    reference = direct.solve_currents(WORKLOAD.currents)
    for backend in BACKENDS:
        if backend == "amg" and not amg_available():
            continue  # the fallback path is covered above
        solver = StackSolver(WORKLOAD.model, backend=backend)
        result = solver.solve_currents(WORKLOAD.currents)
        rel = abs(result.max_drop() - reference.max_drop()) / reference.max_drop()
        assert rel <= 1e-6, f"{backend}: rel err {rel:.2e}"
        assert result.backend in (backend, "cg")  # amg may fall back


def test_iterative_result_carries_provenance():
    solver = StackSolver(WORKLOAD.model, backend="cg")
    result = solver.solve_currents(WORKLOAD.currents)
    assert result.backend == "cg"
    assert result.iterations >= 1
    assert solver.last_iterations == result.iterations


def test_env_backend_reaches_stack_solver(monkeypatch):
    monkeypatch.setenv("REPRO_SOLVER", "cg")
    solver = StackSolver(WORKLOAD.model)
    assert solver.backend == "cg"
    assert isinstance(solver.operator, EscalatingOperator)
    assert isinstance(solver.operator.inner, CGOperator)


# -- SolverError paths --------------------------------------------------------


def test_solve_currents_shape_mismatch():
    solver = StackSolver(WORKLOAD.model)
    with pytest.raises(SolverError):
        solver.solve_currents(np.zeros(WORKLOAD.num_nodes + 1))


def test_solve_currents_rejects_negative_loads():
    solver = StackSolver(WORKLOAD.model)
    bad = WORKLOAD.currents.copy()
    bad[0] = -1e-3
    with pytest.raises(SolverError) as err:
        solver.solve_currents(bad)
    assert "negative" in str(err.value)


def test_solve_currents_rejects_nonfinite_drops(monkeypatch):
    solver = StackSolver(WORKLOAD.model)
    n = WORKLOAD.num_nodes
    monkeypatch.setattr(
        solver._op, "solve", lambda rhs, x0=None: np.full(n, np.nan)
    )
    with pytest.raises(SolverError) as err:
        solver.solve_currents(WORKLOAD.currents)
    assert "non-finite" in str(err.value)


def test_solve_block_shape_checks():
    solver = StackSolver(WORKLOAD.model)
    with pytest.raises(SolverError):
        solver.solve_block(WORKLOAD.currents)  # 1-D
    with pytest.raises(SolverError):
        solver.solve_block(np.zeros((WORKLOAD.num_nodes + 1, 2)))
    with pytest.raises(SolverError):
        solver.solve_block(np.full((WORKLOAD.num_nodes, 2), -1e-3))


def test_solve_block_empty_batch():
    solver = StackSolver(WORKLOAD.model)
    block = solver.solve_block(np.empty((WORKLOAD.num_nodes, 0)))
    assert block.shape == (WORKLOAD.num_nodes, 0)
    assert solver.solve_many(np.empty((WORKLOAD.num_nodes, 0))) == []


# -- batched solves: layout and bitwise contract ------------------------------


def _current_batch(k: int = 3) -> np.ndarray:
    return np.column_stack(
        [WORKLOAD.currents * scale for scale in np.linspace(0.5, 1.5, k)]
    )


def test_solve_block_is_fortran_ordered():
    solver = StackSolver(WORKLOAD.model)
    block = solver.solve_block(_current_batch())
    assert block.flags.f_contiguous


def test_solve_block_matches_per_column_solves():
    batch = _current_batch()
    solver = StackSolver(WORKLOAD.model)
    block = solver.solve_block(batch)
    for i in range(batch.shape[1]):
        single = solver.solve_currents(batch[:, i])
        np.testing.assert_array_equal(block[:, i], single.drops)


def test_solve_many_returns_views_into_one_block():
    solver = StackSolver(WORKLOAD.model)
    results = solver.solve_many(_current_batch())
    bases = {id(r.drops.base) for r in results}
    assert results[0].drops.base is not None
    assert len(bases) == 1  # zero-copy columns of one shared block


# -- residual sampling --------------------------------------------------------


def _residual_count() -> int:
    hist = obs_metrics.snapshot()["histograms"].get("solver.residual_norm")
    return hist["count"] if hist else 0


def test_residual_gauge_is_sampled(monkeypatch):
    monkeypatch.setenv("REPRO_RESIDUAL_EVERY", "4")
    solver = StackSolver(WORKLOAD.model)
    before = _residual_count()
    for _ in range(8):
        solver.solve_currents(WORKLOAD.currents)
    assert _residual_count() - before == 2  # solves 0 and 4
    assert obs_metrics.get_gauge("solver.residual_norm") < 1e-8


def test_residual_every_one_restores_always_on(monkeypatch):
    monkeypatch.setenv("REPRO_RESIDUAL_EVERY", "1")
    solver = StackSolver(WORKLOAD.model)
    before = _residual_count()
    for _ in range(3):
        solver.solve_currents(WORKLOAD.currents)
    assert _residual_count() - before == 3


def test_cheap_counters_recorded_even_when_unsampled(monkeypatch):
    monkeypatch.setenv("REPRO_RESIDUAL_EVERY", "1000")
    solver = StackSolver(WORKLOAD.model)
    before = obs_metrics.snapshot()
    for _ in range(3):
        solver.solve_currents(WORKLOAD.currents)
    delta = obs_metrics.diff(before, obs_metrics.snapshot())
    assert delta["counters"].get("solver.rhs_solved") == 3


def test_sampling_rate_does_not_change_results(monkeypatch):
    monkeypatch.setenv("REPRO_RESIDUAL_EVERY", "1")
    always = StackSolver(WORKLOAD.model).solve_currents(WORKLOAD.currents)
    monkeypatch.setenv("REPRO_RESIDUAL_EVERY", "1000")
    sampled = StackSolver(WORKLOAD.model).solve_currents(WORKLOAD.currents)
    np.testing.assert_array_equal(always.drops, sampled.drops)


# -- IRDropResult helpers -----------------------------------------------------


def test_worst_node_location_maps_back_to_grid():
    model = WORKLOAD.model
    top = WORKLOAD.load_key
    drops = np.zeros(model.num_nodes)
    sl = model.layer_slice(top)
    drops[sl.start] = 1.0  # local node 0 -> grid (0, 0)
    result = IRDropResult(model=model, drops=drops, solve_time=0.0)
    key, point = result.worst_node_location()
    assert key == top
    grid = model.layer_grid(top)
    origin = model.layer_origin(top)
    expected = grid.node_point(0, 0)
    assert point == Point(expected.x + origin.x, expected.y + origin.y)


def test_ascii_heatmap_shape_and_intensity():
    solver = StackSolver(WORKLOAD.model)
    result = solver.solve_currents(WORKLOAD.currents)
    art = result.ascii_heatmap(WORKLOAD.load_key)
    lines = art.splitlines()
    assert lines[0].startswith(f"{WORKLOAD.load_key}: max ")
    assert len(lines) == 1 + WORKLOAD.ny  # header + one row per y
    assert all(len(line) == WORKLOAD.nx for line in lines[1:])
    assert "@" in art  # the peak cell saturates the scale


def test_ascii_heatmap_flat_field():
    model = WORKLOAD.model
    result = IRDropResult(
        model=model, drops=np.zeros(model.num_nodes), solve_time=0.0
    )
    art = result.ascii_heatmap(WORKLOAD.load_key)
    body = art.splitlines()[1:]
    assert all(set(line) <= {" "} for line in body)


# -- synthetic workloads ------------------------------------------------------


def test_synthetic_workload_is_deterministic():
    a = synthetic_workload(10, 8, layers=2, seed=7)
    b = synthetic_workload(10, 8, layers=2, seed=7)
    np.testing.assert_array_equal(a.currents, b.currents)
    c = synthetic_workload(10, 8, layers=2, seed=8)
    assert not np.array_equal(a.currents, c.currents)


def test_synthetic_workload_loads_top_layer_only():
    w = synthetic_workload(10, 8, layers=3)
    assert w.num_nodes == 10 * 8 * 3
    top = w.model.layer_slice(w.load_key)
    mask = np.zeros(w.num_nodes, bool)
    mask[top] = True
    assert np.all(w.currents[~mask] == 0.0)
    assert np.all(w.currents[top] > 0.0)
    assert w.currents.sum() == pytest.approx(0.7)


def test_workload_for_nodes_clears_floor():
    w = workload_for_nodes(5000, layers=3)
    assert w.num_nodes >= 5000
    assert w.num_nodes <= 5000 * 1.2  # smallest square-ish, not huge


def test_workload_validation():
    with pytest.raises(ValueError):
        synthetic_workload(1, 8)
    with pytest.raises(ValueError):
        workload_for_nodes(2)


# -- per-backend solver caching on stacks -------------------------------------


def test_stack_caches_one_solver_per_backend(ddr3_off_bench):
    clear_caches()
    stack = cached_build_stack(
        ddr3_off_bench.stack, ddr3_off_bench.baseline, pitch=0.8
    )
    direct = stack.solver_for("direct")
    assert stack.solver_for("direct") is direct
    assert stack.solver is direct  # default resolves to direct
    cg = stack.solver_for("cg")
    assert cg is not direct
    assert stack.solver_for("cg") is cg


# -- SweepSolveSession --------------------------------------------------------


@pytest.fixture
def fresh_caches():
    clear_caches()
    yield
    clear_caches()


def test_session_direct_is_transparent(ddr3_off_bench, fresh_caches):
    bench = ddr3_off_bench
    state = bench.reference_state()
    session = SweepSolveSession(backend="direct", pitch=0.8)
    via_session = session.solve(bench, bench.baseline, state)
    stack = cached_build_stack(bench.stack, bench.baseline, pitch=0.8)
    direct = stack.solve_state(state)
    assert via_session.dram_max_mv == direct.dram_max_mv
    assert session.stats() == {"warm_starts": 0, "cold_starts": 0}


def test_session_warm_starts_knob_sweep(ddr3_off_bench, fresh_caches):
    bench = ddr3_off_bench
    state = bench.reference_state()
    session = SweepSolveSession(backend="cg", pitch=0.8)
    counts = (160, 180, 200)
    for count in counts:
        config = bench.baseline.with_options(tsv_count=count)
        result = session.solve(bench, config, state)
        stack = cached_build_stack(bench.stack, config, pitch=0.8)
        truth = stack.solve_state(state).dram_max_mv
        assert result.dram_max_mv == pytest.approx(truth, rel=1e-6)
    assert session.stats() == {
        "warm_starts": len(counts) - 1,
        "cold_starts": 1,
    }


def test_session_same_plan_reuses_solver(ddr3_off_bench, fresh_caches):
    bench = ddr3_off_bench
    state = bench.reference_state()
    session = SweepSolveSession(backend="cg", pitch=0.8)
    session.solve(bench, bench.baseline, state)
    solver = session._prev_solver
    session.solve(bench, bench.baseline, state)
    assert session._prev_solver is solver
    # The same-plan short-circuit is neither warm nor cold.
    assert session.stats() == {"warm_starts": 0, "cold_starts": 1}


def test_session_layer_change_goes_cold(ddr3_off_bench, fresh_caches):
    bench = ddr3_off_bench
    state = bench.reference_state()
    session = SweepSolveSession(backend="cg", pitch=0.8)
    session.solve(bench, bench.baseline, state)
    assert session._last_drops
    # Enabling RDLs adds layers (AddRDLOp is an AddLayerOp): node
    # numbering changes, so the session must restart its chain.
    rdl_config = bench.baseline.with_options(rdl=RDLScope.ALL)
    session.solve(bench, rdl_config, state)
    assert session.stats()["cold_starts"] == 2
    assert session.stats()["warm_starts"] == 0


def test_session_reset_forgets_chain(ddr3_off_bench, fresh_caches):
    bench = ddr3_off_bench
    session = SweepSolveSession(backend="cg", pitch=0.8)
    session.solve(bench, bench.baseline, bench.reference_state())
    session.reset()
    assert session._prev_plan is None
    assert session._prev_solver is None
    assert not session._last_drops


def test_knob_only_diff_classifies_plans(ddr3_off_bench, fresh_caches):
    bench = ddr3_off_bench
    base = cached_build_stack(bench.stack, bench.baseline, pitch=0.8).plan
    knob = cached_build_stack(
        bench.stack, bench.baseline.with_options(tsv_count=200), pitch=0.8
    ).plan
    rdl = cached_build_stack(
        bench.stack, bench.baseline.with_options(rdl=RDLScope.ALL), pitch=0.8
    ).plan
    assert knob_only_diff(PlanDiff.between(base, knob))
    assert not knob_only_diff(PlanDiff.between(base, rdl))
