"""Golden reference solver and the Figure 4 validation path."""

import pytest

from repro.power import MemoryState
from repro.power.model import DDR3_POWER
from repro.pdn.stackup import build_single_die_stack
from repro.rmesh.reference import ValidationReport, validate_against_reference


class TestValidationReport:
    def test_metrics(self):
        report = ValidationReport(
            coarse_ir_mv=32.2,
            reference_ir_mv=32.6,
            coarse_time_s=1.0,
            reference_time_s=10.0,
            coarse_resistors=1000,
            reference_resistors=50000,
        )
        assert report.error_percent == pytest.approx(1.227, abs=0.01)
        assert report.speedup == pytest.approx(10.0)

    def test_zero_time_speedup(self):
        report = ValidationReport(1, 1, 0.0, 1.0, 1, 1)
        assert report.speedup == float("inf")


class TestValidation:
    def test_coarse_agrees_with_reference(self, ddr3_floorplan):
        """The production R-Mesh is within a few percent of the fine
        solve, at a fraction of the resistor count (the Figure 4 story)."""
        state = MemoryState(((0, 1),))

        def build(pitch):
            return build_single_die_stack(ddr3_floorplan, DDR3_POWER, pitch=pitch)

        report = validate_against_reference(
            build, state, coarse_pitch=0.4, reference_pitch=0.2
        )
        assert report.error_percent < 10.0
        assert report.reference_resistors > 3 * report.coarse_resistors
        assert report.coarse_ir_mv > 0 and report.reference_ir_mv > 0
