"""Calibrated power model: Table 5 anchors and structural properties."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.floorplan import BlockType, ddr3_die_floorplan, t2_logic_floorplan
from repro.power import MemoryState, die_power_mw
from repro.power.model import (
    DDR3_POWER,
    DramPowerSpec,
    HMC_POWER,
    LogicPowerSpec,
    T2_LOGIC_POWER,
    WIDEIO_POWER,
    channel_bank_power_mw,
    stack_power_mw,
)


@pytest.fixture(scope="module")
def fp():
    return ddr3_die_floorplan()


class TestTable5Anchors:
    """The model reproduces the Table 5 aggregate powers it was fit to."""

    def test_active_die_100pct(self, fp):
        state = MemoryState.from_string("0-0-0-2", fp)
        assert die_power_mw(DDR3_POWER, fp, state, 3) == pytest.approx(220.5)

    def test_active_die_50pct(self, fp):
        state = MemoryState.from_string("0-0-2-2", fp)
        assert die_power_mw(DDR3_POWER, fp, state, 2) == pytest.approx(175.5)
        assert stack_power_mw(DDR3_POWER, fp, state) == pytest.approx(405.0)

    def test_idle_die(self, fp):
        state = MemoryState.from_string("0-0-0-2", fp)
        assert die_power_mw(DDR3_POWER, fp, state, 0) == pytest.approx(
            DDR3_POWER.standby_mw
        )

    def test_balanced_state_total(self, fp):
        # 2-2-2-2 @ 25%: per-die 27 + 23.5 + 2*(40 + 0.25*45) = 153.
        state = MemoryState.from_string("2-2-2-2", fp)
        assert die_power_mw(DDR3_POWER, fp, state, 0) == pytest.approx(153.0)


class TestStructure:
    def test_power_monotone_in_banks(self, fp):
        powers = [
            die_power_mw(
                DDR3_POWER, fp, MemoryState.from_counts((n, 0, 0, 0), fp), 0
            )
            for n in range(3)
        ]
        assert powers[0] < powers[1] < powers[2]

    def test_power_monotone_in_activity(self, fp):
        # Same bank count, more active dies -> lower per-die power.
        solo = die_power_mw(DDR3_POWER, fp, MemoryState.from_counts((2, 0, 0, 0), fp), 0)
        shared = die_power_mw(DDR3_POWER, fp, MemoryState.from_counts((2, 2, 0, 0), fp), 0)
        assert shared < solo

    def test_unknown_bank_rejected(self, fp):
        state = MemoryState(((99,), (), (), ()))
        with pytest.raises(ConfigurationError):
            die_power_mw(DDR3_POWER, fp, state, 0)

    def test_channel_bank_power_validation(self):
        with pytest.raises(ConfigurationError):
            channel_bank_power_mw(DDR3_POWER, -1, 0.5)
        with pytest.raises(ConfigurationError):
            channel_bank_power_mw(DDR3_POWER, 1, 1.5)
        assert channel_bank_power_mw(DDR3_POWER, 0, 1.0) == 0.0

    def test_spec_validation(self):
        with pytest.raises(ConfigurationError):
            DramPowerSpec(-1.0, 0, 0, 0, 0)
        with pytest.raises(ConfigurationError):
            DramPowerSpec(1.0, 0, 0, 0, 0, decoder_fraction=1.5)

    @given(
        st.integers(min_value=0, max_value=2),
        st.floats(min_value=0.0, max_value=1.0),
    )
    def test_bank_power_monotone(self, banks, act):
        base = channel_bank_power_mw(DDR3_POWER, banks, act)
        assert channel_bank_power_mw(DDR3_POWER, banks + 1, act) >= base
        if banks:
            assert channel_bank_power_mw(DDR3_POWER, banks, min(act + 0.1, 1.0)) >= base


class TestBenchmarkSpecs:
    def test_relative_magnitudes(self):
        """HMC is the hot part, Wide I/O the cool one (Table 1 traits)."""
        assert HMC_POWER.standby_mw > DDR3_POWER.standby_mw > WIDEIO_POWER.standby_mw

    def test_logic_totals(self):
        t2 = T2_LOGIC_POWER.total_mw(t2_logic_floorplan())
        assert 5000 < t2 < 12000  # a few watts, 28nm host


class TestLogicSpec:
    def test_total_counts_blocks(self):
        fp = t2_logic_floorplan()
        spec = LogicPowerSpec(per_block_mw={BlockType.CORE: 100.0}, background_mw=50.0)
        assert spec.total_mw(fp) == pytest.approx(50.0 + 8 * 100.0)
