"""Calibrated power model: Table 5 anchors and structural properties."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.floorplan import BlockType, ddr3_die_floorplan, t2_logic_floorplan
from repro.power import MemoryState, die_power_mw
from repro.power.model import (
    DDR3_POWER,
    DramPowerSpec,
    HMC_POWER,
    LogicPowerSpec,
    T2_LOGIC_POWER,
    WIDEIO_POWER,
    channel_bank_power_mw,
    stack_power_mw,
)


@pytest.fixture(scope="module")
def fp():
    return ddr3_die_floorplan()


class TestTable5Anchors:
    """The model reproduces the Table 5 aggregate powers it was fit to."""

    def test_active_die_100pct(self, fp):
        state = MemoryState.from_string("0-0-0-2", fp)
        assert die_power_mw(DDR3_POWER, fp, state, 3) == pytest.approx(220.5)

    def test_active_die_50pct(self, fp):
        state = MemoryState.from_string("0-0-2-2", fp)
        assert die_power_mw(DDR3_POWER, fp, state, 2) == pytest.approx(175.5)
        assert stack_power_mw(DDR3_POWER, fp, state) == pytest.approx(405.0)

    def test_idle_die(self, fp):
        state = MemoryState.from_string("0-0-0-2", fp)
        assert die_power_mw(DDR3_POWER, fp, state, 0) == pytest.approx(
            DDR3_POWER.standby_mw
        )

    def test_balanced_state_total(self, fp):
        # 2-2-2-2 @ 25%: per-die 27 + 23.5 + 2*(40 + 0.25*45) = 153.
        state = MemoryState.from_string("2-2-2-2", fp)
        assert die_power_mw(DDR3_POWER, fp, state, 0) == pytest.approx(153.0)


class TestStructure:
    def test_power_monotone_in_banks(self, fp):
        powers = [
            die_power_mw(
                DDR3_POWER, fp, MemoryState.from_counts((n, 0, 0, 0), fp), 0
            )
            for n in range(3)
        ]
        assert powers[0] < powers[1] < powers[2]

    def test_power_monotone_in_activity(self, fp):
        # Same bank count, more active dies -> lower per-die power.
        solo = die_power_mw(DDR3_POWER, fp, MemoryState.from_counts((2, 0, 0, 0), fp), 0)
        shared = die_power_mw(DDR3_POWER, fp, MemoryState.from_counts((2, 2, 0, 0), fp), 0)
        assert shared < solo

    def test_unknown_bank_rejected(self, fp):
        state = MemoryState(((99,), (), (), ()))
        with pytest.raises(ConfigurationError):
            die_power_mw(DDR3_POWER, fp, state, 0)

    def test_channel_bank_power_validation(self):
        with pytest.raises(ConfigurationError):
            channel_bank_power_mw(DDR3_POWER, -1, 0.5)
        with pytest.raises(ConfigurationError):
            channel_bank_power_mw(DDR3_POWER, 1, 1.5)
        assert channel_bank_power_mw(DDR3_POWER, 0, 1.0) == 0.0

    def test_spec_validation(self):
        with pytest.raises(ConfigurationError):
            DramPowerSpec(-1.0, 0, 0, 0, 0)
        with pytest.raises(ConfigurationError):
            DramPowerSpec(1.0, 0, 0, 0, 0, decoder_fraction=1.5)

    @given(
        st.integers(min_value=0, max_value=2),
        st.floats(min_value=0.0, max_value=1.0),
    )
    def test_bank_power_monotone(self, banks, act):
        base = channel_bank_power_mw(DDR3_POWER, banks, act)
        assert channel_bank_power_mw(DDR3_POWER, banks + 1, act) >= base
        if banks:
            assert channel_bank_power_mw(DDR3_POWER, banks, min(act + 0.1, 1.0)) >= base


class TestBenchmarkSpecs:
    def test_relative_magnitudes(self):
        """HMC is the hot part, Wide I/O the cool one (Table 1 traits)."""
        assert HMC_POWER.standby_mw > DDR3_POWER.standby_mw > WIDEIO_POWER.standby_mw

    def test_logic_totals(self):
        t2 = T2_LOGIC_POWER.total_mw(t2_logic_floorplan())
        assert 5000 < t2 < 12000  # a few watts, 28nm host


class TestLogicSpec:
    def test_total_counts_blocks(self):
        fp = t2_logic_floorplan()
        spec = LogicPowerSpec(per_block_mw={BlockType.CORE: 100.0}, background_mw=50.0)
        assert spec.total_mw(fp) == pytest.approx(50.0 + 8 * 100.0)


class TestCommandEnergy:
    """Per-command energy ledger: arithmetic spot checks and the
    reconciliation between the command and occupancy paths."""

    @pytest.fixture(scope="class")
    def timing(self):
        from repro.dram.timing import TimingParams

        return TimingParams.ddr3_1600()

    def test_per_command_charges(self, timing):
        from repro.power.model import CommandEnergySpec

        spec = CommandEnergySpec.from_power(DDR3_POWER, timing)
        bank_mw = DDR3_POWER.bank_static_mw + DDR3_POWER.bank_dyn_mw
        # ACT charge = active-bank power over the tRCD footprint.
        assert spec.act_nj == pytest.approx(
            bank_mw * timing.command_duration_us("ACT")
        )
        # REF restores every bank of the die.
        assert spec.ref_nj == pytest.approx(
            8 * bank_mw * timing.command_duration_us("REF")
        )
        with pytest.raises(ConfigurationError):
            spec.energy_nj("NOP")

    def test_state_power_matches_anchor(self):
        from repro.power.model import state_power_mw

        # Table 5 calibration: idle stack 4 x 27 mW; the 0-0-0-2 state's
        # active die adds io_base + 2 banks.
        assert state_power_mw(DDR3_POWER, (0, 0, 0, 0)) == pytest.approx(4 * 27.0)
        assert state_power_mw(DDR3_POWER, (0, 0, 0, 2)) == pytest.approx(
            4 * 27.0 + 23.5 + 2 * (40.0 + 45.0)
        )

    def test_ledger_arithmetic(self, timing):
        from repro.power.model import energy_ledger

        commands = {"ACT": 10, "PRE": 10, "RD": 50, "WR": 0, "REF": 0}
        occupancy = {(0, 0, 0, 0): 700, (1, 0, 0, 0): 300}
        report = energy_ledger(
            commands, occupancy, DDR3_POWER, timing, num_dies=4
        )
        runtime_us = timing.cycles_to_us(1000)
        assert report.background_nj == pytest.approx(4 * 27.0 * runtime_us)
        # Zero-count commands are dropped from the split.
        assert set(report.per_command_nj) == {"ACT", "PRE", "RD"}
        assert report.command_total_nj == pytest.approx(
            report.background_nj + sum(report.per_command_nj.values())
        )
        assert report.occupancy_nj > 0
        assert "command path" in report.summary()

    def test_dropped_cycles_charged_at_idle_floor(self, timing):
        from repro.power.model import energy_ledger

        base = energy_ledger(
            {}, {(0, 0, 0, 0): 500}, DDR3_POWER, timing, num_dies=4
        )
        dropped = energy_ledger(
            {},
            {(0, 0, 0, 0): 500},
            DDR3_POWER,
            timing,
            num_dies=4,
            states_dropped=500,
        )
        assert dropped.unattributed_cycles == 500
        # Idle floor: the dropped half contributes exactly one more
        # idle-state's worth of energy on both paths.
        assert dropped.occupancy_nj == pytest.approx(2 * base.occupancy_nj)
        assert dropped.background_nj == pytest.approx(2 * base.background_nj)

    def test_idle_run_reconciles_exactly(self, timing):
        from repro.power.model import energy_ledger

        report = energy_ledger(
            {}, {(0, 0, 0, 0): 1234}, DDR3_POWER, timing, num_dies=4
        )
        # An idle run has no per-command charges and the occupancy path
        # is pure standby: the two paths agree exactly.
        assert report.mismatch_fraction == pytest.approx(0.0)

    def test_ledger_from_sim_result(self, timing):
        """End to end: a real engine run's commands + histogram feed the
        ledger, and the two paths land within a calibration-level band."""
        from repro.controller import (
            SimConfig,
            StandardJEDEC,
            WorkloadConfig,
            generate_workload,
        )
        from repro.controller.engine import EventDrivenEngine
        from repro.power.model import energy_ledger

        cfg = SimConfig(timing=timing)
        wl = generate_workload(WorkloadConfig(num_requests=800, seed=9))
        res = EventDrivenEngine(cfg, StandardJEDEC(timing), wl).run()
        report = energy_ledger(
            res.commands,
            res.state_occupancy,
            DDR3_POWER,
            timing,
            num_dies=4,
            states_dropped=res.states_dropped,
        )
        assert report.command_total_nj > 0
        assert abs(report.mismatch_fraction) < 0.25
