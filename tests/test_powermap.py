"""Power map rasterization: conservation and placement."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.floorplan import ddr3_die_floorplan, hmc_dram_die_floorplan, t2_logic_floorplan
from repro.geometry import Grid2D, Rect
from repro.power import MemoryState, PowerMap, dram_power_map, logic_power_map
from repro.power.model import DDR3_POWER, HMC_POWER, T2_LOGIC_POWER, die_power_mw

VDD = 1.5


@pytest.fixture(scope="module")
def fp():
    return ddr3_die_floorplan()


@pytest.fixture(scope="module")
def grid(fp):
    return Grid2D.from_pitch(fp.outline, 0.4)


class TestPowerMap:
    def test_zeros(self, grid):
        pmap = PowerMap.zeros(grid)
        assert pmap.total_current == 0.0

    def test_block_power_conserved(self, grid):
        pmap = PowerMap.zeros(grid)
        pmap.add_block_power(Rect(1.0, 1.0, 3.0, 2.0), 150.0, VDD)
        assert pmap.total_power_mw(VDD) == pytest.approx(150.0)

    def test_negative_power_rejected(self, grid):
        pmap = PowerMap.zeros(grid)
        with pytest.raises(ConfigurationError):
            pmap.add_block_power(Rect(0, 0, 1, 1), -1.0, VDD)

    def test_shape_mismatch(self, grid):
        with pytest.raises(ConfigurationError):
            PowerMap(grid, np.zeros((3, 3)))

    def test_current_located_at_block(self, grid, fp):
        pmap = PowerMap.zeros(grid)
        rect = fp.bank_rect(0)
        pmap.add_block_power(rect, 100.0, VDD)
        # All current inside (or at the boundary cells of) the bank rect.
        for j in range(grid.ny):
            for i in range(grid.nx):
                if pmap.current[j, i] > 0:
                    cell = grid.cell_rect(i, j)
                    assert cell.overlap_area(rect) > 0


class TestDramPowerMap:
    def test_total_matches_die_power(self, fp, grid):
        for text in ("0-0-0-2", "2-2-2-2", "0-0-2b-2a"):
            state = MemoryState.from_string(text, fp)
            for die in range(4):
                pmap = dram_power_map(fp, DDR3_POWER, state, die, grid, VDD)
                assert pmap.total_power_mw(VDD) == pytest.approx(
                    die_power_mw(DDR3_POWER, fp, state, die), rel=1e-9
                )

    def test_idle_die_uniform(self, fp, grid):
        state = MemoryState.idle(4)
        pmap = dram_power_map(fp, DDR3_POWER, state, 0, grid, VDD)
        assert pmap.total_power_mw(VDD) == pytest.approx(DDR3_POWER.standby_mw)
        # Uniform spread: all interior cells equal.
        interior = pmap.current[2:-2, 2:-2]
        assert np.allclose(interior, interior[0, 0])

    def test_active_bank_hotspot(self, fp, grid):
        state = MemoryState(((0,), (), (), ()))
        pmap = dram_power_map(fp, DDR3_POWER, state, 0, grid, VDD)
        bank = fp.bank_rect(0)
        i, j = grid.nearest_node(bank.center)
        # The bank region carries far more current than the far corner.
        assert pmap.current[j, i] > 5 * pmap.current[-1, -1]

    def test_mirrored_flips_hotspot(self, fp, grid):
        state = MemoryState(((0,), (), (), ()))
        normal = dram_power_map(fp, DDR3_POWER, state, 0, grid, VDD)
        mirrored = dram_power_map(fp, DDR3_POWER, state, 0, grid, VDD, mirrored=True)
        assert mirrored.total_current == pytest.approx(normal.total_current)
        # Mirrored map equals the left-right flipped normal map.
        assert np.allclose(mirrored.current, normal.current[:, ::-1], atol=1e-12)

    def test_decoder_power_in_spine(self, fp, grid):
        """The decoder fraction loads the spine segment over the bank."""
        state = MemoryState(((0,), (), (), ()))
        pmap = dram_power_map(fp, DDR3_POWER, state, 0, grid, VDD)
        spine_y = fp.outline.center.y
        bank_x = fp.bank_rect(0).center.x
        i, j = grid.nearest_node(type(fp.outline.center)(bank_x, spine_y))
        far_i, far_j = grid.nearest_node(type(fp.outline.center)(6.5, spine_y))
        assert pmap.current[j, i] > pmap.current[far_j, far_i]

    def test_hmc_uses_periphery(self):
        fp = hmc_dram_die_floorplan()
        grid = Grid2D.from_pitch(fp.outline, 0.4)
        state = MemoryState(((0, 1), (), (), ()))
        pmap = dram_power_map(fp, HMC_POWER, state, 0, grid, VDD)
        expected = die_power_mw(HMC_POWER, fp, state, 0)
        assert pmap.total_power_mw(VDD) == pytest.approx(expected, rel=1e-9)


class TestLogicPowerMap:
    def test_total(self):
        fp = t2_logic_floorplan()
        grid = Grid2D.from_pitch(fp.outline, 0.4)
        pmap = logic_power_map(fp, T2_LOGIC_POWER, grid, VDD)
        assert pmap.total_power_mw(VDD) == pytest.approx(
            T2_LOGIC_POWER.total_mw(fp), rel=1e-9
        )

    def test_scale(self):
        fp = t2_logic_floorplan()
        grid = Grid2D.from_pitch(fp.outline, 0.4)
        half = logic_power_map(fp, T2_LOGIC_POWER, grid, VDD, scale=0.5)
        full = logic_power_map(fp, T2_LOGIC_POWER, grid, VDD, scale=1.0)
        assert half.total_current == pytest.approx(full.total_current / 2)

    def test_negative_scale(self):
        fp = t2_logic_floorplan()
        grid = Grid2D.from_pitch(fp.outline, 0.4)
        with pytest.raises(ConfigurationError):
            logic_power_map(fp, T2_LOGIC_POWER, grid, VDD, scale=-1.0)


@settings(max_examples=20, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=2), min_size=4, max_size=4))
def test_conservation_property(counts):
    """Rasterized power equals analytic die power for any state."""
    fp = ddr3_die_floorplan()
    grid = Grid2D.from_pitch(fp.outline, 0.4)
    state = MemoryState.from_counts(counts, fp)
    for die in range(4):
        pmap = dram_power_map(fp, DDR3_POWER, state, die, grid, VDD)
        assert pmap.total_power_mw(VDD) == pytest.approx(
            die_power_mw(DDR3_POWER, fp, state, die), rel=1e-9
        )
