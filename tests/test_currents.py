"""Branch currents and TSV current crowding."""

import numpy as np
import pytest

from repro.errors import MeshError, SolverError
from repro.pdn import build_stack
from repro.power import MemoryState
from repro.rmesh.currents import BranchCurrentAnalysis, CrowdingReport


@pytest.fixture(scope="module")
def analysis(ddr3_stack, ddr3_floorplan):
    state = MemoryState.from_string("0-0-0-2", ddr3_floorplan)
    return BranchCurrentAnalysis(ddr3_stack.solve_state(state).raw)


class TestCrowdingReport:
    def test_uniform_distribution(self):
        report = CrowdingReport(np.full(10, 0.01))
        assert report.crowding_factor == pytest.approx(1.0)
        assert report.gini == pytest.approx(0.0, abs=1e-9)

    def test_concentrated_distribution(self):
        currents = np.zeros(10)
        currents[0] = 1.0
        report = CrowdingReport(currents)
        assert report.crowding_factor == pytest.approx(10.0)
        assert report.gini > 0.8

    def test_empty_rejected(self):
        with pytest.raises(SolverError):
            CrowdingReport(np.array([]))

    def test_totals(self):
        report = CrowdingReport(np.array([0.1, 0.3]))
        assert report.total_a == pytest.approx(0.4)
        assert report.max_a == pytest.approx(0.3)
        assert report.mean_a == pytest.approx(0.2)


class TestInterfaceCurrents:
    def test_kcl_total_equals_downstream_power(
        self, ddr3_stack, analysis, ddr3_floorplan
    ):
        """Current crossing interface 3->4 equals the top die's draw."""
        state = MemoryState.from_string("0-0-0-2", ddr3_floorplan)
        maps = ddr3_stack.power_maps(state)
        top_current = maps[ddr3_stack.load_layer_key(3)].total_current
        report = analysis.interface_crowding("dram3/M3", "dram4/M3")
        # Net upward current == top die load (signed sum, not magnitudes).
        links = analysis.link_currents("dram3/M3", "dram4/M3")
        net = sum(lk.current for lk in links)
        assert abs(net) == pytest.approx(top_current, rel=1e-6)
        assert report.total_a >= abs(net) - 1e-12

    def test_supply_kcl(self, ddr3_stack, analysis, ddr3_floorplan):
        """Supply entry current equals the whole stack's draw."""
        state = MemoryState.from_string("0-0-0-2", ddr3_floorplan)
        total_load = sum(
            m.total_current for m in ddr3_stack.power_maps(state).values()
        )
        report = analysis.supply_crowding()
        assert report.total_a == pytest.approx(total_load, rel=1e-6)

    def test_unknown_interface(self, analysis):
        with pytest.raises((SolverError, MeshError)):
            analysis.interface_crowding("dram1/M3", "nope/M3")

    def test_crowding_follows_load_location(self, ddr3_off_bench, ddr3_floorplan):
        """Edge TSVs near the active banks carry disproportionate current
        (the crowding the paper's reference [6] studies)."""
        state = MemoryState.from_string("0-0-0-2", ddr3_floorplan)
        stack = build_stack(ddr3_off_bench.stack, ddr3_off_bench.baseline)
        res = stack.solve_state(state)
        report = BranchCurrentAnalysis(res.raw).interface_crowding(
            "dram3/M3", "dram4/M3"
        )
        assert report.crowding_factor > 1.5

    def test_idle_stack_interface_quiet(self, ddr3_stack):
        res = ddr3_stack.solve_state(MemoryState.idle(4))
        report = BranchCurrentAnalysis(res.raw).interface_crowding(
            "dram3/M3", "dram4/M3"
        )
        # Only the idle die's standby current crosses upward.
        assert report.total_a < 0.1


class TestLateralDensity:
    def test_shape_and_nonnegative(self, ddr3_stack, analysis):
        density = analysis.layer_current_density("dram4/M3")
        grid = ddr3_stack.model.layer_grid("dram4/M3")
        assert density.shape == (grid.ny, grid.nx)
        assert np.all(density >= 0.0)

    def test_hotspot_near_active_bank(self, analysis, ddr3_floorplan):
        (i, j), amps = analysis.worst_lateral_hotspot("dram4/M3")
        assert amps > 0.0
        # The active banks sit in the left column: the hotspot's x index
        # is in the left half of the die.
        assert i < 9

    def test_unknown_layer(self, analysis):
        with pytest.raises(SolverError):
            analysis.layer_current_density("nope")
