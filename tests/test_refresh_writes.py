"""Controller extensions: periodic refresh and mixed read/write streams."""

import pytest

from repro.controller import (
    IRAwareDistR,
    MemoryControllerSim,
    SimConfig,
    StandardJEDEC,
    WorkloadConfig,
    generate_workload,
)
from repro.dram import Bank, ChannelBus, TimingParams
from repro.errors import ConfigurationError, SimulationError


@pytest.fixture(scope="module")
def timing():
    return TimingParams.ddr3_1600()


class TestWriteDevicePath:
    def test_bank_write_latency(self, timing):
        bank = Bank(0, 0, timing)
        bank.activate(0, 3)
        end = bank.write(timing.tRCD, 3)
        assert end == timing.tRCD + timing.tCWL + timing.burst_cycles
        assert bank.writes_served == 1

    def test_write_wrong_row_rejected(self, timing):
        bank = Bank(0, 0, timing)
        bank.activate(0, 3)
        with pytest.raises(SimulationError):
            bank.write(timing.tRCD, 4)

    def test_write_holds_row_for_twr(self, timing):
        bank = Bank(0, 0, timing)
        bank.activate(0, 3)
        t = max(timing.tRCD, timing.tRAS)
        bank.sync(t)
        bank.write(t, 3)
        assert not bank.can_precharge(t + timing.tWR - 1)
        assert bank.can_precharge(t + timing.tWR)

    def test_channel_write_occupancy(self, timing):
        chan = ChannelBus(0, timing)
        end = chan.issue_write(0)
        assert end == timing.tCWL + timing.burst_cycles
        # The next read must clear the write burst on the shared bus.
        assert not chan.can_issue_read(end - timing.tCL - 1)
        assert chan.can_issue_read(end - timing.tCL)


class TestMixedWorkload:
    def test_write_fraction_applied(self):
        wl = generate_workload(
            WorkloadConfig(num_requests=4000, write_fraction=0.3)
        )
        frac = sum(r.is_write for r in wl) / len(wl)
        assert frac == pytest.approx(0.3, abs=0.03)

    def test_write_fraction_validation(self):
        with pytest.raises(ConfigurationError):
            WorkloadConfig(write_fraction=1.5)

    def test_mixed_stream_completes(self, timing):
        cfg = SimConfig(timing=timing)
        wl = generate_workload(
            WorkloadConfig(num_requests=1200, write_fraction=0.3)
        )
        res = MemoryControllerSim(cfg, StandardJEDEC(timing), wl).run()
        assert res.finished
        for req in wl:
            assert req.complete_cycle is not None
            latency = timing.tCWL if req.is_write else timing.tCL
            assert req.complete_cycle == req.issue_cycle + latency + timing.burst_cycles

    def test_ir_aware_policy_handles_writes(self, timing, ddr3_lut):
        cfg = SimConfig(timing=timing)
        wl = generate_workload(
            WorkloadConfig(num_requests=800, write_fraction=0.5)
        )
        res = MemoryControllerSim(
            cfg, IRAwareDistR(ddr3_lut, 24.0), wl, report_lut=ddr3_lut
        ).run()
        assert res.finished
        assert res.max_ir_mv <= 24.0


class TestRefresh:
    def test_refreshes_issued_at_trefi_rate(self, timing):
        cfg = SimConfig(timing=timing, refresh_enabled=True)
        wl = generate_workload(WorkloadConfig(num_requests=3000))
        res = MemoryControllerSim(cfg, StandardJEDEC(timing), wl).run()
        assert res.finished
        expected = res.cycles * cfg.num_dies / timing.tREFI
        assert res.refreshes == pytest.approx(expected, abs=cfg.num_dies + 1)

    def test_refresh_costs_runtime(self, timing):
        wl_a = generate_workload(WorkloadConfig(num_requests=3000))
        wl_b = generate_workload(WorkloadConfig(num_requests=3000))
        base = MemoryControllerSim(
            SimConfig(timing=timing), StandardJEDEC(timing), wl_a
        ).run()
        refreshed = MemoryControllerSim(
            SimConfig(timing=timing, refresh_enabled=True),
            StandardJEDEC(timing),
            wl_b,
        ).run()
        assert refreshed.runtime_us > base.runtime_us
        # ...but the overhead is bounded (tRFC/tREFI ~ 3% per die stagger).
        assert refreshed.runtime_us < 1.6 * base.runtime_us

    def test_refresh_off_by_default(self, timing):
        cfg = SimConfig(timing=timing)
        wl = generate_workload(WorkloadConfig(num_requests=500))
        res = MemoryControllerSim(cfg, StandardJEDEC(timing), wl).run()
        assert res.refreshes == 0

    def test_refresh_with_ir_aware_policy(self, timing, ddr3_lut):
        cfg = SimConfig(timing=timing, refresh_enabled=True)
        wl = generate_workload(WorkloadConfig(num_requests=1500))
        res = MemoryControllerSim(
            cfg, IRAwareDistR(ddr3_lut, 24.0), wl, report_lut=ddr3_lut
        ).run()
        assert res.finished
        assert res.refreshes > 0
        assert res.max_ir_mv <= 24.0


class TestMultiChannel:
    def test_per_channel_cap_enforced(self, timing):
        """With 2 channels and a per-channel cap of 1, no more than one
        bank per (die, channel) is ever active."""
        cfg = SimConfig(
            timing=timing,
            num_channels=2,
            max_banks_per_die=4,
            max_banks_per_channel=1,
        )
        wl = generate_workload(WorkloadConfig(num_requests=600))
        sim = MemoryControllerSim(cfg, StandardJEDEC(timing), wl)
        res = sim.run()
        assert res.finished
        # The die-level counts can reach 2 (one per channel) but the
        # interleave cap of 4 is never the binding limit.
        assert max(max(c) for c in res.state_occupancy) <= 2

    def test_channel_striping(self, timing):
        cfg = SimConfig(timing=timing, num_channels=2)
        assert cfg.channel_of(0) == 0
        assert cfg.channel_of(3) == 0
        assert cfg.channel_of(4) == 1
        assert cfg.channel_of(7) == 1

    def test_multichannel_throughput_scales(self, timing):
        """Two data buses move the saturating workload faster than one."""
        wl_a = generate_workload(WorkloadConfig(num_requests=1500, arrival_interval=1))
        wl_b = generate_workload(WorkloadConfig(num_requests=1500, arrival_interval=1))
        one = MemoryControllerSim(
            SimConfig(timing=timing, num_channels=1), StandardJEDEC(timing), wl_a
        ).run()
        two = MemoryControllerSim(
            SimConfig(timing=timing, num_channels=2), StandardJEDEC(timing), wl_b
        ).run()
        assert two.runtime_us < one.runtime_us
