"""Controller extensions: periodic refresh and mixed read/write streams."""

import pytest

from repro.controller import (
    IRAwareDistR,
    MemoryControllerSim,
    SimConfig,
    StandardJEDEC,
    WorkloadConfig,
    generate_workload,
)
from repro.dram import Bank, ChannelBus, TimingParams
from repro.errors import ConfigurationError, SimulationError


@pytest.fixture(scope="module")
def timing():
    return TimingParams.ddr3_1600()


class TestWriteDevicePath:
    def test_bank_write_latency(self, timing):
        bank = Bank(0, 0, timing)
        bank.activate(0, 3)
        end = bank.write(timing.tRCD, 3)
        assert end == timing.tRCD + timing.tCWL + timing.burst_cycles
        assert bank.writes_served == 1

    def test_write_wrong_row_rejected(self, timing):
        bank = Bank(0, 0, timing)
        bank.activate(0, 3)
        with pytest.raises(SimulationError):
            bank.write(timing.tRCD, 4)

    def test_write_holds_row_for_twr(self, timing):
        bank = Bank(0, 0, timing)
        bank.activate(0, 3)
        t = max(timing.tRCD, timing.tRAS)
        bank.sync(t)
        bank.write(t, 3)
        assert not bank.can_precharge(t + timing.tWR - 1)
        assert bank.can_precharge(t + timing.tWR)

    def test_channel_write_occupancy(self, timing):
        chan = ChannelBus(0, timing)
        end = chan.issue_write(0)
        assert end == timing.tCWL + timing.burst_cycles
        # The next read must clear the write burst on the shared bus.
        assert not chan.can_issue_read(end - timing.tCL - 1)
        assert chan.can_issue_read(end - timing.tCL)


class TestMixedWorkload:
    def test_write_fraction_applied(self):
        wl = generate_workload(
            WorkloadConfig(num_requests=4000, write_fraction=0.3)
        )
        frac = sum(r.is_write for r in wl) / len(wl)
        assert frac == pytest.approx(0.3, abs=0.03)

    def test_write_fraction_validation(self):
        with pytest.raises(ConfigurationError):
            WorkloadConfig(write_fraction=1.5)

    def test_mixed_stream_completes(self, timing):
        cfg = SimConfig(timing=timing)
        wl = generate_workload(
            WorkloadConfig(num_requests=1200, write_fraction=0.3)
        )
        res = MemoryControllerSim(cfg, StandardJEDEC(timing), wl).run()
        assert res.finished
        for req in wl:
            assert req.complete_cycle is not None
            latency = timing.tCWL if req.is_write else timing.tCL
            assert req.complete_cycle == req.issue_cycle + latency + timing.burst_cycles

    def test_ir_aware_policy_handles_writes(self, timing, ddr3_lut):
        cfg = SimConfig(timing=timing)
        wl = generate_workload(
            WorkloadConfig(num_requests=800, write_fraction=0.5)
        )
        res = MemoryControllerSim(
            cfg, IRAwareDistR(ddr3_lut, 24.0), wl, report_lut=ddr3_lut
        ).run()
        assert res.finished
        assert res.max_ir_mv <= 24.0


class TestRefresh:
    def test_refreshes_issued_at_trefi_rate(self, timing):
        cfg = SimConfig(timing=timing, refresh_enabled=True)
        wl = generate_workload(WorkloadConfig(num_requests=3000))
        res = MemoryControllerSim(cfg, StandardJEDEC(timing), wl).run()
        assert res.finished
        expected = res.cycles * cfg.num_dies / timing.tREFI
        assert res.refreshes == pytest.approx(expected, abs=cfg.num_dies + 1)

    def test_refresh_costs_runtime(self, timing):
        wl_a = generate_workload(WorkloadConfig(num_requests=3000))
        wl_b = generate_workload(WorkloadConfig(num_requests=3000))
        base = MemoryControllerSim(
            SimConfig(timing=timing), StandardJEDEC(timing), wl_a
        ).run()
        refreshed = MemoryControllerSim(
            SimConfig(timing=timing, refresh_enabled=True),
            StandardJEDEC(timing),
            wl_b,
        ).run()
        assert refreshed.runtime_us > base.runtime_us
        # ...but the overhead is bounded (tRFC/tREFI ~ 3% per die stagger).
        assert refreshed.runtime_us < 1.6 * base.runtime_us

    def test_refresh_off_by_default(self, timing):
        cfg = SimConfig(timing=timing)
        wl = generate_workload(WorkloadConfig(num_requests=500))
        res = MemoryControllerSim(cfg, StandardJEDEC(timing), wl).run()
        assert res.refreshes == 0

    def test_refresh_with_ir_aware_policy(self, timing, ddr3_lut):
        cfg = SimConfig(timing=timing, refresh_enabled=True)
        wl = generate_workload(WorkloadConfig(num_requests=1500))
        res = MemoryControllerSim(
            cfg, IRAwareDistR(ddr3_lut, 24.0), wl, report_lut=ddr3_lut
        ).run()
        assert res.finished
        assert res.refreshes > 0
        assert res.max_ir_mv <= 24.0


class TestRefreshConformance:
    """tREFI/tRFC conformance, checked on both engines.

    The spec contract: each die is refreshed once per tREFI window
    (staggered across dies), and a refreshing die accepts no command
    until tRFC has elapsed -- so no request issued on a die can overlap
    an in-flight refresh there.
    """

    @pytest.fixture(scope="class")
    def runs(self, timing):
        cfg = SimConfig(timing=timing, refresh_enabled=True)
        results = {}
        for engine in ("legacy", "event"):
            wl = generate_workload(WorkloadConfig(num_requests=2000, seed=13))
            sim = MemoryControllerSim(cfg, StandardJEDEC(timing), wl)
            res = sim.run_legacy() if engine == "legacy" else sim.run()
            results[engine] = (res, wl)
        return results

    @pytest.mark.parametrize("engine", ["legacy", "event"])
    def test_trefi_rate_per_die(self, timing, runs, engine):
        res, _ = runs[engine]
        cfg_dies = 4
        windows = res.cycles // timing.tREFI
        # One refresh per die per tREFI window, +/- the partial last
        # window and the die stagger.
        assert abs(res.refreshes - windows * cfg_dies) <= 2 * cfg_dies

    def test_trfc_blackout_at_the_bank(self, timing):
        """tRFC conformance at the bank FSM: a refreshing bank accepts no
        ACT until tRFC has elapsed, and an already-pending ready time is
        never shortened by the blackout."""
        bank = Bank(0, 0, timing)
        blocked_until = bank.block_for_refresh(100)
        assert blocked_until == 100 + timing.tRFC
        assert not bank.can_activate(blocked_until - 1)
        assert bank.can_activate(blocked_until)
        # A longer pre-existing ready time survives a shorter blackout.
        bank2 = Bank(0, 1, timing)
        bank2.ready_cycle = 100 + timing.tRFC + 50
        assert bank2.block_for_refresh(100) == 100 + timing.tRFC
        assert not bank2.can_activate(100 + timing.tRFC)
        assert bank2.can_activate(100 + timing.tRFC + 50)

    def test_refresh_delays_service(self, timing):
        """Refresh blackouts are visible end to end: the same workload
        takes longer with refresh enabled, on the event engine too."""
        wl_a = generate_workload(WorkloadConfig(num_requests=2000, seed=13))
        wl_b = generate_workload(WorkloadConfig(num_requests=2000, seed=13))
        base = MemoryControllerSim(
            SimConfig(timing=timing), StandardJEDEC(timing), wl_a
        ).run()
        refreshed = MemoryControllerSim(
            SimConfig(timing=timing, refresh_enabled=True),
            StandardJEDEC(timing),
            wl_b,
        ).run()
        assert refreshed.cycles > base.cycles
        assert refreshed.refreshes > 0

    def test_engines_agree_under_refresh(self, timing, runs):
        legacy, _ = runs["legacy"]
        event, _ = runs["event"]
        assert legacy.refreshes == event.refreshes
        assert legacy.cycles == event.cycles
        assert legacy.state_occupancy == event.state_occupancy


class TestMultiChannel:
    def test_per_channel_cap_enforced(self, timing):
        """With 2 channels and a per-channel cap of 1, no more than one
        bank per (die, channel) is ever active."""
        cfg = SimConfig(
            timing=timing,
            num_channels=2,
            max_banks_per_die=4,
            max_banks_per_channel=1,
        )
        wl = generate_workload(WorkloadConfig(num_requests=600))
        sim = MemoryControllerSim(cfg, StandardJEDEC(timing), wl)
        res = sim.run()
        assert res.finished
        # The die-level counts can reach 2 (one per channel) but the
        # interleave cap of 4 is never the binding limit.
        assert max(max(c) for c in res.state_occupancy) <= 2

    def test_channel_striping(self, timing):
        cfg = SimConfig(timing=timing, num_channels=2)
        assert cfg.channel_of(0) == 0
        assert cfg.channel_of(3) == 0
        assert cfg.channel_of(4) == 1
        assert cfg.channel_of(7) == 1

    def test_multichannel_throughput_scales(self, timing):
        """Two data buses move the saturating workload faster than one."""
        wl_a = generate_workload(WorkloadConfig(num_requests=1500, arrival_interval=1))
        wl_b = generate_workload(WorkloadConfig(num_requests=1500, arrival_interval=1))
        one = MemoryControllerSim(
            SimConfig(timing=timing, num_channels=1), StandardJEDEC(timing), wl_a
        ).run()
        two = MemoryControllerSim(
            SimConfig(timing=timing, num_channels=2), StandardJEDEC(timing), wl_b
        ).run()
        assert two.runtime_us < one.runtime_us
