"""Tests for the deep-telemetry layer: profiler, convergence traces,
run-history store, drift attribution, atomic writes, span absorption."""

from __future__ import annotations

import json
import os
import time

import numpy as np
import pytest
import scipy.sparse as sp

from repro.errors import ConfigurationError
from repro.obs import profile as obs_profile
from repro.obs import trace as obs_trace
from repro.obs.atomic import atomic_write_text
from repro.obs.manifest import build_manifest, load_manifest
from repro.obs.profile import BoundedSeries
from repro.obs.store import (
    RunHistoryStore,
    delta_markdown,
    diff_runs,
    export_chrome_trace,
    list_markdown,
    normalize_bench_record,
    normalize_manifest,
    show_markdown,
)
from repro.rmesh import backends as rb


@pytest.fixture
def clean_profile():
    obs_profile.stop_profiler(final_sample=False)
    obs_profile.reset_profile()
    yield
    obs_profile.stop_profiler(final_sample=False)
    obs_profile.reset_profile()


@pytest.fixture
def clean_traces():
    rb.reset_traces()
    yield
    rb.reset_traces()


def _spd_matrix(n: int = 60) -> sp.csr_matrix:
    return sp.diags(
        [np.full(n - 1, -1.0), np.full(n, 4.0), np.full(n - 1, -1.0)],
        [-1, 0, 1],
    ).tocsr()


# -- BoundedSeries (the shared curve downsampler) -----------------------------


class TestBoundedSeries:
    def test_short_series_is_exact(self):
        s = BoundedSeries(cap=16)
        for i in range(10):
            s.append(i, i * 2.0)
        assert s.points() == [(float(i), float(i * 2)) for i in range(10)]
        assert s.stride == 1
        assert len(s) == 10

    def test_bounded_size_and_endpoints(self):
        s = BoundedSeries(cap=16)
        for i in range(10_000):
            s.append(i, 1.0 / (i + 1))
        pts = s.points()
        assert len(pts) <= 16
        assert pts[0] == (0.0, 1.0)  # first point always survives
        assert pts[-1] == (9999.0, 1.0 / 10_000)  # latest always included
        assert s.stride > 1
        # Interior stays monotonically ordered in x.
        xs = [p[0] for p in pts]
        assert xs == sorted(xs)

    def test_endpoints_survive_every_decimation_level(self):
        for total in (15, 16, 17, 100, 1023):
            s = BoundedSeries(cap=8)
            for i in range(total):
                s.append(i, float(i))
            pts = s.points()
            assert pts[0][0] == 0.0
            assert pts[-1][0] == float(total - 1)
            assert len(pts) <= 8

    def test_cap_floor(self):
        with pytest.raises(ValueError):
            BoundedSeries(cap=2)


# -- resource profiler --------------------------------------------------------


class TestProfiler:
    def test_start_stop_collects_samples(self, clean_profile):
        assert obs_profile.start_profiler(interval_s=0.002)
        time.sleep(0.03)
        obs_profile.stop_profiler()
        assert not obs_profile.profiler_running()
        n = obs_profile.sample_count()
        assert n >= 2  # initial + closing sample at minimum
        samples = obs_profile.samples()
        assert all(s.pid == os.getpid() for s in samples)
        assert all(s.rss_kb > 0 for s in samples)
        ts = [s.ts_us for s in samples]
        assert ts == sorted(ts)

    def test_start_is_idempotent(self, clean_profile):
        obs_profile.start_profiler(interval_s=0.05)
        thread_count_after_first = obs_profile.sample_count()
        obs_profile.start_profiler(interval_s=0.05)
        # Second start takes no extra synchronous sample.
        assert obs_profile.sample_count() == thread_count_after_first
        obs_profile.stop_profiler(final_sample=False)

    def test_samples_attach_to_active_span(self, clean_profile):
        with obs_trace.span("telemetry.outer"):
            with obs_trace.span("telemetry.inner"):
                sample = obs_profile.take_sample()
        assert sample.span == "telemetry.inner"
        assert sample.depth == 1
        after = obs_profile.take_sample()
        assert after.depth == 0

    def test_export_absorb_roundtrip_and_dedup(self, clean_profile):
        obs_profile.start_profiler(interval_s=0.002)
        time.sleep(0.02)
        obs_profile.stop_profiler()
        exported = obs_profile.export_samples()
        n = len(exported)
        assert n >= 2
        obs_profile.reset_profile()
        obs_profile.absorb_samples(exported)
        assert obs_profile.sample_count() == n
        # Re-absorbing the same export is a no-op, not a duplication.
        obs_profile.absorb_samples(exported)
        assert obs_profile.sample_count() == n
        # Round-trip preserves content.
        assert obs_profile.export_samples() == sorted(
            exported, key=lambda d: (d["pid"], d["ts_us"])
        )

    def test_cross_process_samples_keep_foreign_pid(self, clean_profile):
        foreign = [
            {
                "ts_us": 10.0,
                "pid": 999_999,
                "rss_kb": 1234.0,
                "cpu_s": 0.5,
                "gc_collections": 3,
                "span": "worker.task",
                "depth": 1,
            }
        ]
        obs_profile.absorb_samples(foreign)
        assert obs_profile.samples()[-1].pid == 999_999
        events = obs_profile.counter_events()
        assert any(e["pid"] == 999_999 for e in events)

    def test_buffer_decimation_bounds_memory(self, clean_profile):
        for i in range(obs_profile.PROFILE_SAMPLE_CAP + 100):
            obs_profile._record(
                obs_profile.ProfileSample(
                    ts_us=float(i), pid=1, rss_kb=1.0, cpu_s=0.0,
                    gc_collections=0,
                )
            )
        assert obs_profile.sample_count() < obs_profile.PROFILE_SAMPLE_CAP
        assert obs_profile.stride() >= 2
        samples = obs_profile.samples()
        assert samples[0].ts_us == 0.0  # first sample survives decimation

    def test_summary_and_counter_events(self, clean_profile):
        obs_profile.start_profiler(interval_s=0.002)
        time.sleep(0.02)
        obs_profile.stop_profiler()
        digest = obs_profile.summary()
        assert digest["samples"] == obs_profile.sample_count()
        assert digest["peak_rss_kb"] > 0
        assert len(digest["curve"]) <= obs_profile.SUMMARY_CURVE_CAP
        events = obs_profile.counter_events()
        assert len(events) == 3 * digest["samples"]
        assert {e["name"] for e in events} == {
            "profile.rss_kb", "profile.cpu_s", "profile.gc_collections",
        }
        # The unified chrome export interleaves the counter tracks.
        doc = obs_trace.to_chrome_trace()
        names = {e["name"] for e in doc["traceEvents"]}
        assert "profile.rss_kb" in names

    def test_ensure_profiler_respects_env(self, clean_profile, monkeypatch):
        monkeypatch.delenv(obs_profile.PROFILE_ENV, raising=False)
        assert not obs_profile.ensure_profiler()
        monkeypatch.setenv(obs_profile.PROFILE_ENV, "0")
        assert not obs_profile.ensure_profiler()
        monkeypatch.setenv(obs_profile.PROFILE_ENV, "1")
        assert obs_profile.ensure_profiler()
        assert obs_profile.profiler_running()

    def test_physics_bitwise_identical_with_profiler(
        self, clean_profile, ddr3_stack, ddr3_floorplan
    ):
        from repro.power.state import MemoryState

        state = MemoryState.from_string("0-0-0-2", ddr3_floorplan)
        baseline = ddr3_stack.solve_state(state)
        obs_profile.start_profiler(interval_s=0.001)
        try:
            profiled = ddr3_stack.solve_state(state)
        finally:
            obs_profile.stop_profiler()
        assert obs_profile.sample_count() > 0
        assert np.array_equal(baseline.raw.drops, profiled.raw.drops)


# -- convergence traces -------------------------------------------------------


class TestConvergenceTraces:
    def test_traced_solve_records_curve(self, clean_traces):
        op = rb.CGOperator(_spd_matrix(), precond_kind="jacobi", rtol=1e-10)
        rhs = np.ones(60)
        op.solve(rhs)
        t = op.last_trace
        assert t is not None and t.converged
        assert t.backend == "cg" and t.preconditioner == "jacobi"
        assert t.nodes == 60 and t.iterations > 0
        assert t.points[0][0] == 0.0  # initial residual at iteration 0
        assert t.points[-1][0] == float(t.iterations)
        # Residual curve decreases overall and hits the tolerance floor.
        assert t.final_residual <= 1e-9
        assert t.points[0][1] > t.points[-1][1]
        assert rb.trace_count() == 1

    def test_sampling_skips_and_clears_last_trace(self, clean_traces):
        op = rb.CGOperator(_spd_matrix(), precond_kind="jacobi", rtol=1e-10)
        rhs = np.ones(60)
        traced = op.solve(rhs)
        assert op.last_trace is not None
        untraced = op.solve(rhs)  # default REPRO_TRACE_EVERY=8: sampled out
        assert op.last_trace is None
        assert np.array_equal(traced, untraced)  # tracing never alters physics
        assert rb.trace_count() == 1

    def test_trace_every_env(self, clean_traces, monkeypatch):
        monkeypatch.setenv(rb.TRACE_EVERY_ENV, "1")
        op = rb.CGOperator(_spd_matrix(), precond_kind="jacobi", rtol=1e-10)
        rhs = np.ones(60)
        op.solve(rhs)
        op.solve(rhs)
        assert rb.trace_count() == 2

    def test_tracing_disabled_env(self, clean_traces, monkeypatch):
        monkeypatch.setenv(rb.CONVERGENCE_TRACE_ENV, "0")
        op = rb.CGOperator(_spd_matrix(), precond_kind="jacobi", rtol=1e-10)
        op.solve(np.ones(60))
        assert op.last_trace is None
        assert rb.trace_count() == 0

    def test_bounded_points_on_long_solves(self, clean_traces, monkeypatch):
        # Unpreconditioned-style slow convergence: loose jacobi on a
        # larger mesh still converges but takes many iterations.
        monkeypatch.setenv(rb.CG_MAXITER_ENV, "100000")
        op = rb.CGOperator(_spd_matrix(2000), precond_kind="jacobi", rtol=1e-12)
        op.solve(np.random.default_rng(7).random(2000))
        t = op.last_trace
        assert t is not None
        assert len(t.points) <= rb.TRACE_POINT_CAP + 1
        assert t.points[-1][0] == float(t.iterations)

    def test_export_absorb_merge_stable(self, clean_traces):
        op = rb.CGOperator(_spd_matrix(), precond_kind="jacobi", rtol=1e-10)
        op.solve(np.ones(60))
        exported = rb.export_traces()
        rb.reset_traces()
        rb.absorb_traces(exported)
        assert rb.trace_count() == 1
        roundtrip = rb.traces()[0]
        assert roundtrip.to_dict() == exported[0]
        # A second export/absorb hop changes nothing (merge-stable).
        second = rb.export_traces()
        assert second == exported

    def _currents(self, stack, floorplan):
        from repro.power.state import MemoryState

        state = MemoryState.from_string("0-0-0-2", floorplan)
        maps = stack.power_maps(state)
        return stack.solver_for("direct").currents_from_maps(maps)

    def test_ir_result_carries_convergence(
        self, clean_traces, ddr3_stack, ddr3_floorplan
    ):
        currents = self._currents(ddr3_stack, ddr3_floorplan)
        result = ddr3_stack.solver_for("cg").solve_currents(currents)
        assert result.backend == "cg"
        assert result.convergence is not None
        assert result.convergence.nodes == len(currents)

    def test_direct_backend_never_traces(
        self, clean_traces, ddr3_stack, ddr3_floorplan
    ):
        currents = self._currents(ddr3_stack, ddr3_floorplan)
        result = ddr3_stack.solver_for("direct").solve_currents(currents)
        assert result.convergence is None
        assert rb.trace_count() == 0


# -- atomic writes ------------------------------------------------------------


class TestAtomicWrites:
    def test_write_and_replace(self, tmp_path):
        target = tmp_path / "artifact.json"
        atomic_write_text(target, '{"v": 1}\n')
        assert json.loads(target.read_text()) == {"v": 1}
        atomic_write_text(target, '{"v": 2}\n')
        assert json.loads(target.read_text()) == {"v": 2}
        # No staging files left behind.
        assert list(tmp_path.iterdir()) == [target]

    def test_failure_leaves_original_intact(self, tmp_path, monkeypatch):
        target = tmp_path / "artifact.json"
        atomic_write_text(target, "original\n")

        def boom(src, dst):
            raise OSError("disk gone")

        monkeypatch.setattr(os, "replace", boom)
        with pytest.raises(OSError):
            atomic_write_text(target, "replacement\n")
        monkeypatch.undo()
        assert target.read_text() == "original\n"
        assert list(tmp_path.iterdir()) == [target]

    def test_manifest_and_metrics_writers_are_atomic(self, tmp_path):
        from repro.obs.metrics import write_metrics

        manifest = build_manifest("telemetry.test", title="t")
        mpath = manifest.write(tmp_path / "m.json")
        assert load_manifest(mpath).experiment_id == "telemetry.test"
        write_metrics(tmp_path / "metrics.json")
        data = json.loads((tmp_path / "metrics.json").read_text())
        assert "metrics" in data
        leftovers = [p for p in tmp_path.iterdir() if p.name.endswith(".tmp")]
        assert leftovers == []


# -- span absorption ordering + dedup -----------------------------------------


class TestAbsorbSpans:
    def _fake_span(self, name, ts, pid=4242):
        return {
            "name": name, "ts_us": ts, "dur_us": 5.0, "pid": pid,
            "tid": 1, "depth": 0, "parent": None, "count": 1, "attrs": {},
        }

    def test_absorb_orders_by_start_time(self):
        base = obs_trace.span_count()
        # Completion order (child-first) is NOT start order.
        out_of_order = [
            self._fake_span("late", 300.0),
            self._fake_span("early", 100.0),
            self._fake_span("middle", 200.0),
        ]
        obs_trace.absorb_spans(out_of_order)
        absorbed = obs_trace.spans(since=base)
        assert [r.name for r in absorbed] == ["early", "middle", "late"]

    def test_reabsorb_is_deduplicated(self):
        base = obs_trace.span_count()
        batch = [self._fake_span("dup", 50.0, pid=777)]
        obs_trace.absorb_spans(batch)
        obs_trace.absorb_spans(batch)  # same worker return merged twice
        assert len(obs_trace.spans(since=base)) == 1


# -- run-history store --------------------------------------------------------


def _manifest_dict(**overrides):
    manifest = build_manifest(
        "telemetry.unit", title="unit", config={"k": 1}
    ).to_dict()
    manifest.update(overrides)
    return manifest


class TestRunHistoryStore:
    def test_ingest_and_resolve(self, tmp_path):
        store = RunHistoryStore(tmp_path)
        rid1 = store.ingest_manifest(_manifest_dict(experiment_id="one"))
        rid2 = store.ingest_manifest(_manifest_dict(experiment_id="two"))
        assert rid1 != rid2
        runs = store.runs()
        assert [r["experiment_id"] for r in runs] == ["one", "two"]
        assert store.resolve("last")["run_id"] == rid2
        assert store.resolve("last~1")["run_id"] == rid1
        assert store.resolve(rid1[:6])["run_id"] == rid1
        with pytest.raises(ConfigurationError):
            store.resolve("nope")
        with pytest.raises(ConfigurationError):
            store.resolve("last~99")

    def test_reingest_identical_content_is_skipped(self, tmp_path):
        store = RunHistoryStore(tmp_path)
        data = _manifest_dict()
        rid1 = store.ingest_manifest(data)
        rid2 = store.ingest_manifest(data)
        assert rid1 == rid2
        assert len(store.runs()) == 1

    def test_empty_store_raises(self, tmp_path):
        store = RunHistoryStore(tmp_path)
        assert store.runs() == []
        with pytest.raises(ConfigurationError):
            store.resolve("last")

    def test_corrupt_lines_are_skipped(self, tmp_path):
        store = RunHistoryStore(tmp_path)
        store.ingest_manifest(_manifest_dict())
        with open(store.index_path, "a") as fh:
            fh.write("{not json\n")
        store.ingest_manifest(_manifest_dict(experiment_id="after"))
        assert len(store.runs()) == 2

    def test_ingest_path_sniffs_manifest_and_bench(self, tmp_path):
        store = RunHistoryStore(tmp_path / "history")
        mpath = tmp_path / "manifest.json"
        build_manifest("telemetry.sniff").write(mpath)
        rid = store.ingest_path(mpath)
        assert store.resolve(rid)["kind"] == "experiment"
        bench = {
            "suite": "unit-suite",
            "created": "2026-01-01T00:00:00Z",
            "smoke": True,
            "repeats": 1,
            "git": {"sha": "deadbee", "dirty": False},
            "workers": 1,
            "environment": {},
            "manifest": _manifest_dict(),
            "benchmarks": [
                {
                    "name": "bench_a", "status": "ok", "wall_s": 0.5,
                    "max_ir_mv": 57.0, "plan_hashes": ["abc123"],
                }
            ],
        }
        bpath = tmp_path / "BENCH_x.json"
        bpath.write_text(json.dumps(bench))
        rid2 = store.ingest_path(bpath)
        record = store.resolve(rid2)
        assert record["kind"] == "bench_suite"
        assert record["benches"][0]["name"] == "bench_a"
        # Bench-level hashes merge into the manifest's observed plans.
        assert record["plans"]["abc123"] == "bench_a"
        with pytest.raises(ConfigurationError):
            other = tmp_path / "other.json"
            other.write_text("{}")
            store.ingest_path(other)

    def test_plan_bodies_content_addressed(self, tmp_path, ddr3_off_bench):
        from repro.pdn.stackup import plan_stack

        store = RunHistoryStore(tmp_path)
        plan = plan_stack(ddr3_off_bench.stack, ddr3_off_bench.baseline)
        path = store.store_plan(plan)
        assert path.name == f"{plan.plan_hash}.json"
        again = store.store_plan(plan)
        assert again == path
        loaded = store.load_plan(plan.plan_hash)
        assert loaded is not None and loaded.plan_hash == plan.plan_hash
        assert store.load_plan("0" * 16) is None

    def test_normalize_strips_histogram_samples(self):
        data = _manifest_dict()
        data["metrics"] = {
            "counters": {"c": 1},
            "gauges": {"g": 2.0},
            "histograms": {"h": {"count": 3, "max": 9.0, "samples": [1, 2]}},
        }
        record = normalize_manifest(data)
        assert "samples" not in record["histograms"]["h"]
        assert record["histograms"]["h"]["max"] == 9.0


class TestDriftAttribution:
    def _record(self, **overrides):
        base = normalize_manifest(_manifest_dict())
        base.update(overrides)
        return base

    def test_identical_runs_no_drift(self):
        a = self._record(plans={"h1": "ddr3_off"})
        b = self._record(plans={"h1": "ddr3_off"})
        delta = diff_runs(a, b)
        assert delta.drift == "none"
        text = delta_markdown(delta)
        assert "drift: none" in text

    def test_structural_drift_with_plan_diff(self, tmp_path, ddr3_off_bench):
        from repro.pdn.config import Bonding
        from repro.pdn.stackup import plan_stack

        store = RunHistoryStore(tmp_path)
        plan_a = plan_stack(ddr3_off_bench.stack, ddr3_off_bench.baseline)
        plan_b = plan_stack(
            ddr3_off_bench.stack,
            ddr3_off_bench.baseline.with_options(bonding=Bonding.F2F),
        )
        store.store_plan(plan_a)
        store.store_plan(plan_b)
        a = self._record(plans={plan_a.plan_hash: "ddr3_off"})
        b = self._record(plans={plan_b.plan_hash: "ddr3_off"})
        delta = diff_runs(a, b, store)
        assert delta.drift == "structural"
        assert delta.plan_diffs  # real op-level diff was rendered
        text = delta_markdown(delta)
        assert "drift: structural" in text
        assert plan_a.plan_hash in text and plan_b.plan_hash in text

    def test_structural_without_bodies_lists_hashes(self):
        a = self._record(plans={"h1": "ddr3_off"})
        b = self._record(plans={"h2": "ddr3_off"})
        delta = diff_runs(a, b, None)
        assert delta.drift == "structural"
        assert not delta.plan_diffs
        assert any("h1" in line for line in delta.evidence)

    def _trace(self, rtol, final, iters):
        return {
            "backend": "cg", "preconditioner": "jacobi", "nodes": 60,
            "rtol": rtol, "warm_start": False, "iterations": iters,
            "converged": True, "final_residual": final,
            "points": [[0.0, 1.0], [float(iters), final]], "stride": 1,
        }

    def test_numerical_drift_from_residual_floor(self):
        plans = {"h1": "ddr3_off"}
        a = self._record(
            plans=plans, convergence=[self._trace(1e-10, 1e-11, 20)]
        )
        b = self._record(
            plans=plans, convergence=[self._trace(1e-6, 1e-7, 8)]
        )
        delta = diff_runs(a, b)
        assert delta.drift == "numerical"
        assert delta.residual_deltas
        text = delta_markdown(delta)
        assert "drift: numerical" in text
        assert "Residual-curve deltas" in text

    def test_numerical_drift_from_ir_extremum(self):
        plans = {"h1": "ddr3_off"}
        a = self._record(
            plans=plans,
            histograms={"ir.dram_max_mv": {"count": 1, "max": 57.0}},
        )
        b = self._record(
            plans=plans,
            histograms={"ir.dram_max_mv": {"count": 1, "max": 58.5}},
        )
        delta = diff_runs(a, b)
        assert delta.drift == "numerical"
        assert any("IR" in line for line in delta.evidence)

    def test_markdown_renderers(self, tmp_path):
        store = RunHistoryStore(tmp_path)
        rid = store.ingest_manifest(_manifest_dict())
        record = store.resolve(rid)
        assert rid in list_markdown(store.runs())
        assert rid in show_markdown(record)
        doc = export_chrome_trace(record)
        assert doc["metadata"]["run_id"] == rid
        assert isinstance(doc["traceEvents"], list)


# -- cross-process merge through map_design_points ----------------------------


def _square_with_profile(x: int) -> int:
    # Worker-side: ensure_profiler() inside _ObsTask starts the sampler
    # (REPRO_PROFILE is inherited); one explicit sample guarantees at
    # least one record regardless of task duration.
    from repro.obs import profile as p

    p._record(p.take_sample())
    return x * x


class TestCrossProcessMerge:
    def test_profiler_samples_survive_fanout(self, clean_profile, monkeypatch):
        from repro.perf.parallel import map_design_points

        monkeypatch.setenv(obs_profile.PROFILE_ENV, "1")
        before = obs_profile.sample_count()
        results = map_design_points(_square_with_profile, list(range(6)), workers=2)
        assert results == [x * x for x in range(6)]
        assert obs_profile.sample_count() > before

    def test_serial_path_unaffected(self, clean_profile):
        from repro.perf.parallel import map_design_points

        results = map_design_points(_square_with_profile, [1, 2], workers=1)
        assert results == [1, 4]


# -- manifest integration -----------------------------------------------------


class TestManifestTelemetryFields:
    def test_manifest_carries_profile_and_convergence(
        self, clean_profile, clean_traces, tmp_path
    ):
        obs_profile.start_profiler(interval_s=0.002)
        op = rb.CGOperator(_spd_matrix(), precond_kind="jacobi", rtol=1e-10)
        op.solve(np.ones(60))
        obs_profile.stop_profiler()
        manifest = build_manifest("telemetry.fields")
        assert manifest.profile["samples"] > 0
        assert len(manifest.convergence) == 1
        assert manifest.convergence[0]["backend"] == "cg"
        # Round-trips through the validated write/load path.
        loaded = load_manifest(manifest.write(tmp_path / "m.json"))
        assert loaded.profile["samples"] == manifest.profile["samples"]
        assert loaded.convergence == manifest.convergence

    def test_manifest_without_telemetry_stays_lean(
        self, clean_profile, clean_traces, tmp_path
    ):
        manifest = build_manifest("telemetry.lean")
        assert manifest.profile == {}
        assert manifest.convergence == []
        load_manifest(manifest.write(tmp_path / "m.json"))  # still validates


# -- CLI ----------------------------------------------------------------------


class TestObsCli:
    def _run(self, argv, tmp_path):
        from repro.cli import main

        return main(argv + ["--store", str(tmp_path / "history")])

    def test_ingest_list_show_diff_export(self, tmp_path, capsys):
        from repro.cli import main

        store_dir = tmp_path / "history"
        mpath = tmp_path / "m.json"
        build_manifest("telemetry.cli", title="cli test").write(mpath)
        assert main(["obs", "ingest", str(mpath), "--store", str(store_dir)]) == 0
        assert main(["obs", "list", "--store", str(store_dir)]) == 0
        out = capsys.readouterr().out
        assert "telemetry.cli" in out
        assert main(["obs", "show", "last", "--store", str(store_dir)]) == 0
        # Self-diff: zero drift, gate passes.
        code = main(
            ["obs", "diff", "last", "last", "--gate", "--store", str(store_dir),
             "--out", str(tmp_path / "delta.md")]
        )
        assert code == 0
        assert "drift: none" in (tmp_path / "delta.md").read_text()
        out_trace = tmp_path / "unified.json"
        assert main(
            ["obs", "export", "last", "--out", str(out_trace),
             "--store", str(store_dir)]
        ) == 0
        doc = json.loads(out_trace.read_text())
        assert "traceEvents" in doc

    def test_attribute_gates_on_drift(self, tmp_path, capsys):
        from repro.cli import main

        store = RunHistoryStore(tmp_path / "history")
        store.ingest_manifest(_manifest_dict(plans={"h1": "a"}))
        store.ingest_manifest(_manifest_dict(plans={"h2": "a"}))
        code = main(
            ["obs", "attribute", "last~1", "last", "--gate",
             "--store", str(tmp_path / "history")]
        )
        assert code == 1
        assert "drift: structural" in capsys.readouterr().out

    def test_history_flag_records_run(self, tmp_path, monkeypatch, capsys):
        from repro.cli import main

        monkeypatch.setenv("REPRO_HISTORY_DIR", str(tmp_path / "history"))
        assert main(["--history", "run", "table8"]) == 0
        store = RunHistoryStore(tmp_path / "history")
        runs = store.runs()
        assert len(runs) == 1
        assert runs[0]["experiment_id"] == "table8"


# -- attribution physics axis (PR 8) ------------------------------------------


def _attribution_summary(components, worst_mv=None, layer="dram4/M1"):
    total = sum(components.values())
    return {
        "ddr3_off": {
            "benchmark": "ddr3_off",
            "plan_hash": "f98670cee3d3cd88",
            "state": "0-0-0-2",
            "worst_drop_mv": worst_mv if worst_mv is not None else total,
            "worst_layer": layer,
            "components_mv": dict(components),
            "closure_rel": 0.0,
            "kcl_max_rel": 1e-12,
            "orphan_branches": 0,
            "top_op": "add_layer dram4/M3",
        }
    }


class TestAttributionPhysicsAxis:
    def test_pre_pr8_record_degrades_to_na(self, tmp_path):
        """A history written before attribution existed must neither
        crash the diff nor silently pretend to compare physics."""
        from pathlib import Path

        store = RunHistoryStore(tmp_path)
        store.root.mkdir(parents=True, exist_ok=True)
        fixture = (
            Path(__file__).parent / "golden" / "pre_pr8_run.json"
        ).read_text()
        old = json.loads(fixture)
        assert "attribution" not in old  # the fixture predates the field
        with open(store.index_path, "a", encoding="utf-8") as fh:
            fh.write(json.dumps(old, sort_keys=True) + "\n")
        store.ingest_manifest(
            _manifest_dict(
                attribution=_attribution_summary({"tsv": 2.5, "metal": 26.0})
            )
        )
        delta = diff_runs(store.resolve("last~1"), store.resolve("last"), store)
        text = delta_markdown(delta)
        assert "attribution: n/a" in text
        assert old["run_id"] in delta.attribution_note
        assert "predates attribution records" in text

    def test_component_move_attributes_numerical_drift(self):
        a = normalize_manifest(
            _manifest_dict(
                attribution=_attribution_summary(
                    {"tsv": 2.538, "metal:dram4/M1": 26.152}
                )
            )
        )
        b = normalize_manifest(
            _manifest_dict(
                attribution=_attribution_summary(
                    {"tsv": 0.969, "metal:dram4/M1": 22.968}
                )
            )
        )
        delta = diff_runs(a, b)
        assert delta.drift == "numerical"
        assert "drifted" in delta.attribution_note
        moved = {row["component"] for row in delta.attribution_deltas}
        assert moved == {"tsv", "metal:dram4/M1"}
        text = delta_markdown(delta)
        assert "| ddr3_off | tsv |" in text

    def test_identical_attribution_is_no_drift(self):
        attr = _attribution_summary({"tsv": 2.5, "package": 0.06})
        a = normalize_manifest(_manifest_dict(attribution=attr))
        b = normalize_manifest(_manifest_dict(attribution=attr))
        delta = diff_runs(a, b)
        assert delta.drift == "none"
        assert "unchanged" in delta.attribution_note

    def test_worst_layer_move_is_drift(self):
        a = normalize_manifest(
            _manifest_dict(
                attribution=_attribution_summary({"tsv": 2.5}, layer="dram4/M1")
            )
        )
        b = normalize_manifest(
            _manifest_dict(
                attribution=_attribution_summary({"tsv": 2.5}, layer="dram1/M1")
            )
        )
        delta = diff_runs(a, b)
        assert delta.drift == "numerical"
        assert any("worst-drop layer" in line for line in delta.evidence)

    def test_empty_attribution_reports_none_recorded(self):
        a = normalize_manifest(_manifest_dict(attribution={}))
        b = normalize_manifest(_manifest_dict(attribution={}))
        delta = diff_runs(a, b)
        assert "none recorded" in delta.attribution_note

    def test_attribution_markdown_renders_table(self):
        from repro.obs.store import attribution_markdown

        a = normalize_manifest(
            _manifest_dict(attribution=_attribution_summary({"tsv": 2.5}))
        )
        b = normalize_manifest(
            _manifest_dict(attribution=_attribution_summary({"tsv": 4.0}))
        )
        a["run_id"], b["run_id"] = "aaa", "bbb"
        text = attribution_markdown(diff_runs(a, b))
        assert "# attribution drift" in text
        assert "| ddr3_off | tsv |" in text
