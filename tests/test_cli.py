"""CLI entry points."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_validates_experiment(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "bogus"])


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "table6" in out and "ddr3_off" in out

    def test_run_table8(self, capsys):
        assert main(["run", "table8"]) == 0
        out = capsys.readouterr().out
        assert "Cost model" in out

    def test_solve_default_state(self, capsys):
        assert main(["solve", "ddr3_off"]) == 0
        out = capsys.readouterr().out
        assert "DRAM max" in out and "dram4" in out

    def test_solve_explicit_state_with_options(self, capsys):
        assert main(["solve", "ddr3_off", "0-0-2b-2a", "--f2f", "--wirebond"]) == 0
        out = capsys.readouterr().out
        assert "BD=F2F" in out and "WB=Y" in out
