"""CLI entry points."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_validates_experiment(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "bogus"])


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "table6" in out and "ddr3_off" in out

    def test_run_table8(self, capsys):
        assert main(["run", "table8"]) == 0
        out = capsys.readouterr().out
        assert "Cost model" in out

    def test_solve_default_state(self, capsys):
        assert main(["solve", "ddr3_off"]) == 0
        out = capsys.readouterr().out
        assert "DRAM max" in out and "dram4" in out

    def test_solve_explicit_state_with_options(self, capsys):
        assert main(["solve", "ddr3_off", "0-0-2b-2a", "--f2f", "--wirebond"]) == 0
        out = capsys.readouterr().out
        assert "BD=F2F" in out and "WB=Y" in out


class TestPlanCommand:
    def test_summary(self, capsys):
        assert main(["plan", "ddr3_off"]) == 0
        out = capsys.readouterr().out
        assert "plan hash:" in out
        assert "add_layer" in out and "tsv" in out

    def test_json_output_is_a_valid_plan(self, capsys):
        from repro.pdn.plan import StackPlan

        assert main(["plan", "ddr3_off", "--json"]) == 0
        plan = StackPlan.from_json(capsys.readouterr().out)
        assert plan.benchmark == "ddr3_off"

    def test_out_then_diff_against_file(self, capsys, tmp_path):
        from repro.pdn.plan import StackPlan

        path = tmp_path / "base.json"
        assert main(["plan", "ddr3_off", "--out", str(path)]) == 0
        baseline = StackPlan.from_json(path.read_text())
        capsys.readouterr()
        # An override diffed against the saved file shows the TSV edit.
        assert main(
            ["plan", "ddr3_off", "--tsv-count", "240", "--diff", str(path)]
        ) == 0
        out = capsys.readouterr().out
        assert "ops unchanged" in out
        assert baseline.plan_hash in out

    def test_diff_against_benchmark(self, capsys):
        assert main(["plan", "ddr3_off", "--diff", "wideio"]) == 0
        out = capsys.readouterr().out
        assert "ops unchanged" in out

    def test_diff_identical(self, capsys):
        assert main(["plan", "ddr3_off", "--diff", "ddr3_off"]) == 0
        assert "plans identical" in capsys.readouterr().out

    def test_rejects_unknown_benchmark(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["plan", "bogus"])


class TestExplainCommand:
    def test_default_report(self, capsys):
        assert main(["explain", "ddr3_off"]) == 0
        out = capsys.readouterr().out
        assert "Worst-node supply-path decomposition" in out
        assert "Plan-op attribution" in out
        assert "0 orphans" in out

    def test_json_artifact_validates(self, capsys, tmp_path):
        import json

        from repro.pdn.diagnose import validate_explain_dict

        path = tmp_path / "explain.json"
        assert main(
            ["explain", "ddr3_off", "--format", "json", "--out", str(path)]
        ) == 0
        data = json.loads(path.read_text())
        validate_explain_dict(data)
        assert data["benchmark"] == "ddr3_off"
        printed, _ = json.JSONDecoder().raw_decode(capsys.readouterr().out)
        assert printed["plan_hash"] == data["plan_hash"]

    def test_heatmaps_and_npz_export(self, capsys, tmp_path):
        import numpy as np

        path = tmp_path / "maps.npz"
        assert main(
            ["explain", "ddr3_off", "--heatmaps", "--heatmap-out", str(path)]
        ) == 0
        out = capsys.readouterr().out
        assert "shared scale" in out
        with np.load(path) as maps:
            keys = set(maps.files)
            assert "drop_mv__dram4__M1" in keys
            assert "dissipation_w__dram4__M1" in keys

    def test_explain_with_overrides(self, capsys):
        assert main(["explain", "ddr3_off", "0-0-0-1", "--tsv-count", "66"]) == 0
        out = capsys.readouterr().out
        assert "TC=66" in out

    def test_requires_benchmark_without_diff(self, capsys):
        assert main(["explain"]) == 2

    def test_diff_between_history_refs(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_HISTORY_DIR", str(tmp_path / "history"))
        assert main(["explain", "ddr3_off", "--history", "--quiet"]) == 0
        assert main(["explain", "ddr3_off", "--history", "--quiet"]) == 0
        capsys.readouterr()
        assert main(["explain", "--diff", "last~1", "last"]) == 0
        out = capsys.readouterr().out
        assert "# attribution drift" in out
        assert "attribution: unchanged" in out


class TestSimCommand:
    FIXTURE = "tests/data/ramulator_1k.trace"
    CSV_FIXTURE = "tests/data/drampower_1k.csv"

    def test_sim_ramulator_fixture(self, capsys):
        assert main(["sim", "--trace", self.FIXTURE]) == 0
        out = capsys.readouterr().out
        assert "1000 requests" in out
        assert "engine: event" in out
        assert "ACT=" in out

    def test_sim_drampower_fixture_with_energy(self, capsys):
        assert main(["sim", "--trace", self.CSV_FIXTURE, "--energy"]) == 0
        out = capsys.readouterr().out
        assert "1000 requests" in out
        assert "energy (command path):" in out
        assert "energy (occupancy path):" in out

    def test_sim_legacy_agrees_with_event(self, capsys):
        assert main(["sim", "--trace", self.FIXTURE]) == 0
        event_out = capsys.readouterr().out
        assert main(["sim", "--trace", self.FIXTURE, "--legacy"]) == 0
        legacy_out = capsys.readouterr().out
        pick = lambda s: [  # noqa: E731
            ln for ln in s.splitlines()
            if "requests (" in ln or "commands:" in ln or "bandwidth" in ln
        ]
        assert pick(event_out) == pick(legacy_out)

    def test_sim_ir_policy_needs_lut(self, capsys):
        assert main(["sim", "--trace", self.FIXTURE, "--policy", "ir_fcfs"]) == 2
        captured = capsys.readouterr()
        assert "--lut" in captured.out + captured.err

    def test_sim_ir_policy_with_lut(self, capsys, tmp_path, ddr3_lut_json):
        lut_path = tmp_path / "lut.json"
        lut_path.write_text(ddr3_lut_json)
        assert main([
            "sim", "--trace", self.FIXTURE,
            "--policy", "ir_distr", "--lut", str(lut_path),
            "--constraint", "24.0",
        ]) == 0
        out = capsys.readouterr().out
        assert "ir_distr" in out
        assert "max IR drop:" in out

    def test_sim_malformed_trace_reports_context(self, tmp_path):
        from repro.errors import TraceError

        bad = tmp_path / "bad.trace"
        bad.write_text("0x0 R\nnot a line\n")
        with pytest.raises(TraceError):
            main(["sim", "--trace", str(bad)])
