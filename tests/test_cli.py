"""CLI entry points."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_validates_experiment(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "bogus"])


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "table6" in out and "ddr3_off" in out

    def test_run_table8(self, capsys):
        assert main(["run", "table8"]) == 0
        out = capsys.readouterr().out
        assert "Cost model" in out

    def test_solve_default_state(self, capsys):
        assert main(["solve", "ddr3_off"]) == 0
        out = capsys.readouterr().out
        assert "DRAM max" in out and "dram4" in out

    def test_solve_explicit_state_with_options(self, capsys):
        assert main(["solve", "ddr3_off", "0-0-2b-2a", "--f2f", "--wirebond"]) == 0
        out = capsys.readouterr().out
        assert "BD=F2F" in out and "WB=Y" in out


class TestPlanCommand:
    def test_summary(self, capsys):
        assert main(["plan", "ddr3_off"]) == 0
        out = capsys.readouterr().out
        assert "plan hash:" in out
        assert "add_layer" in out and "tsv" in out

    def test_json_output_is_a_valid_plan(self, capsys):
        from repro.pdn.plan import StackPlan

        assert main(["plan", "ddr3_off", "--json"]) == 0
        plan = StackPlan.from_json(capsys.readouterr().out)
        assert plan.benchmark == "ddr3_off"

    def test_out_then_diff_against_file(self, capsys, tmp_path):
        from repro.pdn.plan import StackPlan

        path = tmp_path / "base.json"
        assert main(["plan", "ddr3_off", "--out", str(path)]) == 0
        baseline = StackPlan.from_json(path.read_text())
        capsys.readouterr()
        # An override diffed against the saved file shows the TSV edit.
        assert main(
            ["plan", "ddr3_off", "--tsv-count", "240", "--diff", str(path)]
        ) == 0
        out = capsys.readouterr().out
        assert "ops unchanged" in out
        assert baseline.plan_hash in out

    def test_diff_against_benchmark(self, capsys):
        assert main(["plan", "ddr3_off", "--diff", "wideio"]) == 0
        out = capsys.readouterr().out
        assert "ops unchanged" in out

    def test_diff_identical(self, capsys):
        assert main(["plan", "ddr3_off", "--diff", "ddr3_off"]) == 0
        assert "plans identical" in capsys.readouterr().out

    def test_rejects_unknown_benchmark(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["plan", "bogus"])
