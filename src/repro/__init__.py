"""repro: a 3D DRAM DC power-integrity co-optimization platform.

A from-scratch reproduction of Peng et al., "Design, Packaging, and
Architectural Policy Co-optimization for DC Power Integrity in 3D DRAM"
(DAC 2015).  The package provides:

* block-level floorplans and calibrated power models for the paper's four
  3D DRAM benchmarks (:mod:`repro.floorplan`, :mod:`repro.power`,
  :mod:`repro.designs`);
* a parametric PDN generator over the Table 8 design space
  (:mod:`repro.pdn`);
* the R-Mesh sparse IR-drop engine with a fine-grid golden reference
  (:mod:`repro.rmesh`);
* a cycle-accurate memory controller simulator with JEDEC-standard and
  IR-drop-aware scheduling policies (:mod:`repro.controller`,
  :mod:`repro.dram`);
* the cost model, regression surrogate, and IR-cost co-optimizer
  (:mod:`repro.cost`, :mod:`repro.regress`, :mod:`repro.opt`);
* experiment drivers regenerating every table and figure of the paper's
  evaluation (:mod:`repro.experiments`, ``repro3d`` CLI).

Quick start::

    from repro import benchmark, build_stack, MemoryState

    bench = benchmark("ddr3_off")
    stack = build_stack(bench.stack, bench.baseline)
    state = MemoryState.from_string("0-0-0-2", bench.stack.dram_floorplan)
    print(stack.solve_state(state))
"""

from repro.designs import BenchmarkSpec, all_benchmarks, benchmark
from repro.pdn import (
    Bonding,
    BumpLocation,
    Mounting,
    PDNConfig,
    PDNStack,
    RDLScope,
    StackSpec,
    TSVLocation,
    build_stack,
)
from repro.perf import cached_build_stack
from repro.power import MemoryState
from repro.rmesh import IRDropResult, StackSolver

__version__ = "1.0.0"

__all__ = [
    "BenchmarkSpec",
    "all_benchmarks",
    "benchmark",
    "PDNConfig",
    "PDNStack",
    "StackSpec",
    "TSVLocation",
    "Bonding",
    "RDLScope",
    "BumpLocation",
    "Mounting",
    "build_stack",
    "cached_build_stack",
    "MemoryState",
    "IRDropResult",
    "StackSolver",
    "__version__",
]
