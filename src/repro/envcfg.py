"""Validated environment-knob parsing with warn-and-default semantics.

Environment variables are the project's cross-process configuration
channel: the CLI sets them so spawned workers inherit the knobs.  That
channel has a failure mode argument parsing does not -- a typo'd value
(``REPRO_CG_RTOL=1e-1O``) is not discovered at the shell prompt but
deep inside a sweep, where a raised ``ValueError`` throws away every
completed solve.  For *environment* knobs the robust contract is
therefore warn-and-default: log one structured warning naming the
variable, the rejected value, and the default used, bump the
``env.invalid_values`` counter, and keep solving.

Explicit function arguments keep strict validation -- a programmatic
caller passing garbage is a bug worth crashing on; only the ambient
channel degrades.

Each helper warns once per (variable, raw value) pair per process, so a
sweep of ten thousand design points does not emit ten thousand copies
of the same line.
"""

from __future__ import annotations

import os
import threading
from typing import Optional, Sequence, Set, Tuple

from repro.obs import metrics as _metrics
from repro.obs.log import get_logger

_log = get_logger("envcfg")

_warned_lock = threading.Lock()
_warned: Set[Tuple[str, str]] = set()


def _warn_invalid(name: str, raw: str, default: object, reason: str) -> None:
    with _warned_lock:
        key = (name, raw)
        if key in _warned:
            return
        _warned.add(key)
    _metrics.inc("env.invalid_values")
    _log.warning(
        "ignoring invalid %s=%r (%s); using default %r",
        name,
        raw,
        reason,
        default,
        extra={
            "fields": {
                "variable": name,
                "value": raw,
                "reason": reason,
                "default": default,
            }
        },
    )


def reset_warnings() -> None:
    """Forget which (variable, value) pairs already warned (tests)."""
    with _warned_lock:
        _warned.clear()


def env_float(
    name: str,
    default: float,
    minimum: Optional[float] = None,
) -> float:
    """Read a float env knob; malformed or out-of-range values warn and
    fall back to ``default`` instead of raising mid-sweep."""
    raw = os.environ.get(name)
    if raw is None or raw == "":
        return default
    try:
        value = float(raw)
    except ValueError:
        _warn_invalid(name, raw, default, "not a number")
        return default
    if minimum is not None and value < minimum:
        _warn_invalid(name, raw, default, f"below minimum {minimum}")
        return default
    return value


def env_int(
    name: str,
    default: int,
    minimum: Optional[int] = None,
) -> int:
    """Read an integer env knob with warn-and-default semantics."""
    raw = os.environ.get(name)
    if raw is None or raw == "":
        return default
    try:
        value = int(raw)
    except ValueError:
        _warn_invalid(name, raw, default, "not an integer")
        return default
    if minimum is not None and value < minimum:
        _warn_invalid(name, raw, default, f"below minimum {minimum}")
        return default
    return value


def env_choice(name: str, default: str, choices: Sequence[str]) -> str:
    """Read an enumerated env knob; unknown values warn and default."""
    raw = os.environ.get(name)
    if raw is None or raw == "":
        return default
    value = raw.strip().lower()
    if value not in choices:
        _warn_invalid(name, raw, default, f"not one of {list(choices)}")
        return default
    return value
