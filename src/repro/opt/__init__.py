"""Cross-domain co-optimization (paper section 6)."""

from repro.opt.cooptimizer import CoOptimizer, OptimizationResult, ir_cost

__all__ = ["CoOptimizer", "OptimizationResult", "ir_cost"]
