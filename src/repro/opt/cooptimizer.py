"""IR-drop / cost co-optimization (paper section 6).

The objective is

    IR-cost = IR-drop^alpha * Cost^(1-alpha),      alpha in [0, 1]   (Eq. 1)

"With alpha=0, we found the lowest cost solution, while alpha=1, the
lowest IR-drop solution" and alpha=0.3 gives the paper's preferred
tradeoff.

Strategy (mirroring the paper): the discrete options are enumerated
exhaustively; within each discrete combination the continuous variables
(M2 and M3 usage, TSV count) are optimized over the fast regression
surrogate (scipy L-BFGS-B from a coarse-grid start).  The winning
configuration is then *verified* with a full R-Mesh solve -- Table 9's
paired "Matlab" vs "R-Mesh" columns.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np
from scipy import optimize as spopt

from repro.cost import config_cost
from repro.designs import BenchmarkSpec
from repro.errors import OptimizationError
from repro.pdn.config import PDNConfig
from repro.pdn.sweep import SweepSolveSession
from repro.regress.model import (
    DiscreteKey,
    IRDropSurrogate,
    config_from_parts,
    sample_design_space,
    valid_discrete_combos,
)
from repro.tech.calibration import DEFAULT_TECH, TechConstants


def ir_cost(ir_mv: float, cost: float, alpha: float) -> float:
    """Equation (1): IR-cost = IR^alpha * Cost^(1-alpha)."""
    if not 0.0 <= alpha <= 1.0:
        raise OptimizationError(f"alpha must be in [0, 1], got {alpha}")
    if ir_mv <= 0.0 or cost <= 0.0:
        raise OptimizationError("IR drop and cost must be positive")
    return ir_mv**alpha * cost ** (1.0 - alpha)


@dataclass
class OptimizationResult:
    """Best design point for one alpha."""

    alpha: float
    config: PDNConfig
    predicted_ir_mv: float  # from the regression surrogate ("Matlab" column)
    verified_ir_mv: float  # from a full R-Mesh solve ("R-Mesh" column)
    cost: float
    objective: float

    def table9_row(self) -> str:
        """Format like a Table 9 row."""
        c = self.config
        return (
            f"{self.alpha:>4.1f} | M2 {c.m2_usage:4.0%} | M3 {c.m3_usage:4.0%} | "
            f"TC {c.tsv_count:3d} | TL {c.tsv_location.value} | "
            f"TD {'Y' if c.dedicated_tsv else 'N'} | {c.bonding.value} | "
            f"RL {'Y' if c.rdl.enabled else 'N'} | "
            f"WB {'Y' if c.wire_bond else 'N'} | "
            f"IR {self.predicted_ir_mv:7.2f} / {self.verified_ir_mv:7.2f} mV | "
            f"cost {self.cost:5.3f}"
        )


class CoOptimizer:
    """Co-optimize one benchmark's design space."""

    def __init__(
        self,
        bench: BenchmarkSpec,
        tech: TechConstants = DEFAULT_TECH,
        pitch: Optional[float] = None,
        surrogate: Optional[IRDropSurrogate] = None,
        tc_points: int = 3,
        workers: Optional[int] = None,
    ) -> None:
        self.bench = bench
        self.tech = tech
        self.pitch = pitch
        if surrogate is None:
            t0 = time.perf_counter()
            samples = sample_design_space(
                bench, tech=tech, pitch=pitch, tc_points=tc_points,
                workers=workers,
            )
            elapsed = time.perf_counter() - t0
            surrogate = IRDropSurrogate()
            surrogate.fit(samples, sample_time_s=elapsed)
        self.surrogate = surrogate
        # One warm-start chain for all verification solves: winning
        # configs across an alpha sweep are knob-variations of each
        # other, so under an iterative backend each verification reuses
        # the previous one's setup.  Pass-through for direct.
        self._verify_session = SweepSolveSession(tech=tech, pitch=pitch)

    # -- inner continuous optimization ---------------------------------------

    def _optimize_continuous(
        self, key: DiscreteKey, alpha: float
    ) -> Tuple[float, float, int, float]:
        """Best (m2, m3, tc, objective) within one discrete combo."""
        lo_tc, hi_tc = self.bench.tsv_count_range

        def objective(x: np.ndarray) -> float:
            m2, m3, tc = x[0], x[1], x[2]
            ir = max(self.surrogate.predict_parts(key, m2, m3, int(round(tc))), 1e-3)
            cfg = config_from_parts(self.bench, key, m2, m3, int(round(tc)))
            cost = config_cost(cfg, self.bench.package_cost).total
            return ir_cost(ir, cost, alpha)

        # Coarse grid start, then local polish.
        best: Optional[Tuple[float, np.ndarray]] = None
        tc_candidates = (
            [lo_tc]
            if lo_tc == hi_tc
            else sorted({int(round(t)) for t in np.geomspace(lo_tc, hi_tc, 5)})
        )
        for m2 in (0.10, 0.15, 0.20):
            for m3 in (0.10, 0.25, 0.40):
                for tc in tc_candidates:
                    x = np.array([m2, m3, float(tc)])
                    val = objective(x)
                    if best is None or val < best[0]:
                        best = (val, x)
        assert best is not None
        result = spopt.minimize(
            objective,
            best[1],
            method="L-BFGS-B",
            bounds=[(0.10, 0.20), (0.10, 0.40), (float(lo_tc), float(hi_tc))],
        )
        x = result.x if result.fun < best[0] else best[1]
        val = min(float(result.fun), best[0])
        return float(x[0]), float(x[1]), int(round(x[2])), val

    # -- public API ---------------------------------------------------------------

    def optimize(self, alpha: float, verify: bool = True) -> OptimizationResult:
        """Best design point for one alpha over all discrete combos."""
        best: Optional[Tuple[float, DiscreteKey, float, float, int]] = None
        for key in valid_discrete_combos(self.bench):
            if key not in self.surrogate.combos:
                continue
            m2, m3, tc, val = self._optimize_continuous(key, alpha)
            if best is None or val < best[0]:
                best = (val, key, m2, m3, tc)
        if best is None:
            raise OptimizationError(
                f"{self.bench.key}: no feasible discrete combination"
            )
        val, key, m2, m3, tc = best
        config = config_from_parts(self.bench, key, m2, m3, tc)
        predicted = self.surrogate.predict(config)
        cost = config_cost(config, self.bench.package_cost).total
        verified = predicted
        if verify:
            # Cached + warm-started: alpha sweeps often converge on the
            # same winning config, and fig9/table9 re-verify configs
            # across runs; distinct winners differ by knobs only.
            verified = self._verify_session.solve(
                self.bench, config, self.bench.reference_state()
            ).dram_max_mv
        return OptimizationResult(
            alpha=alpha,
            config=config,
            predicted_ir_mv=predicted,
            verified_ir_mv=verified,
            cost=cost,
            objective=val,
        )

    def baseline_result(self) -> OptimizationResult:
        """The benchmark's industry baseline evaluated the same way."""
        config = self.bench.baseline
        # The baseline is re-evaluated by every experiment touching this
        # benchmark; the keyed cache makes repeats free.
        ir = self._verify_session.solve(
            self.bench, config, self.bench.reference_state()
        ).dram_max_mv
        cost = config_cost(config, self.bench.package_cost).total
        return OptimizationResult(
            alpha=float("nan"),
            config=config,
            predicted_ir_mv=ir,
            verified_ir_mv=ir,
            cost=cost,
            objective=float("nan"),
        )

    def alpha_sweep(
        self, alphas: Sequence[float] = (0.0, 0.3, 1.0), verify: bool = True
    ) -> List[OptimizationResult]:
        """Table 9: best solutions across the alpha range."""
        return [self.optimize(alpha, verify=verify) for alpha in alphas]

    def brute_force_size(self, m2_steps: int = 11, m3_steps: int = 31, tc_steps: int = 466) -> int:
        """Number of full R-Mesh solves an exhaustive search would take
        (the paper projects 4637 hours on a 4-core machine for this)."""
        lo, hi = self.bench.tsv_count_range
        tc = 1 if lo == hi else min(tc_steps, hi - lo + 1)
        return len(valid_discrete_combos(self.bench)) * m2_steps * m3_steps * tc
