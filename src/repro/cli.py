"""Command-line interface: run paper experiments from the shell.

Examples::

    repro3d list                  # available experiments
    repro3d run table6            # one experiment (fast variant)
    repro3d run table9 --full     # full (slow) variant
    repro3d all                   # every experiment, fast variants
    repro3d solve ddr3_off 0-0-0-2 --f2f   # ad-hoc IR solve
    repro3d explain ddr3_off      # attribute the worst drop to its path
    repro3d explain --diff last~1 last     # attribution drift, stored runs
    repro3d bench --smoke         # telemetry suite + regression check
    repro3d bench --update-baseline        # bless intentional changes

Observability flags (global, any command)::

    --log-level debug             # surface library diagnostics
    --log-json run.jsonl          # JSON-lines structured log sink
    --quiet                       # errors only on stdout
    --trace-out trace.json        # Chrome trace-event span tree
    --metrics-out metrics.json    # counters/gauges/histograms + timers
    --manifest-out manifest.json  # run provenance receipt

All output goes through the ``repro`` logger hierarchy; at the default
``info`` level stdout is byte-identical to the historical ``print``
output, so scripts that parse it keep working.
"""

from __future__ import annotations

import argparse
import os
import sys
from pathlib import Path
from typing import List, Optional

from repro.designs import all_benchmarks, benchmark
from repro.experiments import registry, run_experiment
from repro.obs.log import configure, get_logger
from repro.obs.manifest import build_manifest
from repro.obs.metrics import write_metrics
from repro.obs.profile import PROFILE_ENV, start_profiler
from repro.obs.trace import span, write_chrome_trace
from repro.pdn.config import Bonding
from repro.pdn.stackup import build_stack
from repro.perf.parallel import WORKERS_ENV
from repro.resil.checkpoint import CHECKPOINT_ENV
from repro.rmesh.backends import BACKENDS, SOLVER_ENV, resolve_backend
from repro.perf.timers import report as perf_report
from repro.power.state import MemoryState

_log = get_logger("cli")

_LOG_LEVELS = ("debug", "info", "warning", "error")


def _manifest_path(args: argparse.Namespace) -> Optional[Path]:
    """Where this invocation's manifest goes, if anywhere.

    ``--manifest-out`` wins; otherwise asking for metrics or a trace
    implies provenance, so the manifest lands next to that artifact.
    """
    if args.manifest_out:
        return Path(args.manifest_out)
    for candidate in (args.metrics_out, args.trace_out):
        if candidate:
            return Path(candidate).with_suffix(".manifest.json")
    return None


def _cmd_list(_: argparse.Namespace) -> int:
    _log.info("available experiments:")
    for exp_id in sorted(registry):
        _log.info("  %s", exp_id)
    _log.info("\nbenchmarks: %s", ", ".join(sorted(all_benchmarks())))
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    manifest_out = _manifest_path(args)
    result = run_experiment(
        args.experiment, fast=not args.full, manifest_out=manifest_out
    )
    if manifest_out is not None:
        args._manifest_written = True
    args._last_manifest = result.manifest
    _log.info("%s", result.fmt())
    return 0


def _cmd_all(args: argparse.Namespace) -> int:
    for exp_id in sorted(registry):
        result = run_experiment(exp_id, fast=not args.full)
        _log.info("%s\n", result.fmt())
    return 0


def _cmd_solve(args: argparse.Namespace) -> int:
    bench = benchmark(args.benchmark)
    config = bench.baseline
    if args.f2f:
        config = config.with_options(bonding=Bonding.F2F)
    if args.wirebond:
        config = config.with_options(wire_bond=True)
    stack = build_stack(bench.stack, config)
    state = (
        MemoryState.from_string(args.state, bench.stack.dram_floorplan)
        if args.state
        else bench.reference_state()
    )
    result = stack.solve_state(state)
    _log.info("%s [%s]", bench.title, config.label())
    _log.info("  %s", result)
    if result.raw.backend != "direct":
        _log.info(
            "  solver: %s (%d iterations)",
            result.raw.backend,
            result.raw.iterations,
        )
    for die, mv in result.per_die_mv.items():
        _log.info("  %s: %.2f mV", die, mv)
    return 0


def _plan_for(benchmark_name: str, args: argparse.Namespace):
    """Plan one benchmark's stack with the CLI's config overrides."""
    from repro.pdn.stackup import plan_stack

    bench = benchmark(benchmark_name)
    config = bench.baseline
    if args.f2f:
        config = config.with_options(bonding=Bonding.F2F)
    if args.wirebond:
        config = config.with_options(wire_bond=True)
    if args.tsv_count is not None:
        config = config.with_options(tsv_count=args.tsv_count)
    return bench, config, plan_stack(bench.stack, config)


def _cmd_plan(args: argparse.Namespace) -> int:
    """Dump or diff declarative stack build plans (docs/architecture.md)."""
    from repro.pdn.plan import StackPlan

    bench, config, plan = _plan_for(args.benchmark, args)

    if args.diff:
        if Path(args.diff).is_file():
            other = StackPlan.from_json(Path(args.diff).read_text())
            other_label = args.diff
        else:
            _, _, other = _plan_for(args.diff, args)
            other_label = args.diff
        diff = plan.diff(other)
        _log.info(
            "%s (%s) vs %s:", args.benchmark, config.label(), other_label
        )
        _log.info("%s", diff.describe())
        return 0

    if args.out:
        Path(args.out).write_text(plan.to_json())
        _log.info("plan written: %s", args.out)
        return 0
    if args.json:
        _log.info("%s", plan.to_json().rstrip("\n"))
        return 0

    summary = plan.summary()
    _log.info("%s [%s]", bench.title, config.label())
    _log.info("  plan hash: %s", summary["plan_hash"])
    _log.info("  pitch: %.3f mm, %d DRAM dies", plan.pitch, plan.num_dram_dies)
    _log.info(
        "  %d ops, %d mesh nodes, %d layers",
        summary["num_ops"],
        summary["num_nodes"],
        len(plan.layer_keys()),
    )
    for kind, count in sorted(summary["ops"].items()):
        _log.info("    %-18s %d", kind, count)
    return 0


def _cmd_explain(args: argparse.Namespace) -> int:
    """Diagnose a solved design: recovered branch currents, KCL check,
    worst-node supply-path decomposition, per-plan-op attribution.

    ``--diff A B`` instead compares the worst-drop attribution of two
    stored runs (the physics axis of ``repro3d obs diff``).
    """
    import numpy as np

    from repro.obs.atomic import atomic_write_text

    if args.diff:
        from repro.obs.store import attribution_markdown, diff_runs

        store = _obs_store(args)
        delta = diff_runs(
            store.resolve(args.diff[0]), store.resolve(args.diff[1]), store
        )
        text = attribution_markdown(delta)
        _log.info("%s", text)
        if args.out:
            atomic_write_text(args.out, text + "\n")
        return 0

    if not args.benchmark:
        _log.error("explain needs a benchmark (or --diff RUN RUN)")
        return 2

    from repro.experiments.common import explain_design
    from repro.pdn.diagnose import validate_explain_dict

    bench = benchmark(args.benchmark)
    config = bench.baseline
    if args.f2f:
        config = config.with_options(bonding=Bonding.F2F)
    if args.wirebond:
        config = config.with_options(wire_bond=True)
    if args.tsv_count is not None:
        config = config.with_options(tsv_count=args.tsv_count)
    state = (
        MemoryState.from_string(args.state, bench.stack.dram_floorplan)
        if args.state
        else bench.reference_state()
    )
    diag = explain_design(bench, config, state)
    data = diag.to_dict()
    validate_explain_dict(data)

    if args.format == "json":
        text = diag.to_json().rstrip("\n")
    else:
        text = diag.markdown()
    _log.info("%s", text)
    if args.out:
        artifact = diag.to_json() if args.out.endswith(".json") else text + "\n"
        atomic_write_text(args.out, artifact)
        _log.info("explain artifact written: %s", args.out)
    if args.heatmaps and diag.raw is not None:
        _log.info(
            "\n%s", diag.raw.ascii_heatmap_stack()
        )
    if args.heatmap_out and diag.raw is not None:
        from repro.rmesh.branches import extract_branches

        branches = extract_branches(diag.raw.model, np.asarray(diag.raw.drops))
        fields = {}
        for key in diag.raw.model.layer_keys:
            tag = key.replace("/", "__")
            fields[f"drop_mv__{tag}"] = diag.raw.layer_drops(key) * 1e3
            fields[f"dissipation_w__{tag}"] = branches.layer_dissipation_map(key)
        np.savez_compressed(args.heatmap_out, **fields)
        _log.info(
            "heatmaps written: %s (%d layers x drop/dissipation)",
            args.heatmap_out,
            len(diag.raw.model.layer_keys),
        )
    return 0


_SIM_TIMINGS = ("ddr3", "wideio", "hmc")


def _sim_timing(name: str):
    from repro.dram.timing import TimingParams

    return {
        "ddr3": TimingParams.ddr3_1600,
        "wideio": TimingParams.wideio_200,
        "hmc": TimingParams.hmc_2500,
    }[name]()


def _cmd_sim(args: argparse.Namespace) -> int:
    """Run the event-driven controller on a memory trace.

    The trace streams through the engine (constant memory in trace
    length); ``--legacy`` instead materializes it and runs the original
    per-cycle loop for cross-checking.
    """
    import time

    from repro.controller.engine import EventDrivenEngine, SimConfig
    from repro.controller.lut import IRDropLUT
    from repro.controller.policies import (
        IRAwareDistR,
        IRAwareFCFS,
        StandardJEDEC,
    )
    from repro.controller.request import TraceMapping, read_trace
    from repro.controller.simulator import MemoryControllerSim
    from repro.power.model import (
        DDR3_POWER,
        HMC_POWER,
        WIDEIO_POWER,
        CommandEnergySpec,
        energy_ledger,
    )

    timing = _sim_timing(args.timing)
    mapping = TraceMapping(
        num_dies=args.dies, banks_per_die=args.banks_per_die
    )
    config = SimConfig(
        timing=timing,
        num_dies=args.dies,
        banks_per_die=args.banks_per_die,
        num_channels=args.channels,
        queue_depth=args.queue_depth,
        max_banks_per_die=args.max_banks_per_die,
        close_window=args.close_window,
        refresh_enabled=args.refresh,
    )

    lut = None
    if args.lut:
        lut = IRDropLUT.from_json(Path(args.lut).read_text())
    if args.policy == "standard":
        policy = StandardJEDEC(timing)
    else:
        if lut is None:
            _log.error(
                "policy %s needs an IR-drop table: pass --lut FILE "
                "(serialize one with IRDropLUT.to_json)",
                args.policy,
            )
            return 2
        cls = IRAwareFCFS if args.policy == "ir_fcfs" else IRAwareDistR
        policy = cls(lut, constraint_mv=args.constraint)

    workload = read_trace(
        args.trace,
        fmt=args.format,
        mapping=mapping,
        arrival_interval=args.arrival_interval,
    )
    start = time.perf_counter()
    if args.legacy:
        sim = MemoryControllerSim(config, policy, list(workload), lut)
        result = sim.run_legacy(max_cycles=args.max_cycles)
    else:
        engine = EventDrivenEngine(config, policy, workload, lut)
        result = engine.run(max_cycles=args.max_cycles)
    wall_s = time.perf_counter() - start

    _log.info("trace: %s", args.trace)
    _log.info(
        "engine: %s  policy: %s  timing: %s  %dch x %d banks/die x %d dies",
        "legacy" if args.legacy else "event",
        result.policy_name,
        args.timing,
        args.channels,
        args.banks_per_die,
        args.dies,
    )
    _log.info(
        "  %d requests (%d RD / %d WR) in %d cycles (%.2f us)",
        result.completed,
        result.reads,
        result.writes,
        result.cycles,
        result.runtime_us,
    )
    _log.info(
        "  bandwidth %.3f reads/clk, mean latency %.1f cycles, "
        "mean queue %.1f",
        result.bandwidth_reads_per_clk,
        result.mean_latency_cycles,
        result.mean_queue_depth,
    )
    _log.info(
        "  commands: %s",
        "  ".join(f"{k}={v}" for k, v in result.commands.items()),
    )
    if result.max_ir_mv is not None:
        _log.info("  max IR drop: %.2f mV", result.max_ir_mv)
    if result.states_dropped:
        _log.info(
            "  state histogram overflow: %d cycles beyond the "
            "%d-state cap",
            result.states_dropped,
            config.max_tracked_states,
        )
    if not result.finished:
        _log.warning(
            "  hit --max-cycles=%d before draining the trace", args.max_cycles
        )
    if args.energy:
        power = {"ddr3": DDR3_POWER, "wideio": WIDEIO_POWER, "hmc": HMC_POWER}[
            args.timing
        ]
        spec = CommandEnergySpec.from_power(
            power, timing, banks_per_die=args.banks_per_die
        )
        report = energy_ledger(
            result.commands,
            result.state_occupancy,
            power,
            timing,
            num_dies=args.dies,
            banks_per_die=args.banks_per_die,
            states_dropped=result.states_dropped,
        )
        _log.info("  energy (command path): %.1f nJ", report.command_total_nj)
        _log.info(
            "  energy (occupancy path): %.1f nJ  (mismatch %.1f%%)",
            report.occupancy_nj,
            100.0 * report.mismatch_fraction,
        )
        _log.info(
            "  per-command charge: %s",
            "  ".join(
                f"{c}={spec.energy_nj(c):.2f}nJ"
                for c in ("ACT", "PRE", "RD", "WR", "REF")
            ),
        )
    _log.info(
        "  wall %.2f s  (%.0f requests/s)",
        wall_s,
        result.completed / wall_s if wall_s > 0 else float("inf"),
    )
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    """Unified benchmark runner + regression gate (see docs/benchmarks.md)."""
    from repro.bench import (
        Thresholds,
        baseline_path,
        compare,
        default_record_path,
        discover,
        load_baseline,
        load_trajectory,
        run_suite,
        select,
        update_baseline,
    )
    from repro.bench.baseline import scaled
    from repro.bench.registry import benchmarks_dir
    from repro.bench.report import comparison_to_markdown, record_summary

    if args.list_benches:
        for spec in select(None, smoke=False, registry=discover()):
            _log.info(
                "  %-28s %s%s",
                spec.name,
                "heavy" if spec.heavy else "smoke",
                f"  [{spec.harness}]",
            )
        return 0

    record = run_suite(
        names=args.only or None,
        smoke=not args.full,
        repeats=args.repeats,
    )
    root = benchmarks_dir().parent
    out = Path(args.out) if args.out else default_record_path(record, root)
    record.write(out)
    args._bench_record = record
    args._bench_record_path = out
    _log.info("%s", record_summary(record))
    _log.info("suite record: %s", out)
    # The trajectory lives next to the emitted record, so a redirected
    # --out (tests, scratch dirs) never picks up the repo-root history.
    trajectory_root = out.parent

    base_path = Path(args.baseline) if args.baseline else baseline_path(root)
    if args.update_baseline:
        update_baseline(record, base_path)
        _log.info("baseline updated: %s", base_path)
        return 0
    if args.no_compare:
        return 0

    baseline = load_baseline(base_path)
    if baseline is None:
        _log.info(
            "no baseline at %s -- every bench is new_benchmark; bless one "
            "with --update-baseline",
            base_path,
        )
        return 0
    thresholds = scaled(
        Thresholds(), perf_rel_tol=args.perf_tol, ir_abs_mv=args.ir_tol
    )
    comparison = compare(
        record,
        baseline,
        trajectory=load_trajectory(trajectory_root, exclude=(out,)),
        thresholds=thresholds,
    )
    _log.info("\n%s", comparison_to_markdown(comparison))
    if args.delta_out:
        Path(args.delta_out).write_text(
            comparison_to_markdown(comparison) + "\n"
        )
    failing = not comparison.ok
    if failing:
        _log.warning("bench suite verdict: %s", comparison.status)
    if args.gate and failing:
        return 1
    return 0


def _obs_store(args: argparse.Namespace):
    """The run-history store an ``obs`` action operates on."""
    from repro.obs.store import RunHistoryStore

    return RunHistoryStore(args.store)


def _cmd_obs_ingest(args: argparse.Namespace) -> int:
    """Ingest manifests / BENCH records into the run-history store."""
    store = _obs_store(args)
    for path in args.paths:
        run_id = store.ingest_path(path)
        _log.info("ingested %s -> run %s", path, run_id)
    return 0


def _cmd_obs_list(args: argparse.Namespace) -> int:
    """List stored runs, newest last."""
    from repro.obs.store import list_markdown

    store = _obs_store(args)
    records = store.runs()
    if not records:
        _log.info("run history at %s is empty", store.index_path)
        return 0
    _log.info("%s", list_markdown(records))
    return 0


def _cmd_obs_show(args: argparse.Namespace) -> int:
    """Show one stored run in full."""
    from repro.obs.store import show_markdown

    store = _obs_store(args)
    _log.info("%s", show_markdown(store.resolve(args.run)))
    return 0


def _cmd_obs_diff(args: argparse.Namespace) -> int:
    """Diff two stored runs; attribute drift; optionally gate on it.

    Backs both ``obs diff`` and ``obs attribute`` -- attribution *is*
    the diff's verdict plus its evidence; the commands differ only in
    emphasis, so they share one implementation and output format.
    """
    from repro.obs.atomic import atomic_write_text
    from repro.obs.store import delta_markdown, diff_runs

    store = _obs_store(args)
    refs = args.runs or ["last~1", "last"]
    if len(refs) != 2:
        _log.error("expected exactly two run references, got %d", len(refs))
        return 2
    delta = diff_runs(store.resolve(refs[0]), store.resolve(refs[1]), store)
    text = delta_markdown(delta)
    _log.info("%s", text)
    if args.out:
        atomic_write_text(args.out, text + "\n")
    if getattr(args, "gate", False) and delta.drift != "none":
        _log.warning("drift gate failed: %s", delta.drift)
        return 1
    return 0


def _cmd_obs_export(args: argparse.Namespace) -> int:
    """Export a stored run as unified Chrome/Perfetto trace JSON."""
    import json as _json

    from repro.obs.atomic import atomic_write_text
    from repro.obs.store import export_chrome_trace

    store = _obs_store(args)
    doc = export_chrome_trace(store.resolve(args.run))
    atomic_write_text(args.out, _json.dumps(doc, default=str) + "\n")
    _log.info(
        "trace written: %s (%d events)", args.out, len(doc["traceEvents"])
    )
    return 0


def _workers_arg(value: str) -> int:
    count = int(value)
    if count < 0:
        raise argparse.ArgumentTypeError(
            f"workers must be >= 0 (0 means serial), got {count}"
        )
    return count


#: Defaults for the global flags; applied after parsing because the
#: shared option group uses ``SUPPRESS`` (see :func:`_global_options`).
_GLOBAL_DEFAULTS = {
    "perf_report": False,
    "workers": None,
    "solver": None,
    "log_level": "info",
    "log_json": None,
    "quiet": False,
    "trace_out": None,
    "metrics_out": None,
    "manifest_out": None,
    "profile": False,
    "history": False,
    "resume": None,
}


def _global_options() -> argparse.ArgumentParser:
    """The shared flag group, usable before *or* after the subcommand.

    ``argument_default=SUPPRESS`` keeps the subparser copy from
    clobbering a value the main parser already set; :func:`main` fills
    in :data:`_GLOBAL_DEFAULTS` for anything never given.
    """
    common = argparse.ArgumentParser(
        add_help=False, argument_default=argparse.SUPPRESS
    )
    common.add_argument(
        "--perf-report",
        action="store_true",
        help="print accumulated solver/assembly timers after the command",
    )
    common.add_argument(
        "--workers",
        type=_workers_arg,
        metavar="N",
        help="process count for design-space sweeps (default: serial, or "
        f"the {WORKERS_ENV} environment variable)",
    )
    common.add_argument(
        "--solver",
        choices=BACKENDS,
        help="linear solver backend for all DC solves (default: direct, or "
        f"the {SOLVER_ENV} environment variable; amg falls back to cg "
        "when pyamg is unavailable)",
    )
    common.add_argument(
        "--log-level",
        choices=_LOG_LEVELS,
        help="stdout/log verbosity (default: info)",
    )
    common.add_argument(
        "--log-json",
        metavar="PATH",
        help="also write structured JSON-lines log records to PATH",
    )
    common.add_argument(
        "--quiet",
        action="store_true",
        help="suppress normal stdout output (errors still print)",
    )
    common.add_argument(
        "--trace-out",
        metavar="PATH",
        help="write the run's span tree as Chrome trace-event JSON "
        "(load in chrome://tracing or Perfetto)",
    )
    common.add_argument(
        "--metrics-out",
        metavar="PATH",
        help="write the metrics registry + timer snapshot as JSON",
    )
    common.add_argument(
        "--manifest-out",
        metavar="PATH",
        help="write a run provenance manifest (defaults to "
        "<metrics/trace path>.manifest.json when those flags are set)",
    )
    common.add_argument(
        "--profile",
        action="store_true",
        help="sample RSS/CPU/GC on a background thread for the whole run "
        f"(sets {PROFILE_ENV}=1 so worker processes profile too); samples "
        "land in the manifest and interleave with --trace-out as counter "
        "tracks",
    )
    common.add_argument(
        "--history",
        action="store_true",
        help="record this run in the run-history store when the command "
        "finishes (query it with `repro3d obs`)",
    )
    common.add_argument(
        "--resume",
        metavar="CKPT",
        help="journal completed design points into CKPT and resume from "
        "it: a re-run after a kill serves already-solved sweep points "
        f"from the checkpoint (sets {CHECKPOINT_ENV}; see "
        "docs/robustness.md)",
    )
    return common


def build_parser() -> argparse.ArgumentParser:
    """Construct the repro3d argument parser (exposed for tests/docs)."""
    common = _global_options()
    parser = argparse.ArgumentParser(
        prog="repro3d",
        description="3D DRAM DC power-integrity co-optimization platform "
        "(DAC'15 reproduction)",
        parents=[common],
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser(
        "list", help="list experiments and benchmarks", parents=[common]
    ).set_defaults(func=_cmd_list)

    run_p = sub.add_parser("run", help="run one experiment", parents=[common])
    run_p.add_argument("experiment", choices=sorted(registry))
    run_p.add_argument(
        "--full", action="store_true", help="full sweeps (slower)"
    )
    run_p.set_defaults(func=_cmd_run)

    all_p = sub.add_parser("all", help="run every experiment", parents=[common])
    all_p.add_argument("--full", action="store_true")
    all_p.set_defaults(func=_cmd_all)

    solve_p = sub.add_parser("solve", help="ad-hoc IR-drop solve", parents=[common])
    solve_p.add_argument("benchmark", choices=sorted(all_benchmarks()))
    solve_p.add_argument(
        "state", nargs="?", help='memory state, e.g. "0-0-0-2" (default: '
        "the benchmark's reference state)"
    )
    solve_p.add_argument("--f2f", action="store_true", help="F2F bonding")
    solve_p.add_argument("--wirebond", action="store_true", help="add bond wires")
    solve_p.set_defaults(func=_cmd_solve)

    explain_p = sub.add_parser(
        "explain",
        help="diagnose a solved design: branch currents, worst-path "
        "decomposition, per-plan-op attribution",
        parents=[common],
    )
    explain_p.add_argument(
        "benchmark",
        nargs="?",
        choices=sorted(all_benchmarks()),
        help="benchmark to explain (omit only with --diff)",
    )
    explain_p.add_argument(
        "state",
        nargs="?",
        help='memory state, e.g. "0-0-0-2" (default: the benchmark\'s '
        "reference state)",
    )
    explain_p.add_argument("--f2f", action="store_true", help="F2F bonding")
    explain_p.add_argument(
        "--wirebond", action="store_true", help="add bond wires"
    )
    explain_p.add_argument(
        "--tsv-count",
        type=int,
        default=None,
        metavar="N",
        help="override the baseline TSV count",
    )
    explain_p.add_argument(
        "--format",
        choices=("text", "markdown", "json"),
        default="text",
        help="report format on stdout (text and markdown render the same "
        "report; json prints the artifact)",
    )
    explain_p.add_argument(
        "--out",
        metavar="PATH",
        help="write the report to PATH (a .json suffix writes the JSON "
        "artifact regardless of --format)",
    )
    explain_p.add_argument(
        "--heatmaps",
        action="store_true",
        help="also print per-layer ascii drop heatmaps on one shared scale",
    )
    explain_p.add_argument(
        "--heatmap-out",
        metavar="PATH",
        help="export per-layer drop (mV) and dissipation (W) grids as a "
        "compressed .npz",
    )
    explain_p.add_argument(
        "--diff",
        nargs=2,
        metavar=("RUN_A", "RUN_B"),
        help="render the attribution drift between two stored runs "
        "(references as in `repro3d obs`: last, last~N, id prefix)",
    )
    explain_p.add_argument(
        "--store",
        metavar="DIR",
        default=None,
        help="history store directory for --diff (default: "
        "benchmarks/results/history, or $REPRO_HISTORY_DIR)",
    )
    explain_p.set_defaults(func=_cmd_explain)

    plan_p = sub.add_parser(
        "plan",
        help="dump or diff a benchmark's declarative stack build plan",
        parents=[common],
    )
    plan_p.add_argument("benchmark", choices=sorted(all_benchmarks()))
    plan_p.add_argument("--f2f", action="store_true", help="F2F bonding")
    plan_p.add_argument(
        "--wirebond", action="store_true", help="add bond wires"
    )
    plan_p.add_argument(
        "--tsv-count",
        type=int,
        default=None,
        metavar="N",
        help="override the baseline TSV count",
    )
    plan_p.add_argument(
        "--json",
        action="store_true",
        help="print the full plan JSON instead of the summary",
    )
    plan_p.add_argument(
        "--out", metavar="PATH", help="write the plan JSON to PATH"
    )
    plan_p.add_argument(
        "--diff",
        metavar="TARGET",
        help="diff against another benchmark's plan (same overrides) or a "
        "plan JSON file",
    )
    plan_p.set_defaults(func=_cmd_plan)

    sim_p = sub.add_parser(
        "sim",
        help="run the event-driven memory controller on a trace file",
        parents=[common],
    )
    sim_p.add_argument(
        "--trace",
        required=True,
        metavar="FILE",
        help="memory trace (ramulator '0xADDR R|W' lines or DRAMPower "
        "'cycle,command,die,bank,row' CSV)",
    )
    sim_p.add_argument(
        "--format",
        choices=("auto", "ramulator", "drampower"),
        default="auto",
        help="trace format (auto: .csv -> drampower, else ramulator)",
    )
    sim_p.add_argument(
        "--policy",
        choices=("standard", "ir_fcfs", "ir_distr"),
        default="standard",
        help="scheduling policy (IR-aware ones need --lut)",
    )
    sim_p.add_argument(
        "--lut",
        metavar="FILE",
        help="serialized IR-drop table (IRDropLUT.to_json) for the "
        "IR-aware policies",
    )
    sim_p.add_argument(
        "--constraint",
        type=float,
        default=30.0,
        metavar="MV",
        help="IR-drop constraint in mV for the IR-aware policies",
    )
    sim_p.add_argument(
        "--timing",
        choices=_SIM_TIMINGS,
        default="ddr3",
        help="timing preset (default ddr3 = DDR3-1600)",
    )
    sim_p.add_argument("--dies", type=int, default=4, metavar="N")
    sim_p.add_argument("--banks-per-die", type=int, default=8, metavar="N")
    sim_p.add_argument("--channels", type=int, default=1, metavar="N")
    sim_p.add_argument("--queue-depth", type=int, default=32, metavar="N")
    sim_p.add_argument(
        "--max-banks-per-die",
        type=int,
        default=2,
        metavar="N",
        help="interleave limit (section 2.3's charge-pump cap)",
    )
    sim_p.add_argument("--close-window", type=int, default=8, metavar="N")
    sim_p.add_argument(
        "--refresh",
        action="store_true",
        help="issue periodic per-die refreshes (tREFI/tRFC)",
    )
    sim_p.add_argument(
        "--arrival-interval",
        type=float,
        default=1.0,
        metavar="CLK",
        help="synthesized request spacing for timestamp-free ramulator "
        "traces (default 1.0 = one per cycle)",
    )
    sim_p.add_argument(
        "--max-cycles", type=int, default=50_000_000, metavar="N"
    )
    sim_p.add_argument(
        "--legacy",
        action="store_true",
        help="run the original per-cycle loop instead (cross-checking; "
        "materializes the whole trace in memory)",
    )
    sim_p.add_argument(
        "--energy",
        action="store_true",
        help="append the per-command energy ledger to the report",
    )
    sim_p.set_defaults(func=_cmd_sim)

    bench_p = sub.add_parser(
        "bench",
        help="run the benchmark suite and gate against the baseline",
        parents=[common],
    )
    mode = bench_p.add_mutually_exclusive_group()
    mode.add_argument(
        "--smoke",
        action="store_true",
        help="sub-second bench set, fast experiment variants (default)",
    )
    mode.add_argument(
        "--full",
        action="store_true",
        help="every registered bench, full experiment variants",
    )
    bench_p.add_argument(
        "--only",
        nargs="+",
        metavar="NAME",
        help="run only the named benches (see --list)",
    )
    bench_p.add_argument(
        "--repeats",
        type=int,
        default=1,
        metavar="K",
        help="median-of-K timing per bench (default 1)",
    )
    bench_p.add_argument(
        "--out",
        metavar="PATH",
        help="suite record path (default: BENCH_<stamp>_<sha>.json at the "
        "repo root)",
    )
    bench_p.add_argument(
        "--baseline",
        metavar="PATH",
        help="baseline record to compare against (default: "
        "benchmarks/BASELINE.json)",
    )
    bench_p.add_argument(
        "--update-baseline",
        action="store_true",
        help="bless this run as the new committed baseline and exit",
    )
    bench_p.add_argument(
        "--no-compare",
        action="store_true",
        help="emit the record without comparing against the baseline",
    )
    bench_p.add_argument(
        "--gate",
        action="store_true",
        help="exit nonzero on perf_regression / accuracy_drift / failed "
        "(the CI mode)",
    )
    bench_p.add_argument(
        "--perf-tol",
        type=float,
        default=None,
        metavar="FRAC",
        help="allowed fractional slowdown vs the baseline median "
        "(default 0.5; raise across machines)",
    )
    bench_p.add_argument(
        "--ir-tol",
        type=float,
        default=None,
        metavar="MV",
        help="allowed |delta| in max-IR values in mV (default 1e-6; "
        "raise across BLAS builds)",
    )
    bench_p.add_argument(
        "--delta-out",
        metavar="PATH",
        help="also write the markdown delta table to PATH",
    )
    bench_p.add_argument(
        "--list",
        dest="list_benches",
        action="store_true",
        help="list registered benches and exit",
    )
    bench_p.set_defaults(func=_cmd_bench)

    obs_p = sub.add_parser(
        "obs",
        help="query the run-history store: list/show/diff/attribute/export",
        parents=[common],
    )
    obs_sub = obs_p.add_subparsers(dest="obs_command", required=True)

    def _store_arg(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--store",
            metavar="DIR",
            default=None,
            help="history store directory (default: "
            "benchmarks/results/history, or $REPRO_HISTORY_DIR)",
        )

    ingest_p = obs_sub.add_parser(
        "ingest",
        help="ingest run manifests or BENCH_*.json suite records",
        parents=[common],
    )
    ingest_p.add_argument("paths", nargs="+", metavar="PATH")
    _store_arg(ingest_p)
    ingest_p.set_defaults(func=_cmd_obs_ingest)

    list_p = obs_sub.add_parser(
        "list", help="list stored runs", parents=[common]
    )
    _store_arg(list_p)
    list_p.set_defaults(func=_cmd_obs_list)

    show_p = obs_sub.add_parser(
        "show", help="show one stored run in full", parents=[common]
    )
    show_p.add_argument(
        "run",
        nargs="?",
        default="last",
        help="run reference: last, last~N, or a run-id prefix (default last)",
    )
    _store_arg(show_p)
    show_p.set_defaults(func=_cmd_obs_show)

    for name, help_text in (
        ("diff", "render the delta between two stored runs as markdown"),
        ("attribute", "attribute run-vs-run drift: structural (plan diff) "
         "vs numerical (metric/residual deltas)"),
    ):
        action_p = obs_sub.add_parser(name, help=help_text, parents=[common])
        action_p.add_argument(
            "runs",
            nargs="*",
            metavar="RUN",
            help="two run references (default: last~1 last)",
        )
        action_p.add_argument(
            "--out", metavar="PATH", help="also write the markdown to PATH"
        )
        action_p.add_argument(
            "--gate",
            action="store_true",
            help="exit nonzero when any drift is detected (the CI mode)",
        )
        _store_arg(action_p)
        action_p.set_defaults(func=_cmd_obs_diff)

    export_p = obs_sub.add_parser(
        "export",
        help="export a stored run as unified Chrome/Perfetto trace JSON "
        "(spans + profiler counter tracks)",
        parents=[common],
    )
    export_p.add_argument("run", nargs="?", default="last")
    export_p.add_argument(
        "--out",
        metavar="PATH",
        default="obs_trace.json",
        help="output path (default obs_trace.json)",
    )
    _store_arg(export_p)
    export_p.set_defaults(func=_cmd_obs_export)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    for key, value in _GLOBAL_DEFAULTS.items():
        if not hasattr(args, key):
            setattr(args, key, value)
    configure(level=args.log_level, json_path=args.log_json, quiet=args.quiet)
    if args.workers is not None:
        # Experiment drivers resolve workers from the environment, so the
        # flag reaches every sweep without threading it through each API.
        os.environ[WORKERS_ENV] = str(args.workers)
    if args.solver is not None:
        # Same pattern: StackSolver resolves its backend from the
        # environment, so one flag covers every solve in the run
        # (including worker processes, which inherit the environment).
        os.environ[SOLVER_ENV] = resolve_backend(args.solver)
    if args.profile:
        # Environment first so worker processes inherit the switch, then
        # the sampler itself for this process.
        os.environ[PROFILE_ENV] = "1"
        start_profiler()
    if args.resume:
        # Sweep sessions resolve their checkpoint from the environment
        # (repro.resil.checkpoint), so the flag covers every sweep in
        # the run without threading a handle through each driver.
        os.environ[CHECKPOINT_ENV] = args.resume
    with span(f"cli.{args.command}") as sp:
        code = args.func(args)
    if args.perf_report:
        _log.info("\n%s", perf_report())
    if args.trace_out:
        write_chrome_trace(args.trace_out)
    if args.metrics_out:
        write_metrics(args.metrics_out)
    manifest_path = _manifest_path(args)
    fallback_manifest = None
    if manifest_path is not None and not getattr(args, "_manifest_written", False):
        # Commands without a dedicated manifest (list/all/solve) still
        # get a provenance receipt covering the whole invocation.
        fallback_manifest = build_manifest(
            experiment_id=f"cli.{args.command}",
            title=f"repro3d {args.command}",
            config={"command": args.command, "full": getattr(args, "full", False)},
            duration_s=sp.duration,
        )
        fallback_manifest.write(manifest_path)
    if args.history:
        from repro.obs.store import RunHistoryStore

        store = RunHistoryStore()
        record = getattr(args, "_bench_record", None)
        if record is not None:
            run_id = store.ingest_bench_record(
                record.to_dict(),
                source=getattr(args, "_bench_record_path", None),
            )
        else:
            manifest = getattr(args, "_last_manifest", None) or fallback_manifest
            if manifest is None:
                manifest = build_manifest(
                    experiment_id=f"cli.{args.command}",
                    title=f"repro3d {args.command}",
                    config={
                        "command": args.command,
                        "full": getattr(args, "full", False),
                    },
                    duration_s=sp.duration,
                )
            run_id = store.ingest_live_run(manifest)
        _log.info("run recorded in history: %s", run_id)
    return code


if __name__ == "__main__":
    sys.exit(main())
