"""Command-line interface: run paper experiments from the shell.

Examples::

    repro3d list                  # available experiments
    repro3d run table6            # one experiment (fast variant)
    repro3d run table9 --full     # full (slow) variant
    repro3d all                   # every experiment, fast variants
    repro3d solve ddr3_off 0-0-0-2 --f2f   # ad-hoc IR solve
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from repro.designs import all_benchmarks, benchmark
from repro.experiments import registry, run_experiment
from repro.pdn.config import Bonding
from repro.pdn.stackup import build_stack
from repro.perf.parallel import WORKERS_ENV
from repro.perf.timers import report as perf_report
from repro.power.state import MemoryState


def _cmd_list(_: argparse.Namespace) -> int:
    print("available experiments:")
    for exp_id in sorted(registry):
        print(f"  {exp_id}")
    print("\nbenchmarks:", ", ".join(sorted(all_benchmarks())))
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    result = run_experiment(args.experiment, fast=not args.full)
    print(result.fmt())
    return 0


def _cmd_all(args: argparse.Namespace) -> int:
    for exp_id in sorted(registry):
        result = run_experiment(exp_id, fast=not args.full)
        print(result.fmt())
        print()
    return 0


def _cmd_solve(args: argparse.Namespace) -> int:
    bench = benchmark(args.benchmark)
    config = bench.baseline
    if args.f2f:
        config = config.with_options(bonding=Bonding.F2F)
    if args.wirebond:
        config = config.with_options(wire_bond=True)
    stack = build_stack(bench.stack, config)
    state = (
        MemoryState.from_string(args.state, bench.stack.dram_floorplan)
        if args.state
        else bench.reference_state()
    )
    result = stack.solve_state(state)
    print(f"{bench.title} [{config.label()}]")
    print(f"  {result}")
    for die, mv in result.per_die_mv.items():
        print(f"  {die}: {mv:.2f} mV")
    return 0


def _workers_arg(value: str) -> int:
    count = int(value)
    if count < 0:
        raise argparse.ArgumentTypeError(
            f"workers must be >= 0 (0 means serial), got {count}"
        )
    return count


def build_parser() -> argparse.ArgumentParser:
    """Construct the repro3d argument parser (exposed for tests/docs)."""
    parser = argparse.ArgumentParser(
        prog="repro3d",
        description="3D DRAM DC power-integrity co-optimization platform "
        "(DAC'15 reproduction)",
    )
    parser.add_argument(
        "--perf-report",
        action="store_true",
        help="print accumulated solver/assembly timers after the command",
    )
    parser.add_argument(
        "--workers",
        type=_workers_arg,
        default=None,
        metavar="N",
        help="process count for design-space sweeps (default: serial, or "
        f"the {WORKERS_ENV} environment variable)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list experiments and benchmarks").set_defaults(
        func=_cmd_list
    )

    run_p = sub.add_parser("run", help="run one experiment")
    run_p.add_argument("experiment", choices=sorted(registry))
    run_p.add_argument(
        "--full", action="store_true", help="full sweeps (slower)"
    )
    run_p.set_defaults(func=_cmd_run)

    all_p = sub.add_parser("all", help="run every experiment")
    all_p.add_argument("--full", action="store_true")
    all_p.set_defaults(func=_cmd_all)

    solve_p = sub.add_parser("solve", help="ad-hoc IR-drop solve")
    solve_p.add_argument("benchmark", choices=sorted(all_benchmarks()))
    solve_p.add_argument(
        "state", nargs="?", help='memory state, e.g. "0-0-0-2" (default: '
        "the benchmark's reference state)"
    )
    solve_p.add_argument("--f2f", action="store_true", help="F2F bonding")
    solve_p.add_argument("--wirebond", action="store_true", help="add bond wires")
    solve_p.set_defaults(func=_cmd_solve)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    if args.workers is not None:
        # Experiment drivers resolve workers from the environment, so the
        # flag reaches every sweep without threading it through each API.
        os.environ[WORKERS_ENV] = str(args.workers)
    code = args.func(args)
    if args.perf_report:
        print("\n" + perf_report())
    return code


if __name__ == "__main__":
    sys.exit(main())
