"""The Table 8 cost model.

Every technology parameter contributes a cost term:

=============  =================  ============
Solution       Input range        Cost range
=============  =================  ============
M2 VDD usage   10% - 20%          0.025 - 0.05
M3 VDD usage   10% - 40%          0.025 - 0.10
Power TSV #    15 - 480           0.078 - 0.44
Dedicated TSV  yes / no           0.06 / 0
Bonding style  F2B / F2F          0.045 / 0.06
RDL layer      yes / no           0.05 / 0
Wire bonding   yes / no           0.03 / 0
TSV location   C / E / D          0 / 0.5xTC / 1xTC
=============  =================  ============

"Except for the TSV count (TC), the cost of which is calculated by a
square root function, other terms are proportional to inputs"
(section 6.1).  Fitting those statements to the stated ranges gives
``cost_M = 0.25 * usage`` and ``cost_TC = 0.0201 * sqrt(TC)``; with a
stand-alone package adder of 0.057 for the off-chip stacked DDR3, the
model reproduces every Cost column entry of Table 9 to within ~0.01.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict

from repro.errors import ConfigurationError
from repro.pdn.config import Bonding, PDNConfig, TSVLocation

#: Proportionality constant of metal-usage cost (0.10 -> 0.025).
METAL_COST_PER_USAGE = 0.25
#: Square-root constant of TSV-count cost (15 -> 0.078, 480 -> 0.44).
TSV_COST_COEFF = 0.0201
#: Fixed option costs.
DEDICATED_TSV_COST = 0.06
BONDING_COST = {Bonding.F2B: 0.045, Bonding.F2F: 0.06}
RDL_COST = 0.05
WIRE_BOND_COST = 0.03
#: TSV-location multiplier applied to the TSV-count cost.
TSV_LOCATION_FACTOR = {
    TSVLocation.CENTER: 0.0,
    TSVLocation.EDGE: 0.5,
    TSVLocation.DISTRIBUTED: 1.0,
}


def m2_cost(usage: float) -> float:
    """Cost of the M2 VDD usage (proportional)."""
    if usage <= 0.0:
        raise ConfigurationError("usage must be positive")
    return METAL_COST_PER_USAGE * usage


def m3_cost(usage: float) -> float:
    """Cost of the M3 VDD usage (proportional)."""
    if usage <= 0.0:
        raise ConfigurationError("usage must be positive")
    return METAL_COST_PER_USAGE * usage


def tsv_count_cost(count: int) -> float:
    """Cost of the power TSV count (square-root law)."""
    if count < 1:
        raise ConfigurationError("TSV count must be >= 1")
    return TSV_COST_COEFF * math.sqrt(count)


def tsv_location_cost(location: TSVLocation, count: int) -> float:
    """Cost of the TSV location style, proportional to the TC cost.

    Center TSVs are free (no routing blockage on the die below); edge
    TSVs pay half the TC cost again in keep-out zones; distributed TSVs
    (between banks) pay the full TC cost again (Table 8).
    """
    return TSV_LOCATION_FACTOR[location] * tsv_count_cost(count)


@dataclass(frozen=True)
class CostBreakdown:
    """Per-term costs of one configuration."""

    terms: Dict[str, float]

    @property
    def total(self) -> float:
        return sum(self.terms.values())

    def __str__(self) -> str:  # pragma: no cover - repr convenience
        parts = ", ".join(f"{k}={v:.3f}" for k, v in self.terms.items() if v)
        return f"cost {self.total:.3f} ({parts})"


def config_cost(config: PDNConfig, package_cost: float = 0.0) -> CostBreakdown:
    """Total cost of a design point.

    ``package_cost`` is the stand-alone package adder (0.057 for the
    off-chip stacked DDR3, 0 for parts that ride a host die or supply
    their own base logic die; see :class:`repro.designs.BenchmarkSpec`).
    """
    terms = {
        "M2": m2_cost(config.m2_usage),
        "M3": m3_cost(config.m3_usage),
        "TC": tsv_count_cost(config.tsv_count),
        "TL": tsv_location_cost(config.tsv_location, config.tsv_count),
        "TD": DEDICATED_TSV_COST if config.dedicated_tsv else 0.0,
        "BD": BONDING_COST[config.bonding],
        "RL": RDL_COST if config.rdl.enabled else 0.0,
        "WB": WIRE_BOND_COST if config.wire_bond else 0.0,
        "package": package_cost,
    }
    return CostBreakdown(terms=terms)
