"""Cost estimation model (paper Table 8)."""

from repro.cost.model import (
    CostBreakdown,
    config_cost,
    m2_cost,
    m3_cost,
    tsv_count_cost,
    tsv_location_cost,
)

__all__ = [
    "CostBreakdown",
    "config_cost",
    "m2_cost",
    "m3_cost",
    "tsv_count_cost",
    "tsv_location_cost",
]
