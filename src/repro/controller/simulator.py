"""Cycle-by-cycle memory controller simulation (legacy reference engine).

Implements the paper's simulator (section 2.3): per-bank FSMs, per-channel
command/data buses, a bounded priority queue, nominal arrivals every N
cycles (stalling when the queue is full), idle-bank auto-close, and a
pluggable scheduling policy.

For each cycle the engine considers queued requests in the policy's
priority order and issues at most one command per channel:

* READ  -- when the target bank has the right row open and the data bus
  will be free for the burst;
* ACT   -- when the bank is idle, the die's interleave limit (max two
  banks per die, to avoid charge-pump overdraw) holds, and the policy's
  admission rule (tRRD/tFAW or the IR-drop LUT) passes;
* PRE   -- when the open row no longer matches any queued request, or the
  bank has been idle past the close window ("if an active bank does not
  receive further read requests in a few cycles, the bank is closed to
  reduce IR drop").

.. deprecated::
    :class:`MemoryControllerSim` is now a thin compatibility shim: its
    :meth:`~MemoryControllerSim.run` delegates to the event-driven
    :class:`repro.controller.engine.EventDrivenEngine`, which reproduces
    this loop's decisions exactly (see ``tests/test_engine_equivalence.py``)
    at a fraction of the per-request cost.  The original per-cycle loop
    remains available as :meth:`~MemoryControllerSim.run_legacy` — it is
    the reference implementation for the equivalence harness and the
    baseline for ``benchmarks/bench_controller_throughput.py``.  New code
    should construct :class:`~repro.controller.engine.EventDrivenEngine`
    directly (it also accepts streaming trace workloads).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.controller.engine import (
    EventDrivenEngine,
    OccupancyAccumulator,
    SimConfig,
    SimResult,
)
from repro.controller.lut import IRDropLUT
from repro.controller.policies import ReadPolicy, StandardJEDEC
from repro.controller.queue import RequestQueue
from repro.controller.request import ReadRequest
from repro.dram.bank import Bank, BankState
from repro.dram.channel import ChannelBus
from repro.errors import SimulationError
from repro.obs import metrics as _metrics
from repro.obs.trace import span

__all__ = ["SimConfig", "SimResult", "MemoryControllerSim"]


class MemoryControllerSim:
    """One simulation run: a workload through a policy on a memory system.

    Compatibility shim — see the module docstring.  ``run()`` uses the
    event-driven engine; ``run_legacy()`` is the original per-cycle loop.
    """

    def __init__(
        self,
        config: SimConfig,
        policy: ReadPolicy,
        workload: Sequence[ReadRequest],
        report_lut: Optional[IRDropLUT] = None,
    ) -> None:
        """``report_lut``: used only to *report* the worst IR drop over
        visited states (so the standard policy, which is IR-blind, still
        gets an honest max-IR column as in Table 6)."""
        self.config = config
        self.policy = policy
        self.workload = list(workload)
        self.report_lut = report_lut
        for req in self.workload:
            if not (0 <= req.die < config.num_dies):
                raise SimulationError(f"request {req.req_id}: die {req.die} out of range")
            if not (0 <= req.bank < config.banks_per_die):
                raise SimulationError(f"request {req.req_id}: bank {req.bank} out of range")

    # -- helpers -----------------------------------------------------------------

    def _active_counts(self, banks: List[List[Bank]], now: int) -> Tuple[int, ...]:
        counts = []
        for die_banks in banks:
            n = 0
            for bank in die_banks:
                bank.sync(now)
                if bank.is_active():
                    n += 1
            counts.append(n)
        return tuple(counts)

    # -- entry points ----------------------------------------------------------------

    def run(self, max_cycles: int = 5_000_000) -> SimResult:
        """Simulate until every request completes (or ``max_cycles``).

        Delegates to the event-driven engine (decision-equivalent to the
        legacy loop, ~20x+ faster); the run executes inside a ``sim.run``
        trace span and pushes queue-depth, cycle-count, and command-mix
        metrics into the global registry.
        """
        engine = EventDrivenEngine(
            self.config, self.policy, self.workload, self.report_lut
        )
        return engine.run(max_cycles)

    def run_legacy(self, max_cycles: int = 5_000_000) -> SimResult:
        """The original per-cycle loop (reference implementation)."""
        with span(
            "sim.run",
            policy=self.policy.name,
            requests=len(self.workload),
            engine="legacy",
        ):
            result = self._run(max_cycles)
        _metrics.inc("sim.runs")
        _metrics.inc("sim.requests_completed", result.completed)
        _metrics.inc("sim.activations", result.activations)
        _metrics.observe("sim.mean_queue_depth", result.mean_queue_depth)
        _metrics.observe("sim.cycles", float(result.cycles))
        if result.states_dropped:
            _metrics.inc("sim.states.dropped", result.states_dropped)
        return result

    # -- main loop ------------------------------------------------------------------

    def _run(self, max_cycles: int) -> SimResult:
        cfg = self.config
        self.policy.reset()
        banks = [
            [Bank(die, b, cfg.timing) for b in range(cfg.banks_per_die)]
            for die in range(cfg.num_dies)
        ]
        channels = {
            c: ChannelBus(c, cfg.timing) for c in range(cfg.num_channels)
        }
        queue = RequestQueue(cfg.queue_depth)
        pending = 0  # index of next workload request to enter the queue
        completed = 0
        activations = 0
        precharges = 0
        refreshes = 0
        reads = 0
        writes = 0
        # Refresh bookkeeping: deadlines staggered across dies, and the
        # cycle until which a refreshing die's banks are unavailable.
        next_refresh = [
            (die + 1) * cfg.timing.tREFI // cfg.num_dies
            for die in range(cfg.num_dies)
        ]
        refresh_blocked_until = [0] * cfg.num_dies
        last_activity: Dict[Tuple[int, int], int] = {}
        occupancy = OccupancyAccumulator(cfg.max_tracked_states)
        latency_sum = 0
        read_states: Set[Tuple[int, ...]] = set()  # states in effect when a READ issued
        command_states: Set[Tuple[int, ...]] = set()  # states created by ACT commands
        now = 0
        prev_now = 0
        last_state: Optional[Tuple[int, ...]] = None

        total = len(self.workload)
        while completed < total:
            if now >= max_cycles:
                break

            # --- arrivals (stall when the queue is full) -------------------
            while (
                pending < total
                and not queue.full
                and self.workload[pending].arrival_cycle <= now
            ):
                queue.push(self.workload[pending])
                pending += 1

            counts = self._active_counts(banks, now)
            # Occupancy accounting: the state held since prev_now.
            if last_state is not None and now > prev_now:
                occupancy.add(last_state, now - prev_now)
                queue.sample_occupancy(now - prev_now)
            prev_now = now
            last_state = counts

            issued_any = False
            used_channels: Set[int] = set()

            # --- refresh (per die, staggered deadlines) -------------------
            refresh_due = [
                cfg.refresh_enabled and now >= next_refresh[die]
                for die in range(cfg.num_dies)
            ]
            if cfg.refresh_enabled:
                for die in range(cfg.num_dies):
                    if not refresh_due[die]:
                        continue
                    die_banks = banks[die]
                    for bank in die_banks:
                        bank.sync(now)
                    if all(b.state is BankState.IDLE for b in die_banks):
                        chan_id = cfg.channel_of(0)
                        chan = channels[chan_id]
                        if chan_id not in used_channels and chan.can_issue_command(now):
                            chan.issue_command(now)
                            used_channels.add(chan_id)
                            blocked = now + cfg.timing.tRFC
                            refresh_blocked_until[die] = blocked
                            for bank in die_banks:
                                bank.block_for_refresh(now)
                            next_refresh[die] += cfg.timing.tREFI
                            refreshes += 1
                            issued_any = True

            # --- issue phase ------------------------------------------------
            # Pass 1: opportunistic READs to open rows, in policy order.
            # Pass 2: per free channel, ONE activation candidate chosen by
            # the policy (head-of-line for FCFS, least-loaded-die for
            # DistR) may ACT, or PRE its bank on a row mismatch.
            def is_ready(r: ReadRequest) -> bool:
                bk = banks[r.die][r.bank]
                bk.sync(now)
                return bk.state is BankState.ACTIVE and bk.open_row == r.row

            non_ready_by_chan: Dict[int, List[ReadRequest]] = {}
            for req in self.policy.order(queue.in_arrival_order(), counts, is_ready):
                chan_id = cfg.channel_of(req.bank)
                chan = channels[chan_id]
                bank = banks[req.die][req.bank]
                bank.sync(now)

                if (
                    chan_id not in used_channels
                    and bank.can_read(now, req.row)
                    and (
                        chan.can_issue_write(now)
                        if req.is_write
                        else chan.can_issue_read(now)
                    )
                    and self.policy.may_read(req.die, now, counts)
                    and not (cfg.refresh_enabled and refresh_due[req.die])
                ):
                    if req.is_write:
                        end = chan.issue_write(now)
                        bank.write(now, req.row)
                        writes += 1
                    else:
                        end = chan.issue_read(now)
                        bank.read(now, req.row)
                        reads += 1
                    req.issue_cycle = now
                    req.complete_cycle = end
                    latency_sum += end - req.arrival_cycle
                    queue.remove(req)
                    completed += 1
                    read_states.add(counts)
                    last_activity[(req.die, req.bank)] = now
                    used_channels.add(chan_id)
                    issued_any = True
                    continue
                if not is_ready(req):
                    non_ready_by_chan.setdefault(chan_id, []).append(req)

            for chan_id, waiting in non_ready_by_chan.items():
                if chan_id in used_channels:
                    continue
                chan = channels[chan_id]
                if not chan.can_issue_command(now):
                    continue
                for req in self.policy.act_candidates(waiting, counts):
                    bank = banks[req.die][req.bank]
                    bank.sync(now)

                    if bank.can_activate(now):
                        if counts[req.die] >= cfg.max_banks_per_die:
                            continue
                        if cfg.max_banks_per_channel is not None:
                            in_channel = sum(
                                1
                                for b in banks[req.die]
                                if b.is_active()
                                and cfg.channel_of(b.bank_id) == chan_id
                            )
                            if in_channel >= cfg.max_banks_per_channel:
                                continue
                        if cfg.refresh_enabled and (
                            refresh_due[req.die]
                            or now < refresh_blocked_until[req.die]
                        ):
                            continue  # die is refreshing or about to
                        if not self.policy.may_activate(req.die, now, counts):
                            continue
                        bank.activate(now, req.row)
                        chan.issue_command(now)
                        self.policy.on_activate(req.die, now)
                        counts = tuple(
                            c + 1 if d == req.die else c
                            for d, c in enumerate(counts)
                        )
                        command_states.add(counts)
                        activations += 1
                        last_activity[(req.die, req.bank)] = now
                        used_channels.add(chan_id)
                        issued_any = True
                        break

                    if (
                        bank.state is BankState.ACTIVE
                        and bank.open_row != req.row
                        and bank.can_precharge(now)
                        and not queue.targets_bank_row(
                            req.die, req.bank, bank.open_row
                        )
                    ):
                        bank.precharge(now)
                        chan.issue_command(now)
                        counts = tuple(
                            c - 1 if d == req.die else c
                            for d, c in enumerate(counts)
                        )
                        precharges += 1
                        used_channels.add(chan_id)
                        issued_any = True
                        break

            # --- idle close ("a few cycles" without reads) ------------------
            # Under a violating drift state the IR-aware policies *shed*
            # banks even if queued requests still want their rows.
            shedding = self.policy.must_shed(counts)
            for die_banks in banks:
                for bank in die_banks:
                    bank.sync(now)
                    if bank.state is not BankState.ACTIVE:
                        continue
                    chan_id = cfg.channel_of(bank.bank_id)
                    if chan_id in used_channels:
                        continue
                    idle_since = last_activity.get((bank.die, bank.bank_id), bank.act_cycle)
                    force_close = cfg.refresh_enabled and refresh_due[bank.die]
                    if (
                        (force_close or now - idle_since >= cfg.close_window)
                        and bank.can_precharge(now)
                        and (
                            shedding
                            or force_close
                            or not queue.targets_bank_row(
                                bank.die, bank.bank_id, bank.open_row
                            )
                        )
                        and channels[chan_id].can_issue_command(now)
                    ):
                        bank.precharge(now)
                        channels[chan_id].issue_command(now)
                        precharges += 1
                        used_channels.add(chan_id)
                        issued_any = True

            # --- advance time ------------------------------------------------
            if issued_any:
                now += 1
                continue
            now = self._next_event(now, banks, channels, queue, pending, total, last_activity, next_refresh, refresh_blocked_until)

        # Final occupancy flush.
        if last_state is not None and now > prev_now:
            occupancy.add(last_state, now - prev_now)

        finished = completed >= total
        cycles = now
        max_ir = self._max_visited_ir(read_states | command_states)
        return SimResult(
            policy_name=self.policy.name,
            cycles=cycles,
            runtime_us=cfg.timing.cycles_to_us(cycles),
            completed=completed,
            bandwidth_reads_per_clk=completed / cycles if cycles else 0.0,
            max_ir_mv=max_ir,
            activations=activations,
            precharges=precharges,
            refreshes=refreshes,
            state_occupancy=occupancy.table,
            mean_queue_depth=queue.mean_occupancy,
            mean_latency_cycles=latency_sum / completed if completed else 0.0,
            finished=finished,
            reads=reads,
            writes=writes,
            states_dropped=occupancy.dropped,
        )

    def _max_visited_ir(self, states: Set[Tuple[int, ...]]) -> Optional[float]:
        """Worst IR over states in effect while commands/reads flowed.

        States reached only by drift (banks closing elsewhere) with no
        reads issued carry almost no dynamic current, so they are not
        counted -- matching the paper's accounting, where the IR-aware
        policy's reported maximum stays below its constraint."""
        if self.report_lut is None:
            return None
        worst = 0.0
        for counts in states:
            if sum(counts) > 0:
                worst = max(worst, self.report_lut.lookup(counts))
        return worst

    def _next_event(
        self,
        now: int,
        banks: List[List[Bank]],
        channels: Dict[int, ChannelBus],
        queue: RequestQueue,
        pending: int,
        total: int,
        last_activity: Dict[Tuple[int, int], int],
        next_refresh: List[int],
        refresh_blocked_until: List[int],
    ) -> int:
        """Earliest future cycle at which anything can change."""
        candidates: List[int] = []
        if pending < total and not queue.full:
            candidates.append(max(self.workload[pending].arrival_cycle, now + 1))
        for die_banks in banks:
            for bank in die_banks:
                nxt = bank.next_interesting_cycle(now)
                if nxt is not None:
                    candidates.append(nxt)
                # Close-window deadlines count as events too: an ACTIVE
                # bank becomes closeable once its idle window elapses.
                if bank.state is BankState.ACTIVE:
                    idle_since = last_activity.get(
                        (bank.die, bank.bank_id), bank.act_cycle
                    )
                    candidates.append(idle_since + self.config.close_window)
        for chan in channels.values():
            if chan.command_free_cycle > now:
                candidates.append(chan.command_free_cycle)
            if chan.data_free_cycle > now:
                candidates.append(chan.next_data_slot(now))
        if isinstance(self.policy, StandardJEDEC):
            earliest = self.policy.earliest_activate(now)
            if earliest > now:
                candidates.append(earliest)
        if self.config.refresh_enabled:
            candidates.extend(c for c in next_refresh if c > now)
            candidates.extend(c for c in refresh_blocked_until if c > now)
        future = [c for c in candidates if c > now]
        if not future:
            if queue.empty and pending >= total:
                # All work drained; only in-flight bursts remain.
                return now + 1
            raise SimulationError(
                f"simulation stalled at cycle {now}: queue depth "
                f"{len(queue)}, {pending}/{total} arrived"
            )
        return min(future)
