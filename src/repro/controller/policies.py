"""Read scheduling policies (paper section 5.2).

A policy answers two questions each cycle:

1. in what priority order should queued requests be considered, and
2. may a new bank activation issue on die ``d`` right now?

``StandardJEDEC`` answers (2) with the DDR3 tRRD/tFAW rules -- applied per
channel, because the standard controller treats the stack as one rank and
is "not aware of 3D stacking" (section 5.2).  The IR-drop-aware policies
answer it with the look-up table: activation is allowed whenever the
resulting memory state stays under the IR-drop constraint.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections import deque
from typing import Callable, Deque, List, Optional, Sequence, Tuple

import numpy as np

from repro.controller.lut import IRDropLUT
from repro.controller.request import ReadRequest
from repro.dram.timing import TimingParams
from repro.errors import ConfigurationError


class ReadPolicy(ABC):
    """Base class: scheduling order + activation admission."""

    name: str = "base"

    def reset(self) -> None:
        """Clear any per-run state (called once per simulation)."""

    @abstractmethod
    def order(
        self,
        queued: Sequence[ReadRequest],
        active_counts: Tuple[int, ...],
        is_ready: Optional[Callable[[ReadRequest], bool]] = None,
    ) -> List[ReadRequest]:
        """Queued requests in the priority order to consider this cycle.

        ``is_ready`` (optional callable request -> bool) tells whether a
        request's target row is already open, i.e. whether it would issue
        as a READ rather than needing a new activation."""

    @abstractmethod
    def may_activate(
        self, die: int, now: int, active_counts: Tuple[int, ...]
    ) -> bool:
        """May an ACT issue on ``die`` at ``now`` given current counts?

        ``active_counts`` counts banks that are active *before* the new
        activation.
        """

    def on_activate(self, die: int, now: int) -> None:
        """Notification that an ACT issued (for window bookkeeping)."""

    def may_read(self, die: int, now: int, active_counts: Tuple[int, ...]) -> bool:
        """May a READ issue in the current state?  The paper's condition
        (3) applies to every request sent to memory, so an IR-aware
        controller holds reads while the state violates the constraint
        (e.g. after banks elsewhere closed and raised this die's I/O
        share).  The standard policy is IR-blind and always reads."""
        return True

    #: how many waiting requests the activation stage may consider per
    #: channel per cycle.  The controller issues opportunistic READs to
    #: open rows out of order, but row activations follow the policy's
    #: priority with only this much lookahead, so inadmissible
    #: high-priority requests partially block the activation slot.
    act_lookahead: int = 4

    def act_candidates(
        self,
        non_ready: Sequence[ReadRequest],
        active_counts: Tuple[int, ...],
    ) -> List[ReadRequest]:
        """Waiting requests considered for a new activation this cycle,
        best first.  FCFS-style policies look at the oldest few; DistR
        re-prioritizes toward the least-loaded die, escaping head-of-line
        blocking when the oldest requests' dies are constrained."""
        return list(non_ready[: self.act_lookahead])

    def must_shed(self, active_counts: Tuple[int, ...]) -> bool:
        """Should the controller close banks to leave a violating state?
        Escape hatch for states reached by drift (bank closures elsewhere
        raising the surviving dies' I/O activity)."""
        return False

    def admit_activations(
        self,
        dies: Sequence[int],
        now: int,
        active_counts: Tuple[int, ...],
    ) -> List[bool]:
        """Batched :meth:`may_activate` over one channel walk.

        All queries share ``now`` and ``active_counts`` -- exactly the
        situation inside a scheduler's per-cycle candidate walk, where
        the state only changes once a command actually issues (which
        ends the walk).  ``may_activate`` must therefore behave as a
        pure predicate of ``(die, now, counts)``; the default simply
        loops, and LUT-backed policies override with a vectorized
        table probe."""
        return [self.may_activate(d, now, active_counts) for d in dies]

    def max_ir_of_state(self, counts: Tuple[int, ...]) -> Optional[float]:
        """IR drop the policy attributes to a state (None if unaware)."""
        return None


class StandardJEDEC(ReadPolicy):
    """JEDEC DDR3 standard policy: tRRD + tFAW, FCFS order.

    The paper compares against "JEDEC DDR3 standard policy with a tRRD of
    8 and a tFAW of 32".  Both windows are enforced across the whole
    channel (the controller sees one rank and cannot exploit 3D die-level
    parallelism -- precisely its weakness).
    """

    name = "standard"
    #: a plain JEDEC controller reorders far less aggressively than the
    #: paper's smart IR-aware queue.
    act_lookahead: int = 2

    def __init__(self, timing: TimingParams) -> None:
        self.timing = timing
        self._last_act: int = -(10**9)
        self._act_history: Deque[int] = deque()

    def reset(self) -> None:
        self._last_act = -(10**9)
        self._act_history.clear()

    def order(
        self,
        queued: Sequence[ReadRequest],
        active_counts: Tuple[int, ...],
        is_ready: Optional[Callable[[ReadRequest], bool]] = None,
    ) -> List[ReadRequest]:
        return list(queued)  # queue keeps arrival order: FCFS

    def may_activate(
        self, die: int, now: int, active_counts: Tuple[int, ...]
    ) -> bool:
        if now < self._last_act + self.timing.tRRD:
            return False
        # Four-activate window: at most 4 ACTs in any tFAW span.
        while self._act_history and self._act_history[0] <= now - self.timing.tFAW:
            self._act_history.popleft()
        return len(self._act_history) < 4

    def on_activate(self, die: int, now: int) -> None:
        self._last_act = now
        self._act_history.append(now)

    def earliest_activate(self, now: int) -> int:
        """Earliest cycle an ACT could become legal (event-skip helper)."""
        candidates = [self._last_act + self.timing.tRRD]
        if len(self._act_history) >= 4:
            candidates.append(self._act_history[-4] + self.timing.tFAW)
        return max(max(candidates), now)


class IRAwareFCFS(ReadPolicy):
    """IR-drop-aware policy, first-come-first-served order.

    Activation is admitted iff the post-activation memory state's IR drop
    (from the R-Mesh look-up table) meets the constraint.
    """

    name = "ir_fcfs"

    def __init__(self, lut: IRDropLUT, constraint_mv: float) -> None:
        if constraint_mv <= 0.0:
            raise ConfigurationError("IR-drop constraint must be positive")
        self.lut = lut
        self.constraint_mv = constraint_mv

    def order(
        self,
        queued: Sequence[ReadRequest],
        active_counts: Tuple[int, ...],
        is_ready: Optional[Callable[[ReadRequest], bool]] = None,
    ) -> List[ReadRequest]:
        return list(queued)

    def may_activate(
        self, die: int, now: int, active_counts: Tuple[int, ...]
    ) -> bool:
        new_counts = tuple(
            c + 1 if d == die else c for d, c in enumerate(active_counts)
        )
        if max(new_counts) > self.lut.max_banks_per_die:
            return False
        return self.lut.allows(new_counts, self.constraint_mv)

    def may_read(self, die: int, now: int, active_counts: Tuple[int, ...]) -> bool:
        return self.lut.allows(active_counts, self.constraint_mv)

    def must_shed(self, active_counts: Tuple[int, ...]) -> bool:
        return sum(active_counts) > 0 and not self.lut.allows(
            active_counts, self.constraint_mv
        )

    def admit_activations(
        self,
        dies: Sequence[int],
        now: int,
        active_counts: Tuple[int, ...],
    ) -> List[bool]:
        """One dense-table probe for the whole candidate walk.

        Builds the speculative +1 state per die and asks the LUT's
        batched path; identical to calling :meth:`may_activate` per die
        because ``allows_batch`` reads the same precomputed table (and
        treats over-the-interleave-cap states as not allowed, matching
        the scalar guard)."""
        if not dies:
            return []
        batch = np.tile(
            np.asarray(active_counts, dtype=np.int64), (len(dies), 1)
        )
        batch[np.arange(len(dies)), np.asarray(dies, dtype=np.int64)] += 1
        return list(self.lut.allows_batch(batch, self.constraint_mv))

    def max_ir_of_state(self, counts: Tuple[int, ...]) -> Optional[float]:
        return self.lut.lookup(counts)


class IRAwareDistR(IRAwareFCFS):
    """IR-drop-aware distributed-read policy.

    "The read request, whose target die has the least number of active
    banks, has the highest priority" (section 5.2): balancing reads across
    dies raises die-level parallelism under the same IR-drop constraint.
    """

    name = "ir_distr"

    def order(
        self,
        queued: Sequence[ReadRequest],
        active_counts: Tuple[int, ...],
        is_ready: Optional[Callable[[ReadRequest], bool]] = None,
    ) -> List[ReadRequest]:
        # Requests whose row is already open issue first (they drain the
        # queue without new activations); among the rest, the request
        # whose target die has the fewest active banks wins.  Stable, so
        # equal-priority requests keep arrival order.
        if is_ready is None:
            return sorted(queued, key=lambda r: active_counts[r.die])
        return sorted(
            queued,
            key=lambda r: (not is_ready(r), active_counts[r.die]),
        )

    def act_candidates(
        self,
        non_ready: Sequence[ReadRequest],
        active_counts: Tuple[int, ...],
    ) -> List[ReadRequest]:
        """Distributed read: the same lookahead window, re-prioritized so
        the request whose target die has the fewest active banks comes
        first (stable toward arrival order within a die-load class)."""
        window = list(non_ready[: self.act_lookahead])
        return sorted(window, key=lambda r: active_counts[r.die])
