"""The controller's bounded priority queue.

"Our memory controller has a priority queue of size 32 so that it can
smartly schedule the requests for the best performance" (section 2.3).
The queue preserves arrival order internally; scheduling *policies* decide
the priority in which entries are considered each cycle.
"""

from __future__ import annotations

from typing import Iterator, List

from repro.controller.request import ReadRequest
from repro.errors import SimulationError


class RequestQueue:
    """Bounded FIFO container with removal by identity."""

    def __init__(self, depth: int = 32) -> None:
        if depth < 1:
            raise SimulationError("queue depth must be >= 1")
        self.depth = depth
        self._items: List[ReadRequest] = []
        self.peak_occupancy = 0
        self._occupancy_cycles = 0
        self._samples = 0

    def __len__(self) -> int:
        return len(self._items)

    def __iter__(self) -> Iterator[ReadRequest]:
        return iter(self._items)

    @property
    def full(self) -> bool:
        return len(self._items) >= self.depth

    @property
    def empty(self) -> bool:
        return not self._items

    def push(self, request: ReadRequest) -> None:
        """Append an arriving request; raises on overflow."""
        if self.full:
            raise SimulationError("queue overflow: push on a full queue")
        self._items.append(request)
        self.peak_occupancy = max(self.peak_occupancy, len(self._items))

    def remove(self, request: ReadRequest) -> None:
        """Remove a completed request by identity."""
        try:
            self._items.remove(request)
        except ValueError:
            raise SimulationError(
                f"request {request.req_id} not in queue"
            ) from None

    def in_arrival_order(self) -> List[ReadRequest]:
        """Entries oldest-first (the FCFS priority)."""
        return list(self._items)

    def targets_bank_row(self, die: int, bank: int, row: int) -> bool:
        """Any queued request for this exact (die, bank, row)?"""
        return any(
            r.die == die and r.bank == bank and r.row == row for r in self._items
        )

    def sample_occupancy(self, weight: int = 1) -> None:
        """Record occupancy for the average-depth statistic."""
        self._occupancy_cycles += len(self._items) * weight
        self._samples += weight

    @property
    def mean_occupancy(self) -> float:
        return self._occupancy_cycles / self._samples if self._samples else 0.0
