"""The IR-drop look-up table (paper section 5.2).

"With our fast and accurate R-Mesh model, the max IR drops of each memory
state with various I/O activities are saved in a look-up table read by the
memory controller for read request scheduling."

A table is built for one *design* (one built :class:`PDNStack`): the
conductance matrix is factorized once and each memory state is a cheap
back-substitution.  States are keyed by per-die active-bank counts; the
I/O activity per die follows from the counts (zero-bubble interleaving),
and bank placement uses the edge worst case, both exactly as in the
paper's architecture studies.
"""

from __future__ import annotations

import itertools
import json
from typing import Dict, Optional, Tuple

import numpy as np
from numpy.typing import NDArray

from repro.errors import ConfigurationError
from repro.pdn.stackup import PDNStack
from repro.perf.timers import timed
from repro.power.state import MemoryState


class IRDropLUT:
    """Max IR drop (mV) per memory state, for one built design."""

    def __init__(
        self,
        stack: PDNStack,
        max_banks_per_die: int = 2,
        precompute: bool = True,
    ) -> None:
        if max_banks_per_die < 1:
            raise ConfigurationError("max_banks_per_die must be >= 1")
        self.stack = stack
        self.num_dies = stack.spec.num_dram_dies
        self.max_banks_per_die = max_banks_per_die
        self._table: Dict[Tuple[int, ...], float] = {}
        if precompute:
            self.precompute_all()

    def precompute_all(self) -> None:
        """Solve every state with counts in [0, max_banks_per_die]^dies.

        One factorization + one *batched* back-substitution: all pending
        states' current vectors go through SuperLU as a single
        ``(num_nodes, k)`` block (for the 4-die, 2-bank-interleave
        stacked DDR3 that is one 80-column solve plus the free idle
        state), via :meth:`repro.pdn.stackup.PDNStack.solve_states`.
        """
        pending = [
            counts
            for counts in itertools.product(
                range(self.max_banks_per_die + 1), repeat=self.num_dies
            )
            if counts not in self._table
        ]
        if not pending:
            return
        with timed("lut.precompute"):
            active = []
            for counts in pending:
                if sum(counts) == 0:
                    self._table[counts] = 0.0
                else:
                    active.append(counts)
            states = [
                MemoryState.from_counts(counts, self.stack.spec.dram_floorplan)
                for counts in active
            ]
            results = self.stack.solve_states(states)
            for counts, result in zip(active, results):
                self._table[counts] = result.dram_max_mv

    def lookup(self, counts: Tuple[int, ...]) -> float:
        """Max IR drop (mV) of a memory state given per-die bank counts."""
        counts = tuple(counts)
        if len(counts) != self.num_dies:
            raise ConfigurationError(
                f"state has {len(counts)} dies, design has {self.num_dies}"
            )
        if any(c < 0 or c > self.max_banks_per_die for c in counts):
            raise ConfigurationError(
                f"counts {counts} outside [0, {self.max_banks_per_die}]"
            )
        if counts not in self._table:
            if sum(counts) == 0:
                self._table[counts] = 0.0
            else:
                state = MemoryState.from_counts(
                    counts, self.stack.spec.dram_floorplan
                )
                self._table[counts] = self.stack.solve_state(state).dram_max_mv
        return self._table[counts]

    def allows(self, counts: Tuple[int, ...], constraint_mv: Optional[float]) -> bool:
        """Is a state legal under an IR-drop constraint (None = no limit)?"""
        if constraint_mv is None:
            return True
        return self.lookup(counts) <= constraint_mv

    def min_active_ir(self) -> float:
        """Smallest IR drop of any non-idle state: below this constraint no
        memory state is allowed at all (Figure 9's wall)."""
        single = []
        for die in range(self.num_dies):
            counts = tuple(1 if d == die else 0 for d in range(self.num_dies))
            single.append(self.lookup(counts))
        return min(single)

    def as_array(self) -> NDArray[np.float64]:
        """The full table as a dense ``(max+1,)*num_dies`` array.

        ``arr[c0, c1, ..]`` is the max IR drop of the state with those
        per-die counts -- the batched admission path indexes it with
        integer arrays instead of looking states up one by one.
        """
        self.precompute_all()
        shape = (self.max_banks_per_die + 1,) * self.num_dies
        arr = np.empty(shape, dtype=np.float64)
        for counts, value in self._table.items():
            arr[counts] = value
        return arr

    def allows_batch(
        self,
        counts_batch: NDArray[np.int64],
        constraint_mv: Optional[float],
    ) -> NDArray[np.bool_]:
        """Vectorized :meth:`allows` over an ``(n, num_dies)`` batch.

        States with any count outside ``[0, max_banks_per_die]`` are
        reported as not allowed (they exceed the interleave limit by
        construction) rather than raising, so callers can feed
        speculative +1 increments without pre-filtering.
        """
        batch = np.asarray(counts_batch, dtype=np.int64)
        if batch.ndim != 2 or batch.shape[1] != self.num_dies:
            raise ConfigurationError(
                f"batch must have shape (n, {self.num_dies})",
                got=tuple(batch.shape),
            )
        in_range = np.all(
            (batch >= 0) & (batch <= self.max_banks_per_die), axis=1
        )
        if constraint_mv is None:
            return in_range
        arr = self.as_array()
        ok = np.zeros(len(batch), dtype=np.bool_)
        if bool(in_range.any()):
            idx = tuple(batch[in_range].T)
            ok[in_range] = arr[idx] <= constraint_mv
        return ok

    @property
    def size(self) -> int:
        return len(self._table)

    def as_dict(self) -> Dict[Tuple[int, ...], float]:
        """Copy of the table (for reports and serialization)."""
        return dict(self._table)

    def to_json(self) -> str:
        """Serialize the full table for firmware-style reuse.

        A real memory controller would consume exactly this artifact: the
        per-state maxima, not the solver.  A lazily-populated table is
        precomputed first, so the shipped artifact is always complete --
        previously a partial table serialized silently and made
        :meth:`StaticIRDropLUT.lookup` raise at controller runtime.
        """
        if len(self._table) < (self.max_banks_per_die + 1) ** self.num_dies:
            self.precompute_all()
        payload = {
            "num_dies": self.num_dies,
            "max_banks_per_die": self.max_banks_per_die,
            "design": self.stack.config.label(),
            "table": {
                "-".join(map(str, counts)): round(value, 4)
                for counts, value in sorted(self._table.items())
            },
        }
        return json.dumps(payload, indent=2)

    @classmethod
    def from_json(cls, text: str) -> "StaticIRDropLUT":
        """Load a serialized table as a solver-free LUT."""
        payload = json.loads(text)
        table = {
            tuple(int(c) for c in key.split("-")): value
            for key, value in payload["table"].items()
        }
        return StaticIRDropLUT(
            table,
            num_dies=payload["num_dies"],
            max_banks_per_die=payload["max_banks_per_die"],
        )


class StaticIRDropLUT:
    """A solver-free LUT restored from serialized data.

    Duck-types the parts of :class:`IRDropLUT` the scheduling policies
    use (lookup / allows / min_active_ir / max_banks_per_die), so a
    controller can run from a shipped table without any solver present.
    """

    def __init__(
        self,
        table: Dict[Tuple[int, ...], float],
        num_dies: int,
        max_banks_per_die: int,
    ) -> None:
        if not table:
            raise ConfigurationError("empty LUT table")
        self._table = dict(table)
        self.num_dies = num_dies
        self.max_banks_per_die = max_banks_per_die

    def lookup(self, counts: Tuple[int, ...]) -> float:
        counts = tuple(counts)
        if counts not in self._table:
            raise ConfigurationError(f"state {counts} not in the static LUT")
        return self._table[counts]

    def allows(self, counts: Tuple[int, ...], constraint_mv: Optional[float]) -> bool:
        if constraint_mv is None:
            return True
        return self.lookup(counts) <= constraint_mv

    def min_active_ir(self) -> float:
        # Same semantics as IRDropLUT: the cheapest *single-bank* state,
        # because any schedule must pass through one when starting from
        # idle (the Figure 9 constraint wall).
        singles = [
            v for c, v in self._table.items() if sum(c) == 1
        ]
        if not singles:
            return min(v for c, v in self._table.items() if sum(c) > 0)
        return min(singles)

    def as_array(self) -> NDArray[np.float64]:
        """Dense table, same layout as :meth:`IRDropLUT.as_array`.

        States missing from the serialized table are filled with ``inf``
        so the batched path treats them as never-allowed instead of
        reading uninitialized memory.
        """
        shape = (self.max_banks_per_die + 1,) * self.num_dies
        arr = np.full(shape, np.inf, dtype=np.float64)
        for counts, value in self._table.items():
            if all(0 <= c <= self.max_banks_per_die for c in counts):
                arr[counts] = value
        return arr

    def allows_batch(
        self,
        counts_batch: NDArray[np.int64],
        constraint_mv: Optional[float],
    ) -> NDArray[np.bool_]:
        """Vectorized :meth:`allows`; out-of-range states are ``False``."""
        batch = np.asarray(counts_batch, dtype=np.int64)
        if batch.ndim != 2 or batch.shape[1] != self.num_dies:
            raise ConfigurationError(
                f"batch must have shape (n, {self.num_dies})",
                got=tuple(batch.shape),
            )
        in_range = np.all(
            (batch >= 0) & (batch <= self.max_banks_per_die), axis=1
        )
        if constraint_mv is None:
            return in_range
        arr = self.as_array()
        ok = np.zeros(len(batch), dtype=np.bool_)
        if bool(in_range.any()):
            idx = tuple(batch[in_range].T)
            ok[in_range] = arr[idx] <= constraint_mv
        return ok

    @property
    def size(self) -> int:
        return len(self._table)

    def as_dict(self) -> Dict[Tuple[int, ...], float]:
        return dict(self._table)
