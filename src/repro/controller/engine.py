"""Event-driven memory controller core.

This module is the performance-oriented successor of the per-cycle loop
in :mod:`repro.controller.simulator`.  It keeps the *decision logic* of
the paper's controller (section 2.3) bit-for-bit — the equivalence
harness in ``tests/test_engine_equivalence.py`` pins its
:class:`SimResult` to the legacy loop's on seeded workloads across all
shipped policies — while replacing the object-per-bank bookkeeping with
flat per-bank state vectors and an event queue that jumps straight to
the next cycle at which anything can change.

Design
======

* **Vectorized bank state.**  All per-bank state lives in flat arrays
  indexed ``die * banks_per_die + bank``: FSM code (0 idle,
  1 activating, 2 active, 3 precharging), open row, next-ready cycle,
  ACT cycle, last column-op cycle, and last-activity cycle (the idle
  close deadline base).  The authoritative copies are numpy ``int64``
  arrays (``BankStateVec``); the scheduling scan reads through plain
  Python list views of the same values because scalar indexing into
  small numpy arrays costs more than the arithmetic it feeds.  All
  mutations go through the vector so the two views cannot diverge.

* **Event skipping as a vector min.**  When no command issues, the next
  interesting cycle is the minimum over bank deadlines (state
  transitions, tCCD/tRAS/tWR windows, idle-close deadlines), channel
  command/data bus free times, the next arrival, refresh deadlines, and
  the policy's activation window.  For large configurations (HMC-class:
  128+ banks) the bank term is computed as a masked numpy vector min;
  for small ones an incremental scan over the (few) non-idle banks is
  faster and produces the same minimum — a property test asserts both
  paths agree.

* **Channel-local scheduling.**  The legacy loop's issue pass is
  *channel-separable*: within one cycle, whether a command issues on
  channel ``c`` depends only on ``c``'s buses, ``c``'s banks, and the
  iteration-constant active counts.  For FCFS-ordered policies
  (``StandardJEDEC``, ``IRAwareFCFS``) the engine therefore keeps the
  queue partitioned per channel and caches each channel's ready /
  non-ready split, invalidating only on events that can change it
  (arrival, completion, precharge, or a bank finishing activation).
  Policies with dynamic priority order (``IRAwareDistR``, custom
  subclasses) take a generic path that mirrors the legacy scan
  structure exactly.

* **Streaming workloads.**  The engine consumes any iterable of
  :class:`~repro.controller.request.ReadRequest` — a materialized list
  (the legacy contract), or a lazy trace reader, which is what makes
  multi-million-request runs possible without holding the whole trace's
  request objects alive.

* **Bounded state tracking.**  ``SimResult.state_occupancy`` is a
  sparse histogram capped at ``SimConfig.max_tracked_states`` distinct
  states; cycles spent in states beyond the cap are counted in
  ``SimResult.states_dropped`` (and the ``sim.states.dropped`` metric)
  instead of growing memory without bound on long trace runs.

Engine contract note: on the FCFS fast path,
``ReadPolicy.act_candidates`` receives at most ``act_lookahead`` waiting
requests per channel (the legacy loop passed the full list and every
shipped policy sliced it to the same window itself).  Policies that
override ``order`` or ``act_candidates`` automatically take the generic
path, which passes the full per-channel list like the legacy loop.

The legacy loop remains available as
:meth:`repro.controller.simulator.MemoryControllerSim.run_legacy` — it
is the reference implementation the equivalence harness and the
throughput benchmark compare against.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

import numpy as np
from numpy.typing import NDArray

from repro.controller.lut import IRDropLUT, StaticIRDropLUT
from repro.controller.policies import IRAwareFCFS, ReadPolicy, StandardJEDEC
from repro.controller.request import ReadRequest
from repro.dram.timing import TimingParams
from repro.errors import SimulationError
from repro.obs import metrics as _metrics
from repro.obs.trace import span

#: sentinel larger than any reachable cycle count.
_FAR: int = 1 << 62

#: bank-count threshold above which the vectorized next-event min and
#: idle-close eligibility masks beat the incremental scalar scans.
_VEC_THRESHOLD: int = 48

#: one queue entry on the FCFS fast path: (request, flat bank index,
#: global arrival sequence number).
_Entry = Tuple[ReadRequest, int, int]


@dataclass(frozen=True)
class SimConfig:
    """Structural parameters of the simulated memory system."""

    timing: TimingParams
    num_dies: int = 4
    banks_per_die: int = 8
    num_channels: int = 1
    queue_depth: int = 32
    #: interleave limit: max simultaneously active banks per die
    #: ("interleaving mode reads two banks per die in maximum to avoid
    #: current overdrawn from charge pump", section 2.3).
    max_banks_per_die: int = 2
    #: optional per-(die, channel) interleave limit for multi-channel
    #: parts (Wide I/O, HMC): the charge-pump limit is per channel there,
    #: while max_banks_per_die caps the die aggregate.
    max_banks_per_channel: Optional[int] = None
    #: idle cycles after which an open bank is precharged.
    close_window: int = 8
    #: issue periodic per-die refreshes (tREFI / tRFC).  Off by default:
    #: the paper's study is refresh-free; enable for realism studies.
    refresh_enabled: bool = False
    #: cap on distinct memory states tracked in
    #: ``SimResult.state_occupancy``; cycles in states beyond the cap
    #: accumulate in ``SimResult.states_dropped`` instead of growing the
    #: histogram (multi-million-request traces can otherwise visit an
    #: unbounded set of states).  The paper's 4-die / 2-bank studies
    #: have at most 3^4 = 81 states, so the default never binds there.
    max_tracked_states: int = 4096

    def channel_of(self, bank: int) -> int:
        """Bank -> channel mapping (banks striped across channels)."""
        return bank * self.num_channels // self.banks_per_die


@dataclass
class SimResult:
    """Outcome of one simulation run."""

    policy_name: str
    cycles: int
    runtime_us: float
    completed: int
    bandwidth_reads_per_clk: float
    max_ir_mv: Optional[float]
    activations: int
    precharges: int
    refreshes: int
    state_occupancy: Dict[Tuple[int, ...], int]
    mean_queue_depth: float
    mean_latency_cycles: float
    finished: bool
    #: completed column commands split by direction (reads + writes ==
    #: completed).
    reads: int = 0
    writes: int = 0
    #: cycles spent in states beyond ``SimConfig.max_tracked_states``.
    states_dropped: int = 0

    @property
    def commands(self) -> Dict[str, int]:
        """Per-command issue counts (the energy ledger's input)."""
        return {
            "ACT": self.activations,
            "PRE": self.precharges,
            "RD": self.reads,
            "WR": self.writes,
            "REF": self.refreshes,
        }

    def __str__(self) -> str:  # pragma: no cover - repr convenience
        ir = f"{self.max_ir_mv:.2f} mV" if self.max_ir_mv is not None else "n/a"
        return (
            f"{self.policy_name}: {self.runtime_us:.2f} us, "
            f"{self.bandwidth_reads_per_clk:.3f} reads/clk, max IR {ir}"
        )


class OccupancyAccumulator:
    """Sparse, bounded state-occupancy histogram.

    Shared by both engines so the cap semantics are identical: a state
    already tracked always accumulates; a *new* state is only admitted
    while the histogram holds fewer than ``cap`` entries, and cycles in
    overflow states are summed in :attr:`dropped` instead.
    """

    def __init__(self, cap: int) -> None:
        self.cap = cap
        self.table: Dict[Tuple[int, ...], int] = {}
        self.dropped = 0

    def add(self, state: Tuple[int, ...], cycles: int) -> None:
        table = self.table
        if state in table:
            table[state] += cycles
        elif len(table) < self.cap:
            table[state] = cycles
        else:
            self.dropped += cycles


class BankStateVec:
    """Flat per-bank state vectors indexed ``die * banks_per_die + bank``.

    The numpy arrays are the authoritative storage (and what the
    vectorized next-event / eligibility math runs over); the ``*_l``
    attributes are plain-list views of the same values for the scalar
    scheduling scan.  Mutations must go through the ``set_*`` helpers so
    the two views stay identical.
    """

    def __init__(self, num_banks: int) -> None:
        neg = -(10**9)
        self.st: NDArray[np.int64] = np.zeros(num_banks, dtype=np.int64)
        self.row: NDArray[np.int64] = np.full(num_banks, -1, dtype=np.int64)
        self.rdy: NDArray[np.int64] = np.zeros(num_banks, dtype=np.int64)
        self.act: NDArray[np.int64] = np.full(num_banks, neg, dtype=np.int64)
        self.col: NDArray[np.int64] = np.full(num_banks, neg, dtype=np.int64)
        self.lact: NDArray[np.int64] = np.full(num_banks, neg, dtype=np.int64)
        self.st_l: List[int] = [0] * num_banks
        self.row_l: List[int] = [-1] * num_banks
        self.rdy_l: List[int] = [0] * num_banks
        self.act_l: List[int] = [neg] * num_banks
        self.col_l: List[int] = [neg] * num_banks
        self.lact_l: List[int] = [neg] * num_banks

    def set_st(self, i: int, v: int) -> None:
        self.st[i] = v
        self.st_l[i] = v

    def set_row(self, i: int, v: int) -> None:
        self.row[i] = v
        self.row_l[i] = v

    def set_rdy(self, i: int, v: int) -> None:
        self.rdy[i] = v
        self.rdy_l[i] = v

    def set_act(self, i: int, v: int) -> None:
        self.act[i] = v
        self.act_l[i] = v

    def set_col(self, i: int, v: int) -> None:
        self.col[i] = v
        self.col_l[i] = v

    def set_lact(self, i: int, v: int) -> None:
        self.lact[i] = v
        self.lact_l[i] = v

    def consistent(self) -> bool:
        """The list views mirror the vectors (debug/test invariant)."""
        return (
            self.st.tolist() == self.st_l
            and self.row.tolist() == self.row_l
            and self.rdy.tolist() == self.rdy_l
            and self.act.tolist() == self.act_l
            and self.col.tolist() == self.col_l
            and self.lact.tolist() == self.lact_l
        )


class EventDrivenEngine:
    """Event-driven controller simulation (see module docstring).

    Decision-equivalent to the legacy per-cycle loop; accepts either a
    materialized request list or a streaming iterable.
    """

    def __init__(
        self,
        config: SimConfig,
        policy: ReadPolicy,
        workload: Iterable[ReadRequest],
        report_lut: Optional[IRDropLUT | StaticIRDropLUT] = None,
    ) -> None:
        self.config = config
        self.policy = policy
        self.report_lut = report_lut
        self._materialized: Optional[Sequence[ReadRequest]] = None
        self._stream: Optional[Iterator[ReadRequest]] = None
        if isinstance(workload, (list, tuple)):
            self._materialized = workload
            for req in workload:
                self._validate(req)
        else:
            self._stream = iter(workload)

    def _validate(self, req: ReadRequest) -> None:
        cfg = self.config
        if not (0 <= req.die < cfg.num_dies):
            raise SimulationError(
                f"request {req.req_id}: die {req.die} out of range"
            )
        if not (0 <= req.bank < cfg.banks_per_die):
            raise SimulationError(
                f"request {req.req_id}: bank {req.bank} out of range"
            )

    # -- public API ----------------------------------------------------------

    def run(self, max_cycles: int = 5_000_000) -> SimResult:
        """Simulate until the workload drains (or ``max_cycles``).

        Emits the same ``sim.run`` span and ``sim.*`` metrics as the
        legacy loop, with ``engine="event"`` provenance.
        """
        n_known = (
            len(self._materialized) if self._materialized is not None else -1
        )
        with span(
            "sim.run",
            policy=self.policy.name,
            requests=n_known,
            engine="event",
        ):
            result = self._run(max_cycles)
        _metrics.inc("sim.runs")
        _metrics.inc("sim.requests_completed", result.completed)
        _metrics.inc("sim.activations", result.activations)
        _metrics.observe("sim.mean_queue_depth", result.mean_queue_depth)
        _metrics.observe("sim.cycles", float(result.cycles))
        if result.states_dropped:
            _metrics.inc("sim.states.dropped", result.states_dropped)
        return result

    # -- main loop -----------------------------------------------------------

    def _run(self, max_cycles: int) -> SimResult:
        # The loop is deliberately one large function: it is the hot core
        # of every simulation and the call overhead of factoring it into
        # helpers is measurable at millions of iterations.
        cfg = self.config
        policy = self.policy
        policy.reset()
        timing = cfg.timing
        D = cfg.num_dies
        B = cfg.banks_per_die
        N = D * B
        C = cfg.num_channels
        tCL = timing.tCL
        tCWL = timing.tCWL
        tCCD = timing.tCCD
        tRCD = timing.tRCD
        tRP = timing.tRP
        tRAS = timing.tRAS
        tWR = timing.tWR
        tRFC = timing.tRFC
        tREFI = timing.tREFI
        burst = timing.burst_cycles
        close_window = cfg.close_window
        depth = cfg.queue_depth
        max_per_die = cfg.max_banks_per_die
        max_per_chan = cfg.max_banks_per_channel
        refresh_enabled = cfg.refresh_enabled
        chan_of_bank = [cfg.channel_of(b) for b in range(B)]
        use_vec = N >= _VEC_THRESHOLD
        std_policy = policy if isinstance(policy, StandardJEDEC) else None
        # Earliest cycle the JEDEC tRRD/tFAW windows admit an ACT.  Only
        # on_activate moves the windows, so this is recomputed once per
        # ACT instead of every scheduling iteration.
        act_window = 0

        # Policy capability detection.  The FCFS fast path applies when
        # order/act_candidates are the stock FCFS implementations (so a
        # per-channel split in arrival order reproduces the global scan)
        # and may_read is either the always-true default or the IR-aware
        # counts-only check (uniform across dies, cacheable per state).
        lookahead = policy.act_lookahead
        order_fn = type(policy).order
        fcfs_mode = (
            order_fn is StandardJEDEC.order or order_fn is IRAwareFCFS.order
        ) and type(policy).act_candidates is ReadPolicy.act_candidates
        mr_fn = type(policy).may_read
        if mr_fn is ReadPolicy.may_read:
            mr_kind = 0  # always True
        elif mr_fn is IRAwareFCFS.may_read:
            mr_kind = 1  # depends only on active counts: cache per state
        else:
            mr_kind = 2  # arbitrary override: call per request
        mr_cache: Dict[Tuple[int, ...], bool] = {}
        # may_activate dispatch (fcfs fast path only): StandardJEDEC's is
        # die- and counts-independent, so one evaluation covers the whole
        # cycle (an ACT re-arms tRRD, blocking further ACTs this cycle);
        # IRAwareFCFS's depends only on (counts, die), so it caches.
        ma_fn = type(policy).may_activate
        if ma_fn is StandardJEDEC.may_activate:
            ma_kind = 1
        elif ma_fn is IRAwareFCFS.may_activate:
            ma_kind = 2
        else:
            ma_kind = 0
        ma_cache: Dict[Tuple[Tuple[int, ...], int], bool] = {}

        vec = BankStateVec(N)
        st = vec.st_l
        rowv = vec.row_l
        rdy = vec.rdy_l
        act = vec.act_l
        col = vec.col_l
        lact = vec.lact_l

        # Channel buses.
        cmd_free = [0] * C
        data_free = [0] * C

        # Workload cursor: a materialized list or a pull-one stream.
        wl = self._materialized
        stream = self._stream
        pending = 0
        total = len(wl) if wl is not None else -1
        arrived = 0
        next_req: Optional[ReadRequest] = None
        exhausted = wl is not None  # list mode tracks via pending/total
        next_arrival = _FAR
        if wl is not None:
            if total > 0:
                next_arrival = wl[0].arrival_cycle
        else:
            assert stream is not None
            next_req = next(stream, None)
            if next_req is None:
                exhausted = True
            else:
                self._validate(next_req)
                next_arrival = next_req.arrival_cycle

        # Request queue.  FCFS mode: partitioned per channel with a
        # cached ready / non-ready split per channel.  Generic mode: one
        # global list in arrival order, re-prioritized by the policy
        # every scheduling iteration.
        q: List[ReadRequest] = []
        q_by_chan: List[List[_Entry]] = [[] for _ in range(C)]
        q_len = 0
        seq_counter = 0
        dirty = [True] * C
        cache_ready: List[List[_Entry]] = [[] for _ in range(C)]
        cache_nr: List[List[ReadRequest]] = [[] for _ in range(C)]
        cache_first = [0] * C

        # Incremental bookkeeping.
        counts = [0] * D  # is_active (ACTIVATING|ACTIVE) banks per die
        nonidle = [0] * D  # banks not in IDLE (includes PRECHARGING)
        act_by_die_chan = [[0] * C for _ in range(D)]
        transient: Set[int] = set()  # banks in state 1 or 3
        open_set: Set[int] = set()  # banks in state 2
        min_close = _FAR  # conservative-low idle-close deadline
        used_mark = [0] * C  # used_mark[c] == gen: channel issued this cycle
        gen = 0

        next_refresh = [(d + 1) * tREFI // D for d in range(D)]
        refresh_blocked_until = [0] * D
        no_refresh_due = [False] * D

        occ_table: Dict[Tuple[int, ...], int] = {}
        occ_cap = cfg.max_tracked_states
        occ_dropped = 0
        occ_cycles = 0
        occ_samples = 0
        completed = 0
        activations = 0
        precharges = 0
        refreshes = 0
        reads_n = 0
        writes_n = 0
        latency_sum = 0
        read_states: Set[Tuple[int, ...]] = set()
        command_states: Set[Tuple[int, ...]] = set()
        shed_cache: Dict[Tuple[int, ...], bool] = {}
        now = 0
        prev_now = 0
        last_state: Optional[Tuple[int, ...]] = None

        def is_ready(r: ReadRequest) -> bool:
            i = r.die * B + r.bank
            return st[i] == 2 and rowv[i] == r.row

        while True:
            if wl is not None:
                if completed >= total:
                    break
            elif exhausted and next_req is None and completed >= arrived:
                break
            if now >= max_cycles:
                break

            # --- arrivals (stall when the queue is full) -------------------
            if next_arrival <= now and q_len < depth:
                if wl is not None:
                    while pending < total and q_len < depth:
                        r = wl[pending]
                        if r.arrival_cycle > now:
                            break
                        if fcfs_mode:
                            b = r.bank
                            c = chan_of_bank[b]
                            q_by_chan[c].append((r, r.die * B + b, seq_counter))
                            dirty[c] = True
                        else:
                            q.append(r)
                        seq_counter += 1
                        q_len += 1
                        pending += 1
                    arrived = pending
                    next_arrival = (
                        wl[pending].arrival_cycle if pending < total else _FAR
                    )
                else:
                    assert stream is not None
                    while (
                        next_req is not None
                        and q_len < depth
                        and next_req.arrival_cycle <= now
                    ):
                        r = next_req
                        if fcfs_mode:
                            b = r.bank
                            c = chan_of_bank[b]
                            q_by_chan[c].append((r, r.die * B + b, seq_counter))
                            dirty[c] = True
                        else:
                            q.append(r)
                        seq_counter += 1
                        q_len += 1
                        arrived += 1
                        next_req = next(stream, None)
                        if next_req is None:
                            exhausted = True
                            next_arrival = _FAR
                        else:
                            self._validate(next_req)
                            next_arrival = next_req.arrival_cycle

            # --- sync transient banks; occupancy accounting ----------------
            if transient:
                for i in tuple(transient):
                    if rdy[i] <= now:
                        if st[i] == 1:
                            vec.set_st(i, 2)
                            open_set.add(i)
                            dl = lact[i] + close_window
                            if dl < min_close:
                                min_close = dl
                            dirty[chan_of_bank[i % B]] = True
                        else:  # state 3: precharge finished
                            vec.set_st(i, 0)
                            nonidle[i // B] -= 1
                        transient.discard(i)
            counts_t = tuple(counts)
            if last_state is not None and now > prev_now:
                w = now - prev_now
                v = occ_table.get(last_state)
                if v is not None:
                    occ_table[last_state] = v + w
                elif len(occ_table) < occ_cap:
                    occ_table[last_state] = w
                else:
                    occ_dropped += w
                occ_cycles += q_len * w
                occ_samples += w
            prev_now = now
            last_state = counts_t

            issued_any = False
            gen += 1
            used_n = 0

            # --- refresh (per die, staggered deadlines) --------------------
            if refresh_enabled:
                refresh_due = [now >= next_refresh[d] for d in range(D)]
                any_due = True in refresh_due
                if any_due:
                    for d in range(D):
                        if not refresh_due[d] or nonidle[d]:
                            continue
                        c0 = chan_of_bank[0]
                        if used_mark[c0] != gen and now >= cmd_free[c0]:
                            cmd_free[c0] = now + 1
                            used_mark[c0] = gen
                            used_n += 1
                            blocked = now + tRFC
                            refresh_blocked_until[d] = blocked
                            base = d * B
                            for j in range(base, base + B):
                                if rdy[j] < blocked:
                                    vec.set_rdy(j, blocked)
                            next_refresh[d] += tREFI
                            refreshes += 1
                            issued_any = True
            else:
                refresh_due = no_refresh_due
                any_due = False

            # --- issue phase -----------------------------------------------
            # Pass 1: opportunistic column commands to open rows, in
            # policy order.  Pass 2: per free channel, one activation
            # candidate chosen by the policy may ACT, or PRE its bank on
            # a row mismatch.
            if q_len and fcfs_mode:
                if mr_kind == 1:
                    mr_val = mr_cache.get(counts_t)
                    if mr_val is None:
                        mr_val = policy.may_read(0, now, counts_t)
                        mr_cache[counts_t] = mr_val
                    reads_possible = mr_val
                else:
                    reads_possible = True
                p2: List[Tuple[int, int]] = []
                for c in range(C):
                    lst = q_by_chan[c]
                    if not lst or used_mark[c] == gen or now < cmd_free[c]:
                        continue
                    if dirty[c]:
                        rc: List[_Entry] = []
                        nr: List[ReadRequest] = []
                        first = _FAR
                        for e in lst:
                            r = e[0]
                            i = e[1]
                            if st[i] == 2 and rowv[i] == r.row:
                                rc.append(e)
                            else:
                                if first == _FAR:
                                    first = e[2]
                                if len(nr) < lookahead:
                                    nr.append(r)
                        cache_ready[c] = rc
                        cache_nr[c] = nr
                        cache_first[c] = first
                        dirty[c] = False
                    else:
                        rc = cache_ready[c]
                        nr = cache_nr[c]
                    issued_here = False
                    if rc and reads_possible:
                        r_ok = now + tCL >= data_free[c]
                        w_ok = now + tCWL >= data_free[c]
                        if r_ok or w_ok:
                            for e in rc:
                                req = e[0]
                                i = e[1]
                                if now < rdy[i] or now < col[i] + tCCD:
                                    continue
                                if req.is_write:
                                    if not w_ok:
                                        continue
                                elif not r_ok:
                                    continue
                                if mr_kind == 2 and not policy.may_read(
                                    req.die, now, counts_t
                                ):
                                    continue
                                if refresh_enabled and refresh_due[req.die]:
                                    continue
                                cmd_free[c] = now + 1
                                if req.is_write:
                                    end = now + tCWL + burst
                                    writes_n += 1
                                else:
                                    end = now + tCL + burst
                                    reads_n += 1
                                data_free[c] = end
                                vec.set_col(i, now)
                                vec.set_lact(i, now)
                                req.issue_cycle = now
                                req.complete_cycle = end
                                latency_sum += end - req.arrival_cycle
                                for pos, ee in enumerate(lst):
                                    if ee is e:
                                        del lst[pos]
                                        break
                                q_len -= 1
                                dirty[c] = True
                                completed += 1
                                read_states.add(counts_t)
                                used_mark[c] = gen
                                used_n += 1
                                issued_any = True
                                issued_here = True
                                break
                    if not issued_here and nr:
                        p2.append((cache_first[c], c))
                # Pass 2, in the order channels first saw a waiting
                # request (the legacy scan's dict-insertion order).
                # fcfs_mode guarantees the stock act_candidates, which
                # returns exactly the capped non-ready window cache_nr.
                if p2:
                    if len(p2) > 1:
                        p2.sort()
                    act_ok = ma_kind != 1 or now >= act_window
                    for _, c in p2:
                        for req in cache_nr[c]:
                            d = req.die
                            i = d * B + req.bank
                            if st[i] == 0 and now >= rdy[i]:
                                if not act_ok:
                                    continue
                                if counts[d] >= max_per_die:
                                    continue
                                if (
                                    max_per_chan is not None
                                    and act_by_die_chan[d][c] >= max_per_chan
                                ):
                                    continue
                                if refresh_enabled and (
                                    refresh_due[d]
                                    or now < refresh_blocked_until[d]
                                ):
                                    continue
                                if ma_kind == 2:
                                    mkey = (counts_t, d)
                                    ok = ma_cache.get(mkey)
                                    if ok is None:
                                        ok = policy.may_activate(
                                            d, now, counts_t
                                        )
                                        ma_cache[mkey] = ok
                                    if not ok:
                                        continue
                                elif ma_kind == 0 and not policy.may_activate(
                                    d, now, counts_t
                                ):
                                    continue
                                vec.set_st(i, 1)
                                vec.set_row(i, req.row)
                                vec.set_act(i, now)
                                vec.set_rdy(i, now + tRCD)
                                vec.set_lact(i, now)
                                transient.add(i)
                                nonidle[d] += 1
                                counts[d] += 1
                                act_by_die_chan[d][c] += 1
                                counts_t = tuple(counts)
                                cmd_free[c] = now + 1
                                policy.on_activate(d, now)
                                if std_policy is not None:
                                    act_window = std_policy.earliest_activate(
                                        now
                                    )
                                    act_ok = False  # tRRD re-armed at now
                                command_states.add(counts_t)
                                activations += 1
                                used_mark[c] = gen
                                used_n += 1
                                issued_any = True
                                break
                            if (
                                st[i] == 2
                                and rowv[i] != req.row
                                and now >= act[i] + tRAS
                                and now >= col[i] + tWR
                            ):
                                bb = req.bank
                                rr = rowv[i]
                                hit = False
                                for e in q_by_chan[c]:
                                    r2 = e[0]
                                    if (
                                        r2.die == d
                                        and r2.bank == bb
                                        and r2.row == rr
                                    ):
                                        hit = True
                                        break
                                if hit:
                                    continue
                                vec.set_st(i, 3)
                                vec.set_row(i, -1)
                                vec.set_rdy(i, now + tRP)
                                open_set.discard(i)
                                transient.add(i)
                                counts[d] -= 1
                                act_by_die_chan[d][c] -= 1
                                counts_t = tuple(counts)
                                cmd_free[c] = now + 1
                                precharges += 1
                                used_mark[c] = gen
                                used_n += 1
                                issued_any = True
                                dirty[c] = True
                                break
            elif q_len:
                # Generic path: full policy-ordered scan, mirroring the
                # legacy structure (uncapped non-ready lists).
                order = policy.order(list(q), counts_t, is_ready)
                nr_by_chan: Dict[int, List[ReadRequest]] = {}
                for req in order:
                    b = req.bank
                    c = chan_of_bank[b]
                    i = req.die * B + b
                    if used_mark[c] != gen:
                        if (
                            st[i] == 2
                            and rowv[i] == req.row
                            and now >= rdy[i]
                            and now >= col[i] + tCCD
                            and now >= cmd_free[c]
                            and (
                                now + tCWL >= data_free[c]
                                if req.is_write
                                else now + tCL >= data_free[c]
                            )
                            and policy.may_read(req.die, now, counts_t)
                            and not (refresh_enabled and refresh_due[req.die])
                        ):
                            cmd_free[c] = now + 1
                            if req.is_write:
                                end = now + tCWL + burst
                                writes_n += 1
                            else:
                                end = now + tCL + burst
                                reads_n += 1
                            data_free[c] = end
                            vec.set_col(i, now)
                            vec.set_lact(i, now)
                            req.issue_cycle = now
                            req.complete_cycle = end
                            latency_sum += end - req.arrival_cycle
                            for pos, item in enumerate(q):
                                if item is req:
                                    del q[pos]
                                    break
                            q_len -= 1
                            completed += 1
                            read_states.add(counts_t)
                            used_mark[c] = gen
                            used_n += 1
                            issued_any = True
                            continue
                    if st[i] != 2 or rowv[i] != req.row:
                        lstw = nr_by_chan.get(c)
                        if lstw is None:
                            nr_by_chan[c] = [req]
                        else:
                            lstw.append(req)
                for c, waiting in nr_by_chan.items():
                    if used_mark[c] == gen or now < cmd_free[c]:
                        continue
                    for req in policy.act_candidates(waiting, counts_t):
                        d = req.die
                        i = d * B + req.bank
                        if st[i] == 0 and now >= rdy[i]:
                            if counts[d] >= max_per_die:
                                continue
                            if (
                                max_per_chan is not None
                                and act_by_die_chan[d][c] >= max_per_chan
                            ):
                                continue
                            if refresh_enabled and (
                                refresh_due[d]
                                or now < refresh_blocked_until[d]
                            ):
                                continue
                            if not policy.may_activate(d, now, counts_t):
                                continue
                            vec.set_st(i, 1)
                            vec.set_row(i, req.row)
                            vec.set_act(i, now)
                            vec.set_rdy(i, now + tRCD)
                            vec.set_lact(i, now)
                            transient.add(i)
                            nonidle[d] += 1
                            counts[d] += 1
                            act_by_die_chan[d][c] += 1
                            counts_t = tuple(counts)
                            cmd_free[c] = now + 1
                            policy.on_activate(d, now)
                            if std_policy is not None:
                                act_window = std_policy.earliest_activate(now)
                            command_states.add(counts_t)
                            activations += 1
                            used_mark[c] = gen
                            used_n += 1
                            issued_any = True
                            break
                        if (
                            st[i] == 2
                            and rowv[i] != req.row
                            and now >= act[i] + tRAS
                            and now >= col[i] + tWR
                            and not any(
                                r2.die == d
                                and r2.bank == req.bank
                                and r2.row == rowv[i]
                                for r2 in q
                            )
                        ):
                            vec.set_st(i, 3)
                            vec.set_row(i, -1)
                            vec.set_rdy(i, now + tRP)
                            open_set.discard(i)
                            transient.add(i)
                            counts[d] -= 1
                            act_by_die_chan[d][c] -= 1
                            counts_t = tuple(counts)
                            cmd_free[c] = now + 1
                            precharges += 1
                            used_mark[c] = gen
                            used_n += 1
                            issued_any = True
                            break

            # --- idle close ("a few cycles" without reads) -----------------
            # Gated on a conservative-low deadline so quiescent cycles
            # skip the scan entirely; under a violating drift state the
            # IR-aware policies *shed* banks even if queued requests
            # still want their rows (window permitting).
            if open_set and (any_due or now >= min_close):
                shedding = shed_cache.get(counts_t)
                if shedding is None:
                    shedding = policy.must_shed(counts_t)
                    shed_cache[counts_t] = shedding
                if use_vec:
                    elig = (
                        (vec.st == 2)
                        & (vec.act + tRAS <= now)
                        & (vec.col + tWR <= now)
                    )
                    candidates = [int(x) for x in np.nonzero(elig)[0]]
                else:
                    candidates = sorted(open_set)
                for i in candidates:
                    if st[i] != 2:
                        continue
                    d = i // B
                    b = i % B
                    c = chan_of_bank[b]
                    if used_mark[c] == gen:
                        continue
                    force_close = refresh_enabled and refresh_due[d]
                    if not (force_close or now - lact[i] >= close_window):
                        continue
                    if now < act[i] + tRAS or now < col[i] + tWR:
                        continue
                    if not (shedding or force_close):
                        rr = rowv[i]
                        hit = False
                        if fcfs_mode:
                            for e in q_by_chan[c]:
                                r2 = e[0]
                                if (
                                    r2.die == d
                                    and r2.bank == b
                                    and r2.row == rr
                                ):
                                    hit = True
                                    break
                        else:
                            for r2 in q:
                                if (
                                    r2.die == d
                                    and r2.bank == b
                                    and r2.row == rr
                                ):
                                    hit = True
                                    break
                        if hit:
                            continue
                    if now < cmd_free[c]:
                        continue
                    vec.set_st(i, 3)
                    vec.set_row(i, -1)
                    vec.set_rdy(i, now + tRP)
                    open_set.discard(i)
                    transient.add(i)
                    counts[d] -= 1
                    act_by_die_chan[d][c] -= 1
                    cmd_free[c] = now + 1
                    precharges += 1
                    used_mark[c] = gen
                    used_n += 1
                    issued_any = True
                    dirty[c] = True
                # Recompute the deadline floor for the skip gate: each
                # open bank cannot close before its window elapses AND
                # tRAS/tWR are met (queue targets and bus contention only
                # delay further, and lact/col/act never move backward, so
                # the min over these maxima stays a valid lower bound).
                if open_set:
                    mn = _FAR
                    for i in open_set:
                        dl2 = lact[i] + close_window
                        v2 = act[i] + tRAS
                        if v2 > dl2:
                            dl2 = v2
                        v2 = col[i] + tWR
                        if v2 > dl2:
                            dl2 = v2
                        if dl2 < mn:
                            mn = dl2
                    min_close = mn
                else:
                    min_close = _FAR

            # --- advance time ----------------------------------------------
            if issued_any:
                now += 1
                continue

            best = _FAR
            if q_len < depth and next_arrival < _FAR:
                v = next_arrival
                if v <= now:
                    v = now + 1
                if v < best:
                    best = v
            if use_vec and len(transient) + len(open_set) >= _VEC_THRESHOLD:
                v = self._bank_events_vec(
                    vec, now, tCCD, tRAS, tWR, close_window
                )
                if v < best:
                    best = v
            else:
                for i in transient:
                    v = rdy[i]
                    if now < v < best:
                        best = v
                for i in open_set:
                    v = col[i] + tCCD
                    if rdy[i] > v:
                        v = rdy[i]
                    if now < v < best:
                        best = v
                    v = act[i] + tRAS
                    if now < v < best:
                        best = v
                    v = col[i] + tWR
                    if now < v < best:
                        best = v
                    v = lact[i] + close_window
                    if now < v < best:
                        best = v
            for c in range(C):
                v = cmd_free[c]
                if now < v < best:
                    best = v
                if data_free[c] > now:
                    v = data_free[c] - tCL
                    if v < now:
                        v = now
                    if now < v < best:
                        best = v
            if std_policy is not None and now < act_window < best:
                best = act_window
            if refresh_enabled:
                for v in next_refresh:
                    if now < v < best:
                        best = v
                for v in refresh_blocked_until:
                    if now < v < best:
                        best = v
            if best == _FAR:
                if q_len == 0 and (
                    (wl is not None and pending >= total)
                    or (wl is None and exhausted)
                ):
                    # All work drained; only in-flight bursts remain.
                    now = now + 1
                    continue
                raise SimulationError(
                    f"simulation stalled at cycle {now}: queue depth "
                    f"{q_len}, {arrived}/{total if total >= 0 else '?'} "
                    "arrived"
                )
            now = best

        # Final occupancy flush.
        if last_state is not None and now > prev_now:
            w = now - prev_now
            v3 = occ_table.get(last_state)
            if v3 is not None:
                occ_table[last_state] = v3 + w
            elif len(occ_table) < occ_cap:
                occ_table[last_state] = w
            else:
                occ_dropped += w

        finished = (
            completed >= total
            if wl is not None
            else exhausted and completed >= arrived
        )
        cycles = now
        max_ir = self._max_visited_ir(read_states | command_states)
        return SimResult(
            policy_name=policy.name,
            cycles=cycles,
            runtime_us=timing.cycles_to_us(cycles),
            completed=completed,
            bandwidth_reads_per_clk=completed / cycles if cycles else 0.0,
            max_ir_mv=max_ir,
            activations=activations,
            precharges=precharges,
            refreshes=refreshes,
            state_occupancy=occ_table,
            mean_queue_depth=occ_cycles / occ_samples if occ_samples else 0.0,
            mean_latency_cycles=latency_sum / completed if completed else 0.0,
            finished=finished,
            reads=reads_n,
            writes=writes_n,
            states_dropped=occ_dropped,
        )

    @staticmethod
    def _bank_events_vec(
        vec: BankStateVec,
        now: int,
        tCCD: int,
        tRAS: int,
        tWR: int,
        close_window: int,
    ) -> int:
        """Earliest future bank deadline as a masked vector min."""
        st = vec.st
        trans = (st == 1) | (st == 3)
        open_m = st == 2
        best = _FAR
        if bool(trans.any()):
            sel = np.where(trans & (vec.rdy > now), vec.rdy, _FAR)
            best = min(best, int(sel.min()))
        if bool(open_m.any()):
            col_next = np.maximum(vec.rdy, vec.col + tCCD)
            for arr in (
                col_next,
                vec.act + tRAS,
                vec.col + tWR,
                vec.lact + close_window,
            ):
                sel = np.where(open_m & (arr > now), arr, _FAR)
                best = min(best, int(sel.min()))
        return best

    def _max_visited_ir(
        self, states: Set[Tuple[int, ...]]
    ) -> Optional[float]:
        """Worst IR over states in effect while commands/reads flowed.

        States reached only by drift (banks closing elsewhere) with no
        reads issued carry almost no dynamic current, so they are not
        counted -- matching the paper's accounting, where the IR-aware
        policy's reported maximum stays below its constraint."""
        if self.report_lut is None:
            return None
        worst = 0.0
        for counts in states:
            if sum(counts) > 0:
                worst = max(worst, self.report_lut.lookup(counts))
        return worst
