"""Read requests and the synthetic workload generator.

The paper generates "10,000 read requests with temporal and spacial
locality under a row hit rate of 80%"; for stacked DDR3 "each read request
arrives every five DRAM cycles with a burst length of eight, assuming a
heavy work load" (section 2.3).

The generator reproduces those statistics:

* arrivals are nominally every ``arrival_interval`` cycles (they stall
  when the controller's queue is full);
* each bank keeps a row pointer; a request that re-touches a bank within
  ``locality_window`` requests reuses the pointer with probability
  ``row_hit_rate`` (temporal locality); a stale re-touch (beyond the
  window) has moved on to a fresh row -- locality decays, as in real
  access streams;
* spatial locality: with probability ``same_die_rate`` a request stays on
  the previous request's die; the bank within the die is uniform.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator, List, Optional, Union

import numpy as np

from repro.errors import ConfigurationError, TraceError

#: anything the engine can consume as a request stream: a materialized
#: list (the legacy contract) or a lazy iterator such as a trace reader.
Workload = Iterable["ReadRequest"]


@dataclass
class ReadRequest:
    """One memory request and its lifecycle timestamps (cycles).

    The paper's study is read-only ("we focus on read operation only",
    section 2.2); ``is_write`` extends the same machinery to mixed
    streams (write bursts use tCWL and hold the row for tWR).
    """

    req_id: int
    die: int
    bank: int
    row: int
    arrival_cycle: int
    is_write: bool = False
    issue_cycle: Optional[int] = None  # when the column command went out
    complete_cycle: Optional[int] = None  # when the data burst finished

    @property
    def latency(self) -> Optional[int]:
        if self.complete_cycle is None:
            return None
        return self.complete_cycle - self.arrival_cycle


@dataclass(frozen=True)
class WorkloadConfig:
    """Knobs of the synthetic read stream."""

    num_requests: int = 10_000
    num_dies: int = 4
    banks_per_die: int = 8
    arrival_interval: int = 5
    row_hit_rate: float = 0.80
    same_die_rate: float = 0.50
    num_rows: int = 4096
    #: how many requests a bank's row pointer stays warm (temporal
    #: locality horizon).
    locality_window: int = 4
    #: fraction of requests that are writes (0.0 = the paper's read-only
    #: study; real mixes run ~0.3).
    write_fraction: float = 0.0
    seed: int = 20150607  # DAC'15 conference date

    def __post_init__(self) -> None:
        if self.num_requests < 1:
            raise ConfigurationError("need at least one request")
        if self.num_dies < 1 or self.banks_per_die < 1:
            raise ConfigurationError("need at least one die and one bank")
        if self.arrival_interval < 1:
            raise ConfigurationError("arrival interval must be >= 1 cycle")
        if not 0.0 <= self.row_hit_rate <= 1.0:
            raise ConfigurationError("row hit rate must be in [0, 1]")
        if not 0.0 <= self.same_die_rate <= 1.0:
            raise ConfigurationError("same-die rate must be in [0, 1]")
        if self.locality_window < 1:
            raise ConfigurationError("locality window must be >= 1")
        if not 0.0 <= self.write_fraction <= 1.0:
            raise ConfigurationError("write fraction must be in [0, 1]")
        if self.num_rows < 2:
            raise ConfigurationError("need at least two rows per bank")


class _NumpyDraws:
    """Adapter exposing the ``random.Random`` draw API the generator
    uses (``randrange``/``random``) on a ``numpy.random.Generator``."""

    def __init__(self, gen: np.random.Generator) -> None:
        self._gen = gen

    def randrange(self, stop: int) -> int:
        return int(self._gen.integers(0, stop))

    def random(self) -> float:
        return float(self._gen.random())


def generate_workload(
    config: WorkloadConfig = WorkloadConfig(),
    rng: Optional[np.random.Generator] = None,
) -> List[ReadRequest]:
    """Generate the deterministic (seeded) read request stream.

    ``arrival_cycle`` here is the *nominal* arrival; the simulator delays
    actual entry into the queue when the queue is full.

    Randomness is fully explicit: by default a ``random.Random`` seeded
    with ``config.seed`` drives the stream (the historical draw sequence,
    kept byte-identical so Table 5/6 outputs never move).  Passing a
    ``numpy.random.Generator`` draws from it instead — callers that
    thread one RNG through a larger experiment get reproducibility from
    a single seed, and two generators seeded alike produce identical
    workloads (property-tested).
    """
    draws: Union[random.Random, _NumpyDraws]
    draws = random.Random(config.seed) if rng is None else _NumpyDraws(rng)
    row_pointer = [
        [draws.randrange(config.num_rows) for _ in range(config.banks_per_die)]
        for _ in range(config.num_dies)
    ]
    last_touch = [
        [-(10**9)] * config.banks_per_die for _ in range(config.num_dies)
    ]
    requests: List[ReadRequest] = []
    die = draws.randrange(config.num_dies)
    for i in range(config.num_requests):
        if draws.random() >= config.same_die_rate:
            die = draws.randrange(config.num_dies)
        bank = draws.randrange(config.banks_per_die)
        stale = i - last_touch[die][bank] > config.locality_window
        last_touch[die][bank] = i
        if stale or draws.random() >= config.row_hit_rate:
            # Jump to a different row (ensure it actually changes).
            new_row = draws.randrange(config.num_rows - 1)
            if new_row >= row_pointer[die][bank]:
                new_row += 1
            row_pointer[die][bank] = new_row
        requests.append(
            ReadRequest(
                req_id=i,
                die=die,
                bank=bank,
                row=row_pointer[die][bank],
                arrival_cycle=i * config.arrival_interval,
                is_write=draws.random() < config.write_fraction,
            )
        )
    return requests


def measured_row_hit_rate(requests: List[ReadRequest]) -> float:
    """Fraction of requests whose (die, bank) re-targets the previous row
    seen on that bank -- a sanity metric for the generator."""
    last_row = {}
    hits = 0
    misses = 0
    for req in requests:
        key = (req.die, req.bank)
        if key in last_row:
            if last_row[key] == req.row:
                hits += 1
            else:
                misses += 1
        last_row[key] = req.row
    total = hits + misses
    return hits / total if total else 0.0


# -- trace ingestion ----------------------------------------------------------
#
# Two on-disk formats feed the engine besides the synthetic generator:
#
# * ramulator-style memory traces: one request per line,
#   ``<hex address> <R|W>`` (``#`` comments and blank lines ignored).
#   The format carries no timestamps, so arrivals are synthesized at a
#   nominal ``arrival_interval``; the address decodes to (die, bank,
#   row) through a :class:`TraceMapping`.
#
# * DRAMPower-style command CSVs: ``cycle,command,die,bank,row`` with an
#   optional header line; only the column commands ``RD``/``WR`` map to
#   requests (they are what the request stream is), and cycles must be
#   non-decreasing.
#
# Readers are generators: a multi-million-line trace streams through the
# event engine without ever being materialized.  Malformed lines raise
# :class:`~repro.errors.TraceError` carrying ``path`` and ``line``.

#: DRAMPower-style CSV header (written by :func:`write_drampower_trace`,
#: tolerated by the reader).
DRAMPOWER_HEADER = "cycle,command,die,bank,row"


@dataclass(frozen=True)
class TraceMapping:
    """Physical-address decode for ramulator-style traces.

    Addresses map line -> bank -> die -> row, the interleaving that
    spreads a sequential stream across banks first (modulo arithmetic,
    so non-power-of-two die/bank counts work too).
    """

    num_dies: int = 4
    banks_per_die: int = 8
    num_rows: int = 4096
    line_bytes: int = 64

    def __post_init__(self) -> None:
        if self.num_dies < 1 or self.banks_per_die < 1:
            raise ConfigurationError("need at least one die and one bank")
        if self.num_rows < 1:
            raise ConfigurationError("need at least one row")
        if self.line_bytes < 1:
            raise ConfigurationError("line size must be >= 1 byte")

    def decode(self, addr: int) -> "tuple[int, int, int]":
        """Address -> (die, bank, row)."""
        block = addr // self.line_bytes
        bank = block % self.banks_per_die
        die = (block // self.banks_per_die) % self.num_dies
        row = (block // (self.banks_per_die * self.num_dies)) % self.num_rows
        return die, bank, row

    def encode(self, die: int, bank: int, row: int) -> int:
        """(die, bank, row) -> smallest address decoding back to it."""
        block = (row * self.num_dies + die) * self.banks_per_die + bank
        return block * self.line_bytes


def read_ramulator_trace(
    path: Union[str, Path],
    mapping: TraceMapping = TraceMapping(),
    arrival_interval: float = 1.0,
) -> Iterator[ReadRequest]:
    """Stream a ramulator-style memory trace as :class:`ReadRequest`\\ s.

    ``arrival_interval`` is the synthesized nominal spacing in cycles
    (may be fractional: ``0.5`` arrives two requests per cycle).
    """
    if arrival_interval < 0:
        raise ConfigurationError("arrival interval must be >= 0")
    path = Path(path)
    with path.open("r", encoding="utf-8") as fh:
        req_id = 0
        for lineno, raw in enumerate(fh, start=1):
            text = raw.strip()
            if not text or text.startswith("#"):
                continue
            fields = text.split()
            if len(fields) != 2:
                raise TraceError(
                    f"expected '<hex address> <R|W>', got {text!r}",
                    path=str(path),
                    line=lineno,
                )
            addr_s, op = fields
            try:
                addr = int(addr_s, 16)
            except ValueError:
                raise TraceError(
                    f"bad address {addr_s!r}",
                    path=str(path),
                    line=lineno,
                ) from None
            if addr < 0:
                raise TraceError(
                    f"negative address {addr_s!r}",
                    path=str(path),
                    line=lineno,
                )
            op_u = op.upper()
            if op_u not in ("R", "W"):
                raise TraceError(
                    f"bad op {op!r} (expected R or W)",
                    path=str(path),
                    line=lineno,
                )
            die, bank, row = mapping.decode(addr)
            yield ReadRequest(
                req_id=req_id,
                die=die,
                bank=bank,
                row=row,
                arrival_cycle=int(req_id * arrival_interval),
                is_write=op_u == "W",
            )
            req_id += 1


def read_drampower_trace(path: Union[str, Path]) -> Iterator[ReadRequest]:
    """Stream a DRAMPower-style command CSV as :class:`ReadRequest`\\ s.

    Lines are ``cycle,command,die,bank,row``; only ``RD``/``WR`` rows
    become requests, and cycles must be non-decreasing (the engine's
    arrival logic consumes the stream in time order).
    """
    path = Path(path)
    with path.open("r", encoding="utf-8") as fh:
        req_id = 0
        last_cycle = -1
        for lineno, raw in enumerate(fh, start=1):
            text = raw.strip()
            if not text or text.startswith("#"):
                continue
            if lineno == 1 and text.lower() == DRAMPOWER_HEADER:
                continue
            fields = text.split(",")
            if len(fields) != 5:
                raise TraceError(
                    f"expected '{DRAMPOWER_HEADER}', got {text!r}",
                    path=str(path),
                    line=lineno,
                )
            try:
                cycle = int(fields[0])
                die = int(fields[2])
                bank = int(fields[3])
                row = int(fields[4])
            except ValueError:
                raise TraceError(
                    f"non-integer field in {text!r}",
                    path=str(path),
                    line=lineno,
                ) from None
            command = fields[1].strip().upper()
            if command not in ("RD", "WR"):
                raise TraceError(
                    f"unsupported command {fields[1]!r} (expected RD or WR)",
                    path=str(path),
                    line=lineno,
                )
            if cycle < 0 or die < 0 or bank < 0 or row < 0:
                raise TraceError(
                    f"negative field in {text!r}",
                    path=str(path),
                    line=lineno,
                )
            if cycle < last_cycle:
                raise TraceError(
                    f"cycle {cycle} goes backwards (previous {last_cycle})",
                    path=str(path),
                    line=lineno,
                )
            last_cycle = cycle
            yield ReadRequest(
                req_id=req_id,
                die=die,
                bank=bank,
                row=row,
                arrival_cycle=cycle,
                is_write=command == "WR",
            )
            req_id += 1


def read_trace(
    path: Union[str, Path],
    fmt: str = "auto",
    mapping: TraceMapping = TraceMapping(),
    arrival_interval: float = 1.0,
) -> Iterator[ReadRequest]:
    """Open a trace by format name (``ramulator``, ``drampower``) or by
    extension sniffing (``auto``: ``.csv`` means DRAMPower CSV)."""
    if fmt == "auto":
        fmt = "drampower" if Path(path).suffix.lower() == ".csv" else "ramulator"
    if fmt == "ramulator":
        return read_ramulator_trace(
            path, mapping=mapping, arrival_interval=arrival_interval
        )
    if fmt == "drampower":
        return read_drampower_trace(path)
    raise ConfigurationError(
        f"unknown trace format {fmt!r}",
        known=("auto", "ramulator", "drampower"),
    )


def write_ramulator_trace(
    path: Union[str, Path],
    requests: Iterable[ReadRequest],
    mapping: TraceMapping = TraceMapping(),
) -> int:
    """Write requests as a ramulator-style trace; returns the line count.

    The format has no timestamp column, so arrival timing is *not*
    round-tripped -- :func:`read_ramulator_trace` re-synthesizes it.
    """
    path = Path(path)
    n = 0
    with path.open("w", encoding="utf-8") as fh:
        for req in requests:
            addr = mapping.encode(req.die, req.bank, req.row)
            op = "W" if req.is_write else "R"
            fh.write(f"0x{addr:x} {op}\n")
            n += 1
    return n


def write_drampower_trace(
    path: Union[str, Path], requests: Iterable[ReadRequest]
) -> int:
    """Write requests as a DRAMPower-style command CSV (with header);
    returns the number of data lines.  Round-trips exactly through
    :func:`read_drampower_trace`."""
    path = Path(path)
    n = 0
    with path.open("w", encoding="utf-8") as fh:
        fh.write(DRAMPOWER_HEADER + "\n")
        for req in requests:
            cmd = "WR" if req.is_write else "RD"
            fh.write(
                f"{req.arrival_cycle},{cmd},{req.die},{req.bank},{req.row}\n"
            )
            n += 1
    return n
