"""Read requests and the synthetic workload generator.

The paper generates "10,000 read requests with temporal and spacial
locality under a row hit rate of 80%"; for stacked DDR3 "each read request
arrives every five DRAM cycles with a burst length of eight, assuming a
heavy work load" (section 2.3).

The generator reproduces those statistics:

* arrivals are nominally every ``arrival_interval`` cycles (they stall
  when the controller's queue is full);
* each bank keeps a row pointer; a request that re-touches a bank within
  ``locality_window`` requests reuses the pointer with probability
  ``row_hit_rate`` (temporal locality); a stale re-touch (beyond the
  window) has moved on to a fresh row -- locality decays, as in real
  access streams;
* spatial locality: with probability ``same_die_rate`` a request stays on
  the previous request's die; the bank within the die is uniform.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional

from repro.errors import ConfigurationError


@dataclass
class ReadRequest:
    """One memory request and its lifecycle timestamps (cycles).

    The paper's study is read-only ("we focus on read operation only",
    section 2.2); ``is_write`` extends the same machinery to mixed
    streams (write bursts use tCWL and hold the row for tWR).
    """

    req_id: int
    die: int
    bank: int
    row: int
    arrival_cycle: int
    is_write: bool = False
    issue_cycle: Optional[int] = None  # when the column command went out
    complete_cycle: Optional[int] = None  # when the data burst finished

    @property
    def latency(self) -> Optional[int]:
        if self.complete_cycle is None:
            return None
        return self.complete_cycle - self.arrival_cycle


@dataclass(frozen=True)
class WorkloadConfig:
    """Knobs of the synthetic read stream."""

    num_requests: int = 10_000
    num_dies: int = 4
    banks_per_die: int = 8
    arrival_interval: int = 5
    row_hit_rate: float = 0.80
    same_die_rate: float = 0.50
    num_rows: int = 4096
    #: how many requests a bank's row pointer stays warm (temporal
    #: locality horizon).
    locality_window: int = 4
    #: fraction of requests that are writes (0.0 = the paper's read-only
    #: study; real mixes run ~0.3).
    write_fraction: float = 0.0
    seed: int = 20150607  # DAC'15 conference date

    def __post_init__(self) -> None:
        if self.num_requests < 1:
            raise ConfigurationError("need at least one request")
        if self.num_dies < 1 or self.banks_per_die < 1:
            raise ConfigurationError("need at least one die and one bank")
        if self.arrival_interval < 1:
            raise ConfigurationError("arrival interval must be >= 1 cycle")
        if not 0.0 <= self.row_hit_rate <= 1.0:
            raise ConfigurationError("row hit rate must be in [0, 1]")
        if not 0.0 <= self.same_die_rate <= 1.0:
            raise ConfigurationError("same-die rate must be in [0, 1]")
        if self.locality_window < 1:
            raise ConfigurationError("locality window must be >= 1")
        if not 0.0 <= self.write_fraction <= 1.0:
            raise ConfigurationError("write fraction must be in [0, 1]")
        if self.num_rows < 2:
            raise ConfigurationError("need at least two rows per bank")


def generate_workload(config: WorkloadConfig = WorkloadConfig()) -> List[ReadRequest]:
    """Generate the deterministic (seeded) read request stream.

    ``arrival_cycle`` here is the *nominal* arrival; the simulator delays
    actual entry into the queue when the queue is full.
    """
    rng = random.Random(config.seed)
    row_pointer = [
        [rng.randrange(config.num_rows) for _ in range(config.banks_per_die)]
        for _ in range(config.num_dies)
    ]
    last_touch = [
        [-(10**9)] * config.banks_per_die for _ in range(config.num_dies)
    ]
    requests: List[ReadRequest] = []
    die = rng.randrange(config.num_dies)
    for i in range(config.num_requests):
        if rng.random() >= config.same_die_rate:
            die = rng.randrange(config.num_dies)
        bank = rng.randrange(config.banks_per_die)
        stale = i - last_touch[die][bank] > config.locality_window
        last_touch[die][bank] = i
        if stale or rng.random() >= config.row_hit_rate:
            # Jump to a different row (ensure it actually changes).
            new_row = rng.randrange(config.num_rows - 1)
            if new_row >= row_pointer[die][bank]:
                new_row += 1
            row_pointer[die][bank] = new_row
        requests.append(
            ReadRequest(
                req_id=i,
                die=die,
                bank=bank,
                row=row_pointer[die][bank],
                arrival_cycle=i * config.arrival_interval,
                is_write=rng.random() < config.write_fraction,
            )
        )
    return requests


def measured_row_hit_rate(requests: List[ReadRequest]) -> float:
    """Fraction of requests whose (die, bank) re-targets the previous row
    seen on that bank -- a sanity metric for the generator."""
    last_row = {}
    hits = 0
    misses = 0
    for req in requests:
        key = (req.die, req.bank)
        if key in last_row:
            if last_row[key] == req.row:
                hits += 1
            else:
                misses += 1
        last_row[key] = req.row
    total = hits + misses
    return hits / total if total else 0.0
