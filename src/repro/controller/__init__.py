"""3D DRAM memory controller simulator (paper sections 2.3 and 5.2).

Cycle-by-cycle simulation of every DRAM bank and memory channel, driven by
a generated read workload, under one of three scheduling policies:

* ``StandardJEDEC`` -- the DDR3 standard policy: tRRD/tFAW bank-activation
  throttling, first-come-first-served order, no IR-drop knowledge;
* ``IRAwareFCFS`` -- replaces tRRD/tFAW with a per-state IR-drop look-up
  table built from R-Mesh solves, FCFS order;
* ``IRAwareDistR`` -- same constraint, distributed-read order: requests
  whose target die has the fewest active banks issue first.
"""

from repro.controller.request import ReadRequest, WorkloadConfig, generate_workload
from repro.controller.queue import RequestQueue
from repro.controller.lut import IRDropLUT
from repro.controller.policies import (
    IRAwareDistR,
    IRAwareFCFS,
    ReadPolicy,
    StandardJEDEC,
)
from repro.controller.simulator import MemoryControllerSim, SimConfig, SimResult

__all__ = [
    "ReadRequest",
    "WorkloadConfig",
    "generate_workload",
    "RequestQueue",
    "IRDropLUT",
    "ReadPolicy",
    "StandardJEDEC",
    "IRAwareFCFS",
    "IRAwareDistR",
    "MemoryControllerSim",
    "SimConfig",
    "SimResult",
]
