"""Plan a full 3D DRAM stack as a declarative build recipe.

This module is the PDN layout generator + special-route step of the
paper's CAD flow (Figure 2): given a benchmark's physical description
(:class:`StackSpec`) and one design point (:class:`PDNConfig`), it plans
the meshes for every metal layer of every die, generates PG rings, vias,
TSV arrays, RDLs, bond wires and C4 fields -- but instead of mutating a
model directly, it emits a :class:`repro.pdn.plan.StackPlan`: a frozen,
serializable op sequence that the pure assembler
(:mod:`repro.pdn.assemble`) replays into a
:class:`repro.rmesh.StackModel`.  ``build_stack`` composes the two
stages and is a drop-in for the former monolithic builder, producing a
bitwise-identical network.

Topology summary (bottom to top):

* ideal supply -> package plane (shared spreading resistance),
* plane -> C4 field -> logic top metal (on-chip) or -> bottom interface
  directly (off-chip),
* logic: MTOP / ML2 / ML1 flip-chip stack, loads on ML1, DRAM TSVs land
  on ML1 (power crosses the whole logic PDN -- the coupling of
  section 3.1) unless *dedicated* via-last TSVs bypass it,
* DRAM die d: M1 (signal, local PDN only) / M2 / M3 meshes with PG rings,
* interfaces: F2B = one TSV, B2B = two TSVs in series, F2F = dense bond
  vias (PDN sharing); optional backside RDL re-routes bump clusters to
  TSV rings; optional bond wires tie the package straight to the top die.

Modelling simplifications (documented in DESIGN.md): inter-die links
attach at the dies' M3 power layers, and F2F die mirroring is expressed
through the memory-state bank positions (top-down view) rather than by
mirroring floorplans -- the DRAM PDN is symmetric, which is exactly the
property the paper exploits to make F2F reuse one mask set.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError, SolverError
from repro.floorplan.blocks import DieFloorplan
from repro.geometry import Grid2D, Point, Rect
from repro.pdn.assemble import AssembledStack, assemble
from repro.pdn.config import (
    Bonding,
    BumpLocation,
    Mounting,
    PDNConfig,
    RDLScope,
    TSVLocation,
)
from repro.pdn.plan import (
    AddLayerOp,
    AddRDLOp,
    AnyOp,
    ConnectAtPointsOp,
    ConnectUniformOp,
    GridSpec,
    StackPlan,
    SupplyOp,
    TSVOp,
    WirebondOp,
    record_plan_use,
)
from repro.pdn.tsv import (
    alignment_detours,
    center_bump_points,
    tsv_points_for_config,
    wirebond_points,
)
from repro.obs import metrics as _metrics
from repro.obs.log import get_logger
from repro.perf.cache import cached_dram_power_map
from repro.perf.timers import timed
from repro.power.model import DramPowerSpec, LogicPowerSpec
from repro.power.powermap import PowerMap, logic_power_map
from repro.power.state import MemoryState
from repro.rmesh.backends import resolve_backend
from repro.rmesh.solve import IRDropResult, StackSolver
from repro.rmesh.stack import StackModel
from repro.tech.calibration import (
    DEFAULT_TECH,
    TechConstants,
    dram_metal_stack,
    logic_metal_stack,
)
from repro.tech.metals import MetalLayer
from repro.tech.vertical import C4Tech

#: PG ring boost applied to the global PDN layers of every die.
PG_RING_BOOST = 2.0
#: Microbump resistance between a die face and an RDL above it, ohm.
MICROBUMP_RES = 0.005


@dataclass(frozen=True)
class StackSpec:
    """Physical description of one 3D DRAM benchmark (design-independent).

    ``forced_bump_location`` pins the bump style when the standard demands
    it (JEDEC Wide I/O: center bumps); None lets :class:`PDNConfig`
    choose.
    """

    name: str
    dram_floorplan: DieFloorplan
    dram_power: DramPowerSpec
    num_dram_dies: int = 4
    mounting: Mounting = Mounting.OFF_CHIP
    logic_floorplan: Optional[DieFloorplan] = None
    logic_power: Optional[LogicPowerSpec] = None
    forced_bump_location: Optional[BumpLocation] = None

    def __post_init__(self) -> None:
        if self.num_dram_dies < 1:
            raise ConfigurationError("stack needs at least one DRAM die")
        if self.mounting is Mounting.ON_CHIP:
            if self.logic_floorplan is None or self.logic_power is None:
                raise ConfigurationError(
                    f"{self.name}: on-chip mounting requires a logic die"
                )

    def effective_bump_location(self, config: PDNConfig) -> BumpLocation:
        return self.forced_bump_location or config.bump_location


@dataclass
class StackIRResult:
    """IR drops of one memory state on one built stack."""

    state: MemoryState
    raw: IRDropResult
    dram_max_mv: float
    per_die_mv: Dict[str, float]
    logic_max_mv: Optional[float]
    total_power_mw: float

    def __str__(self) -> str:  # pragma: no cover - repr convenience
        logic = (
            f", logic={self.logic_max_mv:.2f}mV" if self.logic_max_mv is not None else ""
        )
        return (
            f"state {self.state.label()}: DRAM max {self.dram_max_mv:.2f} mV"
            f"{logic} ({self.total_power_mw:.1f} mW)"
        )


class PDNStack:
    """A built stack: the network, its solver, and state evaluation.

    When built through the plan/assemble pipeline the stack carries its
    :class:`StackPlan` and the shared :class:`AssembledStack`; stacks
    wrapping the same assembled model (same plan hash) share one
    factorized solver.
    """

    def __init__(
        self,
        model: StackModel,
        spec: StackSpec,
        config: PDNConfig,
        tech: TechConstants,
        dram_grid: Grid2D,
        dram_origin: Point,
        logic_grid: Optional[Grid2D],
        plan: Optional[StackPlan] = None,
        assembled: Optional[AssembledStack] = None,
    ) -> None:
        self.model = model
        self.spec = spec
        self.config = config
        self.tech = tech
        self.dram_grid = dram_grid
        self.dram_origin = dram_origin
        self.logic_grid = logic_grid
        self.plan = plan
        self.assembled = assembled
        self._solvers: Dict[str, StackSolver] = {}

    @classmethod
    def from_assembled(
        cls,
        spec: StackSpec,
        config: PDNConfig,
        tech: TechConstants,
        plan: StackPlan,
        assembled: AssembledStack,
    ) -> "PDNStack":
        """Wrap an assembled plan; grids are reconstructed from the plan."""
        return cls(
            model=assembled.model,
            spec=spec,
            config=config,
            tech=tech,
            dram_grid=plan.dram_grid.to_grid(),
            dram_origin=Point(*plan.dram_origin),
            logic_grid=plan.logic_grid.to_grid() if plan.logic_grid else None,
            plan=plan,
            assembled=assembled,
        )

    # -- structure ------------------------------------------------------------

    @property
    def plan_hash(self) -> Optional[str]:
        """Content address of the build plan (None for hand-built models)."""
        return self.plan.plan_hash if self.plan is not None else None

    def dram_die_name(self, die: int) -> str:
        """Dies are named dram1 (bottom) .. dramN (top), paper convention."""
        return f"dram{die + 1}"

    @property
    def dram_die_names(self) -> List[str]:
        return [self.dram_die_name(d) for d in range(self.spec.num_dram_dies)]

    def load_layer_key(self, die: int) -> str:
        """Layer that carries a DRAM die's current loads (M1)."""
        return f"{self.dram_die_name(die)}/M1"

    @property
    def logic_load_key(self) -> Optional[str]:
        return "logic/ML1" if self.logic_grid is not None else None

    def solver_for(
        self,
        backend: Optional[str] = None,
        warm_from: Optional[StackSolver] = None,
    ) -> StackSolver:
        """The stack's solver for a backend, prepared on first use.

        Delegates to the assembled stack when present, so every wrapper
        of the same plan hash shares one setup per backend; hand-built
        models keep their own per-backend cache.  ``warm_from`` (see
        :class:`~repro.rmesh.solve.StackSolver`) only matters on the
        first, preparing call for a backend.
        """
        if self.assembled is not None:
            return self.assembled.solver_for(backend, warm_from=warm_from)
        resolved = resolve_backend(backend)
        solver = self._solvers.get(resolved)
        if solver is None:
            solver = StackSolver(self.model, backend=resolved, warm_from=warm_from)
            self._solvers[resolved] = solver
        return solver

    @property
    def solver(self) -> StackSolver:
        """Process-default-backend solver, built on first use and reused
        for all states (setup dominates; per-state solves are cheap)."""
        return self.solver_for(None)

    # -- evaluation --------------------------------------------------------------

    def power_maps(
        self, state: MemoryState, logic_scale: float = 1.0
    ) -> Dict[str, PowerMap]:
        """Per-load-layer power maps for a memory state."""
        if state.num_dies != self.spec.num_dram_dies:
            raise ConfigurationError(
                f"state has {state.num_dies} dies, stack has "
                f"{self.spec.num_dram_dies}"
            )
        maps: Dict[str, PowerMap] = {}
        for die in range(self.spec.num_dram_dies):
            # Memoized rasterization: design-space sweeps solve hundreds
            # of different stacks against the same state on the same grid.
            maps[self.load_layer_key(die)] = cached_dram_power_map(
                self.spec.dram_floorplan,
                self.spec.dram_power,
                state,
                die,
                self.dram_grid,
                self.tech.vdd,
            )
        if self.logic_grid is not None and logic_scale > 0.0:
            assert self.spec.logic_floorplan is not None
            assert self.spec.logic_power is not None
            maps[self.logic_load_key] = logic_power_map(
                self.spec.logic_floorplan,
                self.spec.logic_power,
                self.logic_grid,
                self.tech.vdd,
                scale=logic_scale,
            )
        return maps

    def _annotate_solver_error(
        self, exc: SolverError, states: Sequence[MemoryState]
    ) -> None:
        """Attach stack identity to a solver failure and log it.

        Fanned-out workers re-raise through pickling, so this context --
        benchmark, config label, plan hash, offending state(s) -- is
        what makes a remote failure diagnosable from logs alone.
        """
        from repro.obs.manifest import config_hash_of

        labels = ",".join(s.label() for s in states[:4])
        if len(states) > 4:
            labels += f",...({len(states)} states)"
        exc.add_context(
            spec=self.spec.name,
            config=self.config.label(),
            plan_hash=self.plan_hash or "none",
            cache_key_hash=config_hash_of(
                {"spec": repr(self.spec), "config": repr(self.config)}
            ),
            states=labels,
        )
        get_logger("pdn.stackup").error(
            "solver failure: %s",
            exc,
            extra={"fields": dict(exc.context)},
        )

    def solve_state(
        self,
        state: MemoryState,
        logic_scale: float = 1.0,
        x0: Optional[np.ndarray] = None,
        solver: Optional[StackSolver] = None,
    ) -> StackIRResult:
        """Solve one memory state and extract per-die maxima.

        ``solver`` overrides the stack's shared solver (the sweep
        warm-start layer passes one it prepared from a neighboring
        point); ``x0`` seeds iterative backends with a previous solution.
        """
        from repro.resil.retry import protected_call

        maps = self.power_maps(state, logic_scale)
        # The solve runs under the resil chaos/retry hook: a plain call
        # when no fault spec is active, transparent retry of injected
        # transients otherwise -- every experiment driver and LUT build
        # funnels through here, so this one boundary covers them all.
        try:
            raw = protected_call(
                lambda: (solver or self.solver).solve_power_maps(maps, x0=x0),
                site="solve_state",
                key=f"{self.plan_hash or 'none'}:{state.label()}:{logic_scale}",
            )
        except SolverError as exc:
            self._annotate_solver_error(exc, [state])
            raise
        return self._result_from_raw(state, maps, raw)

    def solve_states(
        self, states: Sequence[MemoryState], logic_scale: float = 1.0
    ) -> List[StackIRResult]:
        """Solve many memory states in one batched back-substitution.

        All states' current vectors are stacked into a ``(num_nodes, k)``
        block and pushed through the factorization in a single
        :meth:`~repro.rmesh.solve.StackSolver.solve_many` call.  Result
        ``i`` is numerically identical to ``solve_state(states[i])``.
        """
        from repro.resil.retry import protected_call

        if not states:
            return []
        try:
            solver = self.solver
            all_maps = [self.power_maps(state, logic_scale) for state in states]
            currents = np.stack(
                [solver.currents_from_maps(maps) for maps in all_maps], axis=1
            )
            raws = protected_call(
                lambda: solver.solve_many(currents),
                site="solve_states",
                key=f"{self.plan_hash or 'none'}:{len(states)}:{logic_scale}",
            )
        except SolverError as exc:
            self._annotate_solver_error(exc, states)
            raise
        return [
            self._result_from_raw(state, maps, raw)
            for state, maps, raw in zip(states, all_maps, raws)
        ]

    def _result_from_raw(
        self,
        state: MemoryState,
        maps: Dict[str, PowerMap],
        raw: IRDropResult,
    ) -> StackIRResult:
        """Extract per-die maxima and power bookkeeping from a raw solve."""
        per_die = {
            name: raw.die_max_drop_mv(name) for name in self.dram_die_names
        }
        logic_mv = (
            raw.die_max_drop_mv("logic") if self.logic_grid is not None else None
        )
        total_mw = sum(m.total_power_mw(self.tech.vdd) for m in maps.values())
        # Per-experiment IR summaries: the histogram (count/min/max/mean)
        # lands in ``--metrics-out`` files and run manifests.
        _metrics.observe("ir.dram_max_mv", max(per_die.values()))
        if logic_mv is not None:
            _metrics.observe("ir.logic_max_mv", logic_mv)
        return StackIRResult(
            state=state,
            raw=raw,
            dram_max_mv=max(per_die.values()),
            per_die_mv=per_die,
            logic_max_mv=logic_mv,
            total_power_mw=total_mw,
        )

    def dram_max_mv(self, state: MemoryState, logic_scale: float = 1.0) -> float:
        """Shortcut: worst DRAM IR drop for a state, mV."""
        return self.solve_state(state, logic_scale).dram_max_mv


# ---------------------------------------------------------------------------
# Planner
# ---------------------------------------------------------------------------


def _mesh_values(grid: Grid2D, layer: MetalLayer, usage: float) -> Tuple[float, float]:
    """Uniform edge conductances for a layer mesh.

    Exactly the arithmetic of :meth:`repro.rmesh.mesh.LayerMesh.from_layer`
    (same expressions, same evaluation order) so that an assembled plan is
    bitwise identical to a directly built mesh.
    """
    rho_eff = layer.effective_sheet_res(usage)
    wx, wy = layer.direction.direction_weights()
    gx_val = (1.0 / rho_eff) * (grid.dy / grid.dx) * wx
    gy_val = (1.0 / rho_eff) * (grid.dx / grid.dy) * wy
    return gx_val, gy_val


def _xs_ys(points: Sequence[Point]) -> Tuple[Tuple[float, ...], Tuple[float, ...]]:
    return tuple(p.x for p in points), tuple(p.y for p in points)


def _plan_dram_die(
    ops: List[AnyOp],
    die_name: str,
    grid: Grid2D,
    origin: Point,
    config: PDNConfig,
    tech: TechConstants,
) -> Dict[str, str]:
    """Plan one DRAM die's three metal meshes and intra-die vias."""
    stack = dram_metal_stack(tech)
    usages = {
        "M1": tech.dram_m1_local_usage,
        "M2": config.m2_usage,
        "M3": config.m3_usage,
    }
    gspec = GridSpec.from_grid(grid)
    keys: Dict[str, str] = {}
    for layer in stack.layers:
        gx, gy = _mesh_values(grid, layer, usages[layer.name])
        ring = layer.name in ("M2", "M3")
        key = f"{die_name}/{layer.name}"
        ops.append(
            AddLayerOp(
                die=die_name,
                key=key,
                name=layer.name,
                grid=gspec,
                origin=(origin.x, origin.y),
                gx=gx,
                gy=gy,
                pg_ring_boost=PG_RING_BOOST if ring else 0.0,
                pg_ring_rings=1 if ring else 0,
            )
        )
        keys[layer.name] = key
    ops.append(ConnectUniformOp(keys["M1"], keys["M2"], tech.via_density_local))
    ops.append(ConnectUniformOp(keys["M2"], keys["M3"], tech.via_density_global))
    return keys


def _plan_logic_die(
    ops: List[AnyOp],
    grid: Grid2D,
    origin: Point,
    tech: TechConstants,
) -> Dict[str, str]:
    """Plan the flip-chip logic die: MTOP (package side) up to ML1."""
    stack = logic_metal_stack(tech)
    usages = {
        "ML1": tech.logic_m1_usage,
        "ML2": tech.logic_m2_usage,
        "MTOP": tech.logic_mtop_usage,
    }
    gspec = GridSpec.from_grid(grid)
    keys: Dict[str, str] = {}
    # Flip-chip: MTOP faces the package, so add it first (bottom).
    for layer_name in ("MTOP", "ML2", "ML1"):
        layer = stack.by_name()[layer_name]
        gx, gy = _mesh_values(grid, layer, usages[layer_name])
        ring = layer_name == "MTOP"
        key = f"logic/{layer_name}"
        ops.append(
            AddLayerOp(
                die="logic",
                key=key,
                name=layer_name,
                grid=gspec,
                origin=(origin.x, origin.y),
                gx=gx,
                gy=gy,
                pg_ring_boost=PG_RING_BOOST if ring else 0.0,
                pg_ring_rings=1 if ring else 0,
            )
        )
        keys[layer_name] = key
    ops.append(ConnectUniformOp(keys["MTOP"], keys["ML2"], tech.via_density_logic))
    ops.append(ConnectUniformOp(keys["ML2"], keys["ML1"], tech.via_density_logic))
    return keys


def _c4_field_points(outline: Rect, pitch: float) -> List[Point]:
    """Regular C4 bump field over a die outline."""
    grid = Grid2D.from_pitch(outline, pitch)
    return [grid.node_point(i, j) for i, j in grid.iter_indices()]


def _shift(points: Sequence[Point], origin: Point) -> List[Point]:
    return [Point(p.x + origin.x, p.y + origin.y) for p in points]


def _plan_rdl_layer(
    ops: List[AnyOp],
    name: str,
    grid: Grid2D,
    origin: Point,
    tech: TechConstants,
) -> str:
    gx, gy = _mesh_values(grid, tech.rdl.as_layer(), tech.rdl.usage)
    key = f"{name}/RDL"
    ops.append(
        AddRDLOp(
            die=name,
            key=key,
            name="RDL",
            grid=GridSpec.from_grid(grid),
            origin=(origin.x, origin.y),
            gx=gx,
            gy=gy,
        )
    )
    return key


def plan_stack(
    spec: StackSpec,
    config: PDNConfig,
    tech: TechConstants = DEFAULT_TECH,
    pitch: Optional[float] = None,
) -> StackPlan:
    """Plan the resistive network for one benchmark at one design point.

    Pure function of its arguments: no model is built, no cache touched.
    Configuration errors (e.g. edge TSVs with center bumps but no RDL)
    surface here, at plan time.
    """
    with timed("stackup.plan"):
        return _plan_stack(spec, config, tech, pitch)


def _plan_stack(
    spec: StackSpec,
    config: PDNConfig,
    tech: TechConstants,
    pitch: Optional[float],
) -> StackPlan:
    pitch = pitch or tech.mesh_pitch
    fp = spec.dram_floorplan
    dram_grid = Grid2D.from_pitch(fp.outline, pitch)
    on_chip = spec.mounting is Mounting.ON_CHIP

    ops: List[AnyOp] = []

    # --- placement: logic at (0,0); DRAM centered over it -------------------
    if on_chip:
        logic_fp = spec.logic_floorplan
        assert logic_fp is not None
        logic_grid: Optional[Grid2D] = Grid2D.from_pitch(logic_fp.outline, pitch)
        overall = logic_fp.outline
        dram_origin = Point(
            (logic_fp.outline.width - fp.outline.width) / 2.0,
            (logic_fp.outline.height - fp.outline.height) / 2.0,
        )
    else:
        logic_grid = None
        overall = fp.outline
        dram_origin = Point(0.0, 0.0)

    # --- package plane -------------------------------------------------------
    plane_key = "package/plane"
    ops.append(
        AddLayerOp(
            die="package",
            key=plane_key,
            name="plane",
            grid=GridSpec.from_grid(Grid2D(overall, 1, 1)),
            origin=(0.0, 0.0),
            gx=0.0,
            gy=0.0,
            role="plane",
        )
    )
    ops.append(
        SupplyOp(
            key=plane_key,
            xs=(overall.center.x,),
            ys=(overall.center.y,),
            conductances=(1.0 / tech.package_spreading_res,),
        )
    )

    # --- logic die ------------------------------------------------------------
    logic_keys: Optional[Dict[str, str]] = None
    if on_chip:
        assert logic_grid is not None
        logic_keys = _plan_logic_die(ops, logic_grid, Point(0.0, 0.0), tech)
        c4_points = _c4_field_points(spec.logic_floorplan.outline, tech.c4.pitch)
        xs, ys = _xs_ys(c4_points)
        ops.append(
            ConnectAtPointsOp(
                plane_key,
                logic_keys["MTOP"],
                xs,
                ys,
                (float(tech.c4.conductance),) * len(c4_points),
                role="c4",
            )
        )

    # --- DRAM dies --------------------------------------------------------------
    dram_keys: List[Dict[str, str]] = []
    for die in range(spec.num_dram_dies):
        dram_keys.append(
            _plan_dram_die(
                ops, f"dram{die + 1}", dram_grid, dram_origin, config, tech
            )
        )

    # --- TSV and bump geometry ---------------------------------------------------
    tsv_local = tsv_points_for_config(fp.outline, config, fp)
    tsv_points = _shift(tsv_local, dram_origin)
    bump_location = spec.effective_bump_location(config)
    if (
        config.tsv_location is TSVLocation.EDGE
        and bump_location is BumpLocation.CENTER
        and not config.rdl.enabled
    ):
        raise ConfigurationError(
            f"{spec.name}: edge TSVs with center bumps need an RDL "
            "(section 6.2)"
        )
    if bump_location is BumpLocation.CENTER:
        bump_points = _shift(center_bump_points(fp.outline, config.tsv_count), dram_origin)
        detours = [0.0] * len(bump_points)  # balls route to the cluster
    else:
        bump_points = tsv_points
        if on_chip:
            # Misalignment on the logic die escapes through thin congested
            # lower metals; on a package it uses thick laminate routing.
            align_outline = spec.logic_floorplan.outline
            align_c4 = C4Tech(
                resistance=tech.c4.resistance,
                pitch=tech.c4.pitch,
                detour_res_per_mm=tech.logic_escape_res_per_mm,
            )
        else:
            align_outline = fp.outline
            align_c4 = tech.c4
        detours = alignment_detours(
            tsv_points, align_outline, align_c4, config.tsv_aligned
        )

    tsv_xs, tsv_ys = _xs_ys(tsv_points)
    bump_xs, bump_ys = _xs_ys(bump_points)
    rdl_all = config.rdl is RDLScope.ALL
    rdl_bottom = config.rdl.enabled

    # --- bottom interface (package or logic -> dram1) ----------------------------
    bottom_key = dram_keys[0]["M3"]
    if on_chip and not config.dedicated_tsv:
        # TSV landing pads tie into the logic grid at the intermediate
        # level: through the logic PDN, so the dies' noises couple
        # (section 3.1).
        assert logic_keys is not None
        below_key = logic_keys["ML2"]
        # Logic TSV + interface TSV + backside landing / tie-in resistance.
        through_res = 2.0 * tech.tsv.resistance + tech.logic_landing_res
        base_c4 = 0.0
    elif on_chip and config.dedicated_tsv:
        below_key = plane_key  # via-last TSVs bypass the logic PDN
        through_res = tech.dedicated_tsv.resistance * 2.0
        base_c4 = tech.c4.resistance
    else:
        below_key = plane_key
        through_res = tech.tsv.resistance
        base_c4 = tech.c4.resistance

    if rdl_bottom:
        rdl0 = _plan_rdl_layer(ops, "dram1", dram_grid, dram_origin, tech)
        ops.append(
            ConnectAtPointsOp(
                below_key,
                rdl0,
                bump_xs,
                bump_ys,
                tuple(1.0 / (base_c4 + MICROBUMP_RES + d) for d in detours),
                role="bump",
            )
        )
        ops.append(
            TSVOp(
                rdl0,
                bottom_key,
                tsv_xs,
                tsv_ys,
                (float(1.0 / through_res),) * len(tsv_points),
            )
        )
    else:
        ops.append(
            TSVOp(
                below_key,
                bottom_key,
                bump_xs,
                bump_ys,
                tuple(1.0 / (base_c4 + through_res + d) for d in detours),
            )
        )

    # --- inter-die interfaces -------------------------------------------------------
    for die in range(spec.num_dram_dies - 1):
        lower = dram_keys[die]["M3"]
        upper = dram_keys[die + 1]["M3"]
        f2f_pair = config.bonding is Bonding.F2F and die % 2 == 0
        if f2f_pair:
            ops.append(
                ConnectUniformOp(
                    lower, upper, tech.f2f.conductance_per_mm2, role="f2f"
                )
            )
            continue
        # F2B everywhere, or the B2B interface between F2F pairs.
        if config.bonding is Bonding.F2F:
            link_res = tech.tsv.series(2)  # back-to-back: two TSVs
        else:
            link_res = tech.tsv.resistance
        if rdl_all:
            # Between identical DRAM dies the face bumps sit directly under
            # the TSVs; the center-bump constraint only exists at the host
            # interface (JEDEC pads), so no lateral zigzag happens here.
            rdl_key = _plan_rdl_layer(ops, f"dram{die + 2}", dram_grid, dram_origin, tech)
            ops.append(
                ConnectAtPointsOp(
                    lower,
                    rdl_key,
                    tsv_xs,
                    tsv_ys,
                    (float(1.0 / (MICROBUMP_RES + link_res / 2.0)),) * len(tsv_points),
                    role="bump",
                )
            )
            ops.append(
                TSVOp(
                    rdl_key,
                    upper,
                    tsv_xs,
                    tsv_ys,
                    (float(1.0 / (link_res / 2.0)),) * len(tsv_points),
                )
            )
        else:
            ops.append(
                TSVOp(
                    lower,
                    upper,
                    tsv_xs,
                    tsv_ys,
                    (float(1.0 / link_res),) * len(tsv_points),
                )
            )

    # --- wire bonding -----------------------------------------------------------------
    if config.wire_bond:
        pads = _shift(
            wirebond_points(fp.outline, tech.wirebond.groups_per_edge), dram_origin
        )
        pad_xs, pad_ys = _xs_ys(pads)
        top_key = dram_keys[-1]["M3"]
        ops.append(
            WirebondOp(
                plane_key,
                top_key,
                pad_xs,
                pad_ys,
                (float(tech.wirebond.group_conductance),) * len(pads),
            )
        )

    return StackPlan(
        benchmark=spec.name,
        pitch=float(pitch),
        num_dram_dies=spec.num_dram_dies,
        dram_grid=GridSpec.from_grid(dram_grid),
        dram_origin=(dram_origin.x, dram_origin.y),
        logic_grid=GridSpec.from_grid(logic_grid) if logic_grid is not None else None,
        ops=tuple(ops),
    )


def plan_single_die_stack(
    floorplan: DieFloorplan,
    config: Optional[PDNConfig] = None,
    tech: TechConstants = DEFAULT_TECH,
    pitch: Optional[float] = None,
    pad_resistance: float = 0.09,
    pad_count: int = 40,
) -> StackPlan:
    """Plan a conventional 2D (single-die) DRAM for the Figure 4 validation.

    The 2D part is wire-bonded through a row of pads along the center
    spine, the standard DDR3 package style.
    """
    config = config or PDNConfig()
    pitch = pitch or tech.mesh_pitch
    grid = Grid2D.from_pitch(floorplan.outline, pitch)
    ops: List[AnyOp] = []

    plane_key = "package/plane"
    ops.append(
        AddLayerOp(
            die="package",
            key=plane_key,
            name="plane",
            grid=GridSpec.from_grid(Grid2D(floorplan.outline, 1, 1)),
            origin=(0.0, 0.0),
            gx=0.0,
            gy=0.0,
            role="plane",
        )
    )
    ops.append(
        SupplyOp(
            key=plane_key,
            xs=(floorplan.outline.center.x,),
            ys=(floorplan.outline.center.y,),
            conductances=(1.0 / tech.package_spreading_res,),
        )
    )
    keys = _plan_dram_die(ops, "dram1", grid, Point(0.0, 0.0), config, tech)

    # Pad ring around the die (power pads + package ring redistribution,
    # the Encounter-style PG ring hookup of the generated 2D design).
    ring = floorplan.outline.inset(0.20)
    perimeter = 2.0 * (ring.width + ring.height)
    pads = list(ring.edge_points(perimeter / pad_count))[:pad_count]
    pad_xs, pad_ys = _xs_ys(pads)
    ops.append(
        ConnectAtPointsOp(
            plane_key,
            keys["M3"],
            pad_xs,
            pad_ys,
            (float(1.0 / pad_resistance),) * len(pads),
            role="pad",
        )
    )

    return StackPlan(
        benchmark="ddr3_2d",
        pitch=float(pitch),
        num_dram_dies=1,
        dram_grid=GridSpec.from_grid(grid),
        dram_origin=(0.0, 0.0),
        logic_grid=None,
        ops=tuple(ops),
    )


# ---------------------------------------------------------------------------
# Build entry points (plan + assemble composed)
# ---------------------------------------------------------------------------


def build_stack(
    spec: StackSpec,
    config: PDNConfig,
    tech: TechConstants = DEFAULT_TECH,
    pitch: Optional[float] = None,
) -> PDNStack:
    """Build the resistive network for one benchmark at one design point.

    Drop-in for the former monolithic builder: plans, assembles, and
    wraps.  Results are bitwise identical to the pre-plan pipeline.
    """
    with timed("stackup.build"):
        plan = plan_stack(spec, config, tech=tech, pitch=pitch)
        assembled = assemble(plan)
        record_plan_use(plan)
        return PDNStack.from_assembled(spec, config, tech, plan, assembled)


def build_single_die_stack(
    floorplan: DieFloorplan,
    power: DramPowerSpec,
    config: Optional[PDNConfig] = None,
    tech: TechConstants = DEFAULT_TECH,
    pitch: Optional[float] = None,
    pad_resistance: float = 0.09,
    pad_count: int = 40,
) -> PDNStack:
    """Build the conventional 2D DRAM (Figure 4 validation).

    Reuses the PDNStack API with a one-die "stack".
    """
    config = config or PDNConfig()
    with timed("stackup.build"):
        plan = plan_single_die_stack(
            floorplan,
            config,
            tech=tech,
            pitch=pitch,
            pad_resistance=pad_resistance,
            pad_count=pad_count,
        )
        assembled = assemble(plan)
        record_plan_use(plan)
        spec = StackSpec(
            name="ddr3_2d",
            dram_floorplan=floorplan,
            dram_power=power,
            num_dram_dies=1,
            mounting=Mounting.OFF_CHIP,
        )
        return PDNStack.from_assembled(spec, config, tech, plan, assembled)
