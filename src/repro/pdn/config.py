"""PDN design and packaging configuration (the Table 8 knob space).

Every optimization option of the paper's section 6 cost model appears
here with its legal input range:

=============  ===============  =================
Solution       Abbreviation     Input range
=============  ===============  =================
M2 VDD usage   M2               10% - 20%
M3 VDD usage   M3               10% - 40%
Power TSV #    TC               15 - 480
Dedicated TSV  TD               yes / no
Bonding style  BD               F2B / F2F
RDL layer      RL               yes / no
Wire bonding   WB               yes / no
TSV location   TL               C / E / D
=============  ===============  =================
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace
from typing import Tuple

from repro.errors import ConfigurationError

#: Legal continuous ranges from Table 8.
M2_USAGE_RANGE: Tuple[float, float] = (0.10, 0.20)
M3_USAGE_RANGE: Tuple[float, float] = (0.10, 0.40)
TSV_COUNT_RANGE: Tuple[int, int] = (15, 480)


class TSVLocation(enum.Enum):
    """PG TSV placement style (paper sections 3.3 and 6.1).

    CENTER groups all TSVs at the die center (lowest cost, no routing
    blockage on logic); EDGE rings the die (short supply path, big
    keep-out cost); DISTRIBUTED spreads TSVs between banks (HMC style).
    """

    CENTER = "C"
    EDGE = "E"
    DISTRIBUTED = "D"


class Bonding(enum.Enum):
    """Die bonding style: conventional F2B or the F2F+B2B pairing of
    section 4.2 (PDN sharing)."""

    F2B = "F2B"
    F2F = "F2F"


class RDLScope(enum.Enum):
    """Where backside RDLs are inserted (section 3.3): nowhere, only
    between the host and the bottom DRAM die, or on all dies.  Table 8's
    yes/no corresponds to NONE vs ALL."""

    NONE = "none"
    BOTTOM = "bottom"
    ALL = "all"

    @property
    def enabled(self) -> bool:
        return self is not RDLScope.NONE


class BumpLocation(enum.Enum):
    """Where the bumps below each interface sit.

    MATCH places bumps directly under the TSVs (possible when the package
    or interposer routing is free, Table 2 option (a)); CENTER clusters
    them at the die center (JEDEC Wide I/O requirement, Table 2 options
    (b)-(d)).
    """

    MATCH = "match"
    CENTER = "center"


class Mounting(enum.Enum):
    """Stand-alone (off-chip) stack vs mounted on a logic die (on-chip),
    paper section 3.1."""

    OFF_CHIP = "off-chip"
    ON_CHIP = "on-chip"


@dataclass(frozen=True)
class PDNConfig:
    """One point in the design/packaging space.

    Defaults are the paper's stacked-DDR3 baseline (Table 9 "Baseline"
    row): M2 10%, M3 20%, 33 edge TSVs, F2B, no RDL, no wire bonding.
    """

    m2_usage: float = 0.10
    m3_usage: float = 0.20
    tsv_count: int = 33
    tsv_location: TSVLocation = TSVLocation.EDGE
    tsv_aligned: bool = True
    dedicated_tsv: bool = False
    bonding: Bonding = Bonding.F2B
    rdl: RDLScope = RDLScope.NONE
    wire_bond: bool = False
    bump_location: BumpLocation = BumpLocation.MATCH

    def __post_init__(self) -> None:
        if not M2_USAGE_RANGE[0] <= self.m2_usage <= M2_USAGE_RANGE[1]:
            raise ConfigurationError(
                f"M2 usage {self.m2_usage:.3f} outside Table 8 range "
                f"{M2_USAGE_RANGE}"
            )
        if not M3_USAGE_RANGE[0] <= self.m3_usage <= M3_USAGE_RANGE[1]:
            raise ConfigurationError(
                f"M3 usage {self.m3_usage:.3f} outside Table 8 range "
                f"{M3_USAGE_RANGE}"
            )
        if not TSV_COUNT_RANGE[0] <= self.tsv_count <= TSV_COUNT_RANGE[1]:
            raise ConfigurationError(
                f"TSV count {self.tsv_count} outside Table 8 range "
                f"{TSV_COUNT_RANGE}"
            )
        if (
            self.tsv_location is TSVLocation.EDGE
            and self.bump_location is BumpLocation.CENTER
            and not self.rdl.enabled
        ):
            raise ConfigurationError(
                "edge TSVs with center bumps need an RDL for the interface "
                "connection (paper section 6.2: 'edge TSVs must be paired "
                "with RDL')"
            )

    def with_options(self, **changes) -> "PDNConfig":
        """A copy with some fields replaced (convenience for sweeps)."""
        return replace(self, **changes)

    def label(self) -> str:
        """Compact human-readable summary, Table 9 column style."""
        return (
            f"M2={self.m2_usage:.0%} M3={self.m3_usage:.0%} "
            f"TC={self.tsv_count} TL={self.tsv_location.value} "
            f"TD={'Y' if self.dedicated_tsv else 'N'} "
            f"BD={self.bonding.value} "
            f"RL={'Y' if self.rdl.enabled else 'N'} "
            f"WB={'Y' if self.wire_bond else 'N'}"
        )
