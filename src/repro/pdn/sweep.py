"""Warm-started solves across neighboring sweep points.

Design-space sweeps (fig5 TSV-count curves, Table-9-style co-optimizer
polish) solve a *sequence* of stacks that differ by one knob -- a TSV
count, a pitch, a metal usage.  The plan IR makes that structure
explicit: :class:`~repro.pdn.plan.PlanDiff` between two sweep points
shows which ops changed, and when no :class:`~repro.pdn.plan.AddLayerOp`
was added or removed the two stacks share their node numbering -- layer
meshes, offsets, and grids are identical, only link conductances moved.

:class:`SweepSolveSession` exploits exactly that.  Walking sweep points
in plan order with an iterative backend, each point's solver is

* **warm-started** from the previous point's preconditioner (a complete
  factorization or AMG hierarchy of a spectrally-nearby matrix -- see
  :mod:`repro.rmesh.backends`), replacing a fresh factorization with a
  handful of CG iterations, and
* **seeded** with the previous solution of the same memory state as the
  initial guess (node numbering is preserved, so the vector lines up).

When a plan diff touches layers (node numbering changes) or the
preconditioner has drifted too far (iteration count above
``refresh_iters``), the session rebuilds its setup from the current
point -- so a sweep that jumps scales degrades to cold solves instead of
diverging.  The ``direct`` backend passes straight through to the shared
cached solvers: results are bitwise identical to
:func:`repro.experiments.common.solve_design`.

Stacks come from :func:`repro.perf.cache.cached_build_stack`, so the
session composes with the plan/assembled/stack caches and the shared
:class:`~repro.pdn.assemble.AssemblySession` -- reassembly is
incremental *and* the solve is warm.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Tuple

import numpy as np

from repro.obs import metrics as _metrics
from repro.obs.trace import span
from repro.pdn.plan import AddLayerOp, PlanDiff, StackPlan
from repro.rmesh.backends import resolve_backend
from repro.rmesh.solve import StackSolver

#: Rebuild the preconditioner when a warm solve needed more iterations
#: than this -- the matrix has drifted too far from the one the
#: preconditioner was built for (e.g. a knob doubling instead of a
#: fine step).  150 factor-preconditioned iterations cost about as much
#: as a fresh factorization on the paper's stacks.
DEFAULT_REFRESH_ITERS = 150


def knob_only_diff(diff: PlanDiff) -> bool:
    """Whether a plan diff preserves node numbering.

    True when no layer op was added or removed: every mesh, node offset
    and grid is shared, so solutions and preconditioners transfer
    between the two plans' solvers.
    """
    return not any(
        isinstance(op, AddLayerOp) for op in diff.removed + diff.added
    )


class SweepSolveSession:
    """Solve sweep points in order, reusing setup across neighbors.

    Use one session per sweep curve (one benchmark, one knob trajectory);
    interleaving unrelated stacks defeats the warm start but stays
    correct -- every reuse is gated on a plan diff.

    ``backend=None`` resolves via ``REPRO_SOLVER``; with the ``direct``
    backend the session is a transparent pass-through to the shared
    cached solvers (bitwise identical results, no extra state).
    """

    def __init__(
        self,
        backend: Optional[str] = None,
        tech: Any = None,
        pitch: Optional[float] = None,
        refresh_iters: int = DEFAULT_REFRESH_ITERS,
        checkpoint: Any = None,
    ) -> None:
        from repro.resil.checkpoint import default_checkpoint

        self.backend = resolve_backend(backend)
        self.tech = tech
        self.pitch = pitch
        self.refresh_iters = refresh_iters
        # ``checkpoint=None`` picks up the process checkpoint named by
        # REPRO_CHECKPOINT / ``repro3d --resume`` (None when unset);
        # pass an explicit SweepCheckpoint to journal one sweep apart.
        self.checkpoint = (
            checkpoint if checkpoint is not None else default_checkpoint()
        )
        self._prev_plan: Optional[StackPlan] = None
        self._prev_solver: Optional[StackSolver] = None
        # Previous solutions keyed by (state label, logic scale): the x0
        # seed for the same state at the next sweep point.
        self._last_drops: Dict[Tuple[str, float], np.ndarray] = {}
        self.warm_starts = 0
        self.cold_starts = 0

    def reset(self) -> None:
        """Forget all carried setup (start a new sweep curve)."""
        self._prev_plan = None
        self._prev_solver = None
        self._last_drops.clear()

    def _solver_for(self, stack: Any) -> StackSolver:
        """The stack's solver, warm-started from the previous point when
        the plan diff says node numbering is preserved."""
        plan = stack.plan
        warm_from: Optional[StackSolver] = None
        if (
            plan is not None
            and self._prev_plan is not None
            and self._prev_solver is not None
        ):
            if plan.plan_hash == self._prev_plan.plan_hash:
                # Same physical network: the previous solver *is* the one.
                return self._prev_solver
            diff = PlanDiff.between(self._prev_plan, plan)
            if knob_only_diff(diff):
                warm_from = self._prev_solver
        if warm_from is not None:
            self.warm_starts += 1
            _metrics.inc("sweep.warm_starts")
        else:
            self.cold_starts += 1
            _metrics.inc("sweep.cold_starts")
            self._last_drops.clear()  # numbering changed; guesses are garbage
        return stack.solver_for(self.backend, warm_from=warm_from)

    def solve(
        self,
        bench: Any,
        config: Any,
        state: Any,
        logic_scale: float = 1.0,
    ):
        """Build (cached) and solve one sweep point for one memory state.

        Drop-in for :func:`repro.experiments.common.solve_design`; with
        the direct backend the result is bitwise identical to it.
        Returns a :class:`~repro.pdn.stackup.StackIRResult`.
        """
        from repro.perf.cache import cached_build_stack
        from repro.resil.checkpoint import point_key

        stack = cached_build_stack(
            bench.stack if hasattr(bench, "stack") else bench,
            config,
            tech=self.tech,
            pitch=self.pitch,
        )
        # Checkpoint lookup before any solve work: a resumed run serves
        # completed design points straight from the journal (keyed by
        # the plan's content hash, so edited inputs miss cleanly).
        ck_key = None
        if self.checkpoint is not None and stack.plan is not None:
            ck_key = point_key(
                stack.plan.plan_hash, state.label(), logic_scale
            )
            hit = self.checkpoint.lookup(ck_key)
            if hit is not None:
                return hit
        if self.backend == "direct":
            # Transparent pass-through: shared solver, no session state.
            result = stack.solve_state(state, logic_scale)
            if ck_key is not None:
                self.checkpoint.record(ck_key, result)
            return result

        with span("sweep.solve", backend=self.backend) as sp:
            solver = self._solver_for(stack)
            key = (state.label(), logic_scale)
            x0 = self._last_drops.get(key)
            if x0 is not None and x0.shape[0] != stack.model.num_nodes:
                x0 = None  # pragma: no cover - guarded by cold-start clear
            result = stack.solve_state(state, logic_scale, x0=x0, solver=solver)
            sp.attrs["iterations"] = solver.last_iterations
            sp.attrs["warm"] = solver.reused_preconditioner
        self._last_drops[key] = result.raw.drops
        if (
            solver.last_iterations > self.refresh_iters
            and solver.reused_preconditioner
        ):
            # The carried preconditioner has drifted; rebuild from the
            # current matrix so the *next* point warms from a neighbor.
            solver = StackSolver(stack.model, backend=self.backend)
            _metrics.inc("sweep.preconditioner_refreshes")
        self._prev_plan = stack.plan
        self._prev_solver = solver
        if ck_key is not None:
            self.checkpoint.record(ck_key, result)
        return result

    def stats(self) -> Dict[str, int]:
        return {
            "warm_starts": self.warm_starts,
            "cold_starts": self.cold_starts,
        }
