"""Stackup IR: a declarative build plan from PDN config to R-Mesh.

The paper's CAD flow (Figure 2) is a pipeline -- floorplan -> PDN layout
-> stacked R-mesh -> IR drop -- and this module is the intermediate
representation between the second and third stages.  A
:class:`StackPlan` is a typed, frozen, JSON-serializable sequence of
primitive construction ops (:class:`AddLayerOp`, :class:`ConnectUniformOp`,
:class:`ConnectAtPointsOp`, :class:`TSVOp`, :class:`WirebondOp`,
:class:`SupplyOp`, ...) produced by the planner in
:mod:`repro.pdn.stackup` and replayed by the pure assembler in
:mod:`repro.pdn.assemble`.

Why data instead of code:

* **Content-addressed caching** -- :attr:`StackPlan.plan_hash` is a
  stable digest of the canonical plan JSON, so two configurations that
  resolve to the same physical network share one assembled model and
  one factorization (see :mod:`repro.perf.cache`).
* **Incremental sweep reassembly** -- the assembler reuses unchanged
  per-op artifacts (layer meshes, link blocks) between plans, so a
  TSV-count sweep rebuilds only the ops that actually changed.
* **Provenance** -- run manifests and BENCH records carry the plan
  hashes an experiment solved, making accuracy drift attributable to
  structural vs. numerical change.

Ops replay strictly in sequence: op order defines both the global node
numbering (layer offsets) and the link insertion order, which the
conductance-matrix assembly depends on for bitwise reproducibility.
"""

from __future__ import annotations

import difflib
import hashlib
import json
from dataclasses import asdict, dataclass, fields
from typing import (
    Any,
    ClassVar,
    Dict,
    List,
    Mapping,
    Optional,
    Tuple,
    Type,
    Union,
)

from repro.errors import ConfigurationError
from repro.geometry import Grid2D, Rect

#: Bump when the plan JSON layout changes incompatibly.
PLAN_SCHEMA_VERSION = 1


@dataclass(frozen=True)
class GridSpec:
    """A serializable :class:`~repro.geometry.Grid2D` (outline + node counts)."""

    x0: float
    y0: float
    x1: float
    y1: float
    nx: int
    ny: int

    @classmethod
    def from_grid(cls, grid: Grid2D) -> "GridSpec":
        o = grid.outline
        return cls(x0=o.x0, y0=o.y0, x1=o.x1, y1=o.y1, nx=grid.nx, ny=grid.ny)

    def to_grid(self) -> Grid2D:
        return Grid2D(Rect(self.x0, self.y0, self.x1, self.y1), self.nx, self.ny)


@dataclass(frozen=True)
class PlanOp:
    """Base class of all build-plan ops; ``kind`` discriminates on disk."""

    kind: ClassVar[str] = "op"

    def to_dict(self) -> Dict[str, Any]:
        data: Dict[str, Any] = {"kind": type(self).kind}
        data.update(asdict(self))
        return data


@dataclass(frozen=True)
class AddLayerOp(PlanOp):
    """Register one uniform layer mesh (optionally PG-ring boosted).

    ``gx``/``gy`` are the uniform per-edge conductances before the ring
    boost, computed by the planner from the layer's effective sheet
    resistance and routing-direction weights -- the same arithmetic
    :meth:`repro.rmesh.mesh.LayerMesh.from_layer` uses, so replay is
    bitwise identical.
    """

    kind: ClassVar[str] = "add_layer"

    die: str
    key: str
    name: str
    grid: GridSpec
    origin: Tuple[float, float]
    gx: float
    gy: float
    pg_ring_boost: float = 0.0
    pg_ring_rings: int = 0
    role: str = "metal"


@dataclass(frozen=True)
class AddRDLOp(AddLayerOp):
    """A backside redistribution layer (section 3.3), as a layer op."""

    kind: ClassVar[str] = "add_rdl"
    role: str = "rdl"


@dataclass(frozen=True)
class ConnectUniformOp(PlanOp):
    """Area-density coupling between two layers (via stitching, F2F)."""

    kind: ClassVar[str] = "connect_uniform"

    key_a: str
    key_b: str
    conductance_per_mm2: float
    role: str = "via"


@dataclass(frozen=True)
class ConnectAtPointsOp(PlanOp):
    """Discrete links between two layers at stack-coordinate points."""

    kind: ClassVar[str] = "connect_at_points"

    key_a: str
    key_b: str
    xs: Tuple[float, ...]
    ys: Tuple[float, ...]
    conductances: Tuple[float, ...]
    role: str = "link"

    def __post_init__(self) -> None:
        if not (len(self.xs) == len(self.ys) == len(self.conductances)):
            raise ConfigurationError(
                f"{type(self).kind} op: mismatched point/conductance counts "
                f"({len(self.xs)}/{len(self.ys)}/{len(self.conductances)})"
            )


@dataclass(frozen=True)
class TSVOp(ConnectAtPointsOp):
    """A TSV array interface (F2B single, B2B series, RDL-split halves)."""

    kind: ClassVar[str] = "tsv"
    role: str = "tsv"


@dataclass(frozen=True)
class WirebondOp(ConnectAtPointsOp):
    """Backside bond-wire groups from the package to the top die."""

    kind: ClassVar[str] = "wirebond"
    role: str = "wirebond"


@dataclass(frozen=True)
class SupplyOp(PlanOp):
    """Links from layer nodes to the ideal package supply."""

    kind: ClassVar[str] = "supply"

    key: str
    xs: Tuple[float, ...]
    ys: Tuple[float, ...]
    conductances: Tuple[float, ...]

    def __post_init__(self) -> None:
        if not (len(self.xs) == len(self.ys) == len(self.conductances)):
            raise ConfigurationError(
                f"supply op: mismatched point/conductance counts "
                f"({len(self.xs)}/{len(self.ys)}/{len(self.conductances)})"
            )


AnyOp = Union[
    AddLayerOp,
    AddRDLOp,
    ConnectUniformOp,
    ConnectAtPointsOp,
    TSVOp,
    WirebondOp,
    SupplyOp,
]

#: kind -> op class, for deserialization.  Order matters only for docs.
OP_TYPES: Dict[str, Type[PlanOp]] = {
    cls.kind: cls
    for cls in (
        AddLayerOp,
        AddRDLOp,
        ConnectUniformOp,
        ConnectAtPointsOp,
        TSVOp,
        WirebondOp,
        SupplyOp,
    )
}


def _tuple_of_floats(value: Any, where: str) -> Tuple[float, ...]:
    if not isinstance(value, (list, tuple)):
        raise ConfigurationError(f"{where}: expected a list, got {type(value).__name__}")
    return tuple(float(v) for v in value)


def op_from_dict(data: Mapping[str, Any]) -> PlanOp:
    """Reconstruct one op from its JSON mapping."""
    kind = data.get("kind")
    if not isinstance(kind, str) or kind not in OP_TYPES:
        raise ConfigurationError(
            f"unknown plan op kind {kind!r}; known: {sorted(OP_TYPES)}"
        )
    cls = OP_TYPES[kind]
    kwargs: Dict[str, Any] = {}
    field_names = {f.name for f in fields(cls)}
    for name in field_names:
        if name not in data:
            raise ConfigurationError(f"plan op {kind!r} missing field {name!r}")
        value = data[name]
        if name == "grid":
            if not isinstance(value, Mapping):
                raise ConfigurationError(f"op {kind!r}: grid is not a mapping")
            value = GridSpec(**{k: value[k] for k in ("x0", "y0", "x1", "y1", "nx", "ny")})
        elif name == "origin":
            origin = _tuple_of_floats(value, f"op {kind!r}.origin")
            if len(origin) != 2:
                raise ConfigurationError(f"op {kind!r}: origin needs 2 coordinates")
            value = origin
        elif name in ("xs", "ys", "conductances"):
            value = _tuple_of_floats(value, f"op {kind!r}.{name}")
        kwargs[name] = value
    return cls(**kwargs)


@dataclass(frozen=True)
class StackPlan:
    """A complete, replayable recipe for one stacked R-mesh.

    ``benchmark`` is the stack-spec name the plan was derived from (part
    of the content hash: same geometry under a different benchmark name
    is a different experiment).  ``ops`` replay strictly in order.
    """

    benchmark: str
    pitch: float
    num_dram_dies: int
    dram_grid: GridSpec
    dram_origin: Tuple[float, float]
    logic_grid: Optional[GridSpec]
    ops: Tuple[AnyOp, ...]

    # -- serialization --------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema_version": PLAN_SCHEMA_VERSION,
            "benchmark": self.benchmark,
            "pitch": self.pitch,
            "num_dram_dies": self.num_dram_dies,
            "dram_grid": asdict(self.dram_grid),
            "dram_origin": list(self.dram_origin),
            "logic_grid": asdict(self.logic_grid) if self.logic_grid else None,
            "ops": [op.to_dict() for op in self.ops],
        }

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent) + "\n"

    def canonical_json(self) -> str:
        """Deterministic single-line JSON: the hashing pre-image."""
        return json.dumps(
            self.to_dict(), sort_keys=True, separators=(",", ":")
        )

    @property
    def plan_hash(self) -> str:
        """Stable 16-hex content address of the canonical plan JSON."""
        cached = self.__dict__.get("_plan_hash")
        if cached is None:
            cached = hashlib.sha256(self.canonical_json().encode()).hexdigest()[:16]
            object.__setattr__(self, "_plan_hash", cached)
        return str(cached)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "StackPlan":
        validate_plan_dict(data)
        logic = data["logic_grid"]
        return cls(
            benchmark=str(data["benchmark"]),
            pitch=float(data["pitch"]),  # type: ignore[arg-type]
            num_dram_dies=int(data["num_dram_dies"]),  # type: ignore[call-overload]
            dram_grid=GridSpec(**dict(data["dram_grid"])),
            dram_origin=tuple(_tuple_of_floats(data["dram_origin"], "dram_origin")),
            logic_grid=GridSpec(**dict(logic)) if logic is not None else None,
            ops=tuple(op_from_dict(op) for op in data["ops"]),  # type: ignore[arg-type]
        )

    @classmethod
    def from_json(cls, text: str) -> "StackPlan":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ConfigurationError(f"plan is not valid JSON: {exc}")
        if not isinstance(data, Mapping):
            raise ConfigurationError("plan JSON must be an object")
        return cls.from_dict(data)

    # -- inspection -----------------------------------------------------------

    def op_counts(self) -> Dict[str, int]:
        """Op tally by kind (summary/report helper)."""
        counts: Dict[str, int] = {}
        for op in self.ops:
            counts[type(op).kind] = counts.get(type(op).kind, 0) + 1
        return counts

    def num_nodes(self) -> int:
        """Total mesh nodes the plan will assemble."""
        return sum(
            op.grid.nx * op.grid.ny
            for op in self.ops
            if isinstance(op, AddLayerOp)
        )

    def layer_keys(self) -> List[str]:
        return [op.key for op in self.ops if isinstance(op, AddLayerOp)]

    def summary(self) -> Dict[str, Any]:
        """Compact provenance stamp (manifests, reports, CLI)."""
        return {
            "benchmark": self.benchmark,
            "plan_hash": self.plan_hash,
            "pitch": self.pitch,
            "num_dram_dies": self.num_dram_dies,
            "num_ops": len(self.ops),
            "num_nodes": self.num_nodes(),
            "ops": self.op_counts(),
        }

    def diff(self, other: "StackPlan") -> "PlanDiff":
        """Structural diff against another plan (op-sequence aligned)."""
        return PlanDiff.between(self, other)


@dataclass(frozen=True)
class PlanDiff:
    """Ops removed from / added to a plan, sequence-aligned.

    ``unchanged`` counts ops common to both plans in order; ``removed``
    and ``added`` are the sequence edits that turn ``a`` into ``b``.
    A TSV-count sweep shows up here as a handful of changed TSV ops with
    every layer op unchanged -- exactly what the incremental assembler
    exploits.
    """

    a_hash: str
    b_hash: str
    removed: Tuple[AnyOp, ...]
    added: Tuple[AnyOp, ...]
    unchanged: int

    @classmethod
    def between(cls, a: StackPlan, b: StackPlan) -> "PlanDiff":
        matcher = difflib.SequenceMatcher(a=list(a.ops), b=list(b.ops), autojunk=False)
        removed: List[AnyOp] = []
        added: List[AnyOp] = []
        unchanged = 0
        for tag, i1, i2, j1, j2 in matcher.get_opcodes():
            if tag == "equal":
                unchanged += i2 - i1
            else:
                removed.extend(a.ops[i1:i2])
                added.extend(b.ops[j1:j2])
        return cls(
            a_hash=a.plan_hash,
            b_hash=b.plan_hash,
            removed=tuple(removed),
            added=tuple(added),
            unchanged=unchanged,
        )

    @property
    def identical(self) -> bool:
        return not self.removed and not self.added

    def describe(self) -> str:
        """Multi-line human-readable rendering (CLI ``plan --diff``)."""
        if self.identical:
            return f"plans identical ({self.a_hash})"
        lines = [
            f"plan {self.a_hash} -> {self.b_hash}: "
            f"{self.unchanged} ops unchanged, -{len(self.removed)} +{len(self.added)}"
        ]
        for op in self.removed:
            lines.append(f"  - {_op_brief(op)}")
        for op in self.added:
            lines.append(f"  + {_op_brief(op)}")
        return "\n".join(lines)


def _op_brief(op: PlanOp) -> str:
    """One-line op rendering for diffs and summaries."""
    kind = type(op).kind
    if isinstance(op, AddLayerOp):
        return f"{kind} {op.key} ({op.grid.nx}x{op.grid.ny})"
    if isinstance(op, ConnectUniformOp):
        return (
            f"{kind} {op.key_a} ~ {op.key_b} "
            f"({op.conductance_per_mm2:.4g} S/mm^2, {op.role})"
        )
    if isinstance(op, ConnectAtPointsOp):
        return f"{kind} {op.key_a} -> {op.key_b} ({len(op.xs)} points, {op.role})"
    if isinstance(op, SupplyOp):
        return f"{kind} {op.key} ({len(op.xs)} points)"
    return kind  # pragma: no cover - all concrete kinds handled above


# ---------------------------------------------------------------------------
# Schema validation (hand-rolled, like manifests: no jsonschema dependency)
# ---------------------------------------------------------------------------

#: Required top-level plan fields and their JSON types.
PLAN_SCHEMA: Dict[str, Tuple[type, ...]] = {
    "schema_version": (int,),
    "benchmark": (str,),
    "pitch": (int, float),
    "num_dram_dies": (int,),
    "dram_grid": (dict,),
    "dram_origin": (list,),
    "logic_grid": (dict, type(None)),
    "ops": (list,),
}

_GRID_FIELDS: Dict[str, Tuple[type, ...]] = {
    "x0": (int, float),
    "y0": (int, float),
    "x1": (int, float),
    "y1": (int, float),
    "nx": (int,),
    "ny": (int,),
}


def _check_fields(
    data: Mapping[str, Any],
    schema: Mapping[str, Tuple[type, ...]],
    where: str,
    problems: List[str],
) -> None:
    for key, types in schema.items():
        if key not in data:
            problems.append(f"{where}: missing field {key!r}")
        elif not isinstance(data[key], types) or (
            bool in (type(data[key]),) and bool not in types
        ):
            problems.append(
                f"{where}: field {key!r} has type {type(data[key]).__name__}, "
                f"expected {'/'.join(t.__name__ for t in types)}"
            )


def validate_plan_dict(data: Mapping[str, Any]) -> None:
    """Raise :class:`ConfigurationError` unless ``data`` fits the schema.

    Used by the golden-plan CI check and by :meth:`StackPlan.from_dict`;
    op payloads are validated structurally by :func:`op_from_dict`.
    """
    problems: List[str] = []
    _check_fields(data, PLAN_SCHEMA, "plan", problems)
    if not problems and data["schema_version"] != PLAN_SCHEMA_VERSION:
        problems.append(
            f"schema_version {data['schema_version']} != {PLAN_SCHEMA_VERSION}"
        )
    if not problems:
        _check_fields(dict(data["dram_grid"]), _GRID_FIELDS, "dram_grid", problems)
        if data["logic_grid"] is not None:
            _check_fields(
                dict(data["logic_grid"]), _GRID_FIELDS, "logic_grid", problems
            )
        for i, op in enumerate(data["ops"]):
            if not isinstance(op, Mapping):
                problems.append(f"ops[{i}] is not a mapping")
            elif op.get("kind") not in OP_TYPES:
                problems.append(f"ops[{i}] has unknown kind {op.get('kind')!r}")
    if problems:
        raise ConfigurationError("invalid stack plan: " + "; ".join(problems))


# ---------------------------------------------------------------------------
# Plan observation registry (provenance)
# ---------------------------------------------------------------------------

#: Process-lifetime map of plan hash -> benchmark name, fed by the build
#: entry points.  Manifests resolve touched-plan counters against it.
_observed: Dict[str, str] = {}

#: Full plan objects by hash, kept alongside the name map so the
#: run-history store (:mod:`repro.obs.store`) can persist plan *bodies*
#: content-addressed and later render a real :class:`PlanDiff` between
#: two historical runs instead of only comparing hashes.
_observed_objects: Dict[str, "StackPlan"] = {}

#: Metrics-counter prefix for per-run plan attribution.  Counters merge
#: across worker processes, so per-experiment deltas stay complete even
#: for fanned-out sweeps (labels of worker-only plans degrade to the
#: hash itself).
PLAN_TOUCH_PREFIX = "plan.touch."


def record_plan_use(plan: StackPlan) -> None:
    """Note that a build used ``plan`` (registry + touch counter)."""
    _observed[plan.plan_hash] = plan.benchmark
    _observed_objects[plan.plan_hash] = plan
    # Local import: obs must stay importable without the pdn package.
    from repro.obs import metrics as _metrics

    _metrics.inc(PLAN_TOUCH_PREFIX + plan.plan_hash)


def observed_plans() -> Dict[str, str]:
    """Every plan hash this process has built, mapped to its benchmark."""
    return dict(_observed)


def observed_plan_objects() -> Dict[str, "StackPlan"]:
    """Every plan this process has built, by hash (full objects)."""
    return dict(_observed_objects)


def plans_from_counters(counters: Mapping[str, Any]) -> Dict[str, str]:
    """Extract ``{plan_hash: benchmark}`` from a metrics counter mapping.

    Used by manifests and the bench runner to attribute a *per-run*
    metric delta to the exact structures it solved.
    """
    out: Dict[str, str] = {}
    registry = observed_plans()
    for name in counters:
        if name.startswith(PLAN_TOUCH_PREFIX):
            plan_hash = name[len(PLAN_TOUCH_PREFIX):]
            out[plan_hash] = registry.get(plan_hash, plan_hash)
    return out


def _validate_plan_files(paths: List[str]) -> int:
    """Validate committed plan JSON files; the CI golden-plan check.

    Each file must parse, fit the schema, and round-trip to the same
    hash.  When a sibling ``plan_hashes.json`` registry exists, the
    recomputed hash must also match the registered one for the file's
    ``plan_<key>.json`` stem.
    """
    import os

    failures = 0
    for path in paths:
        if os.path.basename(path) == "plan_hashes.json":
            continue  # the hash registry rides along in plan_*.json globs
        try:
            plan = StackPlan.from_json(
                open(path, encoding="utf-8").read()
            )
        except (OSError, ConfigurationError) as exc:
            print(f"FAIL {path}: {exc}")
            failures += 1
            continue
        detail = f"{plan.benchmark} {plan.plan_hash} ({len(plan.ops)} ops)"
        registry_path = os.path.join(
            os.path.dirname(path) or ".", "plan_hashes.json"
        )
        stem = os.path.basename(path)
        if os.path.isfile(registry_path) and stem.startswith("plan_"):
            key = stem[len("plan_"):].rsplit(".", 1)[0]
            registered = json.load(open(registry_path)).get(key)
            if registered is not None and registered != plan.plan_hash:
                print(
                    f"FAIL {path}: hash {plan.plan_hash} != registered "
                    f"{registered}"
                )
                failures += 1
                continue
        print(f"ok   {path}: {detail}")
    return 1 if failures else 0


if __name__ == "__main__":  # pragma: no cover - exercised by CI
    import sys

    sys.exit(_validate_plan_files(sys.argv[1:]))
