"""Physics diagnostics: explain *where* a design's IR drop comes from.

The paper's argument (sections 3 and 6) is an attribution argument --
the DC drop decomposes into package, C4/bump, PG-TSV and on-die metal
contributions, and design/packaging/policy knobs each attack one term.
This module reproduces that decomposition for any solved design point:

* **Branch recovery** -- every resistor's current via
  :func:`repro.rmesh.branches.extract_branches`, verified against KCL
  (recovered branch currents must reproduce the injected loads).
* **Worst-path attribution** -- walk the steepest-descent path from the
  worst-drop node to the supply; successive node drops telescope, so
  the per-category sums are an *exact* decomposition of the worst-node
  drop (components sum to ``max_drop`` to round-off).
* **Per-plan-op attribution** -- map every mesh branch back to the
  :class:`~repro.pdn.plan.StackPlan` op that created it, via the
  assembler's :class:`~repro.pdn.assemble.OpArtifactSpan` bookkeeping;
  coverage is 100% (no orphan branches) for any plan-built stack, so
  "which op carries the drop" is answerable for any design hash.

Diagnostics only *read* the solution: drops, solver state and caches are
never mutated, so physics is bitwise identical with diagnostics on or
off (``bench_explain_overhead`` pins this).

The CLI surface is ``repro3d explain`` (:mod:`repro.cli`); attribution
summaries recorded here are picked up by run manifests
(:func:`repro.obs.manifest.build_manifest`) and the run-history store,
giving ``repro3d obs diff`` a physics axis next to its structural and
numerical ones.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Tuple

import numpy as np

from repro.errors import ConfigurationError, SolverError
from repro.obs import metrics as _metrics
from repro.obs.trace import span
from repro.pdn.assemble import OpArtifactSpan
from repro.pdn.plan import StackPlan, _op_brief
from repro.rmesh.branches import StackBranches, extract_branches
from repro.rmesh.solve import IRDropResult
from repro.units import to_mv

#: Bump when the ``repro3d explain`` JSON artifact layout changes.
EXPLAIN_SCHEMA_VERSION = 1

#: Relative closure tolerance: path components must sum to the worst
#: drop within this (the sum telescopes, so observed closure is ~1e-16).
CLOSURE_REL_TOL = 1e-9

#: Mesh-layer roles folded into the ``package`` category (the package
#: plane mesh; its supply link is the spreading resistance).
_PACKAGE_ROLES = ("plane",)


def _category_of(kind: str, role: str, layer: Optional[str]) -> str:
    """Fold a branch's (kind, role, layer) into a report category.

    Categories follow the paper's breakdown style: ``package`` (plane +
    spreading resistance), ``c4`` (C4 bumps / pads), ``bump``
    (microbumps to RDLs), ``tsv``, ``f2f``, ``wirebond``, ``via``
    (intra-die stitching), and ``metal:<die/layer>`` for on-die metal.
    """
    if kind == "supply":
        return "package"
    if kind == "mesh":
        if role in _PACKAGE_ROLES:
            return "package"
        return f"metal:{layer}"
    if role in ("c4", "pad"):
        return "c4"
    return role


@dataclass(frozen=True)
class PathSegment:
    """One hop of the worst-node supply path, highest drop first."""

    node_a: int
    node_b: int  # -1 once the path exits through a supply link
    kind: str  # mesh | link | supply
    role: str
    layer: Optional[str]
    category: str
    drop: float  # volts dropped across this hop (u_a - u_b, >= 0)
    current: float  # amps carried by the hop's branch
    conductance: float

    def to_dict(self) -> Dict[str, object]:
        return {
            "node_a": self.node_a,
            "node_b": self.node_b,
            "kind": self.kind,
            "role": self.role,
            "layer": self.layer,
            "category": self.category,
            "drop_mv": to_mv(self.drop),
            "current_a": self.current,
            "conductance_s": self.conductance,
        }


@dataclass
class DesignDiagnosis:
    """The full physics explanation of one solved design point."""

    benchmark: str
    config_label: str
    plan_hash: Optional[str]
    state_label: str
    backend: str
    num_nodes: int
    num_branches: int
    #: Worst-drop node: global id, layer key, stack coords, drop (V).
    worst: Dict[str, object] = field(default_factory=dict)
    #: KCL verification of the branch recovery (see
    #: :meth:`repro.rmesh.branches.StackBranches.kcl_residual`).
    kcl: Dict[str, float] = field(default_factory=dict)
    #: Worst-node supply path, worst node first.
    path: List[PathSegment] = field(default_factory=list)
    #: Exact decomposition of the worst drop: category -> volts.
    components: Dict[str, float] = field(default_factory=dict)
    #: ``|sum(components) - worst drop| / worst drop`` (round-off only).
    closure_rel: float = 0.0
    #: Per-layer rows: key, die, role, peak drop, dissipation, share.
    layers: List[Dict[str, object]] = field(default_factory=list)
    #: Per-role aggregate over link/supply branches.
    roles: List[Dict[str, object]] = field(default_factory=list)
    #: Per-plan-op attribution rows (empty for hand-built models).
    ops: List[Dict[str, object]] = field(default_factory=list)
    #: Branch coverage of the op attribution.
    coverage: Dict[str, int] = field(default_factory=dict)
    total_dissipation_w: float = 0.0
    #: The solved result this diagnosis explains (not serialized; lets
    #: callers render heatmaps of the same solution without re-solving).
    raw: Optional[IRDropResult] = field(default=None, repr=False, compare=False)

    # -- serialization --------------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        return {
            "schema_version": EXPLAIN_SCHEMA_VERSION,
            "benchmark": self.benchmark,
            "config": self.config_label,
            "plan_hash": self.plan_hash,
            "state": self.state_label,
            "backend": self.backend,
            "num_nodes": self.num_nodes,
            "num_branches": self.num_branches,
            "worst": dict(self.worst),
            "kcl": dict(self.kcl),
            "path": [seg.to_dict() for seg in self.path],
            "components_mv": {
                cat: to_mv(v) for cat, v in self.components.items()
            },
            "closure_rel": self.closure_rel,
            "layers": [dict(row) for row in self.layers],
            "roles": [dict(row) for row in self.roles],
            "ops": [dict(row) for row in self.ops],
            "coverage": dict(self.coverage),
            "total_dissipation_w": self.total_dissipation_w,
        }

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, default=str) + "\n"

    # -- summaries ------------------------------------------------------------

    def worst_drop(self) -> float:
        """The worst-node drop, volts."""
        return float(self.worst.get("drop", 0.0))  # type: ignore[arg-type]

    def attribution_summary(self) -> Dict[str, object]:
        """Compact per-design attribution for manifests / history records.

        This is the record the run-history store carries so two runs can
        be compared on the *physics* axis: where the worst drop came
        from, not just how big it was.
        """
        top_op = ""
        if self.ops:
            top = max(self.ops, key=lambda r: float(r.get("dissipation_w", 0.0)))
            top_op = str(top.get("brief", ""))
        return {
            "benchmark": self.benchmark,
            "plan_hash": self.plan_hash,
            "state": self.state_label,
            "worst_drop_mv": to_mv(self.worst_drop()),
            "worst_layer": self.worst.get("layer"),
            "components_mv": {
                cat: round(to_mv(v), 9) for cat, v in self.components.items()
            },
            "closure_rel": self.closure_rel,
            "kcl_max_rel": self.kcl.get("max_rel"),
            "orphan_branches": self.coverage.get("orphans", 0),
            "top_op": top_op,
        }

    # -- rendering ------------------------------------------------------------

    def markdown(self, max_ops: int = 12) -> str:
        """The ``repro3d explain`` report (markdown; text mode prints it)."""
        w = self.worst
        lines = [
            f"# explain {self.benchmark} [{self.config_label}]",
            "",
            f"- **state**: {self.state_label}",
            f"- **plan**: `{self.plan_hash or 'hand-built'}` "
            f"({self.num_nodes} nodes, {self.num_branches} branches, "
            f"backend {self.backend})",
            f"- **worst drop**: {float(w.get('drop_mv', 0.0)):.4f} mV at "
            f"{w.get('layer')} ({float(w.get('x', 0.0)):.2f}, "
            f"{float(w.get('y', 0.0)):.2f}) mm",
            f"- **KCL**: max relative residual {self.kcl.get('max_rel', 0.0):.3e} "
            f"(supply return {self.kcl.get('supply_return_a', 0.0):.4f} A of "
            f"{self.kcl.get('injected_a', 0.0):.4f} A injected)",
            f"- **dissipation**: {self.total_dissipation_w * 1e3:.2f} mW total",
            "",
            "## Worst-node supply-path decomposition",
            "",
            "| component | drop mV | share % |",
            "|---|---|---|",
        ]
        total = self.worst_drop() or 1.0
        for cat, drop in sorted(
            self.components.items(), key=lambda kv: -kv[1]
        ):
            lines.append(
                f"| {cat} | {to_mv(drop):.4f} | {drop / total * 100.0:.1f} |"
            )
        lines.append(
            f"| **total** | **{to_mv(sum(self.components.values())):.4f}** "
            f"| 100.0 |"
        )
        lines.append("")
        lines.append(
            f"(components sum to the worst drop exactly; closure "
            f"{self.closure_rel:.1e} relative, {len(self.path)} path hops)"
        )
        lines.extend(["", "## Per-layer dissipation", ""])
        lines.append("| layer | role | peak drop mV | dissipation mW | share % |")
        lines.append("|---|---|---|---|---|")
        for row in self.layers:
            lines.append(
                f"| {row['key']} | {row['role']} | {row['peak_mv']:.4f} "
                f"| {float(row['dissipation_w']) * 1e3:.3f} "
                f"| {float(row['share']) * 100.0:.1f} |"
            )
        if self.roles:
            lines.extend(["", "## Vertical / supply groups", ""])
            lines.append(
                "| role | branches | total A | max A/branch | dissipation mW |"
            )
            lines.append("|---|---|---|---|---|")
            for row in self.roles:
                lines.append(
                    f"| {row['role']} | {row['branches']} "
                    f"| {float(row['total_current_a']):.4f} "
                    f"| {float(row['max_current_a']):.5f} "
                    f"| {float(row['dissipation_w']) * 1e3:.3f} |"
                )
        if self.ops:
            lines.extend(["", "## Plan-op attribution", ""])
            lines.append(
                f"coverage: {self.coverage.get('attributed', 0)}/"
                f"{self.coverage.get('total', 0)} branches attributed, "
                f"{self.coverage.get('orphans', 0)} orphans"
            )
            lines.append("")
            lines.append("| op | kind | branches | dissipation mW | share % |")
            lines.append("|---|---|---|---|---|")
            ranked = sorted(
                self.ops, key=lambda r: -float(r.get("dissipation_w", 0.0))
            )
            for row in ranked[:max_ops]:
                lines.append(
                    f"| {row['brief']} | {row['kind']} | {row['branches']} "
                    f"| {float(row['dissipation_w']) * 1e3:.3f} "
                    f"| {float(row['share']) * 100.0:.1f} |"
                )
            if len(ranked) > max_ops:
                lines.append(
                    f"| ... {len(ranked) - max_ops} more ops | | | | |"
                )
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# Branch classification (role/layer per branch, via op spans)
# ---------------------------------------------------------------------------


class _BranchIndex:
    """Flat branch arrays + group-level role/layer metadata + adjacency.

    Branch order: per-layer mesh groups (layer order), then vertical
    links (insertion order), then supply links -- exactly the order
    :func:`extract_branches` produces, which the assembler's op spans
    index into.  Per-branch kind/role/layer is resolved on demand from
    the group table (:meth:`meta`) rather than materialized per branch;
    the supply-path walk only touches a handful of branches, so
    branch-count-sized metadata arrays would be pure construction cost.
    """

    def __init__(
        self,
        branches: StackBranches,
        op_spans: Tuple[OpArtifactSpan, ...],
    ) -> None:
        self.branches = branches
        model = branches.model
        a_parts: List[np.ndarray] = []
        b_parts: List[np.ndarray] = []
        g_parts: List[np.ndarray] = []
        i_parts: List[np.ndarray] = []

        layer_role: Dict[str, str] = {}
        link_role = np.full(branches.links.count, "link", dtype=object)
        supply_role = np.full(branches.supply.count, "package", dtype=object)
        for span_ in op_spans:
            if span_.layer_key is not None:
                layer_role[span_.layer_key] = span_.role
            ls, le = span_.links
            if le > ls:
                link_role[ls:le] = span_.role

        #: Layer key -> role from the plan's AddLayerOps ("metal" when
        #: no spans are available, e.g. hand-built models).
        self.layer_role = layer_role
        #: Per-link / per-supply-link role (object arrays, group-local).
        self.link_role = link_role
        self.supply_role = supply_role

        # (start, kind, role-or-None, layer, group-local role array).
        group_meta: List[tuple] = []
        offset = 0
        self.group_slices: Dict[str, slice] = {}
        for key, group in branches.mesh.items():
            n = group.count
            a_parts.append(group.a)
            b_parts.append(group.b)
            g_parts.append(group.g)
            i_parts.append(group.current)
            role = layer_role.get(key, "metal")
            group_meta.append((offset, "mesh", role, key, None))
            self.group_slices[f"mesh:{key}"] = slice(offset, offset + n)
            offset += n
        for name, group, role_arr in (
            ("link", branches.links, link_role),
            ("supply", branches.supply, supply_role),
        ):
            n = group.count
            a_parts.append(group.a)
            b_parts.append(group.b)
            g_parts.append(group.g)
            i_parts.append(group.current)
            group_meta.append((offset, name, None, None, role_arr))
            self.group_slices[name] = slice(offset, offset + n)
            offset += n

        self._group_meta = group_meta
        self._group_starts = np.asarray(
            [m[0] for m in group_meta], dtype=np.int64
        )

        self.a = np.concatenate(a_parts) if a_parts else np.empty(0, np.int64)
        self.b = np.concatenate(b_parts) if b_parts else np.empty(0, np.int64)
        self.g = np.concatenate(g_parts) if g_parts else np.empty(0, float)
        self.current = (
            np.concatenate(i_parts) if i_parts else np.empty(0, float)
        )
        self.num = int(self.a.size)

        # Per-branch dissipated power, computed once over the flat arrays
        # and sliced by every aggregation pass (roles, ops).
        with np.errstate(divide="ignore", invalid="ignore"):
            self.dissipation = np.where(
                self.g > 0.0, self.current**2 / self.g, 0.0
            )

        # Undirected adjacency (CSR over endpoint -> incident branches).
        # Supply branches appear once (their far end is the eliminated
        # supply node); mesh/link branches appear from both endpoints.
        both = np.concatenate([self.a, self.b[self.b >= 0]])
        bidx = np.concatenate(
            [np.arange(self.num), np.arange(self.num)[self.b >= 0]]
        )
        order = np.argsort(both, kind="stable")
        self._adj_branch = bidx[order]
        counts = np.bincount(both, minlength=model.num_nodes)
        stops = np.cumsum(counts)
        self._adj_starts = stops - counts
        self._adj_stops = stops

    def incident(self, node: int) -> np.ndarray:
        """Branch indices incident to a node."""
        return self._adj_branch[self._adj_starts[node]:self._adj_stops[node]]

    def meta(self, branch: int) -> Tuple[str, str, Optional[str]]:
        """``(kind, role, layer)`` of one branch, from the group table."""
        gi = (
            int(np.searchsorted(self._group_starts, branch, side="right")) - 1
        )
        start, kind, role, layer, role_arr = self._group_meta[gi]
        if role_arr is not None:
            role = role_arr[branch - start]
        return kind, str(role), layer


# ---------------------------------------------------------------------------
# Worst-path walk
# ---------------------------------------------------------------------------


def _walk_worst_path(
    index: _BranchIndex, drops: np.ndarray
) -> List[PathSegment]:
    """Steepest-descent path from the worst node down to the supply.

    At every node the walk hops to the incident neighbor with the lowest
    drop (the eliminated supply node counts as drop 0), so successive
    node drops strictly decrease and the per-hop drops telescope to the
    worst-node drop exactly.  On the solved field interior local minima
    cannot exist away from supply-linked nodes (each unloaded node's
    drop is a convex combination of its neighbors'), so the walk always
    terminates at the supply.
    """
    node = int(np.argmax(drops))
    path: List[PathSegment] = []
    visited = set()
    while node >= 0:
        if node in visited:  # pragma: no cover - descent strictly decreases
            raise SolverError("worst-path walk revisited a node", node=node)
        visited.add(node)
        candidates = index.incident(node)
        if candidates.size == 0:  # pragma: no cover - connected by assembly
            raise SolverError("worst-path walk hit an isolated node", node=node)
        a = index.a[candidates]
        others = np.where(a == node, index.b[candidates], a)
        # The eliminated supply node (-1) sits at drop 0.
        u = np.where(others < 0, 0.0, drops[np.maximum(others, 0)])
        pick = int(np.argmin(u))
        best_branch = int(candidates[pick])
        best_u = float(u[pick])
        u_here = float(drops[node])
        if best_u >= u_here:  # pragma: no cover - no descent possible
            raise SolverError(
                "worst-path walk stalled at a local minimum", node=node
            )
        other = int(others[pick])
        kind, role, layer = index.meta(best_branch)
        path.append(
            PathSegment(
                node_a=node,
                node_b=other,
                kind=kind,
                role=role,
                layer=layer,
                category=_category_of(kind, role, layer),
                drop=u_here - best_u,
                current=float(index.current[best_branch]),
                conductance=float(index.g[best_branch]),
            )
        )
        node = other
    return path


# ---------------------------------------------------------------------------
# Diagnosis assembly
# ---------------------------------------------------------------------------


def diagnose_result(
    raw: IRDropResult,
    currents: np.ndarray,
    plan: Optional[StackPlan] = None,
    op_spans: Tuple[OpArtifactSpan, ...] = (),
    benchmark: str = "",
    config_label: str = "",
    state_label: str = "",
) -> DesignDiagnosis:
    """Diagnose one solved result given its injected current vector.

    Pure read-side analysis: ``raw.drops`` and the model are only read.
    ``plan``/``op_spans`` enable per-op attribution (plan-built stacks
    carry both; hand-built models degrade to role-level classification).
    """
    model = raw.model
    with span("diagnose.extract", nodes=model.num_nodes):
        branches = extract_branches(model, np.asarray(raw.drops))
        kcl = branches.kcl_residual(np.asarray(currents))
    index = _BranchIndex(branches, op_spans)
    with span("diagnose.path"):
        path = _walk_worst_path(index, branches.drops)

    key, point, worst_drop = raw.worst_node_location(with_value=True)
    components: Dict[str, float] = {}
    for seg in path:
        components[seg.category] = components.get(seg.category, 0.0) + seg.drop
    total = sum(components.values())
    closure_rel = (
        abs(total - worst_drop) / worst_drop if worst_drop > 0 else 0.0
    )

    total_p = float(index.dissipation.sum())
    layer_rows: List[Dict[str, object]] = []
    for lkey in branches.mesh:
        entry = model.layer_entry(lkey)
        gsl = index.group_slices[f"mesh:{lkey}"]
        p = float(index.dissipation[gsl].sum())
        layer_rows.append(
            {
                "key": lkey,
                "die": entry.die,
                "role": index.layer_role.get(lkey, "metal"),
                "peak_mv": to_mv(float(raw.layer_drops(lkey).max())),
                "dissipation_w": p,
                "share": p / total_p if total_p > 0 else 0.0,
            }
        )

    role_rows: List[Dict[str, object]] = []
    for name in ("link", "supply"):
        sl = index.group_slices[name]
        if sl.stop == sl.start:
            continue
        roles_here = index.link_role if name == "link" else index.supply_role
        cur = index.current[sl.start:sl.stop]
        p = index.dissipation[sl.start:sl.stop]
        for role in sorted(set(roles_here.tolist())):
            mask = roles_here == role
            role_rows.append(
                {
                    "role": role,
                    "branches": int(mask.sum()),
                    "total_current_a": float(np.abs(cur[mask]).sum()),
                    "max_current_a": float(np.abs(cur[mask]).max()),
                    "dissipation_w": float(p[mask].sum()),
                }
            )

    op_rows: List[Dict[str, object]] = []
    attributed = 0
    if plan is not None and op_spans:
        mesh_by_key = {
            k: branches.mesh[k] for k in branches.mesh
        }
        link_sl = index.group_slices["link"]
        supply_sl = index.group_slices["supply"]
        for span_ in op_spans:
            op = plan.ops[span_.index]
            count = 0
            p_op = 0.0
            cur_max = 0.0
            if span_.layer_key is not None and span_.layer_key in mesh_by_key:
                group = mesh_by_key[span_.layer_key]
                gsl = index.group_slices[f"mesh:{span_.layer_key}"]
                count += group.count
                p_op += float(index.dissipation[gsl].sum())
                if group.count:
                    cur_max = float(np.abs(group.current).max())
            ls, le = span_.links
            if le > ls:
                sl = slice(link_sl.start + ls, link_sl.start + le)
                cur = index.current[sl]
                count += le - ls
                p_op += float(index.dissipation[sl].sum())
                cur_max = max(cur_max, float(np.abs(cur).max()))
            ss, se = span_.supply
            if se > ss:
                sl = slice(supply_sl.start + ss, supply_sl.start + se)
                cur = index.current[sl]
                count += se - ss
                p_op += float(index.dissipation[sl].sum())
                cur_max = max(cur_max, float(np.abs(cur).max()))
            attributed += count
            op_rows.append(
                {
                    "index": span_.index,
                    "kind": span_.kind,
                    "role": span_.role,
                    "brief": _op_brief(op),
                    "branches": count,
                    "dissipation_w": p_op,
                    "max_current_a": cur_max,
                    "share": p_op / total_p if total_p > 0 else 0.0,
                }
            )

    diagnosis = DesignDiagnosis(
        benchmark=benchmark or (plan.benchmark if plan is not None else ""),
        config_label=config_label,
        plan_hash=plan.plan_hash if plan is not None else None,
        state_label=state_label,
        backend=raw.backend,
        num_nodes=model.num_nodes,
        num_branches=branches.num_branches,
        worst={
            "node": int(np.argmax(branches.drops)),
            "layer": key,
            "x": point.x,
            "y": point.y,
            "drop": worst_drop,
            "drop_mv": to_mv(worst_drop),
        },
        kcl=kcl,
        path=path,
        components=components,
        closure_rel=closure_rel,
        layers=layer_rows,
        roles=role_rows,
        ops=op_rows,
        coverage={
            "total": branches.num_branches,
            "attributed": attributed,
            "orphans": (branches.num_branches - attributed)
            if op_rows
            else branches.num_branches,
        },
        total_dissipation_w=total_p,
        raw=raw,
    )
    _metrics.inc("diagnose.reports")
    _metrics.inc("diagnose.branches", branches.num_branches)
    _metrics.set_gauge("diagnose.kcl_max_rel", float(kcl["max_rel"]))
    _metrics.set_gauge("diagnose.closure_rel", closure_rel)
    return diagnosis


def diagnose_stack(stack, state=None, logic_scale: float = 1.0) -> DesignDiagnosis:
    """Build-and-solve convenience: diagnose a ``PDNStack`` at one state.

    ``state`` defaults to nothing-active only in the degenerate sense --
    callers normally pass the benchmark's reference state.  The solve
    goes through the stack's shared solver, so a prepared factorization
    is reused and the recorded physics matches what any other caller of
    the same stack sees.
    """
    from repro.power.state import MemoryState  # lazy: avoid import cycles

    if state is None:
        raise ConfigurationError("diagnose_stack needs a memory state")
    if not isinstance(state, MemoryState):
        raise ConfigurationError(
            f"expected a MemoryState, got {type(state).__name__}"
        )
    with span("diagnose.explain", benchmark=stack.spec.name):
        maps = stack.power_maps(state, logic_scale)
        solver = stack.solver
        currents = solver.currents_from_maps(maps)
        raw = solver.solve_currents(currents)
        diagnosis = diagnose_result(
            raw,
            currents,
            plan=stack.plan,
            op_spans=stack.assembled.op_spans if stack.assembled else (),
            benchmark=stack.spec.name,
            config_label=stack.config.label(),
            state_label=state.label(),
        )
    record_attribution(diagnosis.attribution_summary())
    return diagnosis


# ---------------------------------------------------------------------------
# Attribution registry (manifest / run-history integration)
# ---------------------------------------------------------------------------

#: Process-lifetime attribution summaries by benchmark name, fed by
#: :func:`diagnose_stack`.  Manifests embed a snapshot
#: (:func:`repro.obs.manifest.build_manifest`), which the run-history
#: store normalizes into its records -- the physics axis of
#: ``repro3d obs diff``.
_attributions: Dict[str, Dict[str, object]] = {}


def record_attribution(summary: Mapping[str, object]) -> None:
    """Register one design's attribution summary (latest per benchmark)."""
    name = str(summary.get("benchmark") or summary.get("plan_hash") or "design")
    _attributions[name] = dict(summary)


def attribution_snapshot() -> Dict[str, Dict[str, object]]:
    """Every attribution summary recorded in this process, by benchmark."""
    return {k: dict(v) for k, v in _attributions.items()}


def reset_attributions() -> None:
    _attributions.clear()


# ---------------------------------------------------------------------------
# Explain-artifact schema (CI validates emitted JSON against this)
# ---------------------------------------------------------------------------

#: Required top-level fields of a ``repro3d explain`` JSON artifact.
EXPLAIN_SCHEMA: Dict[str, Tuple[type, ...]] = {
    "schema_version": (int,),
    "benchmark": (str,),
    "config": (str,),
    "plan_hash": (str, type(None)),
    "state": (str,),
    "backend": (str,),
    "num_nodes": (int,),
    "num_branches": (int,),
    "worst": (dict,),
    "kcl": (dict,),
    "path": (list,),
    "components_mv": (dict,),
    "closure_rel": (int, float),
    "layers": (list,),
    "roles": (list,),
    "ops": (list,),
    "coverage": (dict,),
    "total_dissipation_w": (int, float),
}


def validate_explain_dict(data: Mapping[str, Any]) -> None:
    """Raise :class:`ConfigurationError` unless ``data`` is a valid
    explain artifact: schema fields present and well-typed, components
    summing to the worst drop within :data:`CLOSURE_REL_TOL`, and no
    orphan branches when op attribution is present."""
    problems: List[str] = []
    for key, types in EXPLAIN_SCHEMA.items():
        if key not in data:
            problems.append(f"missing field {key!r}")
        elif not isinstance(data[key], types):
            problems.append(
                f"field {key!r} has type {type(data[key]).__name__}, "
                f"expected {'/'.join(t.__name__ for t in types)}"
            )
    if not problems and data["schema_version"] != EXPLAIN_SCHEMA_VERSION:
        problems.append(
            f"schema_version {data['schema_version']} != {EXPLAIN_SCHEMA_VERSION}"
        )
    if not problems:
        worst_mv = float(dict(data["worst"]).get("drop_mv", 0.0))
        total_mv = sum(float(v) for v in dict(data["components_mv"]).values())
        if worst_mv > 0 and abs(total_mv - worst_mv) / worst_mv > CLOSURE_REL_TOL:
            problems.append(
                f"components sum {total_mv} mV != worst drop {worst_mv} mV"
            )
        coverage = dict(data["coverage"])
        if data["ops"] and int(coverage.get("orphans", 0)) != 0:
            problems.append(
                f"op attribution left {coverage.get('orphans')} orphan branches"
            )
    if problems:
        raise ConfigurationError(
            "invalid explain artifact: " + "; ".join(problems)
        )
