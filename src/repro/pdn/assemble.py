"""Pure assembler: replay a :class:`~repro.pdn.plan.StackPlan` into a model.

The assembler is the only writer of :class:`repro.rmesh.StackModel` in
the plan pipeline.  It replays a plan's ops strictly in order, so the
global node numbering and the link insertion order -- and therefore the
assembled conductance matrix -- are bitwise identical to what the former
monolithic builder produced.

Incremental sweep reassembly: an :class:`AssemblySession` caches the
artifacts each op produced (layer meshes; vertical/supply link blocks)
keyed by the op itself plus the endpoint layers' placement signatures.
A fig5-style TSV-count sweep changes only the TSV ops between plan
points, so every layer mesh and every unchanged connect replays from
cache -- the reuse the ``assemble.*`` metrics counters make visible.
Cached artifacts are physically identical to freshly built ones (meshes
are deterministic functions of their op; link blocks additionally of the
endpoint signatures), so session-assembled models stay bitwise equal to
cold builds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, List, Optional, Tuple

import numpy as np

from repro.errors import MeshError
from repro.geometry import Point
from repro.obs import metrics as _metrics
from repro.pdn.plan import (
    AddLayerOp,
    ConnectAtPointsOp,
    ConnectUniformOp,
    PlanOp,
    StackPlan,
    SupplyOp,
)
from repro.perf.timers import timed
from repro.rmesh.backends import resolve_backend
from repro.rmesh.mesh import LayerMesh
from repro.rmesh.solve import StackSolver
from repro.rmesh.stack import StackModel, SupplyLink, VerticalLink

#: Endpoint placement signature: (node offset, grid, origin).  Link node
#: ids depend on exactly these -- never on the layer's conductances -- so
#: two models agreeing on the signatures of an op's endpoints get
#: identical link blocks from that op.
_LayerSig = Tuple[int, Hashable, Point]


@dataclass(frozen=True)
class OpArtifactSpan:
    """What one replayed plan op contributed to the assembled model.

    The op -> artifact bookkeeping behind branch attribution
    (:mod:`repro.pdn.diagnose`): ``links`` / ``supply`` are half-open
    index ranges into the model's vertical-link and supply-link lists
    (insertion order, which :func:`repro.rmesh.branches.extract_branches`
    preserves), and ``layer_key`` names the mesh an
    :class:`~repro.pdn.plan.AddLayerOp` registered.  Ranges are recorded
    identically on cache hits and cold builds -- a reused link block
    still lands at a deterministic position -- so the mapping covers
    100% of the model's branches for any session-assembled plan.
    """

    index: int  # position in plan.ops
    kind: str  # the op's ``kind`` discriminator
    role: str  # the op's electrical role (metal/tsv/c4/bump/...)
    layer_key: Optional[str]  # AddLayerOp: the registered mesh's key
    links: Tuple[int, int]  # half-open range into model.vertical_links()
    supply: Tuple[int, int]  # half-open range into model.supply_links()


class AssembledStack:
    """One assembled plan: the model plus lazily prepared solvers.

    This is the unit the content-addressed cache stores: every
    :class:`~repro.pdn.stackup.PDNStack` wrapping the same plan hash
    shares one ``AssembledStack`` and hence one setup (factorization or
    preconditioner) per backend.
    """

    def __init__(
        self,
        plan: StackPlan,
        model: StackModel,
        op_spans: Optional[Tuple[OpArtifactSpan, ...]] = None,
    ) -> None:
        self.plan = plan
        self.model = model
        #: Per-op artifact ranges, aligned with ``plan.ops`` (see
        #: :class:`OpArtifactSpan`); empty only for hand-built wrappers.
        self.op_spans: Tuple[OpArtifactSpan, ...] = op_spans or ()
        self._solvers: Dict[str, StackSolver] = {}

    @property
    def plan_hash(self) -> str:
        return self.plan.plan_hash

    def solver_for(
        self,
        backend: Optional[str] = None,
        warm_from: Optional[StackSolver] = None,
    ) -> StackSolver:
        """The shared solver for a backend, prepared on first use.

        ``backend=None`` resolves via ``REPRO_SOLVER`` (default
        ``direct``).  ``warm_from`` only matters on the preparing call:
        an already-cached solver is returned as-is, since its setup
        artifacts exist and reuse would discard them.
        """
        resolved = resolve_backend(backend)
        solver = self._solvers.get(resolved)
        if solver is None:
            solver = StackSolver(self.model, backend=resolved, warm_from=warm_from)
            self._solvers[resolved] = solver
        return solver

    @property
    def solver(self) -> StackSolver:
        """Process-default-backend solver, built on first use."""
        return self.solver_for(None)


class AssemblySession:
    """Per-op artifact cache carried across assemblies of related plans.

    Meshes are shared by object (models never mutate a registered mesh);
    link blocks are tuples of frozen links.  Both are exact: a cache hit
    contributes the same bytes a rebuild would.
    """

    def __init__(self) -> None:
        self._meshes: Dict[AddLayerOp, LayerMesh] = {}
        self._links: Dict[Tuple[PlanOp, _LayerSig, _LayerSig], Tuple[VerticalLink, ...]] = {}
        self._supply: Dict[Tuple[SupplyOp, _LayerSig], Tuple[SupplyLink, ...]] = {}

    def clear(self) -> None:
        self._meshes.clear()
        self._links.clear()
        self._supply.clear()

    def stats(self) -> Dict[str, int]:
        return {
            "meshes": len(self._meshes),
            "link_blocks": len(self._links),
            "supply_blocks": len(self._supply),
        }

    # -- artifact lookup ------------------------------------------------------

    def mesh_for(self, op: AddLayerOp) -> LayerMesh:
        mesh = self._meshes.get(op)
        if mesh is None:
            mesh = _build_mesh(op)
            self._meshes[op] = mesh
            _metrics.inc("assemble.layers_built")
        else:
            _metrics.inc("assemble.layers_reused")
        return mesh

    def links_for(
        self, op: PlanOp, sig_a: _LayerSig, sig_b: _LayerSig
    ) -> Optional[Tuple[VerticalLink, ...]]:
        return self._links.get((op, sig_a, sig_b))

    def store_links(
        self,
        op: PlanOp,
        sig_a: _LayerSig,
        sig_b: _LayerSig,
        links: Tuple[VerticalLink, ...],
    ) -> None:
        self._links[(op, sig_a, sig_b)] = links

    def supply_for(
        self, op: SupplyOp, sig: _LayerSig
    ) -> Optional[Tuple[SupplyLink, ...]]:
        return self._supply.get((op, sig))

    def store_supply(
        self, op: SupplyOp, sig: _LayerSig, links: Tuple[SupplyLink, ...]
    ) -> None:
        self._supply[(op, sig)] = links


def _build_mesh(op: AddLayerOp) -> LayerMesh:
    """Materialize one layer mesh from its op.

    Mirrors :meth:`LayerMesh.from_layer` + ``add_pg_ring``: fill the
    uniform edge conductances the planner computed, then boost the ring.
    """
    grid = op.grid.to_grid()
    mesh = LayerMesh(
        grid=grid,
        gx=np.full((grid.ny, grid.nx - 1), op.gx),
        gy=np.full((grid.ny - 1, grid.nx), op.gy),
        name=op.name,
    )
    if op.pg_ring_rings > 0:
        mesh.add_pg_ring(op.pg_ring_boost, rings=op.pg_ring_rings)
    return mesh


def _layer_sig(model: StackModel, key: str) -> _LayerSig:
    entry = model.layer_entry(key)
    return (entry.offset, entry.mesh.grid, entry.origin)


def _replay_connect(
    model: StackModel,
    op: PlanOp,
    session: Optional[AssemblySession],
) -> None:
    """Replay one layer-to-layer connect op, reusing cached link blocks."""
    if isinstance(op, ConnectUniformOp):
        key_a, key_b = op.key_a, op.key_b
    elif isinstance(op, ConnectAtPointsOp):
        key_a, key_b = op.key_a, op.key_b
    else:  # pragma: no cover - planner emits only known connects
        raise MeshError(f"cannot replay op kind {type(op).kind!r}")
    if session is not None:
        sig_a = _layer_sig(model, key_a)
        sig_b = _layer_sig(model, key_b)
        cached = session.links_for(op, sig_a, sig_b)
        if cached is not None:
            model.extend_links(cached)
            _metrics.inc("assemble.connects_reused")
            return
    start = model.link_count
    if isinstance(op, ConnectUniformOp):
        model.connect_layers_uniform(key_a, key_b, op.conductance_per_mm2)
    else:
        model.connect_layers_at_xy(key_a, key_b, op.xs, op.ys, op.conductances)
    _metrics.inc("assemble.connects_built")
    if session is not None:
        session.store_links(op, sig_a, sig_b, model.links_range(start, model.link_count))


def _replay_supply(
    model: StackModel,
    op: SupplyOp,
    session: Optional[AssemblySession],
) -> None:
    if session is not None:
        sig = _layer_sig(model, op.key)
        cached = session.supply_for(op, sig)
        if cached is not None:
            model.extend_supply(cached)
            _metrics.inc("assemble.connects_reused")
            return
    start = model.supply_count
    model.connect_supply_at_xy(op.key, op.xs, op.ys, op.conductances)
    _metrics.inc("assemble.connects_built")
    if session is not None:
        session.store_supply(op, sig, model.supply_range(start, model.supply_count))


def _op_role(op: PlanOp) -> str:
    """The electrical role an op's artifacts carry (SupplyOp has none)."""
    role = getattr(op, "role", None)
    if isinstance(role, str):
        return role
    return "supply" if isinstance(op, SupplyOp) else "op"


def assemble(
    plan: StackPlan, session: Optional[AssemblySession] = None
) -> AssembledStack:
    """Replay a plan into a fresh :class:`StackModel`.

    With a ``session``, artifacts of ops already assembled under the
    same endpoint placements are reused; the result is bitwise identical
    either way.  Each op's contribution (mesh key, link range, supply
    range) is recorded as an :class:`OpArtifactSpan` so branch-level
    diagnostics can attribute every resistor back to the plan op that
    created it.
    """
    with timed("stackup.assemble"):
        model = StackModel()
        spans: List[OpArtifactSpan] = []
        for index, op in enumerate(plan.ops):
            link_start, supply_start = model.link_count, model.supply_count
            layer_key: Optional[str] = None
            if isinstance(op, AddLayerOp):
                mesh = (
                    session.mesh_for(op)
                    if session is not None
                    else _build_mesh(op)
                )
                if session is None:
                    _metrics.inc("assemble.layers_built")
                layer_key = model.add_layer(
                    op.die, mesh, origin=Point(*op.origin), key=op.key
                )
            elif isinstance(op, SupplyOp):
                _replay_supply(model, op, session)
            else:
                _replay_connect(model, op, session)
            spans.append(
                OpArtifactSpan(
                    index=index,
                    kind=type(op).kind,
                    role=_op_role(op),
                    layer_key=layer_key,
                    links=(link_start, model.link_count),
                    supply=(supply_start, model.supply_count),
                )
            )
        return AssembledStack(plan, model, op_spans=tuple(spans))
