"""TSV, bump and wire-bond placement plus the C4 alignment model.

Placement generators return stack-coordinate points for a die outline.
The alignment model (paper section 3.2) measures, for every TSV, the
Manhattan distance to the nearest C4 bump of a regular bump field; the
detour resistance of that escape route is charged in series with the TSV.
"""

from __future__ import annotations

import math
from typing import List, Sequence

from repro.errors import ConfigurationError
from repro.floorplan.blocks import BlockType
from repro.geometry import Point, Rect
from repro.pdn.config import PDNConfig, TSVLocation
from repro.tech.vertical import C4Tech


def _cluster_grid(region: Rect, count: int) -> List[Point]:
    """``count`` points on a near-square grid filling ``region``."""
    if count < 1:
        raise ConfigurationError("need at least one TSV")
    aspect = region.width / region.height if region.height > 0 else 1.0
    cols = max(1, int(round(math.sqrt(count * aspect))))
    rows = max(1, math.ceil(count / cols))
    points: List[Point] = []
    for k in range(count):
        r, c = divmod(k, cols)
        # Center the grid; rows fill bottom-up.
        x = region.x0 + (c + 0.5) * region.width / cols
        y = region.y0 + (r + 0.5) * region.height / rows
        points.append(Point(x, y))
    return points


#: TSV placement pitch inside a center cluster (TSV + keep-out zone), mm.
CENTER_CLUSTER_PITCH = 0.45


def center_tsv_points(
    outline: Rect, count: int, tsv_pitch: "float | None" = None
) -> List[Point]:
    """Group all TSVs into a cluster at the die center (section 3.3:
    "center TSV ... does not block routing on the logic die").

    The cluster's physical size follows from the TSV pitch: ``count`` TSVs
    occupy a roughly square region of side ``sqrt(count) * tsv_pitch``
    (capped at 60% of the die).  Small TSV counts therefore crowd all the
    supply current through a tiny region -- part of why the cheapest
    configurations of Table 9 have such poor IR drop.
    """
    if tsv_pitch is None:
        tsv_pitch = CENTER_CLUSTER_PITCH
    side = math.sqrt(max(count, 1)) * tsv_pitch
    width = min(side, 0.6 * outline.width)
    height = min(side, 0.6 * outline.height)
    region = Rect.centered(outline.center, width, height)
    return _cluster_grid(region, count)


def edge_tsv_points(outline: Rect, count: int, inset: float = 0.25) -> List[Point]:
    """Ring of TSVs along the die perimeter (section 3.3 edge TSVs,
    after [Kang et al., JSSC'10])."""
    ring = outline.inset(inset)
    perimeter = 2.0 * (ring.width + ring.height)
    spacing = perimeter / max(count, 1)
    points = list(ring.edge_points(spacing))
    return points[:count] if len(points) >= count else points


def distributed_tsv_points(
    outline: Rect,
    count: int,
    floorplan: "DieFloorplan | None" = None,
    inset: float = 0.3,
) -> List[Point]:
    """Distribute TSVs across the die (HMC style, section 6.1).

    When the floorplan reserves TSV regions (HMC vaults), points are
    spread round-robin over those regions; otherwise a uniform grid over
    the (inset) die is used.
    """
    regions: Sequence[Rect] = ()
    if floorplan is not None:
        regions = [b.rect for b in floorplan.blocks_of_type(BlockType.TSV_REGION)]
    if not regions:
        return _cluster_grid(outline.inset(inset), count)
    points: List[Point] = []
    per_region = [count // len(regions)] * len(regions)
    for k in range(count % len(regions)):
        per_region[k] += 1
    for region, n in zip(regions, per_region):
        if n:
            points.extend(_cluster_grid(region, n))
    return points


def tsv_points_for_config(
    outline: Rect,
    config: PDNConfig,
    floorplan: "DieFloorplan | None" = None,
) -> List[Point]:
    """TSV positions for a configuration's location style and count."""
    if config.tsv_location is TSVLocation.CENTER:
        return center_tsv_points(outline, config.tsv_count)
    if config.tsv_location is TSVLocation.EDGE:
        return edge_tsv_points(outline, config.tsv_count)
    return distributed_tsv_points(outline, config.tsv_count, floorplan)


def center_bump_points(outline: Rect, count: int) -> List[Point]:
    """Bump cluster at the die center (JEDEC Wide I/O style)."""
    return center_tsv_points(outline, count)


def wirebond_points(outline: Rect, groups_per_edge: int, inset: float = 0.12) -> List[Point]:
    """Backside wire-bond pad groups around the top die perimeter
    (section 4.1)."""
    ring = outline.inset(inset)
    perimeter = 2.0 * (ring.width + ring.height)
    count = 4 * groups_per_edge
    return list(ring.edge_points(perimeter / count))[:count]


# ---------------------------------------------------------------------------
# C4 alignment model
# ---------------------------------------------------------------------------


def nearest_c4_distance(point: Point, outline: Rect, pitch: float) -> float:
    """Manhattan distance from ``point`` to the nearest bump of a regular
    C4 field of the given pitch anchored at the die's lower-left corner
    (bumps at half-pitch offsets, matching the mesh convention)."""
    if pitch <= 0.0:
        raise ConfigurationError("C4 pitch must be positive")

    def axis_dist(coord: float, lo: float, hi: float) -> float:
        # Bump rows at lo + (k + 0.5) * pitch, clamped inside the outline.
        k = round((coord - lo) / pitch - 0.5)
        k = min(max(k, 0), max(int((hi - lo) / pitch) - 1, 0))
        return abs(coord - (lo + (k + 0.5) * pitch))

    return axis_dist(point.x, outline.x0, outline.x1) + axis_dist(
        point.y, outline.y0, outline.y1
    )


def alignment_detours(
    points: Sequence[Point],
    outline: Rect,
    c4: C4Tech,
    aligned: bool,
) -> List[float]:
    """Per-TSV detour resistance (ohm) from the alignment model.

    ``aligned=True`` models the optimized placement of section 3.2
    ("carefully placing TSVs near C4 bumps ... reducing average C4-to-TSV
    distance"): the detour vanishes.  Otherwise each TSV pays the escape
    route to its nearest bump.
    """
    if aligned:
        return [0.0] * len(points)
    return [
        c4.detour_resistance(nearest_c4_distance(p, outline, c4.pitch))
        for p in points
    ]


def mean_alignment_distance(
    points: Sequence[Point], outline: Rect, pitch: float
) -> float:
    """Average C4-to-TSV Manhattan distance, mm (Figure 5 metric)."""
    if not points:
        return 0.0
    return sum(nearest_c4_distance(p, outline, pitch) for p in points) / len(points)
