"""PDN configuration and 3D stack assembly.

:class:`PDNConfig` holds the design/packaging knobs of the paper's
co-optimization space (Table 8); :func:`build_stack` turns a benchmark's
physical description plus a configuration into a solvable
:class:`repro.rmesh.StackModel`.
"""

from repro.pdn.config import (
    Bonding,
    BumpLocation,
    Mounting,
    PDNConfig,
    RDLScope,
    TSVLocation,
)
from repro.pdn.stackup import PDNStack, StackSpec, build_stack

__all__ = [
    "PDNConfig",
    "TSVLocation",
    "Bonding",
    "RDLScope",
    "BumpLocation",
    "Mounting",
    "StackSpec",
    "PDNStack",
    "build_stack",
]
