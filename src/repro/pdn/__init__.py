"""PDN configuration and the 3D stack build pipeline.

:class:`PDNConfig` holds the design/packaging knobs of the paper's
co-optimization space (Table 8).  Stack construction is a three-stage
pipeline: :func:`plan_stack` turns a benchmark's physical description
plus a configuration into a declarative :class:`StackPlan`
(:mod:`repro.pdn.plan`), :func:`assemble` replays the plan into a
solvable :class:`repro.rmesh.StackModel` (:mod:`repro.pdn.assemble`),
and :func:`build_stack` composes the two.
"""

from repro.pdn.assemble import (
    AssembledStack,
    AssemblySession,
    OpArtifactSpan,
    assemble,
)
from repro.pdn.diagnose import (
    DesignDiagnosis,
    attribution_snapshot,
    diagnose_result,
    diagnose_stack,
    validate_explain_dict,
)
from repro.pdn.config import (
    Bonding,
    BumpLocation,
    Mounting,
    PDNConfig,
    RDLScope,
    TSVLocation,
)
from repro.pdn.plan import StackPlan, observed_plans, record_plan_use
from repro.pdn.stackup import (
    PDNStack,
    StackSpec,
    build_stack,
    plan_single_die_stack,
    plan_stack,
)

__all__ = [
    "PDNConfig",
    "TSVLocation",
    "Bonding",
    "RDLScope",
    "BumpLocation",
    "Mounting",
    "StackSpec",
    "StackPlan",
    "PDNStack",
    "AssembledStack",
    "AssemblySession",
    "OpArtifactSpan",
    "DesignDiagnosis",
    "assemble",
    "attribution_snapshot",
    "diagnose_result",
    "diagnose_stack",
    "validate_explain_dict",
    "build_stack",
    "plan_stack",
    "plan_single_die_stack",
    "observed_plans",
    "record_plan_use",
]
