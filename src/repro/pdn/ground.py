"""Complementary ground-net (VSS) analysis.

The paper's R-Mesh "is built for VDD only.  However, the ground net can
be analyzed in complementary fashion as well" (section 2.2).  This module
provides that complement: the VSS network has the same topology as the
VDD network (DRAM PDNs are symmetric), with its own usage fractions, and
every load sinks the same current it draws.  Ground bounce is therefore
the solve of a complementary stack, and the total supply-window noise a
device sees is the sum of its VDD droop and VSS bounce.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import ConfigurationError
from repro.pdn.config import PDNConfig
from repro.pdn.stackup import PDNStack, StackSpec, build_stack
from repro.power.state import MemoryState
from repro.tech.calibration import DEFAULT_TECH, TechConstants


@dataclass
class SupplyWindowResult:
    """VDD droop + VSS bounce for one memory state."""

    state: MemoryState
    vdd_droop_mv: float
    vss_bounce_mv: float

    @property
    def total_noise_mv(self) -> float:
        """Worst-case supply-window collapse seen by the DRAM devices."""
        return self.vdd_droop_mv + self.vss_bounce_mv

    def __str__(self) -> str:  # pragma: no cover - repr convenience
        return (
            f"state {self.state.label()}: VDD droop {self.vdd_droop_mv:.2f} mV "
            f"+ VSS bounce {self.vss_bounce_mv:.2f} mV = "
            f"{self.total_noise_mv:.2f} mV window"
        )


def vss_config(config: PDNConfig, usage_ratio: float = 1.0) -> PDNConfig:
    """The complementary VSS configuration.

    DRAM PDNs interleave VDD and VSS straps, so the default ratio of 1.0
    mirrors the VDD network exactly; a different ratio models asymmetric
    strap allocation (clamped to the legal Table 8 ranges).
    """
    if usage_ratio <= 0.0:
        raise ConfigurationError("usage ratio must be positive")

    def clamp(value: float, lo: float, hi: float) -> float:
        return min(max(value, lo), hi)

    return config.with_options(
        m2_usage=clamp(config.m2_usage * usage_ratio, 0.10, 0.20),
        m3_usage=clamp(config.m3_usage * usage_ratio, 0.10, 0.40),
    )


class GroundNetAnalysis:
    """Paired VDD / VSS solves for one design."""

    def __init__(
        self,
        spec: StackSpec,
        config: PDNConfig,
        tech: TechConstants = DEFAULT_TECH,
        pitch: Optional[float] = None,
        vss_usage_ratio: float = 1.0,
    ) -> None:
        self.vdd_stack: PDNStack = build_stack(spec, config, tech=tech, pitch=pitch)
        self.vss_stack: PDNStack = build_stack(
            spec, vss_config(config, vss_usage_ratio), tech=tech, pitch=pitch
        )

    def solve_state(self, state: MemoryState) -> SupplyWindowResult:
        """VDD droop and VSS bounce of one memory state.

        Every device sinks into VSS the current it draws from VDD, so the
        bounce solve uses the same injection pattern on the complementary
        network.
        """
        return SupplyWindowResult(
            state=state,
            vdd_droop_mv=self.vdd_stack.dram_max_mv(state),
            vss_bounce_mv=self.vss_stack.dram_max_mv(state),
        )
