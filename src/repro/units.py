"""Unit conventions and conversion helpers.

The library uses a single consistent internal unit system so that numeric
values can be passed between modules without ambiguity:

========================  =========================
Quantity                  Internal unit
========================  =========================
Length                    millimetre (mm)
Resistance                ohm
Sheet resistance          ohm / square
Conductance               siemens
Voltage                   volt
Current                   ampere
Power                     watt
Time (device)             second
Time (controller)         DRAM clock cycle
========================  =========================

Helpers below convert common engineering units (micrometres, millivolts,
milliwatts, ...) into the internal system and back.  They are trivial by
design: the point is that call sites read ``um(25)`` instead of a bare
``0.025`` whose unit a reviewer has to guess.
"""

from __future__ import annotations

# ---------------------------------------------------------------------------
# Length
# ---------------------------------------------------------------------------

MM_PER_UM = 1e-3
MM_PER_CM = 10.0


def um(value: float) -> float:
    """Convert micrometres to the internal length unit (mm)."""
    return value * MM_PER_UM


def mm(value: float) -> float:
    """Identity helper so call sites can spell the unit explicitly."""
    return float(value)


def cm(value: float) -> float:
    """Convert centimetres to mm."""
    return value * MM_PER_CM


def to_um(value_mm: float) -> float:
    """Convert an internal length (mm) to micrometres."""
    return value_mm / MM_PER_UM


# ---------------------------------------------------------------------------
# Electrical
# ---------------------------------------------------------------------------


def mohm(value: float) -> float:
    """Convert milliohms to ohms."""
    return value * 1e-3


def ohm(value: float) -> float:
    """Identity helper for ohms."""
    return float(value)


def mv(value: float) -> float:
    """Convert millivolts to volts."""
    return value * 1e-3


def to_mv(value_v: float) -> float:
    """Convert volts to millivolts."""
    return value_v * 1e3


def ma(value: float) -> float:
    """Convert milliamperes to amperes."""
    return value * 1e-3


def to_ma(value_a: float) -> float:
    """Convert amperes to milliamperes."""
    return value_a * 1e3


def mw(value: float) -> float:
    """Convert milliwatts to watts."""
    return value * 1e-3


def to_mw(value_w: float) -> float:
    """Convert watts to milliwatts."""
    return value_w * 1e3


# ---------------------------------------------------------------------------
# Time
# ---------------------------------------------------------------------------


def ns(value: float) -> float:
    """Convert nanoseconds to seconds."""
    return value * 1e-9


def us(value: float) -> float:
    """Convert microseconds to seconds."""
    return value * 1e-6


def to_us(value_s: float) -> float:
    """Convert seconds to microseconds."""
    return value_s * 1e6


def mhz(value: float) -> float:
    """Convert megahertz to hertz."""
    return value * 1e6
