"""Points and axis-aligned rectangles.

Everything in the library lives on a 2D plane per die; the third dimension
is expressed as discrete layers (metal layers, dies).  ``Rect`` is the
workhorse: floorplan blocks, TSV keep-out zones, power-map regions and PG
ring extents are all rectangles.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator, Tuple


@dataclass(frozen=True)
class Point:
    """A point in die coordinates (mm)."""

    x: float
    y: float

    def distance_to(self, other: "Point") -> float:
        """Euclidean distance to ``other`` in mm."""
        return math.hypot(self.x - other.x, self.y - other.y)

    def manhattan_to(self, other: "Point") -> float:
        """Manhattan (L1) distance to ``other`` in mm."""
        return abs(self.x - other.x) + abs(self.y - other.y)

    def translated(self, dx: float, dy: float) -> "Point":
        """Return a copy shifted by (dx, dy)."""
        return Point(self.x + dx, self.y + dy)

    def mirrored_x(self, axis_x: float) -> "Point":
        """Return the reflection of this point across the vertical line x=axis_x.

        Used to model F2F bonding, where one die of a pair is mirrored so
        that its face metals align with its partner's.
        """
        return Point(2.0 * axis_x - self.x, self.y)


@dataclass(frozen=True)
class Rect:
    """An axis-aligned rectangle [x0, x1] x [y0, y1] in mm.

    Degenerate (zero-area) rectangles are permitted: they model point-like
    objects such as a single TSV landing pad on a coarse grid.
    """

    x0: float
    y0: float
    x1: float
    y1: float

    def __post_init__(self) -> None:
        if self.x1 < self.x0 or self.y1 < self.y0:
            raise ValueError(
                f"Rect corners out of order: ({self.x0}, {self.y0}) .. "
                f"({self.x1}, {self.y1})"
            )

    @classmethod
    def from_size(cls, x0: float, y0: float, width: float, height: float) -> "Rect":
        """Build a rectangle from its lower-left corner and size."""
        return cls(x0, y0, x0 + width, y0 + height)

    @classmethod
    def centered(cls, center: Point, width: float, height: float) -> "Rect":
        """Build a rectangle centered on ``center``."""
        return cls(
            center.x - width / 2.0,
            center.y - height / 2.0,
            center.x + width / 2.0,
            center.y + height / 2.0,
        )

    @property
    def width(self) -> float:
        return self.x1 - self.x0

    @property
    def height(self) -> float:
        return self.y1 - self.y0

    @property
    def area(self) -> float:
        return self.width * self.height

    @property
    def center(self) -> Point:
        return Point((self.x0 + self.x1) / 2.0, (self.y0 + self.y1) / 2.0)

    def contains(self, p: Point, tol: float = 0.0) -> bool:
        """True if ``p`` lies inside (or within ``tol`` of) this rectangle."""
        return (
            self.x0 - tol <= p.x <= self.x1 + tol
            and self.y0 - tol <= p.y <= self.y1 + tol
        )

    def intersects(self, other: "Rect") -> bool:
        """True if the two rectangles overlap (shared edges count)."""
        return not (
            other.x0 > self.x1
            or other.x1 < self.x0
            or other.y0 > self.y1
            or other.y1 < self.y0
        )

    def intersection(self, other: "Rect") -> "Rect | None":
        """The overlapping rectangle, or None when disjoint."""
        if not self.intersects(other):
            return None
        return Rect(
            max(self.x0, other.x0),
            max(self.y0, other.y0),
            min(self.x1, other.x1),
            min(self.y1, other.y1),
        )

    def overlap_area(self, other: "Rect") -> float:
        """Area of the overlap with ``other`` (0.0 when disjoint)."""
        inter = self.intersection(other)
        return 0.0 if inter is None else inter.area

    def translated(self, dx: float, dy: float) -> "Rect":
        """Return a copy shifted by (dx, dy)."""
        return Rect(self.x0 + dx, self.y0 + dy, self.x1 + dx, self.y1 + dy)

    def mirrored_x(self, axis_x: float) -> "Rect":
        """Reflect across the vertical line x=axis_x (see Point.mirrored_x)."""
        return Rect(
            2.0 * axis_x - self.x1, self.y0, 2.0 * axis_x - self.x0, self.y1
        )

    def inset(self, margin: float) -> "Rect":
        """Shrink the rectangle by ``margin`` on every side.

        Raises ValueError if the margin would invert the rectangle.
        """
        return Rect(
            self.x0 + margin, self.y0 + margin, self.x1 - margin, self.y1 - margin
        )

    def corners(self) -> Tuple[Point, Point, Point, Point]:
        """The four corners, counter-clockwise from lower-left."""
        return (
            Point(self.x0, self.y0),
            Point(self.x1, self.y0),
            Point(self.x1, self.y1),
            Point(self.x0, self.y1),
        )

    def edge_points(self, spacing: float) -> Iterator[Point]:
        """Yield points along the rectangle boundary at roughly ``spacing``.

        Used to place edge TSVs and PG-ring taps.  The walk starts at the
        lower-left corner and proceeds counter-clockwise; the last segment
        may be shorter than ``spacing``.
        """
        if spacing <= 0.0:
            raise ValueError("spacing must be positive")
        perimeter = 2.0 * (self.width + self.height)
        if perimeter == 0.0:
            yield Point(self.x0, self.y0)
            return
        n = max(1, int(round(perimeter / spacing)))
        step = perimeter / n
        for i in range(n):
            yield self._point_at_perimeter(i * step)

    def _point_at_perimeter(self, s: float) -> Point:
        """The point a distance ``s`` along the boundary, counter-clockwise."""
        w, h = self.width, self.height
        s = s % (2.0 * (w + h)) if (w + h) > 0 else 0.0
        if s <= w:
            return Point(self.x0 + s, self.y0)
        s -= w
        if s <= h:
            return Point(self.x1, self.y0 + s)
        s -= h
        if s <= w:
            return Point(self.x1 - s, self.y1)
        s -= w
        return Point(self.x0, self.y1 - s)
