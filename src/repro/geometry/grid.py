"""Uniform 2D grids used to discretize dies into mesh nodes.

A :class:`Grid2D` covers a die outline with ``nx`` x ``ny`` nodes placed at
cell centers.  Meshes, power maps and TSV snap logic all share this
discretization so that node indices line up between layers and dies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Tuple

import numpy as np

from repro.geometry.primitives import Point, Rect


@dataclass(frozen=True)
class Grid2D:
    """A uniform grid of ``nx`` x ``ny`` nodes over ``outline``.

    Nodes sit at cell centers: node (i, j) is at
    ``(x0 + (i + 0.5) * dx, y0 + (j + 0.5) * dy)``.  Index ``i`` runs along
    x (0 .. nx-1), ``j`` along y (0 .. ny-1).  The flat node id is
    ``j * nx + i`` (row-major in y), matching how conductance matrices are
    assembled in :mod:`repro.rmesh`.
    """

    outline: Rect
    nx: int
    ny: int

    def __post_init__(self) -> None:
        if self.nx < 1 or self.ny < 1:
            raise ValueError(f"grid must have at least 1x1 nodes, got {self.nx}x{self.ny}")
        if self.outline.width <= 0.0 or self.outline.height <= 0.0:
            raise ValueError("grid outline must have positive area")

    @classmethod
    def from_pitch(cls, outline: Rect, pitch: float) -> "Grid2D":
        """Build a grid with node spacing as close to ``pitch`` (mm) as possible.

        At least 2 nodes are used per dimension so every die has a
        non-degenerate mesh.
        """
        if pitch <= 0.0:
            raise ValueError("pitch must be positive")
        nx = max(2, int(round(outline.width / pitch)))
        ny = max(2, int(round(outline.height / pitch)))
        return cls(outline, nx, ny)

    @property
    def dx(self) -> float:
        """Cell width in mm."""
        return self.outline.width / self.nx

    @property
    def dy(self) -> float:
        """Cell height in mm."""
        return self.outline.height / self.ny

    @property
    def num_nodes(self) -> int:
        return self.nx * self.ny

    def node_id(self, i: int, j: int) -> int:
        """Flat node id for grid index (i, j)."""
        if not (0 <= i < self.nx and 0 <= j < self.ny):
            raise IndexError(f"grid index ({i}, {j}) out of range {self.nx}x{self.ny}")
        return j * self.nx + i

    def node_index(self, node: int) -> Tuple[int, int]:
        """Inverse of :meth:`node_id`."""
        if not (0 <= node < self.num_nodes):
            raise IndexError(f"node id {node} out of range {self.num_nodes}")
        return node % self.nx, node // self.nx

    def node_point(self, i: int, j: int) -> Point:
        """Physical location (cell center) of node (i, j)."""
        return Point(
            self.outline.x0 + (i + 0.5) * self.dx,
            self.outline.y0 + (j + 0.5) * self.dy,
        )

    def nearest_node(self, p: Point) -> Tuple[int, int]:
        """Grid index of the node nearest to ``p`` (clamped to the grid)."""
        i = int((p.x - self.outline.x0) / self.dx)
        j = int((p.y - self.outline.y0) / self.dy)
        return min(max(i, 0), self.nx - 1), min(max(j, 0), self.ny - 1)

    def nodes_in_rect(self, rect: Rect) -> List[Tuple[int, int]]:
        """All grid indices whose node centers fall inside ``rect``."""
        result: List[Tuple[int, int]] = []
        for i, j in self.iter_indices():
            if rect.contains(self.node_point(i, j)):
                result.append((i, j))
        return result

    def cell_rect(self, i: int, j: int) -> Rect:
        """The rectangle of cell (i, j)."""
        return Rect(
            self.outline.x0 + i * self.dx,
            self.outline.y0 + j * self.dy,
            self.outline.x0 + (i + 1) * self.dx,
            self.outline.y0 + (j + 1) * self.dy,
        )

    def iter_indices(self) -> Iterator[Tuple[int, int]]:
        """Iterate over all (i, j) indices in flat-id order."""
        for j in range(self.ny):
            for i in range(self.nx):
                yield i, j

    def coverage_fractions(self, rect: Rect) -> np.ndarray:
        """Fraction of each grid cell's area covered by ``rect``.

        Returns an (ny, nx) array in [0, 1].  This is the rasterization
        primitive used to spread a block's power over mesh nodes
        proportionally to geometric overlap, which keeps power totals exact
        regardless of grid resolution.
        """
        frac = np.zeros((self.ny, self.nx))
        # Only visit cells that can overlap, for speed on fine grids.
        i_lo = max(0, int((rect.x0 - self.outline.x0) / self.dx) - 1)
        i_hi = min(self.nx, int((rect.x1 - self.outline.x0) / self.dx) + 2)
        j_lo = max(0, int((rect.y0 - self.outline.y0) / self.dy) - 1)
        j_hi = min(self.ny, int((rect.y1 - self.outline.y0) / self.dy) + 2)
        cell_area = self.dx * self.dy
        for j in range(j_lo, j_hi):
            for i in range(i_lo, i_hi):
                frac[j, i] = self.cell_rect(i, j).overlap_area(rect) / cell_area
        return frac
