"""Basic 2D geometry primitives used by floorplans, PDN grids and meshes."""

from repro.geometry.primitives import Point, Rect
from repro.geometry.grid import Grid2D

__all__ = ["Point", "Rect", "Grid2D"]
