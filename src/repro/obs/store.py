"""Append-only run-history store with run-vs-run drift attribution.

Every manifest, metric snapshot, span digest, convergence trace, and
``BENCH_*.json`` record answers "what did *this* run do"; none of them
answer "how does it compare to the last hundred".  This module is that
longitudinal memory: a JSONL index (one normalized record per line,
append-only, atomic at line granularity) plus a content-addressed plan
directory, both under ``benchmarks/results/history/`` (git-ignored,
like every generated artifact).

A stored record is keyed by run id (content hash), git sha, and the set
of plan hashes the run touched.  Plan *bodies* are stored once per hash
under ``plans/<hash>.json``, so a diff between two historical runs can
render a real :class:`repro.pdn.plan.PlanDiff` -- the ops that changed
-- instead of only reporting that hashes differ.

Drift between two runs is *attributed*, not just detected, following
the measured-vs-modeled discipline of Ghose et al. (arXiv:1807.05102):

``structural``
    The runs solved different structures (plan-hash sets differ).  The
    evidence is the plan diff itself; comparing their IR numbers as if
    they were the same experiment would be meaningless.

``numerical``
    Same structures, different numbers: IR-drop extrema moved, solver
    residual curves converge to different floors (a perturbed ``rtol``
    shows up here), or iteration counts shifted.  The evidence is the
    metric and residual-curve deltas.

``none``
    Same structures, numbers within tolerance -- the CI smoke gate
    (``repro3d obs diff --gate``) requires exactly this for a run
    diffed against a repeat of itself.

The CLI front end is ``repro3d obs`` (list/show/diff/attribute/export);
see :mod:`repro.cli`.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Sequence

from repro.errors import ConfigurationError
from repro.obs import metrics as _metrics
from repro.obs.atomic import atomic_write_text
from repro.obs.log import get_logger

_log = get_logger("obs.store")

#: Bump when the normalized record layout changes incompatibly.
STORE_SCHEMA_VERSION = 1

#: Environment override for the store location.
HISTORY_DIR_ENV = "REPRO_HISTORY_DIR"

#: Index file name inside the store root.
INDEX_NAME = "runs.jsonl"

#: Max IR-drop delta (mV) two same-structure runs may differ by before
#: the attribution flips to numerical drift.  The golden IR baseline is
#: bitwise, so any real change lands far above this.
IR_DRIFT_MV = 1e-6

#: Residual-floor ratio between matched convergence-trace groups above
#: which the attribution flips to numerical drift (a one-notch rtol
#: perturbation moves the floor by orders of magnitude).
RESIDUAL_DRIFT_RATIO = 10.0

#: Relative iteration-count change between matched trace groups above
#: which numerical drift is reported.
ITERATION_DRIFT_REL = 0.25


def default_history_dir() -> Path:
    """Store root: ``$REPRO_HISTORY_DIR`` > ``benchmarks/results/history``."""
    env = os.environ.get(HISTORY_DIR_ENV)
    if env:
        return Path(env)
    try:
        # Lazy: obs must stay importable without the bench package.
        from repro.bench.registry import benchmarks_dir

        return benchmarks_dir() / "results" / "history"
    except Exception:  # pragma: no cover - outside a repo checkout
        return Path.cwd() / "benchmarks" / "results" / "history"


def _strip_samples(histograms: Mapping[str, object]) -> Dict[str, object]:
    """Histogram stats without the raw sample reservoirs (index stays lean)."""
    out: Dict[str, object] = {}
    for name, h in histograms.items():
        if isinstance(h, Mapping):
            out[name] = {k: v for k, v in h.items() if k != "samples"}
    return out


def normalize_manifest(
    data: Mapping[str, object], source=None, kind: str = "experiment"
) -> Dict[str, object]:
    """Flatten a run manifest into the store's normalized record shape."""
    git = data.get("git") or {}
    metrics = data.get("metrics") or {}
    if not isinstance(git, Mapping):
        git = {}
    if not isinstance(metrics, Mapping):
        metrics = {}
    return {
        "schema_version": STORE_SCHEMA_VERSION,
        "kind": kind,
        "experiment_id": str(data.get("experiment_id", "")),
        "title": str(data.get("title", "")),
        "created": str(data.get("created", "")),
        "duration_s": float(data.get("duration_s", 0.0) or 0.0),
        "sha": str(git.get("sha", "unknown")),
        "dirty": bool(git.get("dirty")),
        "config_hash": data.get("config_hash"),
        "workers": int(data.get("workers", 1) or 1),
        "plans": dict(data.get("plans") or {}),
        "counters": dict(metrics.get("counters") or {}),
        "gauges": dict(metrics.get("gauges") or {}),
        "histograms": _strip_samples(metrics.get("histograms") or {}),
        "trace": dict(data.get("trace") or {}),
        "profile": dict(data.get("profile") or {}),
        "convergence": list(data.get("convergence") or []),
        "attribution": dict(data.get("attribution") or {}),
        "benches": [],
        "source": str(source) if source is not None else None,
    }


def normalize_bench_record(
    data: Mapping[str, object], source=None
) -> Dict[str, object]:
    """Flatten a ``BENCH_*.json`` suite record into the store shape."""
    manifest = data.get("manifest") or {}
    record = normalize_manifest(
        manifest if isinstance(manifest, Mapping) else {},
        source=source,
        kind="bench_suite",
    )
    git = data.get("git") or {}
    record["experiment_id"] = str(data.get("suite", "bench"))
    record["title"] = (
        f"bench suite ({'smoke' if data.get('smoke') else 'full'}, "
        f"repeats={data.get('repeats', '?')})"
    )
    record["created"] = str(data.get("created", record["created"]))
    if isinstance(git, Mapping) and git.get("sha"):
        record["sha"] = str(git["sha"])
        record["dirty"] = bool(git.get("dirty"))
    record["workers"] = int(data.get("workers", record["workers"]) or 1)
    plans = dict(record["plans"])
    benches: List[Dict[str, object]] = []
    for entry in data.get("benchmarks") or []:
        if not isinstance(entry, Mapping):
            continue
        hashes = [str(h) for h in entry.get("plan_hashes") or []]
        benches.append(
            {
                "name": str(entry.get("name", "")),
                "status": str(entry.get("status", "")),
                "wall_s": entry.get("wall_s"),
                "max_ir_mv": entry.get("max_ir_mv"),
                "plan_hashes": hashes,
            }
        )
        for h in hashes:
            plans.setdefault(h, str(entry.get("name", h)))
    record["benches"] = benches
    record["plans"] = plans
    return record


def _run_id(record: Mapping[str, object]) -> str:
    """Content address of a normalized record (12 hex chars)."""
    text = json.dumps(record, sort_keys=True, separators=(",", ":"), default=str)
    return hashlib.sha256(text.encode()).hexdigest()[:12]


class RunHistoryStore:
    """The append-only run index plus its content-addressed plan bodies."""

    def __init__(self, root=None) -> None:
        self.root = Path(root) if root is not None else default_history_dir()
        self.index_path = self.root / INDEX_NAME
        self.plans_dir = self.root / "plans"

    # -- writing --------------------------------------------------------------

    def append(self, record: Dict[str, object]) -> str:
        """Append one normalized record; returns its run id.

        The id is the content hash of the record *without* the id field,
        so re-ingesting identical content yields the same id (and is
        skipped).  The JSONL line is written with a single ``write`` +
        flush -- appends from concurrent runs interleave at line
        granularity, never mid-line, on POSIX append-mode files.
        """
        record = dict(record)
        record.pop("run_id", None)
        run_id = _run_id(record)
        if any(r.get("run_id") == run_id for r in self.runs()):
            _log.debug("run %s already in history; skipping", run_id)
            return run_id
        record["run_id"] = run_id
        self.root.mkdir(parents=True, exist_ok=True)
        line = json.dumps(record, sort_keys=True, default=str) + "\n"
        with open(self.index_path, "a", encoding="utf-8") as fh:
            if self._tail_missing_newline():
                # A killed writer left a truncated trailing line; start a
                # fresh one so this record stays parseable (the partial
                # line is skipped -- with a warning -- on read).
                fh.write("\n")
            fh.write(line)
            fh.flush()
        return run_id

    def _tail_missing_newline(self) -> bool:
        """Whether the index ends mid-line (killed-process artifact)."""
        try:
            size = self.index_path.stat().st_size
        except OSError:
            return False
        if size == 0:
            return False
        with open(self.index_path, "rb") as fh:
            fh.seek(-1, os.SEEK_END)
            return fh.read(1) != b"\n"

    def ingest_manifest(self, manifest, source=None, kind: str = "experiment") -> str:
        """Ingest a :class:`RunManifest` (or its dict form); returns run id."""
        data = manifest.to_dict() if hasattr(manifest, "to_dict") else dict(manifest)
        return self.append(normalize_manifest(data, source=source, kind=kind))

    def ingest_bench_record(self, data: Mapping[str, object], source=None) -> str:
        """Ingest a ``BENCH_*.json`` suite record dict; returns run id."""
        return self.append(normalize_bench_record(data, source=source))

    def ingest_path(self, path) -> str:
        """Ingest a JSON artifact, sniffing manifest vs. bench record."""
        path = Path(path)
        try:
            data = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            raise ConfigurationError(f"cannot ingest {path}: {exc}")
        if not isinstance(data, Mapping):
            raise ConfigurationError(f"{path} is not a JSON object")
        if "benchmarks" in data and "suite" in data:
            return self.ingest_bench_record(data, source=path)
        if "experiment_id" in data:
            return self.ingest_manifest(data, source=path)
        raise ConfigurationError(
            f"{path} is neither a run manifest nor a bench suite record"
        )

    def ingest_live_run(self, manifest, source=None, kind: str = "cli") -> str:
        """Ingest the *current process's* run: manifest plus live buffers.

        Beyond the manifest content, this persists the plan bodies of
        every plan the process built (content-addressed, so repeats are
        free) and backfills profile/convergence from the live buffers
        when the manifest predates them.
        """
        data = manifest.to_dict() if hasattr(manifest, "to_dict") else dict(manifest)
        record = normalize_manifest(data, source=source, kind=kind)
        if not record["profile"]:
            from repro.obs import profile as _profile

            if _profile.sample_count():
                record["profile"] = _profile.summary()
        if not record["convergence"]:
            from repro.rmesh import backends as _backends

            record["convergence"] = _backends.export_traces()
        # Persist the bodies of every plan this process actually built.
        try:
            from repro.pdn.plan import observed_plan_objects

            for plan_hash, plan in observed_plan_objects().items():
                if plan_hash in record["plans"]:
                    self.store_plan(plan)
        except ImportError:  # pragma: no cover - pdn always present in-tree
            pass
        return self.append(record)

    def store_plan(self, plan) -> Path:
        """Persist one plan body content-addressed; idempotent."""
        self.plans_dir.mkdir(parents=True, exist_ok=True)
        path = self.plans_dir / f"{plan.plan_hash}.json"
        if not path.exists():
            atomic_write_text(path, plan.to_json())
        return path

    # -- reading --------------------------------------------------------------

    def runs(self) -> List[Dict[str, object]]:
        """All stored records, oldest first; corrupt lines are skipped."""
        if not self.index_path.exists():
            return []
        out: List[Dict[str, object]] = []
        for lineno, line in enumerate(
            self.index_path.read_text().splitlines(), start=1
        ):
            line = line.strip()
            if not line:
                continue
            try:
                data = json.loads(line)
            except json.JSONDecodeError as exc:
                # Truncated trailing line from a killed process (or a
                # corrupted interior one): skip it with a structured
                # warning -- `repro3d obs list/diff` must keep working
                # on the surviving records.
                _metrics.inc("obs.store.corrupt_lines")
                _log.warning(
                    "skipping corrupt history line %d in %s",
                    lineno,
                    self.index_path,
                    extra={
                        "fields": {
                            "path": str(self.index_path),
                            "line": lineno,
                            "error": str(exc),
                        }
                    },
                )
                continue
            if isinstance(data, dict):
                out.append(data)
        return out

    def resolve(self, ref: str) -> Dict[str, object]:
        """A record by reference: ``last``, ``last~N``, or a run-id prefix."""
        runs = self.runs()
        if not runs:
            raise ConfigurationError(
                f"run history at {self.index_path} is empty; ingest a run "
                "first (repro3d obs ingest <manifest>, or --history)"
            )
        ref = ref.strip()
        if ref == "last":
            return runs[-1]
        if ref.startswith("last~"):
            try:
                back = int(ref[len("last~"):])
            except ValueError:
                raise ConfigurationError(f"bad run reference {ref!r}")
            if back < 0 or back >= len(runs):
                raise ConfigurationError(
                    f"{ref!r} is out of range: history holds {len(runs)} runs"
                )
            return runs[-1 - back]
        matches = [
            r for r in runs if str(r.get("run_id", "")).startswith(ref)
        ]
        if not matches:
            raise ConfigurationError(
                f"no stored run matches {ref!r}; see repro3d obs list"
            )
        # A full-id (or unambiguous-prefix) match wins; re-ingested ids
        # are identical records, so taking the newest is safe either way.
        return matches[-1]

    def load_plan(self, plan_hash: str):
        """The stored :class:`StackPlan` body for a hash, or None."""
        path = self.plans_dir / f"{plan_hash}.json"
        if not path.exists():
            return None
        from repro.pdn.plan import StackPlan

        try:
            return StackPlan.from_json(path.read_text())
        except ConfigurationError:  # pragma: no cover - corrupted body
            _log.warning("stored plan %s failed validation", plan_hash)
            return None


# ---------------------------------------------------------------------------
# Run-vs-run deltas and drift attribution
# ---------------------------------------------------------------------------


@dataclass
class RunDelta:
    """The comparison of two stored runs, drift attributed."""

    a: Dict[str, object]
    b: Dict[str, object]
    #: ``none`` | ``structural`` | ``numerical``
    drift: str = "none"
    #: Human-readable evidence lines for the verdict.
    evidence: List[str] = field(default_factory=list)
    #: Rendered :class:`PlanDiff` text per benchmark (structural drift).
    plan_diffs: List[str] = field(default_factory=list)
    #: ``(metric, a value, b value)`` rows that moved.
    metric_deltas: List[tuple] = field(default_factory=list)
    #: Per trace-group residual comparisons (numerical drift evidence).
    residual_deltas: List[Dict[str, object]] = field(default_factory=list)
    #: One-line physics-axis status (``attribution: ...``); always set.
    attribution_note: str = ""
    #: Per-benchmark component rows that moved (physics-axis evidence):
    #: ``{benchmark, component, a_mv, b_mv}``.
    attribution_deltas: List[Dict[str, object]] = field(default_factory=list)


def _ir_extremum(record: Mapping[str, object]) -> Optional[float]:
    """Worst DRAM IR drop (mV) a record observed, from any of its carriers."""
    hists = record.get("histograms") or {}
    h = hists.get("ir.dram_max_mv") if isinstance(hists, Mapping) else None
    if isinstance(h, Mapping) and isinstance(h.get("max"), (int, float)):
        return float(h["max"])
    gauges = record.get("gauges") or {}
    g = gauges.get("ir.dram_max_mv") if isinstance(gauges, Mapping) else None
    if isinstance(g, (int, float)):
        return float(g)
    worst: Optional[float] = None
    for bench in record.get("benches") or []:
        v = bench.get("max_ir_mv") if isinstance(bench, Mapping) else None
        if isinstance(v, (int, float)):
            worst = v if worst is None else max(worst, v)
    return worst


def _median(values: Sequence[float]) -> float:
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return 0.5 * (ordered[mid - 1] + ordered[mid])


def _trace_groups(
    record: Mapping[str, object],
) -> Dict[tuple, Dict[str, float]]:
    """Convergence traces grouped by (backend, preconditioner, nodes).

    Each group reduces to its median final residual, median iteration
    count, and the rtol it ran at -- the comparable fingerprint of "how
    did solves of this system behave".
    """
    groups: Dict[tuple, Dict[str, List[float]]] = {}
    for t in record.get("convergence") or []:
        if not isinstance(t, Mapping):
            continue
        key = (t.get("backend"), t.get("preconditioner"), t.get("nodes"))
        g = groups.setdefault(
            key, {"final": [], "iterations": [], "rtol": []}
        )
        if isinstance(t.get("final_residual"), (int, float)):
            g["final"].append(float(t["final_residual"]))
        if isinstance(t.get("iterations"), (int, float)):
            g["iterations"].append(float(t["iterations"]))
        if isinstance(t.get("rtol"), (int, float)):
            g["rtol"].append(float(t["rtol"]))
    out: Dict[tuple, Dict[str, float]] = {}
    for key, g in groups.items():
        if not g["final"]:
            continue
        out[key] = {
            "final": _median(g["final"]),
            "iterations": _median(g["iterations"]) if g["iterations"] else 0.0,
            "rtol": _median(g["rtol"]) if g["rtol"] else 0.0,
            "count": float(len(g["final"])),
        }
    return out


def _structural_evidence(
    a: Mapping[str, object],
    b: Mapping[str, object],
    store: Optional[RunHistoryStore],
    delta: RunDelta,
) -> None:
    """Fill plan-diff evidence for runs whose plan-hash sets differ."""
    plans_a = dict(a.get("plans") or {})
    plans_b = dict(b.get("plans") or {})
    gone = sorted(set(plans_a) - set(plans_b))
    new = sorted(set(plans_b) - set(plans_a))
    delta.evidence.append(
        f"plan-hash sets differ: -{len(gone)} +{len(new)} "
        f"({len(set(plans_a) & set(plans_b))} shared)"
    )
    # Pair changed hashes by benchmark name and render real op diffs
    # when both bodies are stored; fall back to the hash listing.
    by_name_a = {name: h for h, name in plans_a.items()}
    by_name_b = {name: h for h, name in plans_b.items()}
    rendered = set()
    if store is not None:
        from repro.pdn.plan import PlanDiff

        for name in sorted(set(by_name_a) & set(by_name_b)):
            ha, hb = by_name_a[name], by_name_b[name]
            if ha == hb:
                continue
            pa, pb = store.load_plan(ha), store.load_plan(hb)
            if pa is None or pb is None:
                continue
            diff = PlanDiff.between(pa, pb)
            delta.plan_diffs.append(f"[{name}]\n{diff.describe()}")
            rendered.update((ha, hb))
    for h in gone:
        if h not in rendered:
            delta.evidence.append(f"  - plan {h} ({plans_a[h]}) no longer touched")
    for h in new:
        if h not in rendered:
            delta.evidence.append(f"  + plan {h} ({plans_b[h]}) newly touched")


def _numerical_evidence(
    a: Mapping[str, object], b: Mapping[str, object], delta: RunDelta
) -> bool:
    """Fill metric/residual evidence; returns True when drift was found."""
    found = False
    ir_a, ir_b = _ir_extremum(a), _ir_extremum(b)
    if ir_a is not None and ir_b is not None:
        if abs(ir_a - ir_b) > IR_DRIFT_MV:
            found = True
            delta.evidence.append(
                f"worst DRAM IR drop moved: {ir_a:.6f} -> {ir_b:.6f} mV"
            )
            delta.metric_deltas.append(("ir.dram_max_mv (max)", ir_a, ir_b))
    groups_a, groups_b = _trace_groups(a), _trace_groups(b)
    for key in sorted(
        set(groups_a) & set(groups_b), key=lambda k: tuple(map(str, k))
    ):
        ga, gb = groups_a[key], groups_b[key]
        label = f"{key[0]}/{key[1]}@{key[2]} nodes"
        row: Dict[str, object] = {
            "group": label,
            "final_a": ga["final"],
            "final_b": gb["final"],
            "iterations_a": ga["iterations"],
            "iterations_b": gb["iterations"],
            "rtol_a": ga["rtol"],
            "rtol_b": gb["rtol"],
        }
        drifted = False
        lo, hi = sorted((ga["final"], gb["final"]))
        if lo > 0 and hi / lo > RESIDUAL_DRIFT_RATIO:
            drifted = True
            delta.evidence.append(
                f"residual floor of {label} moved {hi / lo:.1e}x: "
                f"{ga['final']:.3e} -> {gb['final']:.3e}"
            )
        elif lo == 0 and hi > 0:  # pragma: no cover - exact-zero floor
            drifted = True
            delta.evidence.append(
                f"residual floor of {label}: {ga['final']:.3e} -> {gb['final']:.3e}"
            )
        base = max(ga["iterations"], 1.0)
        if abs(gb["iterations"] - ga["iterations"]) / base > ITERATION_DRIFT_REL:
            drifted = True
            delta.evidence.append(
                f"median iterations of {label}: "
                f"{ga['iterations']:.0f} -> {gb['iterations']:.0f}"
            )
        if ga["rtol"] != gb["rtol"] and ga["rtol"] and gb["rtol"]:
            drifted = True
            delta.evidence.append(
                f"solver rtol of {label}: {ga['rtol']:.1e} -> {gb['rtol']:.1e}"
            )
        if drifted:
            found = True
            delta.residual_deltas.append(row)
    for gauge in ("solver.residual_norm",):
        ga_ = (a.get("gauges") or {}).get(gauge)
        gb_ = (b.get("gauges") or {}).get(gauge)
        if isinstance(ga_, (int, float)) and isinstance(gb_, (int, float)):
            lo, hi = sorted((float(ga_), float(gb_)))
            if lo > 0 and hi / lo > RESIDUAL_DRIFT_RATIO:
                found = True
                delta.evidence.append(
                    f"{gauge} gauge moved {hi / lo:.1e}x: {ga_:.3e} -> {gb_:.3e}"
                )
                delta.metric_deltas.append((gauge, float(ga_), float(gb_)))
    return found


def _attribution_evidence(
    a: Mapping[str, object], b: Mapping[str, object], delta: RunDelta
) -> bool:
    """Fill the physics axis: compare worst-drop attribution summaries.

    Records ingested before attribution existed lack the key entirely --
    those degrade to an explicit ``attribution: n/a`` note instead of a
    comparison (never a crash).  Returns True when the decomposition
    moved between two comparable records.
    """
    missing = [
        str(r.get("run_id", "?"))
        for r in (a, b)
        if "attribution" not in r
    ]
    if missing:
        delta.attribution_note = (
            "attribution: n/a (run"
            + ("s" if len(missing) > 1 else "")
            + " "
            + ", ".join(f"`{rid}`" for rid in missing)
            + " predate"
            + ("" if len(missing) > 1 else "s")
            + " attribution records)"
        )
        return False
    attr_a = a.get("attribution") or {}
    attr_b = b.get("attribution") or {}
    if not isinstance(attr_a, Mapping) or not isinstance(attr_b, Mapping):
        delta.attribution_note = "attribution: n/a (malformed records)"
        return False
    if not attr_a or not attr_b:
        delta.attribution_note = (
            "attribution: none recorded (run the diagnostics via "
            "`repro3d explain --history`)"
        )
        return False
    shared = sorted(set(attr_a) & set(attr_b))
    if not shared:
        delta.attribution_note = (
            "attribution: no common benchmarks between the runs"
        )
        return False
    found = False
    for name in shared:
        sa, sb = attr_a[name], attr_b[name]
        if not isinstance(sa, Mapping) or not isinstance(sb, Mapping):
            continue
        comp_a = dict(sa.get("components_mv") or {})
        comp_b = dict(sb.get("components_mv") or {})
        for cat in sorted(set(comp_a) | set(comp_b)):
            va = float(comp_a.get(cat, 0.0) or 0.0)
            vb = float(comp_b.get(cat, 0.0) or 0.0)
            if abs(va - vb) > IR_DRIFT_MV:
                found = True
                delta.attribution_deltas.append(
                    {"benchmark": name, "component": cat, "a_mv": va, "b_mv": vb}
                )
        if sa.get("worst_layer") != sb.get("worst_layer"):
            found = True
            delta.evidence.append(
                f"worst-drop layer of {name} moved: "
                f"{sa.get('worst_layer')} -> {sb.get('worst_layer')}"
            )
    if found:
        moved = len(delta.attribution_deltas)
        delta.attribution_note = (
            f"attribution: drifted ({moved} component"
            f"{'s' if moved != 1 else ''} moved)"
        )
        delta.evidence.append(
            f"worst-drop decomposition moved across {moved} component"
            f"{'s' if moved != 1 else ''}"
        )
    else:
        delta.attribution_note = (
            f"attribution: unchanged across {len(shared)} benchmark"
            f"{'s' if len(shared) != 1 else ''}"
        )
    return found


def diff_runs(
    a: Mapping[str, object],
    b: Mapping[str, object],
    store: Optional[RunHistoryStore] = None,
) -> RunDelta:
    """Compare two stored records and attribute any drift."""
    delta = RunDelta(a=dict(a), b=dict(b))
    attribution_drift = _attribution_evidence(a, b, delta)
    plans_a, plans_b = set(a.get("plans") or {}), set(b.get("plans") or {})
    if plans_a != plans_b and (plans_a or plans_b):
        delta.drift = "structural"
        _structural_evidence(a, b, store, delta)
        return delta
    if _numerical_evidence(a, b, delta) or attribution_drift:
        delta.drift = "numerical"
    return delta


# ---------------------------------------------------------------------------
# Markdown rendering (the `repro3d obs` output surface)
# ---------------------------------------------------------------------------


def _describe_run(record: Mapping[str, object]) -> str:
    rid = record.get("run_id", "?")
    exp = record.get("experiment_id") or record.get("kind", "?")
    sha = str(record.get("sha", "unknown"))[:7]
    return f"`{rid}` ({exp} @ {sha})"


def run_summary_line(record: Mapping[str, object]) -> str:
    """One ``obs list`` table row for a record."""
    rid = record.get("run_id", "?")
    created = str(record.get("created", ""))[:19]
    kind = record.get("kind", "?")
    exp = record.get("experiment_id", "")
    sha = str(record.get("sha", "unknown"))[:7]
    plans = len(record.get("plans") or {})
    traces = len(record.get("convergence") or [])
    prof = (record.get("profile") or {}).get("samples", 0)
    dur = record.get("duration_s", 0.0)
    return (
        f"| {rid} | {created} | {kind} | {exp} | {sha} | {plans} "
        f"| {traces} | {prof} | {dur:.2f} |"
    )


def list_markdown(records: Sequence[Mapping[str, object]]) -> str:
    """The ``obs list`` table, newest last."""
    lines = [
        "| run | created | kind | experiment | sha | plans | traces "
        "| profile samples | duration s |",
        "|---|---|---|---|---|---|---|---|---|",
    ]
    lines.extend(run_summary_line(r) for r in records)
    return "\n".join(lines)


def show_markdown(record: Mapping[str, object]) -> str:
    """The ``obs show`` rendering of one record."""
    lines = [f"# run {record.get('run_id', '?')}", ""]
    for key in (
        "kind",
        "experiment_id",
        "title",
        "created",
        "sha",
        "dirty",
        "config_hash",
        "workers",
        "duration_s",
        "source",
    ):
        value = record.get(key)
        if value not in (None, ""):
            lines.append(f"- **{key}**: {value}")
    plans = record.get("plans") or {}
    if plans:
        lines.append(f"- **plans** ({len(plans)}):")
        for h in sorted(plans):
            lines.append(f"  - `{h}` {plans[h]}")
    profile = record.get("profile") or {}
    if profile.get("samples"):
        lines.append(
            f"- **profile**: {profile['samples']} samples, peak RSS "
            f"{profile.get('peak_rss_kb', '?')} KiB, CPU "
            f"{profile.get('cpu_s', '?')} s"
        )
    conv = record.get("convergence") or []
    if conv:
        lines.append(f"- **convergence traces**: {len(conv)}")
        for key, g in sorted(
            _trace_groups(record).items(), key=lambda kv: tuple(map(str, kv[0]))
        ):
            lines.append(
                f"  - {key[0]}/{key[1]}@{key[2]} nodes: {g['count']:.0f} "
                f"traces, median {g['iterations']:.0f} iters to "
                f"{g['final']:.3e} (rtol {g['rtol']:.1e})"
            )
    benches = record.get("benches") or []
    if benches:
        lines.append(f"- **benches** ({len(benches)}):")
        for bench in benches:
            lines.append(
                f"  - {bench.get('name')}: {bench.get('status')}, "
                f"{bench.get('wall_s')} s"
            )
    trace = record.get("trace") or {}
    roots = trace.get("roots") or []
    if roots:
        lines.append(f"- **trace**: {trace.get('num_spans', 0)} spans; roots:")
        for r in roots[:8]:
            lines.append(
                f"  - {r.get('name')}: {float(r.get('dur_us', 0.0)) / 1e6:.3f} s"
            )
    return "\n".join(lines)


def delta_markdown(delta: RunDelta) -> str:
    """The ``obs diff`` / ``obs attribute`` rendering of a comparison.

    The first body line is always ``drift: <verdict>`` -- CI greps it.
    """
    lines = [
        f"# {_describe_run(delta.a)} vs {_describe_run(delta.b)}",
        "",
        f"drift: {delta.drift}",
        "",
    ]
    if delta.drift == "none":
        lines.append(
            "Same plan-hash set, IR extrema and solver behavior within "
            "tolerance."
        )
    for line in delta.evidence:
        lines.append(f"- {line}")
    if delta.plan_diffs:
        lines.append("")
        lines.append("## Plan diff (structural evidence)")
        for text in delta.plan_diffs:
            lines.append("")
            lines.append("```")
            lines.append(text)
            lines.append("```")
    if delta.residual_deltas:
        lines.append("")
        lines.append("## Residual-curve deltas (numerical evidence)")
        lines.append(
            "| group | final A | final B | iters A | iters B | rtol A | rtol B |"
        )
        lines.append("|---|---|---|---|---|---|---|")
        for row in delta.residual_deltas:
            lines.append(
                f"| {row['group']} | {row['final_a']:.3e} | {row['final_b']:.3e} "
                f"| {row['iterations_a']:.0f} | {row['iterations_b']:.0f} "
                f"| {row['rtol_a']:.1e} | {row['rtol_b']:.1e} |"
            )
    if delta.metric_deltas:
        lines.append("")
        lines.append("## Metric deltas")
        lines.append("| metric | A | B |")
        lines.append("|---|---|---|")
        for name, va, vb in delta.metric_deltas:
            lines.append(f"| {name} | {va:.6g} | {vb:.6g} |")
    lines.append("")
    lines.append("## Attribution (physics axis)")
    lines.append("")
    lines.append(delta.attribution_note or "attribution: n/a")
    if delta.attribution_deltas:
        lines.append("")
        lines.append(attribution_table(delta.attribution_deltas))
    return "\n".join(lines)


def attribution_table(rows: Sequence[Mapping[str, object]]) -> str:
    """Markdown table of moved worst-drop components (physics evidence)."""
    lines = [
        "| benchmark | component | A mV | B mV | delta mV |",
        "|---|---|---|---|---|",
    ]
    for row in rows:
        va = float(row.get("a_mv", 0.0) or 0.0)
        vb = float(row.get("b_mv", 0.0) or 0.0)
        lines.append(
            f"| {row.get('benchmark')} | {row.get('component')} "
            f"| {va:.6f} | {vb:.6f} | {vb - va:+.6f} |"
        )
    return "\n".join(lines)


def attribution_markdown(delta: RunDelta) -> str:
    """The ``repro3d explain --diff`` rendering: physics axis only.

    Same comparison machinery as :func:`delta_markdown`, scoped to the
    worst-drop attribution -- where the drop comes from and how that
    changed between two stored runs.
    """
    lines = [
        f"# attribution drift: {_describe_run(delta.a)} vs "
        f"{_describe_run(delta.b)}",
        "",
        delta.attribution_note or "attribution: n/a",
    ]
    if delta.attribution_deltas:
        lines.append("")
        lines.append(attribution_table(delta.attribution_deltas))
    layer_moves = [
        line for line in delta.evidence if "worst-drop layer" in line
    ]
    if layer_moves:
        lines.append("")
        lines.extend(f"- {line}" for line in layer_moves)
    return "\n".join(lines)


def export_chrome_trace(record: Mapping[str, object]) -> Dict[str, object]:
    """A stored record as Chrome trace-event JSON.

    Root spans from the record's trace digest become ``ph: X`` duration
    events; the profiler's bounded RSS/CPU curve becomes ``ph: C``
    counter tracks on the same timebase -- the offline equivalent of the
    live :func:`repro.obs.trace.to_chrome_trace` export.
    """
    events: List[Dict[str, object]] = []
    trace = record.get("trace") or {}
    for r in trace.get("roots") or []:
        events.append(
            {
                "name": r.get("name", "?"),
                "ph": "X",
                "ts": float(r.get("ts_us", 0.0)),
                "dur": float(r.get("dur_us", 0.0)),
                "pid": 1,
                "tid": 1,
                "args": {"count": r.get("count", 1)},
            }
        )
    profile = record.get("profile") or {}
    for point in profile.get("curve") or []:
        try:
            ts, rss, cpu = float(point[0]), float(point[1]), float(point[2])
        except (TypeError, ValueError, IndexError):
            continue
        base = {"ph": "C", "ts": ts, "pid": 1, "tid": 0}
        events.append(
            {**base, "name": "profile.rss_kb", "args": {"rss_kb": rss}}
        )
        events.append(
            {**base, "name": "profile.cpu_s", "args": {"cpu_s": cpu}}
        )
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "metadata": {
            "run_id": record.get("run_id"),
            "experiment_id": record.get("experiment_id"),
            "sha": record.get("sha"),
            "created": record.get("created"),
        },
    }
