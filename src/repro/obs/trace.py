"""Hierarchical run tracing: nested spans with Chrome trace export.

Every timed region of the flow opens a *span*: a named interval with a
start, a duration, free-form attributes, and a position in the nesting
tree (stack assembly contains factorization contains nothing; an
experiment contains its sampling which contains its solves).  Spans are
recorded into a process-global buffer and can be

* exported as Chrome trace-event JSON (``chrome://tracing`` or
  https://ui.perfetto.dev load the file directly),
* shipped across process boundaries -- :mod:`repro.perf.parallel`
  returns each worker's spans and absorbs them into the parent buffer,
  so a parallel run's trace covers the workers too,
* aggregated by name into the flat :mod:`repro.perf.timers` registry
  through the span-end hook, which keeps ``--perf-report`` working
  unchanged.

The span stack is thread-local (concurrent threads nest independently);
the completed-span buffer is shared and lock-protected.  Worker spans
keep their own process's timebase: Chrome renders each pid as its own
lane, so cross-process alignment is cosmetic only.
"""

from __future__ import annotations

import json
import os
import threading
import time
from contextlib import contextmanager
from dataclasses import asdict, dataclass, field
from typing import Callable, Dict, Iterator, List, Optional

_lock = threading.Lock()
_spans: List["SpanRecord"] = []
_dropped = 0
_t0: Optional[float] = None
_hooks: List[Callable[["SpanRecord"], None]] = []
_tls = threading.local()
#: Live span stacks by thread ident -- lets the resource profiler
#: (:mod:`repro.obs.profile`) attach samples to the active span tree
#: without touching thread-local state it does not own.
_active_stacks: Dict[int, List["SpanRecord"]] = {}
#: Identity keys of spans absorbed from other processes, so a repeated
#: absorb of the same worker export is a no-op instead of a duplicate.
_absorbed_keys: set = set()

#: Buffer cap: long sweeps produce tens of thousands of solve spans; the
#: cap bounds memory while keeping every realistic run complete.
MAX_SPANS = 200_000


@dataclass
class SpanRecord:
    """One completed (or in-flight, while inside ``span``) trace span."""

    name: str
    ts_us: float = 0.0
    dur_us: float = 0.0
    pid: int = 0
    tid: int = 0
    depth: int = 0
    parent: Optional[str] = None
    #: event multiplicity for the flat timer aggregate (e.g. a batched
    #: solve of k right-hand sides counts as k events in one span).
    count: int = 1
    attrs: Dict[str, object] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        """Span duration in seconds."""
        return self.dur_us / 1e6


def _origin() -> float:
    """Per-process trace epoch (perf_counter at first span / last reset)."""
    global _t0
    if _t0 is None:
        with _lock:
            if _t0 is None:
                _t0 = time.perf_counter()
    return _t0


def _stack() -> List[SpanRecord]:
    stack = getattr(_tls, "stack", None)
    if stack is None:
        stack = _tls.stack = []
        with _lock:
            _active_stacks[threading.get_ident()] = stack
    return stack


def now_us() -> float:
    """Microseconds since this process's trace epoch (span timebase)."""
    return (time.perf_counter() - _origin()) * 1e6


def current_span() -> Optional[SpanRecord]:
    """The deepest span currently open in any thread, if one exists.

    List append/pop are atomic under the GIL, so reading another
    thread's stack is safe; a pop racing the read is caught and treated
    as "no span".  Used by the resource profiler to label each sample
    with the region it fell inside.
    """
    with _lock:
        stacks = list(_active_stacks.values())
    best: Optional[SpanRecord] = None
    for stack in stacks:
        try:
            candidate = stack[-1]
        except IndexError:
            continue
        if best is None or candidate.depth > best.depth:
            best = candidate
    return best


@contextmanager
def span(name: str, count: int = 1, **attrs: object) -> Iterator[SpanRecord]:
    """Open a nested span; yields the mutable record.

    Attributes can be added during the block (``sp.attrs["k"] = v``) and
    ``sp.count`` adjusted for batched work; ``sp.duration`` is valid
    after the block exits.  The span is recorded (and the end hooks run)
    even when the block raises, so failed regions still show up in the
    trace and the timer aggregate.
    """
    stack = _stack()
    rec = SpanRecord(
        name=name,
        pid=os.getpid(),
        tid=threading.get_ident(),
        depth=len(stack),
        parent=stack[-1].name if stack else None,
        count=count,
        attrs=dict(attrs),
    )
    origin = _origin()  # before perf_counter(): first span must get ts >= 0
    start = time.perf_counter()
    rec.ts_us = (start - origin) * 1e6
    stack.append(rec)
    try:
        yield rec
    finally:
        rec.dur_us = (time.perf_counter() - start) * 1e6
        stack.pop()
        _record(rec)
        for hook in list(_hooks):
            hook(rec)


def _record(rec: SpanRecord) -> None:
    global _dropped
    with _lock:
        if len(_spans) < MAX_SPANS:
            _spans.append(rec)
        else:
            _dropped += 1


def on_span_end(hook: Callable[[SpanRecord], None]) -> None:
    """Register a callback run at every span exit (idempotent per object)."""
    if hook not in _hooks:
        _hooks.append(hook)


def reset_trace() -> None:
    """Drop all recorded spans and restart the process timebase."""
    global _dropped, _t0
    with _lock:
        _spans.clear()
        _absorbed_keys.clear()
        _dropped = 0
        _t0 = None


def span_count() -> int:
    """Number of completed spans currently buffered."""
    with _lock:
        return len(_spans)


def dropped_count() -> int:
    """Spans discarded because the buffer cap was reached."""
    with _lock:
        return _dropped


def spans(since: int = 0) -> List[SpanRecord]:
    """Copy of the completed-span buffer (optionally from an index)."""
    with _lock:
        return list(_spans[since:])


def export_spans(since: int = 0) -> List[Dict[str, object]]:
    """Spans as plain dicts -- picklable across process boundaries."""
    return [asdict(rec) for rec in spans(since)]


def _span_key(data: Dict[str, object]) -> tuple:
    """Identity of an absorbed span: where and when it ran."""
    return (
        data.get("pid"),
        data.get("tid"),
        data.get("name"),
        data.get("ts_us"),
        data.get("dur_us"),
    )


def absorb_spans(records: List[Dict[str, object]]) -> None:
    """Merge spans exported by another process into this buffer.

    Worker spans keep their own pid/timebase; Chrome shows them as
    separate lanes.  Used by ``map_design_points`` to stitch parallel
    runs into one trace.

    Two guarantees beyond a blind append: the absorbed batch lands in
    monotonic start-time order (workers record spans in *completion*
    order, so a parent's per-task digests would otherwise interleave
    children before the parents that contain them), and a span already
    absorbed -- an executor retry, a caller merging the same worker
    return twice -- is dropped instead of duplicated, so trace-derived
    aggregates stay exact under re-absorption.
    """
    global _dropped
    ordered = sorted(
        records, key=lambda d: (d.get("pid", 0), d.get("ts_us", 0.0))
    )
    with _lock:
        for data in ordered:
            key = _span_key(data)
            if key in _absorbed_keys:
                continue
            if len(_spans) < MAX_SPANS:
                _absorbed_keys.add(key)
                _spans.append(SpanRecord(**data))
            else:
                _dropped += 1


def summary() -> Dict[str, object]:
    """Compact span-tree digest for manifests: root spans by duration.

    When the process-wide root span is still open (a manifest built
    inside the CLI's ``cli.<command>`` wrapper), no depth-0 span has
    closed yet -- fall back to the shallowest *closed* spans so the
    digest still names the run's top-level phases.
    """
    all_spans = spans()
    min_depth = min((r.depth for r in all_spans), default=0)
    roots = [r for r in all_spans if r.depth == min_depth]
    roots.sort(key=lambda r: r.dur_us, reverse=True)
    return {
        "num_spans": len(all_spans),
        "dropped": dropped_count(),
        "roots": [
            {
                "name": r.name,
                "ts_us": round(r.ts_us, 1),
                "dur_us": round(r.dur_us, 1),
                "count": r.count,
            }
            for r in roots[:20]
        ],
    }


def to_chrome_trace() -> Dict[str, object]:
    """The buffer as a Chrome trace-event JSON object.

    Spans become ``ph: X`` duration events; when the resource profiler
    (:mod:`repro.obs.profile`) has samples, they are interleaved as
    ``ph: C`` counter tracks (RSS, CPU time, GC collections) on the
    same per-process timebase -- Perfetto renders them as counter lanes
    above each process's span lanes, so a memory ramp lines up with the
    span that caused it.
    """
    events = []
    for rec in spans():
        args: Dict[str, object] = dict(rec.attrs)
        if rec.parent is not None:
            args["parent"] = rec.parent
        if rec.count != 1:
            args["count"] = rec.count
        events.append(
            {
                "name": rec.name,
                "ph": "X",
                "ts": rec.ts_us,
                "dur": rec.dur_us,
                "pid": rec.pid,
                "tid": rec.tid,
                "args": args,
            }
        )
    # Imported lazily: profile builds on trace, not the reverse.
    from repro.obs.profile import counter_events

    events.extend(counter_events())
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(path) -> None:
    """Serialize the buffer to ``path`` as Chrome-loadable trace JSON.

    The write is atomic (temp sibling + ``os.replace``): a crashed or
    concurrent run can never leave a truncated trace artifact.
    """
    from repro.obs.atomic import atomic_write_text

    atomic_write_text(path, json.dumps(to_chrome_trace(), default=str) + "\n")
