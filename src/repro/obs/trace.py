"""Hierarchical run tracing: nested spans with Chrome trace export.

Every timed region of the flow opens a *span*: a named interval with a
start, a duration, free-form attributes, and a position in the nesting
tree (stack assembly contains factorization contains nothing; an
experiment contains its sampling which contains its solves).  Spans are
recorded into a process-global buffer and can be

* exported as Chrome trace-event JSON (``chrome://tracing`` or
  https://ui.perfetto.dev load the file directly),
* shipped across process boundaries -- :mod:`repro.perf.parallel`
  returns each worker's spans and absorbs them into the parent buffer,
  so a parallel run's trace covers the workers too,
* aggregated by name into the flat :mod:`repro.perf.timers` registry
  through the span-end hook, which keeps ``--perf-report`` working
  unchanged.

The span stack is thread-local (concurrent threads nest independently);
the completed-span buffer is shared and lock-protected.  Worker spans
keep their own process's timebase: Chrome renders each pid as its own
lane, so cross-process alignment is cosmetic only.
"""

from __future__ import annotations

import json
import os
import threading
import time
from contextlib import contextmanager
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Callable, Dict, Iterator, List, Optional

_lock = threading.Lock()
_spans: List["SpanRecord"] = []
_dropped = 0
_t0: Optional[float] = None
_hooks: List[Callable[["SpanRecord"], None]] = []
_tls = threading.local()

#: Buffer cap: long sweeps produce tens of thousands of solve spans; the
#: cap bounds memory while keeping every realistic run complete.
MAX_SPANS = 200_000


@dataclass
class SpanRecord:
    """One completed (or in-flight, while inside ``span``) trace span."""

    name: str
    ts_us: float = 0.0
    dur_us: float = 0.0
    pid: int = 0
    tid: int = 0
    depth: int = 0
    parent: Optional[str] = None
    #: event multiplicity for the flat timer aggregate (e.g. a batched
    #: solve of k right-hand sides counts as k events in one span).
    count: int = 1
    attrs: Dict[str, object] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        """Span duration in seconds."""
        return self.dur_us / 1e6


def _origin() -> float:
    """Per-process trace epoch (perf_counter at first span / last reset)."""
    global _t0
    if _t0 is None:
        with _lock:
            if _t0 is None:
                _t0 = time.perf_counter()
    return _t0


def _stack() -> List[SpanRecord]:
    stack = getattr(_tls, "stack", None)
    if stack is None:
        stack = _tls.stack = []
    return stack


@contextmanager
def span(name: str, count: int = 1, **attrs: object) -> Iterator[SpanRecord]:
    """Open a nested span; yields the mutable record.

    Attributes can be added during the block (``sp.attrs["k"] = v``) and
    ``sp.count`` adjusted for batched work; ``sp.duration`` is valid
    after the block exits.  The span is recorded (and the end hooks run)
    even when the block raises, so failed regions still show up in the
    trace and the timer aggregate.
    """
    stack = _stack()
    rec = SpanRecord(
        name=name,
        pid=os.getpid(),
        tid=threading.get_ident(),
        depth=len(stack),
        parent=stack[-1].name if stack else None,
        count=count,
        attrs=dict(attrs),
    )
    origin = _origin()  # before perf_counter(): first span must get ts >= 0
    start = time.perf_counter()
    rec.ts_us = (start - origin) * 1e6
    stack.append(rec)
    try:
        yield rec
    finally:
        rec.dur_us = (time.perf_counter() - start) * 1e6
        stack.pop()
        _record(rec)
        for hook in list(_hooks):
            hook(rec)


def _record(rec: SpanRecord) -> None:
    global _dropped
    with _lock:
        if len(_spans) < MAX_SPANS:
            _spans.append(rec)
        else:
            _dropped += 1


def on_span_end(hook: Callable[[SpanRecord], None]) -> None:
    """Register a callback run at every span exit (idempotent per object)."""
    if hook not in _hooks:
        _hooks.append(hook)


def reset_trace() -> None:
    """Drop all recorded spans and restart the process timebase."""
    global _dropped, _t0
    with _lock:
        _spans.clear()
        _dropped = 0
        _t0 = None


def span_count() -> int:
    """Number of completed spans currently buffered."""
    with _lock:
        return len(_spans)


def dropped_count() -> int:
    """Spans discarded because the buffer cap was reached."""
    with _lock:
        return _dropped


def spans(since: int = 0) -> List[SpanRecord]:
    """Copy of the completed-span buffer (optionally from an index)."""
    with _lock:
        return list(_spans[since:])


def export_spans(since: int = 0) -> List[Dict[str, object]]:
    """Spans as plain dicts -- picklable across process boundaries."""
    return [asdict(rec) for rec in spans(since)]


def absorb_spans(records: List[Dict[str, object]]) -> None:
    """Merge spans exported by another process into this buffer.

    Worker spans keep their own pid/timebase; Chrome shows them as
    separate lanes.  Used by ``map_design_points`` to stitch parallel
    runs into one trace.
    """
    global _dropped
    with _lock:
        for data in records:
            if len(_spans) < MAX_SPANS:
                _spans.append(SpanRecord(**data))
            else:
                _dropped += 1


def summary() -> Dict[str, object]:
    """Compact span-tree digest for manifests: root spans by duration."""
    all_spans = spans()
    roots = [r for r in all_spans if r.depth == 0]
    roots.sort(key=lambda r: r.dur_us, reverse=True)
    return {
        "num_spans": len(all_spans),
        "dropped": dropped_count(),
        "roots": [
            {"name": r.name, "dur_us": round(r.dur_us, 1), "count": r.count}
            for r in roots[:20]
        ],
    }


def to_chrome_trace() -> Dict[str, object]:
    """The buffer as a Chrome trace-event JSON object (``ph: X`` events)."""
    events = []
    for rec in spans():
        args: Dict[str, object] = dict(rec.attrs)
        if rec.parent is not None:
            args["parent"] = rec.parent
        if rec.count != 1:
            args["count"] = rec.count
        events.append(
            {
                "name": rec.name,
                "ph": "X",
                "ts": rec.ts_us,
                "dur": rec.dur_us,
                "pid": rec.pid,
                "tid": rec.tid,
                "args": args,
            }
        )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(path) -> None:
    """Serialize the buffer to ``path`` as Chrome-loadable trace JSON."""
    Path(path).write_text(
        json.dumps(to_chrome_trace(), default=str) + "\n"
    )
