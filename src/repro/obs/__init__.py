"""Observability layer: structured logs, span traces, metrics, manifests.

Gives every run a complete, machine-readable account of itself:

* :mod:`repro.obs.log` -- per-module structured logging with a
  JSON-lines sink (``--log-json``) and a byte-compatible stdout mode;
* :mod:`repro.obs.trace` -- hierarchical spans around assembly,
  factorization, solves, rasterization, sampling, and controller
  simulation, exportable as Chrome trace-event JSON (``--trace-out``);
* :mod:`repro.obs.metrics` -- counters/gauges/histograms (cache hit
  rates, factorization counts, RHS batch sizes, residual norms, IR-drop
  summaries, queue depths) with cross-process snapshot merging
  (``--metrics-out``);
* :mod:`repro.obs.manifest` -- per-experiment provenance records (git
  SHA, config hash, seeds, environment, metric delta, span digest);
* :mod:`repro.obs.profile` -- background resource sampler (RSS, CPU
  time, GC stats) whose samples attach to the active span tree and
  interleave with trace exports as Perfetto counter tracks;
* :mod:`repro.obs.store` -- append-only run-history store with
  run-vs-run drift attribution (``repro3d obs``);
* :mod:`repro.obs.atomic` -- atomic artifact writes (temp sibling +
  ``os.replace``) shared by every JSON emitter above.

Dependency direction: ``repro.perf`` (and the rest of the library)
builds on ``repro.obs``; nothing in this package imports ``repro.perf``
at module level.
"""

from repro.obs.log import (
    JsonLinesFormatter,
    configure,
    get_logger,
    log_event,
    resolve_level,
)
from repro.obs.manifest import (
    RunManifest,
    build_manifest,
    config_hash_of,
    git_revision,
    load_manifest,
    validate_manifest,
)
from repro.obs.atomic import atomic_write_text
from repro.obs.metrics import (
    MetricsRegistry,
    full_snapshot,
    registry,
    reset_metrics,
    write_metrics,
)
from repro.obs.profile import (
    BoundedSeries,
    ProfileSample,
    ensure_profiler,
    profiling_enabled,
    reset_profile,
    start_profiler,
    stop_profiler,
)
from repro.obs.store import RunHistoryStore, diff_runs
from repro.obs.trace import (
    SpanRecord,
    reset_trace,
    span,
    to_chrome_trace,
    write_chrome_trace,
)

__all__ = [
    "BoundedSeries",
    "JsonLinesFormatter",
    "MetricsRegistry",
    "ProfileSample",
    "RunHistoryStore",
    "RunManifest",
    "SpanRecord",
    "atomic_write_text",
    "build_manifest",
    "config_hash_of",
    "configure",
    "diff_runs",
    "ensure_profiler",
    "full_snapshot",
    "get_logger",
    "git_revision",
    "load_manifest",
    "log_event",
    "profiling_enabled",
    "registry",
    "reset_metrics",
    "reset_profile",
    "reset_trace",
    "resolve_level",
    "span",
    "start_profiler",
    "stop_profiler",
    "to_chrome_trace",
    "validate_manifest",
    "write_chrome_trace",
    "write_metrics",
]
