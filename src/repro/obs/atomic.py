"""Atomic file writes for observability artifacts.

Every JSON artifact the platform emits (metrics snapshots, Chrome
traces, run manifests, bench suite records, run-history entries) is a
contract with a later reader -- CI validation, the regression
comparator, the run-history store.  A plain ``Path.write_text`` can be
interrupted half-way (crashed run, OOM-killed worker, two parallel runs
racing on the same path) and leave a truncated document that poisons
that reader.

:func:`atomic_write_text` closes the hole with the standard POSIX
recipe: write the full payload to a temporary sibling in the *same*
directory (same filesystem, so the final step cannot degrade to a
copy), flush and fsync it, then ``os.replace`` it over the target.
Readers see either the old complete file or the new complete file,
never a prefix of the new one.  Concurrent writers last-write-wins at
whole-file granularity, which is exactly the semantics the artifact
paths want.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Union


def atomic_write_text(path: Union[str, Path], text: str) -> Path:
    """Write ``text`` to ``path`` atomically; returns the path written.

    The temporary sibling is namespaced by pid, so two processes
    writing the same target never trample each other's staging file.
    On any failure the temporary file is removed and the original
    target (if one existed) is left untouched.
    """
    path = Path(path)
    tmp = path.with_name(f".{path.name}.{os.getpid()}.tmp")
    try:
        with open(tmp, "w", encoding="utf-8") as fh:
            fh.write(text)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    return path
