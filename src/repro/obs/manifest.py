"""Run provenance manifests: every experiment writes its own receipt.

A manifest is one JSON document recording everything needed to interpret
(or re-run) an experiment's numbers: the git revision, a hash of the run
configuration, the RNG seeds, the worker count, the environment, the
per-run metric delta, and a digest of the span tree.  PDN benchmark
suites make the same point this module enforces: solver results without
recorded diagnostics and provenance are not reproducible results.

The schema is hand-validated (:func:`validate_manifest`) so CI can
assert artifact integrity without a jsonschema dependency.
"""

from __future__ import annotations

import hashlib
import json
import os
import platform
import subprocess
import sys
from dataclasses import asdict, dataclass, field
from datetime import datetime, timezone
from pathlib import Path
from typing import Dict, Mapping, Optional

from repro.errors import ConfigurationError

#: Bump when the manifest layout changes incompatibly.
SCHEMA_VERSION = 1

#: Required top-level fields and their types (the validated schema).
MANIFEST_SCHEMA: Dict[str, tuple] = {
    "schema_version": (int,),
    "experiment_id": (str,),
    "title": (str,),
    "created": (str,),
    "duration_s": (int, float),
    "git": (dict,),
    "config_hash": (str, type(None)),
    "config": (dict,),
    "seeds": (dict,),
    "workers": (int,),
    "environment": (dict,),
    "metrics": (dict,),
    "timers": (dict,),
    "trace": (dict,),
    "extra": (dict,),
}

#: Optional fields (validated only when present).  Added after schema v1
#: shipped; absence keeps old manifests -- including those embedded in
#: committed BENCH records -- valid.
OPTIONAL_MANIFEST_FIELDS: Dict[str, tuple] = {
    # ``{plan hash: benchmark name}`` of every stack plan the run built
    # or reused -- the structural identity behind the run's IR numbers.
    "plans": (dict,),
    # Resource-profiler digest (:func:`repro.obs.profile.summary`):
    # sample count, peak RSS, CPU time, bounded RSS/CPU curve.
    "profile": (dict,),
    # Solver convergence traces recorded during the run
    # (:class:`repro.rmesh.backends.ResidualTrace` dicts).
    "convergence": (list,),
    # Physics attribution summaries by benchmark
    # (:func:`repro.pdn.diagnose.attribution_snapshot`): worst-drop
    # supply-path decomposition per design the run explained.
    "attribution": (dict,),
}


@dataclass
class RunManifest:
    """Machine-readable provenance record of one run."""

    experiment_id: str
    title: str = ""
    created: str = ""
    duration_s: float = 0.0
    git: Dict[str, object] = field(default_factory=dict)
    config_hash: Optional[str] = None
    config: Dict[str, object] = field(default_factory=dict)
    seeds: Dict[str, int] = field(default_factory=dict)
    workers: int = 1
    environment: Dict[str, object] = field(default_factory=dict)
    metrics: Dict[str, object] = field(default_factory=dict)
    timers: Dict[str, object] = field(default_factory=dict)
    trace: Dict[str, object] = field(default_factory=dict)
    extra: Dict[str, object] = field(default_factory=dict)
    #: Stack plans the run touched: {plan hash: benchmark name}.
    plans: Dict[str, object] = field(default_factory=dict)
    #: Resource-profiler digest (empty when profiling was off).
    profile: Dict[str, object] = field(default_factory=dict)
    #: Solver convergence traces recorded during the run.
    convergence: list = field(default_factory=list)
    #: Worst-drop attribution summaries by benchmark (empty when the
    #: run never diagnosed a design).
    attribution: Dict[str, object] = field(default_factory=dict)
    schema_version: int = SCHEMA_VERSION

    def to_dict(self) -> Dict[str, object]:
        return asdict(self)

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, default=str) + "\n"

    def write(self, path) -> Path:
        """Validate and atomically write the manifest; returns the path."""
        from repro.obs.atomic import atomic_write_text

        data = self.to_dict()
        validate_manifest(data)
        return atomic_write_text(path, self.to_json())

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "RunManifest":
        validate_manifest(data)
        known = set(MANIFEST_SCHEMA) | set(OPTIONAL_MANIFEST_FIELDS)
        return cls(**{k: v for k, v in data.items() if k in known})

    def summary(self) -> Dict[str, object]:
        """Compact provenance stamp for embedding in derived artifacts.

        Benchmark suite records (:mod:`repro.bench.record`) embed the
        full manifest *and* surface this stamp in their reports; any
        other artifact that wants to say "produced by revision X under
        configuration Y" without carrying the whole metric payload can
        use it too.
        """
        return {
            "sha": str(self.git.get("sha", "unknown")),
            "dirty": bool(self.git.get("dirty")),
            "created": self.created,
            "duration_s": self.duration_s,
            "config_hash": self.config_hash,
            "workers": self.workers,
            "python": self.environment.get("python"),
            "platform": self.environment.get("platform"),
        }


def validate_manifest(data: Mapping[str, object]) -> None:
    """Raise :class:`ConfigurationError` unless ``data`` fits the schema."""
    problems = []
    for key, types in MANIFEST_SCHEMA.items():
        if key not in data:
            problems.append(f"missing field {key!r}")
        elif not isinstance(data[key], types):
            problems.append(
                f"field {key!r} has type {type(data[key]).__name__}, "
                f"expected {'/'.join(t.__name__ for t in types)}"
            )
    for key, types in OPTIONAL_MANIFEST_FIELDS.items():
        if key in data and not isinstance(data[key], types):
            problems.append(
                f"optional field {key!r} has type {type(data[key]).__name__}, "
                f"expected {'/'.join(t.__name__ for t in types)}"
            )
    if not problems and data["schema_version"] != SCHEMA_VERSION:
        problems.append(
            f"schema_version {data['schema_version']} != {SCHEMA_VERSION}"
        )
    if not problems and "sha" not in data["git"]:
        problems.append("git record lacks 'sha'")
    if problems:
        raise ConfigurationError(
            "invalid run manifest: " + "; ".join(problems)
        )


def load_manifest(path) -> RunManifest:
    """Read, validate, and return a manifest written by :meth:`write`."""
    return RunManifest.from_dict(json.loads(Path(path).read_text()))


def git_revision(cwd=None) -> Dict[str, object]:
    """Current git SHA and dirty flag; degrades to ``unknown`` gracefully."""
    cwd = cwd or os.path.dirname(os.path.abspath(__file__))
    try:
        sha = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=cwd, capture_output=True, text=True, timeout=5, check=True,
        ).stdout.strip()
        status = subprocess.run(
            ["git", "status", "--porcelain"],
            cwd=cwd, capture_output=True, text=True, timeout=5, check=True,
        ).stdout.strip()
        return {"sha": sha, "dirty": bool(status)}
    except (OSError, subprocess.SubprocessError):
        return {"sha": "unknown", "dirty": None}


def config_hash_of(config: Mapping[str, object]) -> str:
    """Deterministic short hash of a run-configuration mapping."""
    text = json.dumps(
        {str(k): config[k] for k in sorted(config, key=str)},
        sort_keys=True,
        default=repr,
    )
    return hashlib.sha256(text.encode()).hexdigest()[:16]


def default_seeds() -> Dict[str, int]:
    """Every RNG seed the platform uses (currently: the workload stream)."""
    # Imported lazily to keep the obs package import-light.
    from repro.controller.request import WorkloadConfig

    return {"workload": WorkloadConfig().seed}


def _plans_of(metrics: Mapping[str, object]) -> Dict[str, object]:
    """``{plan hash: benchmark}`` from a metrics snapshot's touch counters.

    ``plan.touch.<hash>`` counters survive cross-process metric merges,
    so a fanned-out sweep's manifest still names every structure its
    workers solved (hashes the parent never planned label as themselves).
    """
    counters = metrics.get("counters")
    if not isinstance(counters, Mapping) or not counters:
        return {}
    # Lazy import: repro.obs must stay importable without repro.pdn.
    from repro.pdn.plan import plans_from_counters

    return dict(plans_from_counters(counters))


def _attributions_of() -> Dict[str, object]:
    """Physics attribution summaries recorded by this process, if any.

    Lazy for the same reason as :func:`_plans_of`: the diagnose module
    lives in ``repro.pdn``, which ``repro.obs`` must not require.
    """
    try:
        from repro.pdn.diagnose import attribution_snapshot
    except ImportError:  # pragma: no cover - pdn always present in-tree
        return {}
    return dict(attribution_snapshot())


def build_manifest(
    experiment_id: str,
    title: str = "",
    config: Optional[Mapping[str, object]] = None,
    duration_s: float = 0.0,
    workers: Optional[int] = None,
    seeds: Optional[Mapping[str, int]] = None,
    metrics_snapshot: Optional[Mapping[str, object]] = None,
    extra: Optional[Mapping[str, object]] = None,
    convergence: Optional[list] = None,
) -> RunManifest:
    """Assemble a manifest from the current process state.

    ``metrics_snapshot`` defaults to the global registry's current state;
    callers that track a per-run delta (``run_experiment`` does) pass it
    explicitly.  ``workers`` defaults to the resolved ``REPRO_WORKERS``
    setting, matching what the sweeps actually used.  ``convergence``
    defaults to every solver residual trace currently buffered; pass the
    per-run delta to scope it (``run_experiment`` does).  The profiler
    digest is included whenever samples exist.
    """
    # Lazy imports: repro.perf depends on repro.obs, not the reverse.
    from repro.obs import metrics as _metrics
    from repro.obs import profile as _profile
    from repro.obs import trace as _trace
    from repro.perf.parallel import resolve_workers
    from repro.perf.timers import snapshot as timers_snapshot

    config = dict(config or {})
    metrics = dict(
        metrics_snapshot
        if metrics_snapshot is not None
        else _metrics.snapshot()
    )
    if convergence is None:
        # Lazy: repro.obs must stay importable without repro.rmesh.
        from repro.rmesh.backends import export_traces

        convergence = export_traces()
    return RunManifest(
        experiment_id=experiment_id,
        title=title,
        created=datetime.now(timezone.utc).isoformat(),
        duration_s=round(float(duration_s), 6),
        git=git_revision(),
        config_hash=config_hash_of(config) if config else None,
        config=config,
        seeds=dict(seeds if seeds is not None else default_seeds()),
        workers=workers if workers is not None else resolve_workers(None),
        environment={
            "python": sys.version.split()[0],
            "platform": platform.platform(),
            "cpu_count": os.cpu_count(),
        },
        metrics=metrics,
        plans=_plans_of(metrics),
        attribution=_attributions_of(),
        profile=_profile.summary() if _profile.sample_count() else {},
        convergence=list(convergence),
        timers={
            name: {"total_s": total, "count": count}
            for name, (total, count) in sorted(timers_snapshot().items())
        },
        trace=_trace.summary(),
        extra=dict(extra or {}),
    )
