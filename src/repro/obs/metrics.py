"""Process-global metrics registry: counters, gauges, histograms.

Counters count events (LU factorizations, cache hits, solved right-hand
sides); gauges hold the latest value of a level (last solve's relative
residual norm); histograms summarize a distribution (RHS batch sizes,
per-state DRAM IR maxima, controller queue depths) as count/total/min/
max plus p50/p95/p99 estimates -- enough for run manifests and CI
artifacts while staying one dict-update per observation.

Percentiles come from a bounded first-N sample reservoir
(:data:`HIST_SAMPLE_CAP` values per histogram): exact while a histogram
holds fewer observations than the cap, an early-sample estimate beyond
it.  The reservoir rides inside snapshots, so ``diff`` ships a worker's
new samples back with its delta and ``merge`` folds them into the
parent -- percentile estimates survive process fan-out the same way the
counters do.

Snapshots are plain JSON-able dicts.  ``diff`` and ``merge`` exist for
the parallel executor: a worker snapshots around each task, ships the
delta back, and the parent merges it -- so the parent registry reports
*true* totals for a fanned-out run instead of only its own work (the
blackout the old timer registry documented).

Merge semantics: counters add; histograms add counts/totals and widen
min/max; gauges take the maximum (every gauge in this codebase is a
"worst observed level", so max is the honest combination).
"""

from __future__ import annotations

import json
import threading
from typing import Dict, Mapping, Optional

Snapshot = Dict[str, Dict[str, object]]

#: Per-histogram sample-reservoir bound: keeps snapshots and manifests a
#: few KiB while making percentiles exact for every realistic CI run.
HIST_SAMPLE_CAP = 512

#: The percentile estimates attached to histogram summaries.
PERCENTILES = (("p50", 0.50), ("p95", 0.95), ("p99", 0.99))

#: Derived keys recomputed on read; never merged or diffed directly.
_DERIVED_KEYS = frozenset(name for name, _ in PERCENTILES)


def _quantile(ordered, q: float) -> float:
    """Linear-interpolation quantile of a pre-sorted, non-empty list."""
    if len(ordered) == 1:
        return ordered[0]
    pos = q * (len(ordered) - 1)
    lo = int(pos)
    frac = pos - lo
    if frac == 0.0:
        return ordered[lo]
    return ordered[lo] * (1.0 - frac) + ordered[lo + 1] * frac


def _with_percentiles(hist: Dict[str, object]) -> Dict[str, object]:
    """A read-side copy of a histogram dict with p50/p95/p99 attached."""
    out = {
        key: (list(value) if key == "samples" else value)
        for key, value in hist.items()
        if key not in _DERIVED_KEYS
    }
    samples = sorted(out.get("samples", ()))
    for name, q in PERCENTILES:
        out[name] = _quantile(samples, q) if samples else None
    return out


class MetricsRegistry:
    """Thread-safe named counters, gauges, and histogram summaries."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, int] = {}
        self._gauges: Dict[str, float] = {}
        self._hists: Dict[str, Dict[str, float]] = {}

    # -- recording -----------------------------------------------------------

    def inc(self, name: str, n: int = 1) -> None:
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + n

    def set_gauge(self, name: str, value: float) -> None:
        with self._lock:
            self._gauges[name] = float(value)

    def observe(self, name: str, value: float) -> None:
        value = float(value)
        with self._lock:
            h = self._hists.get(name)
            if h is None:
                self._hists[name] = {
                    "count": 1,
                    "total": value,
                    "min": value,
                    "max": value,
                    "samples": [value],
                }
            else:
                h["count"] += 1
                h["total"] += value
                h["min"] = min(h["min"], value)
                h["max"] = max(h["max"], value)
                if len(h["samples"]) < HIST_SAMPLE_CAP:
                    h["samples"].append(value)

    # -- reading -------------------------------------------------------------

    def get_counter(self, name: str) -> int:
        with self._lock:
            return self._counters.get(name, 0)

    def get_gauge(self, name: str) -> Optional[float]:
        with self._lock:
            return self._gauges.get(name)

    def get_histogram(self, name: str) -> Optional[Dict[str, float]]:
        with self._lock:
            h = self._hists.get(name)
            return _with_percentiles(h) if h is not None else None

    def snapshot(self) -> Snapshot:
        """JSON-able copy: ``{"counters": ..., "gauges": ..., "histograms": ...}``."""
        with self._lock:
            return {
                "counters": dict(self._counters),
                "gauges": dict(self._gauges),
                "histograms": {
                    k: _with_percentiles(v) for k, v in self._hists.items()
                },
            }

    # -- cross-process plumbing ----------------------------------------------

    @staticmethod
    def diff(before: Snapshot, after: Snapshot) -> Snapshot:
        """The work recorded between two snapshots (worker task delta).

        Counter and histogram count/total deltas are exact; histogram
        min/max and gauges are taken from ``after`` (a bound, not a
        delta -- fine for "worst observed" metrics).  The sample
        reservoir is append-only, so the delta's samples (and the
        percentiles computed from them) are exactly the observations
        made between the snapshots, until the cap truncates them.
        """
        counters = {
            name: value - before["counters"].get(name, 0)
            for name, value in after["counters"].items()
            if value - before["counters"].get(name, 0)
        }
        hists: Dict[str, Dict[str, float]] = {}
        for name, h in after["histograms"].items():
            prev = before["histograms"].get(name, {"count": 0, "total": 0.0})
            dcount = h["count"] - prev["count"]
            if dcount:
                new_samples = list(
                    h.get("samples", ())[len(prev.get("samples", ())):]
                )
                hists[name] = _with_percentiles(
                    {
                        "count": dcount,
                        "total": h["total"] - prev["total"],
                        "min": h["min"],
                        "max": h["max"],
                        "samples": new_samples,
                    }
                )
        return {
            "counters": counters,
            "gauges": dict(after["gauges"]),
            "histograms": hists,
        }

    def merge(self, snap: Mapping[str, Mapping[str, object]]) -> None:
        """Fold a snapshot (typically a worker delta) into this registry."""
        with self._lock:
            for name, value in snap.get("counters", {}).items():
                self._counters[name] = self._counters.get(name, 0) + value
            for name, value in snap.get("gauges", {}).items():
                value = float(value)
                self._gauges[name] = max(self._gauges.get(name, value), value)
            for name, h in snap.get("histograms", {}).items():
                incoming = list(h.get("samples", ()))[:HIST_SAMPLE_CAP]
                mine = self._hists.get(name)
                if mine is None:
                    self._hists[name] = {
                        "count": h["count"],
                        "total": h["total"],
                        "min": h["min"],
                        "max": h["max"],
                        "samples": incoming,
                    }
                else:
                    mine["count"] += h["count"]
                    mine["total"] += h["total"]
                    mine["min"] = min(mine["min"], h["min"])
                    mine["max"] = max(mine["max"], h["max"])
                    room = HIST_SAMPLE_CAP - len(mine["samples"])
                    if room > 0:
                        mine["samples"].extend(incoming[:room])

    def reset(self) -> None:
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._hists.clear()


#: The process-global registry every instrumented module records into.
registry = MetricsRegistry()

# Module-level conveniences bound to the global registry.
inc = registry.inc
set_gauge = registry.set_gauge
observe = registry.observe
get_counter = registry.get_counter
get_gauge = registry.get_gauge
get_histogram = registry.get_histogram
snapshot = registry.snapshot
merge = registry.merge
diff = MetricsRegistry.diff


def reset_metrics() -> None:
    """Clear the global registry (tests, fresh benchmark runs)."""
    registry.reset()


def full_snapshot() -> Dict[str, object]:
    """Metrics plus the flat timer aggregate, for ``--metrics-out`` files."""
    # Imported lazily: repro.perf depends on repro.obs, not the reverse.
    from repro.perf.timers import snapshot as timers_snapshot

    return {
        "metrics": registry.snapshot(),
        "timers": {
            name: {"total_s": total, "count": count}
            for name, (total, count) in sorted(timers_snapshot().items())
        },
    }


def write_metrics(path) -> None:
    """Write the full metrics + timers snapshot to ``path`` as JSON.

    Atomic (temp sibling + ``os.replace``): a crashed or concurrent run
    never leaves a truncated snapshot for the comparator to choke on.
    """
    from repro.obs.atomic import atomic_write_text

    atomic_write_text(path, json.dumps(full_snapshot(), indent=2) + "\n")
