"""Background resource profiler: RSS / CPU / GC samples on the span timebase.

A run that slows down under load needs more than span durations to
debug: *what* grew while the slow span ran?  This module samples the
process's resident set size, cumulative CPU time, and garbage-collector
activity on a background thread at a configurable interval and attaches
each sample to the active span tree -- every sample records the deepest
span open at the instant it was taken, and its timestamp shares the
span timebase, so samples interleave exactly with the trace
(:func:`repro.obs.trace.to_chrome_trace` renders them as Perfetto
counter tracks above the span lanes).

The sampler is passive: it reads ``/proc/self/statm`` (or falls back to
``resource.getrusage``), ``time.process_time`` and ``gc.get_stats``,
and never calls ``gc.collect`` or touches solver state -- recorded
physics is bitwise identical with profiling on or off.

Sample volume is bounded by *uniform decimation*: when the buffer
reaches :data:`PROFILE_SAMPLE_CAP`, every other sample is dropped and
the effective stride doubles -- first and latest samples are always
retained, so a long run degrades to a coarser curve instead of a
truncated one (the same trade the metrics histograms make with their
sample reservoirs).

Cross-process: :mod:`repro.perf.parallel` ships each worker task's new
samples back with the task result and the parent absorbs them
(:func:`export_samples` / :func:`absorb_samples`), so a ``--workers N``
sweep's profile covers the workers too, each keeping its own pid and
timebase -- the same contract trace spans follow.

Enable with ``repro3d --profile`` or ``REPRO_PROFILE=1`` (worker
processes inherit the environment and start their own sampler);
``REPRO_PROFILE_INTERVAL_MS`` tunes the cadence (default 20 ms).
"""

from __future__ import annotations

import gc
import os
import threading
import time
from dataclasses import asdict, dataclass
from typing import Dict, List, Optional, Tuple

from repro.obs import trace as _trace


class BoundedSeries:
    """Append-only ``(x, y)`` series bounded by stride-doubling decimation.

    The series never stores more than ``cap`` points no matter how many
    are appended: appends are recorded every ``stride``-th call, and when
    the stored points reach ``cap`` every other one is dropped and the
    stride doubles.  The first point always survives (index 0 is kept by
    each decimation pass) and the most recent point is tracked separately
    and always included in :meth:`points` -- so a curve keeps its exact
    endpoints while its interior degrades to a coarser, still
    shape-faithful sampling.  Used for solver residual histories and any
    other unbounded-length curve that must travel in a manifest.
    """

    def __init__(self, cap: int = 64) -> None:
        if cap < 4:
            raise ValueError(f"BoundedSeries cap must be >= 4, got {cap}")
        self.cap = cap
        self.stride = 1
        self._points: List[Tuple[float, float]] = []
        self._last: Optional[Tuple[float, float]] = None
        self._count = 0

    def append(self, x: float, y: float) -> None:
        point = (float(x), float(y))
        if self._count % self.stride == 0:
            self._points.append(point)
            if len(self._points) >= self.cap:
                self._points = self._points[::2]
                self.stride *= 2
        self._last = point
        self._count += 1

    def __len__(self) -> int:
        """Raw appends seen (not the stored-point count)."""
        return self._count

    def points(self) -> List[Tuple[float, float]]:
        """The bounded curve, first and latest appended points included."""
        out = list(self._points)
        if self._last is not None and (not out or out[-1] != self._last):
            out.append(self._last)
        return out

#: Environment switch: any value but ""/"0" enables the sampler.
PROFILE_ENV = "REPRO_PROFILE"

#: Environment override for the sampling interval, in milliseconds.
PROFILE_INTERVAL_ENV = "REPRO_PROFILE_INTERVAL_MS"

#: Default sampling cadence (seconds); coarse enough to stay invisible
#: in wall time, fine enough to resolve per-solve memory ramps.
DEFAULT_INTERVAL_S = 0.020

#: Buffer cap before uniform decimation halves the sample density.
PROFILE_SAMPLE_CAP = 8192

_PAGE_SIZE = os.sysconf("SC_PAGE_SIZE") if hasattr(os, "sysconf") else 4096

_lock = threading.Lock()
_samples: List["ProfileSample"] = []
#: How many raw ticks one retained sample currently represents.
_stride = 1
#: Identity keys of absorbed foreign samples (re-absorb de-duplication).
_absorbed_keys: set = set()


@dataclass
class ProfileSample:
    """One instantaneous resource reading on the span timebase."""

    ts_us: float
    pid: int
    #: Resident set size at the sample instant (KiB).
    rss_kb: float
    #: Cumulative process CPU time, user+system, all threads (seconds).
    cpu_s: float
    #: Cumulative GC collections across all generations.
    gc_collections: int
    #: Deepest span open when the sample was taken (None between spans).
    span: Optional[str] = None
    depth: int = 0


def profiling_enabled() -> bool:
    """Whether the environment asks for resource profiling."""
    return os.environ.get(PROFILE_ENV, "") not in ("", "0")


def profile_interval() -> float:
    """Sampling interval in seconds (env override, floor 1 ms)."""
    raw = os.environ.get(PROFILE_INTERVAL_ENV, "")
    try:
        ms = float(raw)
    except ValueError:
        return DEFAULT_INTERVAL_S
    return max(ms, 1.0) / 1e3


def _read_rss_kb() -> float:
    """Current RSS in KiB: /proc on Linux, peak-RSS fallback elsewhere."""
    try:
        with open("/proc/self/statm", "rb") as fh:
            return int(fh.read().split()[1]) * _PAGE_SIZE / 1024.0
    except (OSError, ValueError, IndexError):  # pragma: no cover - non-Linux
        try:
            import resource

            return float(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss)
        except (ImportError, ValueError, OSError):
            return 0.0


def take_sample() -> ProfileSample:
    """One reading of the current process (also used by the thread loop)."""
    collections = sum(s.get("collections", 0) for s in gc.get_stats())
    active = _trace.current_span()
    return ProfileSample(
        ts_us=_trace.now_us(),
        pid=os.getpid(),
        rss_kb=_read_rss_kb(),
        cpu_s=time.process_time(),
        gc_collections=collections,
        span=active.name if active is not None else None,
        depth=active.depth if active is not None else 0,
    )


def _record(sample: ProfileSample) -> None:
    global _stride
    with _lock:
        _samples.append(sample)
        if len(_samples) >= PROFILE_SAMPLE_CAP:
            # Uniform decimation: keep even indices (index 0 -- the first
            # sample -- survives every pass) plus the newest sample.
            last = _samples[-1]
            thinned = _samples[:-1:2]
            if not thinned or thinned[-1] is not last:
                thinned.append(last)
            _samples[:] = thinned
            _stride *= 2


class _Sampler(threading.Thread):
    """Daemon thread reading one sample per interval until stopped."""

    def __init__(self, interval_s: float) -> None:
        super().__init__(name="repro-obs-profiler", daemon=True)
        self.interval_s = interval_s
        # Not named _stop: threading.Thread owns a private _stop() method.
        self._halt = threading.Event()

    def run(self) -> None:  # pragma: no cover - timing-dependent loop body
        while not self._halt.wait(self.interval_s):
            _record(take_sample())

    def stop(self) -> None:
        self._halt.set()


_sampler: Optional[_Sampler] = None


def start_profiler(interval_s: Optional[float] = None) -> bool:
    """Start the background sampler (idempotent); returns True if running.

    An initial sample is taken synchronously so even a short-lived run
    has at least one data point.
    """
    global _sampler
    with _lock:
        already = _sampler is not None and _sampler.is_alive()
    if already:
        return True
    sampler = _Sampler(interval_s if interval_s is not None else profile_interval())
    _record(take_sample())
    sampler.start()
    with _lock:
        _sampler = sampler
    return True


def stop_profiler(final_sample: bool = True) -> None:
    """Stop the background sampler; optionally record a closing sample."""
    global _sampler
    with _lock:
        sampler = _sampler
        _sampler = None
    if sampler is not None:
        sampler.stop()
        sampler.join(timeout=1.0)
        if final_sample:
            _record(take_sample())


def ensure_profiler() -> bool:
    """Start the sampler iff the environment enables it (worker entry)."""
    if not profiling_enabled():
        return False
    return start_profiler()


def profiler_running() -> bool:
    with _lock:
        return _sampler is not None and _sampler.is_alive()


def reset_profile() -> None:
    """Drop every buffered sample and restore full sampling density."""
    global _stride
    with _lock:
        _samples.clear()
        _absorbed_keys.clear()
        _stride = 1


def sample_count() -> int:
    with _lock:
        return len(_samples)


def samples(since: int = 0) -> List[ProfileSample]:
    """Copy of the sample buffer (optionally from an index)."""
    with _lock:
        return list(_samples[since:])


def stride() -> int:
    """Current decimation stride (1 until the cap is first reached)."""
    with _lock:
        return _stride


def export_samples(since: int = 0) -> List[Dict[str, object]]:
    """Samples as plain dicts -- picklable across process boundaries."""
    return [asdict(s) for s in samples(since)]


def _sample_key(data: Dict[str, object]) -> tuple:
    return (data.get("pid"), data.get("ts_us"), data.get("cpu_s"))


def absorb_samples(records: List[Dict[str, object]]) -> None:
    """Merge samples exported by another process into this buffer.

    Foreign samples keep their own pid/timebase (Perfetto shows each pid
    as its own counter lane); the batch is ordered by (pid, timestamp)
    and de-duplicated on re-absorb, mirroring ``absorb_spans``.
    """
    ordered = sorted(
        records, key=lambda d: (d.get("pid", 0), d.get("ts_us", 0.0))
    )
    fresh = []
    with _lock:
        for data in ordered:
            key = _sample_key(data)
            if key in _absorbed_keys:
                continue
            _absorbed_keys.add(key)
            fresh.append(ProfileSample(**data))
        _samples.extend(fresh)


def summary(since: int = 0) -> Dict[str, object]:
    """Compact profile digest for manifests and the run-history store.

    ``curve`` is a bounded ``[ts_us, rss_kb, cpu_s]`` series (at most
    :data:`SUMMARY_CURVE_CAP` points, endpoints preserved) -- enough to
    plot a memory/CPU trajectory without carrying the raw buffer.
    """
    buffered = samples(since)
    out: Dict[str, object] = {
        "enabled": profiling_enabled() or bool(buffered),
        "samples": len(buffered),
        "stride": stride(),
        "interval_ms": round(profile_interval() * 1e3, 3),
    }
    if not buffered:
        return out
    own = [s for s in buffered if s.pid == os.getpid()] or buffered
    out["peak_rss_kb"] = round(max(s.rss_kb for s in buffered), 1)
    out["cpu_s"] = round(own[-1].cpu_s - own[0].cpu_s, 6)
    out["pids"] = sorted({s.pid for s in buffered})
    keep = _downsample_indices(len(buffered), SUMMARY_CURVE_CAP)
    out["curve"] = [
        [round(buffered[i].ts_us, 1), round(buffered[i].rss_kb, 1),
         round(buffered[i].cpu_s, 6)]
        for i in keep
    ]
    return out


#: Max points carried by a manifest/store profile curve.
SUMMARY_CURVE_CAP = 256


def _downsample_indices(n: int, cap: int) -> List[int]:
    """Indices of an evenly-spaced subset of ``range(n)``, endpoints kept."""
    if n <= cap:
        return list(range(n))
    step = (n - 1) / (cap - 1)
    keep = {round(i * step) for i in range(cap)}
    keep.add(0)
    keep.add(n - 1)
    return sorted(keep)


def counter_events() -> List[Dict[str, object]]:
    """The sample buffer as Chrome trace-event counter (``ph: C``) events.

    Three tracks per pid -- RSS, CPU time, and GC collections -- on the
    same microsecond timebase as the span events, so the unified export
    interleaves resource curves with the span tree.
    """
    events: List[Dict[str, object]] = []
    for s in samples():
        base = {"ph": "C", "ts": s.ts_us, "pid": s.pid, "tid": 0}
        events.append(
            {**base, "name": "profile.rss_kb", "args": {"rss_kb": s.rss_kb}}
        )
        events.append(
            {**base, "name": "profile.cpu_s", "args": {"cpu_s": s.cpu_s}}
        )
        events.append(
            {
                **base,
                "name": "profile.gc_collections",
                "args": {"collections": s.gc_collections},
            }
        )
    return events
