"""Structured logging: per-module loggers, JSON-lines sink, quiet mode.

All library logging hangs off the ``repro`` logger hierarchy.  The CLI
calls :func:`configure` once per invocation:

* a stdout handler renders bare messages (so at the default ``info``
  level the CLI's output is byte-identical to the historical ``print``
  calls -- scripts that parse it keep working),
* ``--log-json PATH`` adds a JSON-lines sink where every record is one
  ``{"ts", "level", "logger", "message", "fields"}`` object,
* ``--quiet`` raises the stdout threshold to errors without touching the
  JSON sink,
* ``--log-level debug`` surfaces the library's diagnostic records.

Library modules use :func:`get_logger` and attach machine-readable
context via :func:`log_event` (or ``extra={"fields": {...}}``); when no
handler is configured the hierarchy stays silent (NullHandler), so
importing the library never spams test output.
"""

from __future__ import annotations

import json
import logging
import sys
from datetime import datetime, timezone
from typing import IO, Optional

from repro.errors import ConfigurationError

#: Root of the library's logger hierarchy.
LOGGER_NAME = "repro"

_LEVELS = {
    "debug": logging.DEBUG,
    "info": logging.INFO,
    "warning": logging.WARNING,
    "error": logging.ERROR,
}

# Importing the library must never print: the hierarchy is silenced until
# configure() installs real handlers (stdlib library-logging convention).
logging.getLogger(LOGGER_NAME).addHandler(logging.NullHandler())


def resolve_level(level) -> int:
    """Map a level name (or numeric level) to a ``logging`` level."""
    if isinstance(level, int):
        return level
    try:
        return _LEVELS[str(level).lower()]
    except KeyError:
        raise ConfigurationError(
            f"unknown log level {level!r}; choose from {sorted(_LEVELS)}"
        ) from None


def get_logger(name: Optional[str] = None) -> logging.Logger:
    """A logger under the ``repro`` hierarchy (``repro.<name>``)."""
    if not name:
        return logging.getLogger(LOGGER_NAME)
    if name.startswith(LOGGER_NAME + ".") or name == LOGGER_NAME:
        return logging.getLogger(name)
    return logging.getLogger(f"{LOGGER_NAME}.{name}")


def log_event(
    logger: logging.Logger, level, message: str, **fields: object
) -> None:
    """Log ``message`` with structured ``fields`` (JSON sink carries them)."""
    logger.log(resolve_level(level), message, extra={"fields": fields})


class JsonLinesFormatter(logging.Formatter):
    """One JSON object per record: ts, level, logger, message, fields."""

    def format(self, record: logging.LogRecord) -> str:
        payload = {
            "ts": datetime.fromtimestamp(
                record.created, tz=timezone.utc
            ).isoformat(),
            "level": record.levelname.lower(),
            "logger": record.name,
            "message": record.getMessage(),
        }
        fields = getattr(record, "fields", None)
        if fields:
            payload["fields"] = fields
        if record.exc_info:
            payload["exc"] = self.formatException(record.exc_info)
        return json.dumps(payload, default=str)


def _remove_installed(root: logging.Logger) -> None:
    for handler in list(root.handlers):
        if getattr(handler, "_repro_obs", False):
            root.removeHandler(handler)
            handler.close()


def configure(
    level="info",
    json_path=None,
    quiet: bool = False,
    stream: Optional[IO[str]] = None,
) -> logging.Logger:
    """(Re)install the library's handlers; returns the root logger.

    Idempotent: previously installed handlers are replaced, so repeated
    CLI invocations in one process never double-log.
    """
    root = logging.getLogger(LOGGER_NAME)
    resolved = resolve_level(level)
    _remove_installed(root)
    root.setLevel(logging.DEBUG)  # handlers do the filtering
    root.propagate = False

    stdout_handler = logging.StreamHandler(stream or sys.stdout)
    stdout_handler.setFormatter(logging.Formatter("%(message)s"))
    stdout_handler.setLevel(logging.ERROR if quiet else resolved)
    stdout_handler._repro_obs = True  # type: ignore[attr-defined]
    root.addHandler(stdout_handler)

    if json_path is not None:
        json_handler = logging.FileHandler(json_path, encoding="utf-8")
        json_handler.setFormatter(JsonLinesFormatter())
        json_handler.setLevel(resolved)
        json_handler._repro_obs = True  # type: ignore[attr-defined]
        root.addHandler(json_handler)

    return root
