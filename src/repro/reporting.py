"""Render experiment results as markdown reports.

Turns :class:`repro.experiments.ExperimentResult` objects (or a directory
of archived bench tables) into a single markdown document -- the
machinery behind ``scripts/generate_report.py``.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, List, Sequence

from repro.experiments.base import ExperimentResult, Row


def _fmt(value: object) -> str:
    if isinstance(value, float):
        if value != value:  # NaN
            return "--"
        if value == float("inf"):
            return "inf"
        return f"{value:.2f}"
    return str(value)


def table_markdown(headers: Sequence[str], rows: Iterable[Sequence[str]]) -> str:
    """A plain markdown table from pre-formatted cells.

    Shared by the experiment reports and the bench delta tables
    (:mod:`repro.bench.report`); cells are used verbatim.
    """
    lines = ["| " + " | ".join(str(h) for h in headers) + " |"]
    lines.append("|" + "---|" * len(headers))
    for row in rows:
        lines.append("| " + " | ".join(str(c) for c in row) + " |")
    return "\n".join(lines)


def row_to_markdown(row: Row, metric_keys: Sequence[str]) -> str:
    """One markdown table row: label, then paper/model cell per metric."""
    cells = [row.label]
    for key in metric_keys:
        paper = row.paper.get(key)
        model = row.model.get(key)
        if paper is None and model is None:
            cells.append("")
        elif paper is None:
            cells.append(_fmt(model))
        else:
            text = f"{_fmt(paper)} -> {_fmt(model)}"
            dev = row.deviation_percent(key)
            if dev is not None:
                text += f" ({dev:+.1f}%)"
            cells.append(text)
    return "| " + " | ".join(cells) + " |"


def result_to_markdown(result: ExperimentResult) -> str:
    """One experiment as a markdown section with a table."""
    metric_keys: List[str] = []
    for row in result.rows:
        for key in list(row.paper) + list(row.model):
            if key not in metric_keys:
                metric_keys.append(key)
    lines = [f"## {result.experiment_id} — {result.title}", ""]
    header = ["case"] + metric_keys
    lines.append("| " + " | ".join(header) + " |")
    lines.append("|" + "---|" * len(header))
    for row in result.rows:
        lines.append(row_to_markdown(row, metric_keys))
    if result.notes:
        lines.append("")
        for note in result.notes:
            lines.append(f"*{note}*")
    return "\n".join(lines)


def manifest_to_markdown(manifest) -> str:
    """Render a run manifest as a markdown provenance section.

    Accepts a :class:`repro.obs.manifest.RunManifest` or its dict form;
    surfaces the fields a reader needs to trust (or re-run) the numbers:
    git revision, configuration hash, RNG seeds, worker count, duration.
    """
    data = manifest.to_dict() if hasattr(manifest, "to_dict") else dict(manifest)
    git = data.get("git", {})
    sha = str(git.get("sha", "unknown"))
    if git.get("dirty"):
        sha += " (dirty)"
    seeds = data.get("seeds", {})
    rows = [
        ("git sha", sha),
        ("config hash", str(data.get("config_hash") or "--")),
        (
            "seeds",
            ", ".join(f"{k}={v}" for k, v in sorted(seeds.items())) or "--",
        ),
        ("workers", str(data.get("workers", 1))),
        ("duration", f"{float(data.get('duration_s', 0.0)):.2f} s"),
        ("created", str(data.get("created") or "--")),
    ]
    lines = ["## Provenance", "", "| field | value |", "|---|---|"]
    for name, value in rows:
        lines.append(f"| {name} | {value} |")
    return "\n".join(lines)


def results_to_markdown(
    results: Iterable[ExperimentResult],
    title: str = "Reproduction report",
    manifest=None,
) -> str:
    """A full markdown report from several experiment results.

    When ``manifest`` is given (or any result carries one from
    :func:`repro.experiments.run_experiment`), a provenance section is
    appended so the report records which revision produced it.
    """
    sections = [f"# {title}", ""]
    for result in results:
        sections.append(result_to_markdown(result))
        sections.append("")
        if manifest is None and result.manifest is not None:
            manifest = result.manifest
    if manifest is not None:
        sections.append(manifest_to_markdown(manifest))
        sections.append("")
    return "\n".join(sections)


def archived_tables_to_markdown(
    results_dir: Path, title: str = "Archived bench tables"
) -> str:
    """Bundle the plain-text tables archived by the bench harness.

    The bench harness writes ``benchmarks/results/<id>.txt``; this wraps
    them in fenced blocks so the archive reads as one document without
    re-running anything.
    """
    results_dir = Path(results_dir)
    lines = [f"# {title}", ""]
    for path in sorted(results_dir.glob("*.txt")):
        lines.append(f"## {path.stem}")
        lines.append("")
        lines.append("```")
        lines.append(path.read_text().rstrip())
        lines.append("```")
        lines.append("")
    return "\n".join(lines)
