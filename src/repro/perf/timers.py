"""Named accumulating wall-clock timers.

Every hot path of the flow (stack assembly, factorization, solves,
design-space sampling, LUT builds) accumulates into a process-global
registry keyed by a dotted name.  The registry is cheap enough to leave
always-on (one ``perf_counter`` pair per timed region) and is surfaced
through ``repro3d ... --perf-report`` and
:func:`repro.perf.timers.report`.

The registry is per-process: worker processes of the parallel executor
accumulate into their own copy, so the report of the parent process only
covers work the parent did itself.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from typing import Dict, Iterator, Tuple

_lock = threading.Lock()
_times: Dict[str, float] = {}
_counts: Dict[str, int] = {}


def add_time(name: str, seconds: float, count: int = 1) -> None:
    """Accumulate ``seconds`` (and ``count`` events) under ``name``."""
    with _lock:
        _times[name] = _times.get(name, 0.0) + seconds
        _counts[name] = _counts.get(name, 0) + count


@contextmanager
def timed(name: str) -> Iterator[None]:
    """Context manager that accumulates the block's wall time."""
    t0 = time.perf_counter()
    try:
        yield
    finally:
        add_time(name, time.perf_counter() - t0)


def reset_timers() -> None:
    """Clear all accumulated timers (tests, fresh benchmark runs)."""
    with _lock:
        _times.clear()
        _counts.clear()


def snapshot() -> Dict[str, Tuple[float, int]]:
    """Copy of the registry: ``{name: (total_seconds, count)}``."""
    with _lock:
        return {name: (_times[name], _counts[name]) for name in _times}


def report() -> str:
    """Human-readable table of accumulated timers, slowest first."""
    snap = snapshot()
    if not snap:
        return "perf: no timers recorded"
    width = max(len(name) for name in snap)
    lines = [f"{'timer':<{width}}  {'total':>9}  {'calls':>7}  {'mean':>9}"]
    for name, (total, count) in sorted(
        snap.items(), key=lambda kv: kv[1][0], reverse=True
    ):
        mean = total / count if count else 0.0
        lines.append(
            f"{name:<{width}}  {total:>8.3f}s  {count:>7d}  {mean * 1e3:>7.2f}ms"
        )
    return "\n".join(lines)
