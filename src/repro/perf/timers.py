"""Named accumulating wall-clock timers (the flat view of the trace).

Every hot path of the flow (stack assembly, factorization, solves,
design-space sampling, LUT builds) accumulates into a process-global
registry keyed by a dotted name.  Since the observability layer landed,
:func:`timed` is a thin alias for :func:`repro.obs.trace.span`: every
timed region is also a hierarchical trace span, and every span feeds
this registry through the span-end hook -- the flat table surfaced by
``repro3d ... --perf-report`` is the per-name aggregate of the trace.

The registry is per-process, but the worker blackout of earlier
revisions is gone: :func:`repro.perf.parallel.map_design_points` ships
each worker task's timer delta (:func:`diff_snapshots`) back to the
parent and folds it in with :func:`merge_snapshot`, so parallel runs
report true totals.
"""

from __future__ import annotations

import threading
from typing import Dict, Tuple

from repro.obs import trace as _trace

_lock = threading.Lock()
_times: Dict[str, float] = {}
_counts: Dict[str, int] = {}


def add_time(name: str, seconds: float, count: int = 1) -> None:
    """Accumulate ``seconds`` (and ``count`` events) under ``name``."""
    with _lock:
        _times[name] = _times.get(name, 0.0) + seconds
        _counts[name] = _counts.get(name, 0) + count


def timed(name: str):
    """Context manager timing a block: records a span + this registry.

    Alias for :func:`repro.obs.trace.span`; the span-end hook below does
    the accumulation, so nested ``timed`` regions also nest in the
    exported trace.
    """
    return _trace.span(name)


def _accumulate_span(rec: "_trace.SpanRecord") -> None:
    add_time(rec.name, rec.duration, rec.count)


_trace.on_span_end(_accumulate_span)


def reset_timers() -> None:
    """Clear all accumulated timers (tests, fresh benchmark runs)."""
    with _lock:
        _times.clear()
        _counts.clear()


def snapshot() -> Dict[str, Tuple[float, int]]:
    """Copy of the registry: ``{name: (total_seconds, count)}``."""
    with _lock:
        return {name: (_times[name], _counts[name]) for name in _times}


def diff_snapshots(
    before: Dict[str, Tuple[float, int]],
    after: Dict[str, Tuple[float, int]],
) -> Dict[str, Tuple[float, int]]:
    """Timers accumulated between two snapshots (worker task delta)."""
    delta: Dict[str, Tuple[float, int]] = {}
    for name, (total, count) in after.items():
        prev_total, prev_count = before.get(name, (0.0, 0))
        if count != prev_count or total != prev_total:
            delta[name] = (total - prev_total, count - prev_count)
    return delta


def merge_snapshot(snap: Dict[str, Tuple[float, int]]) -> None:
    """Fold a snapshot (typically a worker delta) into this registry."""
    for name, (total, count) in snap.items():
        add_time(name, total, count)


def report() -> str:
    """Human-readable table of accumulated timers, slowest first."""
    snap = snapshot()
    if not snap:
        return "perf: no timers recorded"
    width = max(len(name) for name in snap)
    lines = [f"{'timer':<{width}}  {'total':>9}  {'calls':>7}  {'mean':>9}"]
    for name, (total, count) in sorted(
        snap.items(), key=lambda kv: kv[1][0], reverse=True
    ):
        mean = total / count if count else 0.0
        lines.append(
            f"{name:<{width}}  {total:>8.3f}s  {count:>7d}  {mean * 1e3:>7.2f}ms"
        )
    return "\n".join(lines)
