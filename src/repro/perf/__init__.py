"""Performance layer: timers, solver/stack caching, process fan-out.

The paper's headline engineering result is turning a projected 4637-hour
brute-force HSPICE sweep into a ~10-hour R-Mesh flow (section 6.1).  This
package holds the pieces that keep the reproduction on the same curve as
the design space grows:

* :mod:`repro.perf.timers` -- named accumulating wall-clock timers wired
  into the solver, stack assembly, sampling, and LUT build, surfaced via
  ``repro3d ... --perf-report``.
* :mod:`repro.perf.cache` -- keyed LRU caches for built stacks (assembly
  + SuperLU factorization) and rasterized power maps, so repeated
  configurations across experiments reuse work instead of rebuilding.
* :mod:`repro.perf.parallel` -- process-level fan-out with a serial
  fallback, used by design-space sampling and the co-optimizer.  Worker
  timer/metric/span registries are shipped back per task and merged
  into the parent, so parallel runs report true totals.

This package builds on :mod:`repro.obs`: every ``timed`` region is a
trace span, and the caches/fan-out report into the metrics registry.
"""

from repro.perf.cache import (
    StackCache,
    assembled_cache,
    assembly_session,
    cache_stats,
    cached_build_stack,
    clear_caches,
    plan_cache,
    power_map_cache_enabled,
    stack_cache,
)
from repro.perf.parallel import map_design_points, resolve_workers
from repro.perf.timers import (
    add_time,
    diff_snapshots,
    merge_snapshot,
    report,
    reset_timers,
    snapshot,
    timed,
)

__all__ = [
    "StackCache",
    "add_time",
    "assembled_cache",
    "assembly_session",
    "cache_stats",
    "cached_build_stack",
    "clear_caches",
    "diff_snapshots",
    "map_design_points",
    "merge_snapshot",
    "plan_cache",
    "power_map_cache_enabled",
    "report",
    "reset_timers",
    "resolve_workers",
    "snapshot",
    "stack_cache",
    "timed",
]
