"""Keyed LRU caches for plans, assembled stacks, and power maps.

The build pipeline is config -> plan -> assemble -> solve
(:mod:`repro.pdn.plan`, :mod:`repro.pdn.assemble`), and each stage has
its own process-global cache:

* **Plan cache** -- maps ``(stack spec, PDNConfig, tech, pitch)`` to a
  planned :class:`~repro.pdn.plan.StackPlan` (planning is cheap but not
  free; sweeps revisit configs).
* **Assembled cache** -- *content-addressed*: maps a plan's
  :attr:`~repro.pdn.plan.StackPlan.plan_hash` to the shared
  :class:`~repro.pdn.assemble.AssembledStack`.  Because the assembled
  stack lazily holds its SuperLU factorization, any two configurations
  that resolve to the same physical network -- regardless of how they
  were expressed -- share one model and one factorization.
* **Stack cache** -- maps ``(plan hash, spec, config)`` to the
  :class:`~repro.pdn.stackup.PDNStack` wrapper (specs carry power
  descriptions the plan deliberately excludes, so wrappers are keyed
  separately from the physics they share).
* **Power-map cache** -- maps ``(floorplan, power spec, state, die,
  grid, vdd)`` to the rasterized per-node current map.  Design-space
  sampling evaluates hundreds of *different* stacks against the *same*
  reference state on the *same* grid; rasterization is ~30% of each
  sample, and this cache collapses it to one rasterization per state.

Assembly runs under a shared :class:`~repro.pdn.assemble.AssemblySession`,
so even *distinct* plans (a TSV-count sweep) reuse the unchanged layer
meshes and link blocks of previously assembled ones.

Plan/power-map keys are built from ``repr`` of the participating (frozen
or effectively-immutable) dataclasses, which is deterministic and covers
every physical field -- two specs that print the same build the same
network.  Entries are evicted least-recently-used.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import TYPE_CHECKING, Any, Dict, Optional, Tuple

from repro.obs import metrics as _metrics
from repro.obs.trace import span
from repro.perf.timers import timed

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids a cycle
    from repro.pdn.stackup import PDNStack


class LRUCache:
    """A minimal ordered-dict LRU with hit/miss/eviction counters.

    A ``name`` makes the cache report into the global metrics registry
    (``cache.<name>.hits`` / ``.misses`` / ``.evictions``), so hit rates
    survive worker-process merges and land in run manifests.
    """

    def __init__(self, maxsize: int, name: Optional[str] = None) -> None:
        if maxsize < 1:
            raise ValueError(f"cache maxsize must be >= 1, got {maxsize}")
        self.maxsize = maxsize
        self.name = name
        self._data: "OrderedDict[Any, Any]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.enabled = True

    def _count(self, event: str) -> None:
        if self.name is not None:
            _metrics.inc(f"cache.{self.name}.{event}")

    def get(self, key: Any) -> Optional[Any]:
        if not self.enabled:
            return None
        try:
            value = self._data[key]
        except KeyError:
            self.misses += 1
            self._count("misses")
            return None
        self._data.move_to_end(key)
        self.hits += 1
        self._count("hits")
        return value

    def put(self, key: Any, value: Any) -> None:
        if not self.enabled:
            return
        self._data[key] = value
        self._data.move_to_end(key)
        while len(self._data) > self.maxsize:
            self._data.popitem(last=False)
            self.evictions += 1
            self._count("evictions")

    def clear(self) -> None:
        self._data.clear()

    def __len__(self) -> int:
        return len(self._data)

    def stats(self) -> Dict[str, int]:
        return {
            "size": len(self._data),
            "maxsize": self.maxsize,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
        }


class StackCache(LRUCache):
    """LRU of content-addressed stack wrappers.

    Keys are ``(plan hash, spec repr, config repr)``: the plan hash is
    the physics identity, the spec/config reprs distinguish wrappers
    whose power descriptions differ over the same network.
    Factorizations hold dense L/U factors (in the assembled cache), so
    the default capacity is deliberately modest; raise it for sweeps
    that revisit many configs.
    """

    def __init__(self, maxsize: int = 32) -> None:
        super().__init__(maxsize, name="stack")

    @staticmethod
    def key(plan_hash: str, spec: Any, config: Any) -> Tuple:
        return (plan_hash, repr(spec), repr(config))

    def build(
        self,
        spec: Any,
        config: Any,
        tech: Any = None,
        pitch: Optional[float] = None,
    ) -> "PDNStack":
        """``build_stack`` with staged memoization; same signature semantics.

        Resolution order: plan cache (keyed by spec/config/tech/pitch) ->
        stack cache (keyed by plan hash) -> assembled cache (content
        addressed) -> incremental assembly under the shared session.
        """
        # Imported lazily: stackup imports this module for the power-map
        # cache, so a module-level import would be circular.
        from repro.pdn.plan import record_plan_use
        from repro.pdn.stackup import PDNStack, plan_stack
        from repro.tech.calibration import DEFAULT_TECH

        tech = tech or DEFAULT_TECH
        pkey = (repr(spec), repr(config), repr(tech), pitch)
        plan = plan_cache.get(pkey)
        if plan is None:
            plan = plan_stack(spec, config, tech=tech, pitch=pitch)
            plan_cache.put(pkey, plan)
        record_plan_use(plan)
        key = self.key(plan.plan_hash, spec, config)
        stack = self.get(key)
        if stack is None:
            assembled = assembled_cache.get(plan.plan_hash)
            if assembled is None:
                from repro.pdn.assemble import assemble

                with timed("stackup.build"):
                    assembled = assemble(plan, session=assembly_session())
                assembled_cache.put(plan.plan_hash, assembled)
            stack = PDNStack.from_assembled(spec, config, tech, plan, assembled)
            self.put(key, stack)
        return stack


#: Process-global stack cache used by the cached build entry point.
stack_cache = StackCache()

#: Process-global plan memo: (spec, config, tech, pitch) reprs -> StackPlan.
plan_cache = LRUCache(maxsize=256, name="plan")

#: Process-global content-addressed cache: plan hash -> AssembledStack.
assembled_cache = LRUCache(maxsize=32, name="assembled")

#: Process-global power-map cache (value: the (ny, nx) current array).
power_map_cache = LRUCache(maxsize=256, name="power_map")

#: Lazily created shared assembly session (incremental sweep reassembly).
_assembly_session: Optional[Any] = None

#: Lazily created shared sweep-solve session (warm-started solves).
_sweep_session: Optional[Any] = None


def assembly_session():
    """The process-global :class:`~repro.pdn.assemble.AssemblySession`."""
    global _assembly_session
    if _assembly_session is None:
        from repro.pdn.assemble import AssemblySession

        _assembly_session = AssemblySession()
    return _assembly_session


def sweep_session():
    """The process-global :class:`~repro.pdn.sweep.SweepSolveSession`.

    Resolves its backend from ``REPRO_SOLVER`` at creation; callers that
    need an explicitly different backend (or an isolated warm-start
    chain per sweep curve) should construct their own session instead.
    """
    global _sweep_session
    if _sweep_session is None:
        from repro.pdn.sweep import SweepSolveSession

        _sweep_session = SweepSolveSession()
    return _sweep_session


def cached_build_stack(
    spec: Any,
    config: Any,
    tech: Any = None,
    pitch: Optional[float] = None,
) -> "PDNStack":
    """Drop-in for :func:`repro.pdn.stackup.build_stack` with reuse.

    Returns the *same* ``PDNStack`` object for repeated identical keys;
    treat the result as read-only (every library path does).
    """
    with timed("cache.stack_lookup"):
        return stack_cache.build(spec, config, tech=tech, pitch=pitch)


def cached_dram_power_map(
    floorplan: Any,
    spec: Any,
    state: Any,
    die: int,
    grid: Any,
    vdd: float,
    mirrored: bool = False,
):
    """Memoized :func:`repro.power.powermap.dram_power_map`.

    The returned :class:`PowerMap` wraps a *copy* of the cached current
    array so callers that mutate their map cannot corrupt the cache.
    """
    from repro.power.powermap import PowerMap, dram_power_map

    key = (
        repr(floorplan),
        repr(spec),
        state.active,
        die,
        (grid.outline, grid.nx, grid.ny),
        vdd,
        mirrored,
    )
    with span("powermap.rasterize", kind="dram", die=die) as sp:
        current = power_map_cache.get(key)
        sp.attrs["cached"] = current is not None
        if current is None:
            pmap = dram_power_map(
                floorplan, spec, state, die, grid, vdd, mirrored
            )
            power_map_cache.put(key, pmap.current)
            return pmap
        return PowerMap(grid, current.copy())


def power_map_cache_enabled(enabled: bool) -> None:
    """Globally enable/disable power-map memoization (benchmark knob)."""
    power_map_cache.enabled = enabled
    if not enabled:
        power_map_cache.clear()


def clear_caches() -> None:
    """Drop all cached plans, stacks, and power maps (frees factorizations)."""
    stack_cache.clear()
    plan_cache.clear()
    assembled_cache.clear()
    power_map_cache.clear()
    if _assembly_session is not None:
        _assembly_session.clear()
    if _sweep_session is not None:
        _sweep_session.reset()


def cache_stats() -> Dict[str, Dict[str, int]]:
    """Hit/miss/eviction counters of every process-global cache."""
    return {
        "stack": stack_cache.stats(),
        "plan": plan_cache.stats(),
        "assembled": assembled_cache.stats(),
        "power_map": power_map_cache.stats(),
    }
