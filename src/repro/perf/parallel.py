"""Process-level fan-out for design-space evaluation.

The combos x grid sweep behind Table 9 is embarrassingly parallel: every
design point builds, factorizes, and solves its own stack.
:func:`map_design_points` fans a picklable function over items with a
``ProcessPoolExecutor``, preserving input order, and falls back to a
plain serial loop when one worker is requested or when the platform
cannot spawn processes (sandboxes, restricted containers).

Execution is fault-tolerant (:mod:`repro.resil.execute`): every item is
its own future, transient failures (worker crashes, pool breakage,
injected faults) are retried with backoff, a broken pool is rebuilt --
re-queueing only in-flight items, keeping completed results -- and the
remaining work degrades to a serial run when the pool cannot be
restored.  ``map_design_points`` keeps the historical all-or-nothing
contract (the first *permanent* failure raises); callers that want
partial results plus a failure report use
:func:`repro.resil.execute.run_tasks` directly.

Observability crosses the process boundary: each worker task runs inside
:class:`_ObsTask`, which snapshots the timer and metric registries
around the call and ships the *delta* (plus any trace spans the task
recorded) back with the result.  The parent merges every delta into its
own registries, so ``--perf-report``, ``--metrics-out``, and
``--trace-out`` report true totals for parallel runs -- solve counts
from a ``--workers 4`` sweep equal the serial run's.

Worker count resolution order:

1. explicit ``workers`` argument (``None``/``0`` mean "decide for me"),
2. the ``REPRO_WORKERS`` environment variable (the CLI ``--workers``
   flag sets it so experiment drivers inherit the knob) -- malformed
   values warn and degrade to serial (:mod:`repro.envcfg`) instead of
   crashing a sweep,
3. serial (1 worker) -- parallelism is opt-in, because for small sweeps
   process startup can cost more than it saves.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple, TypeVar

from repro import envcfg
from repro.obs import metrics as _metrics
from repro.obs import profile as _profile
from repro.obs import trace as _trace
from repro.perf import timers as _timers
from repro.perf.timers import timed
from repro.resil import faults as _faults
from repro.resil.execute import TaskReport, run_tasks
from repro.rmesh import backends as _backends

T = TypeVar("T")
R = TypeVar("R")

#: Environment variable consulted when no explicit worker count is given.
WORKERS_ENV = "REPRO_WORKERS"


def resolve_workers(workers: Optional[int] = None) -> int:
    """Resolve a worker count from the argument or the environment.

    ``workers=None`` or ``0`` consults ``REPRO_WORKERS``; absent or
    invalid values warn and resolve to 1 (serial).  Counts are clamped
    to at least 1 and at most the machine's CPU count times 2
    (oversubscribing beyond that only adds scheduler churn for this
    CPU-bound work).
    """
    if workers is None or workers == 0:
        # Env values degrade instead of crashing a sweep.
        workers = envcfg.env_int(WORKERS_ENV, 1, minimum=0)
        if workers == 0:
            workers = 1
    if workers < 0:
        raise ValueError(f"workers must be >= 0, got {workers}")
    limit = max(1, (os.cpu_count() or 1) * 2)
    return max(1, min(workers, limit))


@dataclass
class _WorkerReturn:
    """One task's result plus the observability it accumulated."""

    result: Any
    timers: Dict[str, Tuple[float, int]] = field(default_factory=dict)
    metrics: Dict[str, Dict[str, object]] = field(default_factory=dict)
    spans: List[Dict[str, object]] = field(default_factory=list)
    profile: List[Dict[str, object]] = field(default_factory=list)
    convergence: List[Dict[str, object]] = field(default_factory=list)


class _ObsTask:
    """Picklable wrapper shipping per-task observability deltas home.

    Snapshot-diffing (rather than reset-and-snapshot) keeps the scheme
    correct under both fork (workers inherit parent registry state) and
    spawn (fresh registries), and under executor reuse across items.
    Beyond timers/metrics/spans, each return also carries the worker's
    new resource-profiler samples (the sampler is started lazily in the
    worker when ``REPRO_PROFILE`` asks for it -- spawn children don't
    inherit the parent's thread) and any solver convergence traces the
    task recorded.
    """

    def __init__(self, fn: Callable[[T], R]) -> None:
        self.fn = fn

    def __call__(self, item: T) -> _WorkerReturn:
        _profile.ensure_profiler()
        timers_before = _timers.snapshot()
        metrics_before = _metrics.snapshot()
        spans_before = _trace.span_count()
        samples_before = _profile.sample_count()
        traces_before = _backends.trace_count()
        result = self.fn(item)
        return _WorkerReturn(
            result=result,
            timers=_timers.diff_snapshots(timers_before, _timers.snapshot()),
            metrics=_metrics.registry.diff(metrics_before, _metrics.snapshot()),
            spans=_trace.export_spans(since=spans_before),
            profile=_profile.export_samples(since=samples_before),
            convergence=_backends.export_traces(since=traces_before),
        )


class _ResilTask:
    """Payload-form :class:`_ObsTask` for the fault-tolerant executor.

    Receives ``(index, tries, item)`` so the worker-side fault-injection
    decision point is keyed by the task *and* its submission attempt --
    a retried task re-rolls its fault draw instead of crashing
    identically forever.  The fault check runs before the obs snapshots:
    an injected failure ships no delta, exactly like a real crash.
    """

    def __init__(self, fn: Callable[[T], R]) -> None:
        self._obs = _ObsTask(fn)

    def __call__(self, payload: Tuple[int, int, T]) -> _WorkerReturn:
        index, tries, item = payload
        _faults.check_task(str(index), attempt=tries)
        return self._obs(item)


def _merge_worker_return(wr: _WorkerReturn) -> Any:
    """Fold one worker delta into the parent registries; return the result."""
    _timers.merge_snapshot(wr.timers)
    _metrics.merge(wr.metrics)
    _trace.absorb_spans(wr.spans)
    _profile.absorb_samples(wr.profile)
    _backends.absorb_traces(wr.convergence)
    _metrics.inc("parallel.worker_tasks_merged")
    return wr.result


def _merge_worker_returns(returns: Sequence[_WorkerReturn]) -> List[Any]:
    """Fold worker deltas into the parent registries; return raw results."""
    return [_merge_worker_return(wr) for wr in returns]


def map_design_points(
    fn: Callable[[T], R],
    items: Sequence[T],
    workers: Optional[int] = None,
    chunksize: int = 1,
) -> List[R]:
    """``[fn(item) for item in items]`` with optional process fan-out.

    Results are returned in input order regardless of worker count, so
    callers see identical output from serial and parallel runs.  ``fn``
    and the items must be picklable when ``workers > 1``.  Execution
    runs on the fault-tolerant engine (:mod:`repro.resil.execute`):
    transient worker failures are retried, a broken pool is rebuilt
    (completed results kept), and if the executor cannot start or stay
    up, the remaining items degrade to a serial loop instead of
    discarding finished work.  Worker timer, metric, and span
    registries are merged back into this process (see module
    docstring), so observability output matches a serial run.

    A task that fails *permanently* (non-transient error, or attempts
    exhausted) raises, preserving the historical all-or-nothing
    contract; use :func:`repro.resil.execute.run_tasks` for partial
    results plus a failure report.  ``chunksize`` is accepted for
    backward compatibility and ignored -- per-task tracking requires
    one future per item.
    """
    del chunksize  # submit-per-item supersedes chunked map
    items = list(items)
    workers = resolve_workers(workers)
    if workers <= 1 or len(items) <= 1:
        with timed("parallel.serial_map"):
            report = run_tasks(fn, items, workers=1)
    else:
        with timed("parallel.process_map"):
            report = run_tasks(
                fn,
                items,
                workers=workers,
                task_factory=_ResilTask,
                merge=_merge_worker_return,
            )
    report.raise_first()
    return list(report.results)


def iter_chunks(items: Sequence[T], size: int) -> Iterable[List[T]]:
    """Split a sequence into consecutive chunks of at most ``size``."""
    if size < 1:
        raise ValueError(f"chunk size must be >= 1, got {size}")
    for start in range(0, len(items), size):
        yield list(items[start : start + size])


__all__ = [
    "WORKERS_ENV",
    "TaskReport",
    "iter_chunks",
    "map_design_points",
    "resolve_workers",
    "run_tasks",
]
