"""The four 3D DRAM benchmark designs (paper Table 1 and Figure 1).

Each :class:`BenchmarkSpec` bundles the physical stack description, the
Table 9 baseline configuration, the design-space restrictions of Table 8's
footnotes, the memory state used for IR-drop evaluation during
co-optimization, and the Table 1 metadata.

=================  ==================  ==========  ==========  =========
Benchmark          Stacked DDR3        (on-chip)   Wide I/O    HMC
=================  ==================  ==========  ==========  =========
Stand-alone        yes                 no          no          yes
Host die           none                T2          T2          HMC logic
Banks per die      8                   8           16          32
Channels           1                   1           4           16
Speed (Mbps/pin)   1600                1600        200         2500
Data width         8                   8           512         512
3D IC benefit      capacity            capacity    low power   bandwidth
Target app         PC & laptop         PC/laptop   mobile      GPU/server
=================  ==================  ==========  ==========  =========
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple

from repro.errors import ConfigurationError
from repro.floorplan import (
    ddr3_die_floorplan,
    hmc_dram_die_floorplan,
    hmc_logic_floorplan,
    t2_logic_floorplan,
    wideio_die_floorplan,
)
from repro.pdn.config import (
    Bonding,
    BumpLocation,
    Mounting,
    PDNConfig,
    RDLScope,
    TSVLocation,
)
from repro.pdn.stackup import StackSpec
from repro.power.model import (
    DDR3_POWER,
    HMC_LOGIC_POWER,
    HMC_POWER,
    T2_LOGIC_POWER,
    WIDEIO_POWER,
)
from repro.power.state import MemoryState


@dataclass(frozen=True)
class BenchmarkSpec:
    """One benchmark: physical stack + design-space rules + metadata."""

    key: str
    title: str
    stack: StackSpec
    baseline: PDNConfig
    #: memory-state counts used as the IR evaluation point in section 6
    #: (worst-case read state of the design's normal operating mode).
    reference_counts: Tuple[int, ...]
    #: Table 8 footnotes: legal TSV locations for this benchmark.
    allowed_tsv_locations: Tuple[TSVLocation, ...]
    #: TSV count range; Wide I/O pins it at exactly 160, HMC needs >= 160.
    tsv_count_range: Tuple[int, int] = (15, 480)
    #: Whether the dedicated-TSV option exists (stand-alone stacks have no
    #: host die to bypass).
    dedicated_tsv_available: bool = True
    #: Stand-alone parts pay for their own package (Table 9 cost offsets).
    package_cost: float = 0.0
    table1: Dict[str, str] = field(default_factory=dict)

    def reference_state(self) -> MemoryState:
        """The IR-drop evaluation state (edge worst-case placement)."""
        return MemoryState.from_counts(
            self.reference_counts, self.stack.dram_floorplan
        )

    def validate_config(self, config: PDNConfig) -> None:
        """Raise if a configuration violates this benchmark's rules."""
        if config.tsv_location not in self.allowed_tsv_locations:
            raise ConfigurationError(
                f"{self.key}: TSV location {config.tsv_location.value} not "
                f"allowed (options: "
                f"{[t.value for t in self.allowed_tsv_locations]})"
            )
        lo, hi = self.tsv_count_range
        if not lo <= config.tsv_count <= hi:
            raise ConfigurationError(
                f"{self.key}: TSV count {config.tsv_count} outside [{lo}, {hi}]"
            )
        if config.dedicated_tsv and not self.dedicated_tsv_available:
            raise ConfigurationError(
                f"{self.key}: stand-alone design has no host die, dedicated "
                "TSVs do not apply"
            )


def off_chip_ddr3() -> BenchmarkSpec:
    """Stacked DDR3 as a stand-alone (off-chip) part [Kang, JSSC'10]."""
    fp = ddr3_die_floorplan()
    return BenchmarkSpec(
        key="ddr3_off",
        title="Stacked DDR3, off-chip",
        stack=StackSpec(
            name="ddr3_off",
            dram_floorplan=fp,
            dram_power=DDR3_POWER,
            num_dram_dies=4,
            mounting=Mounting.OFF_CHIP,
        ),
        baseline=PDNConfig(
            m2_usage=0.10,
            m3_usage=0.20,
            tsv_count=33,
            tsv_location=TSVLocation.EDGE,
            bonding=Bonding.F2B,
        ),
        reference_counts=(0, 0, 0, 2),
        allowed_tsv_locations=(TSVLocation.CENTER, TSVLocation.EDGE),
        dedicated_tsv_available=False,
        package_cost=0.057,
        table1={
            "capacity": "4Gb x 4 dies = 16Gb",
            "stand_alone": "yes",
            "logic_die": "none",
            "speed_mbps": "1600",
            "data_width": "8",
            "benefit": "capacity",
            "target": "PC & laptop",
        },
    )


def on_chip_ddr3() -> BenchmarkSpec:
    """Stacked DDR3 mounted on an OpenSPARC T2 host (on-chip)."""
    fp = ddr3_die_floorplan()
    return BenchmarkSpec(
        key="ddr3_on",
        title="Stacked DDR3, on-chip",
        stack=StackSpec(
            name="ddr3_on",
            dram_floorplan=fp,
            dram_power=DDR3_POWER,
            num_dram_dies=4,
            mounting=Mounting.ON_CHIP,
            logic_floorplan=t2_logic_floorplan(),
            logic_power=T2_LOGIC_POWER,
        ),
        baseline=PDNConfig(
            m2_usage=0.10,
            m3_usage=0.20,
            tsv_count=33,
            tsv_location=TSVLocation.EDGE,
            dedicated_tsv=True,
            bonding=Bonding.F2B,
        ),
        reference_counts=(0, 0, 0, 2),
        allowed_tsv_locations=(TSVLocation.CENTER, TSVLocation.EDGE),
        table1={
            "capacity": "4Gb x 4 dies = 16Gb",
            "stand_alone": "no",
            "logic_die": "T2 (9.0x8.0 mm)",
            "speed_mbps": "1600",
            "data_width": "8",
            "benefit": "capacity",
            "target": "PC & laptop",
        },
    )


def wide_io() -> BenchmarkSpec:
    """Wide I/O mobile DRAM on a T2 host [Kim, JSSC'12].

    JEDEC requires the micro-bumps at the die center, and the power TSV
    count is fixed at 160 to match the specification (section 6.1).
    """
    fp = wideio_die_floorplan()
    return BenchmarkSpec(
        key="wideio",
        title="Wide I/O",
        stack=StackSpec(
            name="wideio",
            dram_floorplan=fp,
            dram_power=WIDEIO_POWER,
            num_dram_dies=4,
            mounting=Mounting.ON_CHIP,
            logic_floorplan=t2_logic_floorplan(),
            logic_power=T2_LOGIC_POWER,
            forced_bump_location=BumpLocation.CENTER,
        ),
        baseline=PDNConfig(
            m2_usage=0.10,
            m3_usage=0.20,
            tsv_count=160,
            tsv_location=TSVLocation.EDGE,
            dedicated_tsv=True,
            bonding=Bonding.F2B,
            rdl=RDLScope.ALL,
        ),
        # One die serves all four channels with two interleaved banks each.
        reference_counts=(0, 0, 0, 8),
        allowed_tsv_locations=(TSVLocation.CENTER, TSVLocation.EDGE),
        tsv_count_range=(160, 160),
        table1={
            "capacity": "4Gb x 4 dies = 16Gb",
            "stand_alone": "no",
            "logic_die": "T2 (9.0x8.0 mm)",
            "speed_mbps": "200",
            "data_width": "512",
            "benefit": "low power",
            "target": "mobile",
        },
    )


def hmc() -> BenchmarkSpec:
    """Hybrid Memory Cube on its own logic die [Wu & Zhang, TVLSI'11].

    High power demands distributed TSVs between banks; at least 160 power
    TSVs are required for sufficient supply current (section 6.1).
    """
    fp = hmc_dram_die_floorplan()
    return BenchmarkSpec(
        key="hmc",
        title="HMC",
        stack=StackSpec(
            name="hmc",
            dram_floorplan=fp,
            dram_power=HMC_POWER,
            num_dram_dies=4,
            mounting=Mounting.ON_CHIP,
            logic_floorplan=hmc_logic_floorplan(),
            logic_power=HMC_LOGIC_POWER,
        ),
        baseline=PDNConfig(
            m2_usage=0.10,
            m3_usage=0.20,
            tsv_count=384,
            tsv_location=TSVLocation.EDGE,
            dedicated_tsv=True,
            bonding=Bonding.F2B,
        ),
        # Heavy traffic spread over all dies: every die reads one bank in
        # each of 8 vaults (high bandwidth is HMC's defining workload).
        reference_counts=(8, 8, 8, 8),
        allowed_tsv_locations=(
            TSVLocation.CENTER,
            TSVLocation.EDGE,
            TSVLocation.DISTRIBUTED,
        ),
        tsv_count_range=(160, 480),
        table1={
            "capacity": "4Gb x 4 dies = 16Gb",
            "stand_alone": "yes",
            "logic_die": "HMC logic (8.8x6.4 mm)",
            "speed_mbps": "2500",
            "data_width": "512",
            "benefit": "bandwidth",
            "target": "GPU & server",
        },
    )


def all_benchmarks() -> Dict[str, BenchmarkSpec]:
    """All four benchmarks keyed by their short name."""
    return {
        b.key: b
        for b in (off_chip_ddr3(), on_chip_ddr3(), wide_io(), hmc())
    }


def benchmark(key: str) -> BenchmarkSpec:
    """Look one benchmark up by key, with a helpful error."""
    marks = all_benchmarks()
    if key not in marks:
        raise ConfigurationError(
            f"unknown benchmark {key!r}; choose from {sorted(marks)}"
        )
    return marks[key]
