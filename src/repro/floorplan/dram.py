"""DRAM die floorplan generators for the three benchmark technologies.

Die sizes and bank counts come from Table 1 of the paper:

=============  ============  =======  ==========
Benchmark      DRAM size     # banks  # channels
=============  ============  =======  ==========
Stacked DDR3   6.8 x 6.7 mm  8        1
Wide I/O       7.2 x 7.2 mm  16       4
HMC            7.2 x 6.4 mm  32       16
=============  ============  =======  ==========

The layouts follow the conventional organizations of the cited designs:

* **DDR3** (Kang et al., JSSC'10): a horizontal center spine holding I/O
  pads, peripheral circuits and charge pumps, with two rows of four banks
  above and below it and row-decoder strips between banks.
* **Wide I/O** (Kim et al., JSSC'12): four channel quadrants of 2x2 banks
  around a central pad cross (JEDEC places the micro-bumps at die center).
* **HMC** (per Wu & Zhang, TVLSI'11): a 4x4 array of vaults, each vault
  holding two banks with a TSV region between them (the "distributed TSV"
  style of section 6.1).
"""

from __future__ import annotations

from typing import List

from repro.floorplan.blocks import Block, BlockType, DieFloorplan, grid_rects
from repro.geometry import Rect

#: Die outlines from Table 1 (mm).
DDR3_DIE_SIZE = (6.8, 6.7)
WIDEIO_DIE_SIZE = (7.2, 7.2)
HMC_DIE_SIZE = (7.2, 6.4)


def ddr3_die_floorplan(
    spine_height: float = 0.9,
    decoder_width: float = 0.12,
    col_decoder_height: float = 0.22,
    margin: float = 0.10,
) -> DieFloorplan:
    """Stacked-DDR3 DRAM die: 8 banks around a horizontal center spine.

    Bank ids: 0-3 left-to-right in the upper half, 4-7 left-to-right in
    the lower half.  All eight banks form channel 0.
    """
    width, height = DDR3_DIE_SIZE
    outline = Rect(0.0, 0.0, width, height)
    blocks: List[Block] = []

    spine = Rect(
        0.0, height / 2.0 - spine_height / 2.0, width, height / 2.0 + spine_height / 2.0
    )
    blocks.append(Block(spine, BlockType.IO, "io_spine"))

    # Column decoders hug the spine on both sides.
    blocks.append(
        Block(
            Rect(margin, spine.y1, width - margin, spine.y1 + col_decoder_height),
            BlockType.COL_DECODER,
            "col_dec_top",
        )
    )
    blocks.append(
        Block(
            Rect(margin, spine.y0 - col_decoder_height, width - margin, spine.y0),
            BlockType.COL_DECODER,
            "col_dec_bot",
        )
    )

    # Bank regions above and below spine + column decoders.
    upper = Rect(margin, spine.y1 + col_decoder_height, width - margin, height - margin)
    lower = Rect(margin, margin, width - margin, spine.y0 - col_decoder_height)
    for half_name, region, first_id in (("u", upper, 0), ("l", lower, 4)):
        cells = grid_rects(region, cols=4, rows=1, gap_x=decoder_width)[0]
        for col, cell in enumerate(cells):
            bank_id = first_id + col
            blocks.append(
                Block(cell, BlockType.BANK, f"bank{bank_id}", bank_id=bank_id)
            )
            if col < 3:  # row decoder strip to the right of this bank
                strip = Rect(cell.x1, region.y0, cell.x1 + decoder_width, region.y1)
                blocks.append(
                    Block(strip, BlockType.ROW_DECODER, f"row_dec_{half_name}{col}")
                )

    return DieFloorplan("ddr3_dram", outline, blocks)


def wideio_die_floorplan(
    pad_cross_width: float = 1.0,
    decoder_width: float = 0.12,
    margin: float = 0.10,
) -> DieFloorplan:
    """Wide I/O DRAM die: 4 channel quadrants of 2x2 banks, central pads.

    Bank ids run 0-3 in channel 0 (lower-left quadrant), 4-7 in channel 1
    (lower-right), 8-11 in channel 2 (upper-left), 12-15 in channel 3
    (upper-right); within a quadrant, ids are row-major from the quadrant's
    outer corner so that ``bank_id % 4 == 0`` is always the bank nearest a
    die corner (the worst-case edge bank).
    """
    width, height = WIDEIO_DIE_SIZE
    outline = Rect(0.0, 0.0, width, height)
    blocks: List[Block] = []

    half = pad_cross_width / 2.0
    cx, cy = width / 2.0, height / 2.0
    blocks.append(
        Block(Rect(cx - half, 0.0, cx + half, height), BlockType.IO, "pad_col")
    )
    blocks.append(
        Block(Rect(0.0, cy - half, cx - half, cy + half), BlockType.IO, "pad_row_l")
    )
    blocks.append(
        Block(Rect(cx + half, cy - half, width, cy + half), BlockType.IO, "pad_row_r")
    )

    quadrants = (
        (Rect(margin, margin, cx - half, cy - half), 0, (0, 0)),
        (Rect(cx + half, margin, width - margin, cy - half), 1, (1, 0)),
        (Rect(margin, cy + half, cx - half, height - margin), 2, (0, 1)),
        (Rect(cx + half, cy + half, width - margin, height - margin), 3, (1, 1)),
    )
    for region, channel, (qx, qy) in quadrants:
        cells = grid_rects(region, cols=2, rows=2, gap_x=decoder_width, gap_y=decoder_width)
        # Order cells so index 0 is the quadrant's outer corner.
        col_order = (0, 1) if qx == 0 else (1, 0)
        row_order = (0, 1) if qy == 0 else (1, 0)
        local = 0
        for r in row_order:
            for c in col_order:
                bank_id = channel * 4 + local
                blocks.append(
                    Block(
                        cells[r][c],
                        BlockType.BANK,
                        f"bank{bank_id}",
                        bank_id=bank_id,
                        channel=channel,
                    )
                )
                local += 1
        # One row-decoder strip per quadrant, along the vertical gap
        # between the two bank columns (geometry is ordering-independent).
        gap_x0 = cells[0][0].x1
        blocks.append(
            Block(
                Rect(gap_x0, region.y0, gap_x0 + decoder_width, region.y1),
                BlockType.ROW_DECODER,
                f"row_dec_q{channel}",
            )
        )

    return DieFloorplan("wideio_dram", outline, blocks)


def hmc_dram_die_floorplan(
    tsv_region_height: float = 0.18,
    vault_gap: float = 0.12,
    margin: float = 0.10,
    spine_height: float = 0.5,
) -> DieFloorplan:
    """HMC DRAM die: 4x4 vaults, two banks per vault, distributed TSVs.

    Each vault is one memory channel (16 channels, 32 banks per die, per
    Table 1).  Bank ids are ``2 * vault`` and ``2 * vault + 1`` with vaults
    numbered row-major from the lower-left.  A thin horizontal spine holds
    shared periphery.
    """
    width, height = HMC_DIE_SIZE
    outline = Rect(0.0, 0.0, width, height)
    blocks: List[Block] = []

    spine = Rect(
        0.0, height / 2.0 - spine_height / 2.0, width, height / 2.0 + spine_height / 2.0
    )
    blocks.append(Block(spine, BlockType.PERIPHERY, "periphery_spine"))

    lower = Rect(margin, margin, width - margin, spine.y0)
    upper = Rect(margin, spine.y1, width - margin, height - margin)
    vault = 0
    for region in (lower, upper):
        cells = grid_rects(region, cols=4, rows=2, gap_x=vault_gap, gap_y=vault_gap)
        for row in cells:
            for cell in row:
                # Split the vault cell into bank / TSV region / bank.
                bank_h = (cell.height - tsv_region_height) / 2.0
                lower_bank = Rect(cell.x0, cell.y0, cell.x1, cell.y0 + bank_h)
                tsv_rect = Rect(
                    cell.x0, cell.y0 + bank_h, cell.x1, cell.y0 + bank_h + tsv_region_height
                )
                upper_bank = Rect(cell.x0, tsv_rect.y1, cell.x1, cell.y1)
                blocks.append(
                    Block(
                        lower_bank,
                        BlockType.BANK,
                        f"bank{2 * vault}",
                        bank_id=2 * vault,
                        channel=vault,
                    )
                )
                blocks.append(
                    Block(tsv_rect, BlockType.TSV_REGION, f"tsv_v{vault}")
                )
                blocks.append(
                    Block(
                        upper_bank,
                        BlockType.BANK,
                        f"bank{2 * vault + 1}",
                        bank_id=2 * vault + 1,
                        channel=vault,
                    )
                )
                vault += 1

    return DieFloorplan("hmc_dram", outline, blocks)
