"""Logic die floorplan generators.

Two host dies appear in the paper (Table 1):

* a full-chip **OpenSPARC T2** processor in 28nm, 9.0 x 8.0 mm, hosting
  the on-chip stacked DDR3 and Wide I/O stacks, and
* the **HMC logic die**, 8.8 x 6.4 mm, with per-vault memory controllers
  and SerDes links to the processor through a silicon interposer.

Only the block-level current distribution matters to the power-integrity
study, so both are modelled as typed block arrays (cores / L2 / SoC for
T2; vault controllers / SerDes / SoC for HMC logic).
"""

from __future__ import annotations

from typing import List

from repro.floorplan.blocks import Block, BlockType, DieFloorplan, grid_rects
from repro.geometry import Rect

#: Logic die outlines from Table 1 (mm).
T2_DIE_SIZE = (9.0, 8.0)
HMC_LOGIC_DIE_SIZE = (8.8, 6.4)


def t2_logic_floorplan(
    l2_stripe_height: float = 2.0,
    soc_margin: float = 0.55,
) -> DieFloorplan:
    """OpenSPARC T2-like floorplan: 8 cores, central L2 stripe, SoC ring.

    The real T2 places its eight SPARC cores in two rows of four with the
    shared L2 banks and crossbar between them and SoC/IO blocks around the
    periphery; this parametric version keeps those proportions.
    """
    width, height = T2_DIE_SIZE
    outline = Rect(0.0, 0.0, width, height)
    blocks: List[Block] = []

    inner = outline.inset(soc_margin)
    # SoC ring: four rectangles around the inner region.
    blocks.append(
        Block(Rect(0.0, 0.0, width, soc_margin), BlockType.SOC, "soc_bottom")
    )
    blocks.append(
        Block(Rect(0.0, height - soc_margin, width, height), BlockType.SOC, "soc_top")
    )
    blocks.append(
        Block(Rect(0.0, soc_margin, soc_margin, height - soc_margin), BlockType.SOC, "soc_left")
    )
    blocks.append(
        Block(
            Rect(width - soc_margin, soc_margin, width, height - soc_margin),
            BlockType.SOC,
            "soc_right",
        )
    )

    # Central L2 stripe.
    cy = (inner.y0 + inner.y1) / 2.0
    l2 = Rect(inner.x0, cy - l2_stripe_height / 2.0, inner.x1, cy + l2_stripe_height / 2.0)
    blocks.append(Block(l2, BlockType.CACHE, "l2"))

    # Two rows of four cores.
    upper = Rect(inner.x0, l2.y1, inner.x1, inner.y1)
    lower = Rect(inner.x0, inner.y0, inner.x1, l2.y0)
    core = 0
    for region in (lower, upper):
        for cell in grid_rects(region, cols=4, rows=1, gap_x=0.15)[0]:
            blocks.append(Block(cell, BlockType.CORE, f"core{core}"))
            core += 1

    return DieFloorplan("t2_logic", outline, blocks)


def hmc_logic_floorplan(
    serdes_width: float = 0.9,
    margin: float = 0.10,
) -> DieFloorplan:
    """HMC logic die: 4x4 vault controllers with SerDes strips on two edges.

    Vault controller v sits under DRAM vault v (row-major from lower-left)
    so the vertical TSV paths line up with the memory channels above.
    """
    width, height = HMC_LOGIC_DIE_SIZE
    outline = Rect(0.0, 0.0, width, height)
    blocks: List[Block] = []

    blocks.append(
        Block(Rect(0.0, 0.0, serdes_width, height), BlockType.SERDES, "serdes_left")
    )
    blocks.append(
        Block(
            Rect(width - serdes_width, 0.0, width, height),
            BlockType.SERDES,
            "serdes_right",
        )
    )

    inner = Rect(serdes_width + margin, margin, width - serdes_width - margin, height - margin)
    cells = grid_rects(inner, cols=4, rows=4, gap_x=0.12, gap_y=0.12)
    vault = 0
    for row in cells:
        for cell in row:
            blocks.append(Block(cell, BlockType.VAULT_CTRL, f"vault_ctrl{vault}"))
            vault += 1

    return DieFloorplan("hmc_logic", outline, blocks)
