"""Floorplan blocks and die floorplans.

A :class:`DieFloorplan` is a named outline plus a list of typed
:class:`Block` rectangles.  Banks carry integer ids so memory states
("which banks are active") can address them; everything else is identified
by type.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import FloorplanError
from repro.geometry import Point, Rect


class BlockType(enum.Enum):
    """Functional type of a floorplan block."""

    BANK = "bank"  # DRAM cell array bank
    ROW_DECODER = "row_decoder"
    COL_DECODER = "col_decoder"
    IO = "io"  # I/O pads and drivers (center spine in DRAM)
    PERIPHERY = "periphery"  # control logic, charge pumps, DLL, ...
    CORE = "core"  # logic die: processor core
    CACHE = "cache"  # logic die: L2/L3 arrays
    SOC = "soc"  # logic die: uncore / SoC blocks
    VAULT_CTRL = "vault_ctrl"  # HMC logic: per-vault controller
    SERDES = "serdes"  # HMC logic: high speed links
    TSV_REGION = "tsv_region"  # reserved TSV area (distributed TSVs)


@dataclass(frozen=True)
class Block:
    """One rectangular floorplan block.

    ``bank_id`` is set only for ``BlockType.BANK`` blocks and must be
    unique within a die.  ``channel`` groups banks into memory channels
    (Wide I/O has 4, HMC 16; stacked DDR3 has a single channel 0).
    """

    rect: Rect
    type: BlockType
    name: str
    bank_id: Optional[int] = None
    channel: int = 0

    def __post_init__(self) -> None:
        if (self.type is BlockType.BANK) != (self.bank_id is not None):
            raise FloorplanError(
                f"block {self.name!r}: bank_id must be set iff type is BANK"
            )


@dataclass
class DieFloorplan:
    """A die outline and its blocks.

    Invariants enforced at construction: every block fits inside the
    outline, bank ids are unique and dense (0..n-1), and banks do not
    overlap each other.
    """

    name: str
    outline: Rect
    blocks: List[Block] = field(default_factory=list)

    def __post_init__(self) -> None:
        self._validate()

    def _validate(self) -> None:
        tol = 1e-9
        for block in self.blocks:
            r = block.rect
            if (
                r.x0 < self.outline.x0 - tol
                or r.y0 < self.outline.y0 - tol
                or r.x1 > self.outline.x1 + tol
                or r.y1 > self.outline.y1 + tol
            ):
                raise FloorplanError(
                    f"block {block.name!r} extends beyond die outline of "
                    f"{self.name!r}"
                )
        banks = self.banks()
        ids = sorted(b.bank_id for b in banks)
        if ids != list(range(len(banks))):
            raise FloorplanError(
                f"die {self.name!r}: bank ids must be dense 0..n-1, got {ids}"
            )
        for i, a in enumerate(banks):
            for b in banks[i + 1 :]:
                if a.rect.overlap_area(b.rect) > tol:
                    raise FloorplanError(
                        f"die {self.name!r}: banks {a.bank_id} and {b.bank_id} "
                        "overlap"
                    )

    # -- queries -----------------------------------------------------------

    def banks(self) -> List[Block]:
        """All bank blocks, sorted by bank id."""
        banks = [b for b in self.blocks if b.type is BlockType.BANK]
        return sorted(banks, key=lambda b: b.bank_id)

    @property
    def num_banks(self) -> int:
        return len(self.banks())

    def bank_rect(self, bank_id: int) -> Rect:
        """Rectangle of the bank with the given id."""
        for block in self.blocks:
            if block.type is BlockType.BANK and block.bank_id == bank_id:
                return block.rect
        raise FloorplanError(f"die {self.name!r} has no bank {bank_id}")

    def blocks_of_type(self, block_type: BlockType) -> List[Block]:
        """All blocks of one type, in insertion order."""
        return [b for b in self.blocks if b.type is block_type]

    def banks_in_channel(self, channel: int) -> List[Block]:
        """Banks belonging to a memory channel, sorted by id."""
        return [b for b in self.banks() if b.channel == channel]

    @property
    def num_channels(self) -> int:
        banks = self.banks()
        if not banks:
            return 0
        return max(b.channel for b in banks) + 1

    def total_block_area(self) -> float:
        """Sum of block areas in mm^2 (diagnostic; may exceed outline area
        only if non-bank blocks overlap, which is legal for e.g. TSV
        regions drawn over periphery)."""
        return sum(b.rect.area for b in self.blocks)

    def edge_distance(self, p: Point) -> float:
        """Distance from ``p`` to the nearest die edge (used to rank banks
        for worst-case 'edge' placement)."""
        return min(
            p.x - self.outline.x0,
            self.outline.x1 - p.x,
            p.y - self.outline.y0,
            self.outline.y1 - p.y,
        )

    def edge_banks(self, count: int) -> List[int]:
        """Ids of the ``count`` banks closest to the die edge.

        The paper's architecture studies (Table 5) assume active banks "are
        located on the edge, which is the worst case of a certain memory
        state".  Ties are broken toward the left edge, matching the
        validation setup ("the left two banks are in the interleaving read
        mode").
        """
        banks = self.banks()
        if count > len(banks):
            raise FloorplanError(
                f"requested {count} edge banks but die {self.name!r} has "
                f"{len(banks)}"
            )
        ranked = sorted(
            banks,
            key=lambda b: (
                # Quantize so geometric ties (left vs right edge) are real
                # ties and the left-edge preference below decides them.
                round(self.edge_distance(b.rect.center), 6),
                b.rect.center.x,
            ),
        )
        return [b.bank_id for b in ranked[:count]]

    def summary(self) -> Dict[str, int]:
        """Counts of blocks per type (for reports and Figure-3-style stats)."""
        counts: Dict[str, int] = {}
        for block in self.blocks:
            counts[block.type.value] = counts.get(block.type.value, 0) + 1
        return counts


def grid_rects(
    region: Rect,
    cols: int,
    rows: int,
    gap_x: float = 0.0,
    gap_y: float = 0.0,
) -> List[List[Rect]]:
    """Split ``region`` into a cols x rows array of rectangles with gaps.

    Returns rows-major nested lists: ``result[row][col]``, row 0 at the
    bottom.  The gaps between cells are left for decoder strips / TSV
    regions.
    """
    if cols < 1 or rows < 1:
        raise FloorplanError("grid needs at least 1x1 cells")
    cell_w = (region.width - (cols - 1) * gap_x) / cols
    cell_h = (region.height - (rows - 1) * gap_y) / rows
    if cell_w <= 0 or cell_h <= 0:
        raise FloorplanError(
            f"grid cells would be degenerate: {cell_w:.3f} x {cell_h:.3f} mm"
        )
    out: List[List[Rect]] = []
    for r in range(rows):
        row: List[Rect] = []
        y0 = region.y0 + r * (cell_h + gap_y)
        for c in range(cols):
            x0 = region.x0 + c * (cell_w + gap_x)
            row.append(Rect.from_size(x0, y0, cell_w, cell_h))
        out.append(row)
    return out
