"""Block-level floorplans for DRAM and logic dies.

The floorplan generator mirrors the paper's (section 2.2): it produces a
block-level floorplan (arrays/banks, row/column decoders, peripheral and
I/O circuits) from design and architectural specifications.  Floorplans
feed the power-map rasterizer and define where local vs global PDN applies.
"""

from repro.floorplan.blocks import Block, BlockType, DieFloorplan
from repro.floorplan.dram import (
    ddr3_die_floorplan,
    hmc_dram_die_floorplan,
    wideio_die_floorplan,
)
from repro.floorplan.logic import hmc_logic_floorplan, t2_logic_floorplan

__all__ = [
    "Block",
    "BlockType",
    "DieFloorplan",
    "ddr3_die_floorplan",
    "wideio_die_floorplan",
    "hmc_dram_die_floorplan",
    "t2_logic_floorplan",
    "hmc_logic_floorplan",
]
