"""Memory state representation.

The paper writes a 3D DRAM memory state as ``R1-R2-R3-R4`` where ``R1`` to
``R4`` are the numbers of active banks from the bottom DRAM die (DRAM1) to
the top die (DRAM4) -- section 2.2.  Table 4 extends the notation with a
position class, e.g. ``0-0-2b-2a``: two banks active in position class
``b`` on die 3 and class ``a`` on die 4.

For the stacked-DDR3 die (4 bank columns above/below the center spine) the
position classes map onto the bank columns:

* ``a``: leftmost column (banks 0 and 4) -- the worst-case edge placement,
* ``b``: second column (banks 1 and 5),
* ``c``: third column (banks 2 and 6),
* ``d``: rightmost column (banks 3 and 7).

A :class:`MemoryState` stores explicit active bank ids per die; helper
constructors produce the edge-worst-case placements used throughout the
paper's architecture studies.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.floorplan.blocks import DieFloorplan

#: Stacked-DDR3 position classes from Figure 8 (bank column -> bank ids).
DDR3_POSITION_CLASSES: Dict[str, Tuple[int, ...]] = {
    "a": (0, 4),
    "b": (1, 5),
    "c": (2, 6),
    "d": (3, 7),
}

_STATE_TOKEN = re.compile(r"^(\d+)([a-d]?)$")


@dataclass(frozen=True)
class MemoryState:
    """Active banks per die, bottom die first.

    ``active`` is a tuple (one entry per die) of tuples of bank ids.
    """

    active: Tuple[Tuple[int, ...], ...]

    def __post_init__(self) -> None:
        for die, banks in enumerate(self.active):
            if len(set(banks)) != len(banks):
                raise ConfigurationError(
                    f"die {die}: duplicate active bank ids {banks}"
                )

    # -- constructors --------------------------------------------------------

    @classmethod
    def idle(cls, num_dies: int) -> "MemoryState":
        """All banks idle."""
        return cls(tuple(() for _ in range(num_dies)))

    @classmethod
    def from_counts(
        cls,
        counts: Sequence[int],
        floorplan: DieFloorplan,
        placement: str = "edge",
    ) -> "MemoryState":
        """Worst-case placement of ``counts[d]`` active banks on die ``d``.

        ``placement='edge'`` picks the banks nearest the die edge (the
        paper's worst case, Table 5); ``'spread'`` distributes banks evenly
        across ids (used for balanced-read studies).
        """
        active: List[Tuple[int, ...]] = []
        for die, count in enumerate(counts):
            if count < 0 or count > floorplan.num_banks:
                raise ConfigurationError(
                    f"die {die}: cannot activate {count} of "
                    f"{floorplan.num_banks} banks"
                )
            if placement == "edge":
                active.append(tuple(floorplan.edge_banks(count)))
            elif placement == "spread":
                if count == 0:
                    active.append(())
                else:
                    step = floorplan.num_banks / count
                    active.append(tuple(int(i * step) for i in range(count)))
            else:
                raise ConfigurationError(f"unknown placement {placement!r}")
        return cls(tuple(active))

    @classmethod
    def from_string(
        cls, text: str, floorplan: DieFloorplan
    ) -> "MemoryState":
        """Parse paper notation like ``"0-0-0-2"`` or ``"0-0-2b-2a"``.

        A bare count uses the edge worst-case placement; a count with a
        position-class suffix (stacked DDR3 only) uses that bank column.
        """
        active: List[Tuple[int, ...]] = []
        for die, token in enumerate(text.split("-")):
            match = _STATE_TOKEN.match(token.strip())
            if not match:
                raise ConfigurationError(
                    f"cannot parse memory-state token {token!r} in {text!r}"
                )
            count, cls_letter = int(match.group(1)), match.group(2)
            if cls_letter:
                banks = DDR3_POSITION_CLASSES[cls_letter]
                if count > len(banks):
                    raise ConfigurationError(
                        f"position class {cls_letter!r} holds at most "
                        f"{len(banks)} banks, requested {count}"
                    )
                if max(banks) >= floorplan.num_banks:
                    raise ConfigurationError(
                        f"position classes apply to the stacked-DDR3 die, "
                        f"not {floorplan.name!r}"
                    )
                active.append(tuple(banks[:count]))
            elif count == 0:
                active.append(())
            else:
                active.append(tuple(floorplan.edge_banks(count)))
        return cls(tuple(active))

    # -- queries --------------------------------------------------------------

    @property
    def num_dies(self) -> int:
        return len(self.active)

    @property
    def counts(self) -> Tuple[int, ...]:
        """Number of active banks per die (the R1..R4 of the notation)."""
        return tuple(len(banks) for banks in self.active)

    @property
    def total_active(self) -> int:
        return sum(self.counts)

    @property
    def active_dies(self) -> Tuple[int, ...]:
        """Indices of dies with at least one active bank."""
        return tuple(d for d, banks in enumerate(self.active) if banks)

    def io_activity(self, die: int) -> float:
        """I/O activity fraction of a die under zero-bubble interleaving.

        With reads interleaved across ``k`` active dies sharing one data
        bus, each active die handles ``1/k`` of the I/O traffic (paper
        section 5.1: four active dies -> 25% I/O activity per die).  Idle
        dies have zero I/O activity.
        """
        if not self.active[die]:
            return 0.0
        return 1.0 / len(self.active_dies)

    def channel_io_activity(
        self, die: int, channel: int, floorplan: DieFloorplan
    ) -> float:
        """Per-channel I/O activity for multi-channel dies (Wide I/O, HMC).

        Each channel has its own bus; the activity of channel ``c`` on die
        ``d`` is ``1/k_c`` where ``k_c`` is the number of dies with active
        banks in that channel.
        """
        chan_banks = {b.bank_id for b in floorplan.banks_in_channel(channel)}
        if not set(self.active[die]) & chan_banks:
            return 0.0
        dies_active = sum(
            1 for banks in self.active if set(banks) & chan_banks
        )
        return 1.0 / dies_active

    def label(self) -> str:
        """Paper-style label from counts, e.g. ``"0-0-0-2"``."""
        return "-".join(str(c) for c in self.counts)

    def with_die(self, die: int, banks: Sequence[int]) -> "MemoryState":
        """A copy with die ``die``'s active banks replaced."""
        active = list(self.active)
        active[die] = tuple(banks)
        return MemoryState(tuple(active))
