"""Power modelling: memory states, die power, and rasterized power maps.

The paper obtains detailed DDR3 power maps through industry collaboration
(section 2.1); this package replaces them with a synthetic model calibrated
to the aggregate numbers the paper publishes (Table 5 and the 2D anchors).
See DESIGN.md section 2 for the substitution rationale.
"""

from repro.power.state import MemoryState
from repro.power.model import (
    CommandEnergySpec,
    DramPowerSpec,
    EnergyReport,
    LogicPowerSpec,
    die_power_mw,
    energy_ledger,
    state_power_mw,
)
from repro.power.powermap import PowerMap, dram_power_map, logic_power_map

__all__ = [
    "MemoryState",
    "CommandEnergySpec",
    "DramPowerSpec",
    "EnergyReport",
    "LogicPowerSpec",
    "die_power_mw",
    "energy_ledger",
    "state_power_mw",
    "PowerMap",
    "dram_power_map",
    "logic_power_map",
]
