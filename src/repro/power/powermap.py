"""Rasterized power maps: block powers -> per-node current injections.

The R-Mesh solver consumes a current per mesh node.  This module spreads
each block's power over the grid cells it overlaps, proportionally to
overlap area, so the injected total is exact at any grid resolution (the
paper's floorplan generator "reads the corresponding power map",
section 2.2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable

import numpy as np

from repro.errors import ConfigurationError
from repro.floorplan.blocks import BlockType, DieFloorplan
from repro.geometry import Grid2D, Rect
from repro.power.model import DramPowerSpec, LogicPowerSpec, channel_bank_power_mw
from repro.power.state import MemoryState


@dataclass
class PowerMap:
    """Current injections (amperes) on a grid, one value per node."""

    grid: Grid2D
    current: np.ndarray  # shape (ny, nx), amperes

    def __post_init__(self) -> None:
        expected = (self.grid.ny, self.grid.nx)
        if self.current.shape != expected:
            raise ConfigurationError(
                f"current array shape {self.current.shape} does not match "
                f"grid {expected}"
            )

    @classmethod
    def zeros(cls, grid: Grid2D) -> "PowerMap":
        return cls(grid, np.zeros((grid.ny, grid.nx)))

    @property
    def total_current(self) -> float:
        """Total injected current, A."""
        return float(self.current.sum())

    def total_power_mw(self, vdd: float) -> float:
        """Total power implied by the injections at supply ``vdd``, mW."""
        return self.total_current * vdd * 1e3

    def add_block_power(self, rect: Rect, power_mw: float, vdd: float) -> None:
        """Spread ``power_mw`` uniformly over ``rect`` as current at ``vdd``.

        Distribution is proportional to geometric overlap with each grid
        cell, so power is conserved exactly (clipped parts of a rect that
        fall outside the grid are dropped with their share of the power --
        floorplan validation prevents that from happening in practice).
        """
        if power_mw < 0.0:
            raise ConfigurationError(f"block power must be >= 0, got {power_mw}")
        if power_mw == 0.0 or rect.area == 0.0:
            return
        frac = self.grid.coverage_fractions(rect)  # overlap / cell_area
        cell_area = self.grid.dx * self.grid.dy
        share = frac * cell_area / rect.area  # fraction of rect per cell
        self.current += share * (power_mw * 1e-3 / vdd)

    def flat(self) -> np.ndarray:
        """Current as a flat vector in grid flat-id order."""
        return self.current.reshape(-1)


def _area_weighted(
    pmap: PowerMap, rects: Iterable[Rect], power_mw: float, vdd: float
) -> None:
    """Spread ``power_mw`` over several rectangles, weighted by area."""
    rects = list(rects)
    total_area = sum(r.area for r in rects)
    if total_area <= 0.0:
        raise ConfigurationError("cannot spread power over zero total area")
    for rect in rects:
        pmap.add_block_power(rect, power_mw * rect.area / total_area, vdd)


def dram_power_map(
    floorplan: DieFloorplan,
    spec: DramPowerSpec,
    state: MemoryState,
    die: int,
    grid: Grid2D,
    vdd: float,
    mirrored: bool = False,
) -> PowerMap:
    """Power map of one DRAM die in a memory state.

    ``mirrored`` rasterizes all blocks reflected across the die's vertical
    center line, modelling a flipped die in an F2F pair (paper section
    4.2: "changing the die orientation of DRAM1 and DRAM3").
    """
    pmap = PowerMap.zeros(grid)
    axis_x = floorplan.outline.center.x

    def place(rect: Rect) -> Rect:
        return rect.mirrored_x(axis_x) if mirrored else rect

    # Standby power: uniform over the die.
    pmap.add_block_power(floorplan.outline, spec.standby_mw, vdd)

    banks = state.active[die]
    if not banks:
        return pmap

    bank_blocks = {b.bank_id: b for b in floorplan.banks()}
    per_channel: Dict[int, list] = {}
    for bank_id in banks:
        if bank_id not in bank_blocks:
            raise ConfigurationError(
                f"bank {bank_id} not in floorplan {floorplan.name!r}"
            )
        per_channel.setdefault(bank_blocks[bank_id].channel, []).append(bank_id)

    io_blocks = floorplan.blocks_of_type(BlockType.IO)
    if not io_blocks:
        # HMC die: the shared periphery spine plays the IO role.
        io_blocks = floorplan.blocks_of_type(BlockType.PERIPHERY)
    if not io_blocks:
        raise ConfigurationError(
            f"floorplan {floorplan.name!r} has no IO or periphery blocks"
        )

    for chan, chan_banks in per_channel.items():
        act = state.channel_io_activity(die, chan, floorplan)
        # Channel periphery + IO power over the IO blocks.
        _area_weighted(
            pmap,
            (place(b.rect) for b in io_blocks),
            spec.io_base_mw + act * spec.io_dyn_mw,
            vdd,
        )
        # Bank power: static per bank + dynamic split across the banks
        # interleaving on this channel; a decoder_fraction of each bank's
        # power sits in the spine segment aligned with the bank's columns.
        bank_total = channel_bank_power_mw(spec, len(chan_banks), act)
        per_bank = bank_total / len(chan_banks)
        for bank_id in chan_banks:
            rect = place(bank_blocks[bank_id].rect)
            decoder = per_bank * spec.decoder_fraction
            pmap.add_block_power(rect, per_bank - decoder, vdd)
            if decoder:
                segment = _spine_segment(rect, io_blocks, mirrored, place)
                pmap.add_block_power(segment, decoder, vdd)
    return pmap


def _spine_segment(bank_rect: Rect, io_blocks, mirrored: bool, place) -> Rect:
    """The IO-spine strip sharing the bank's column extent.

    Falls back to the nearest IO block's full rect when the bank's x-range
    does not overlap any IO block (e.g. cross-shaped pad areas).
    """
    best = None
    best_dy = None
    for block in io_blocks:
        spine = place(block.rect)
        x0 = max(bank_rect.x0, spine.x0)
        x1 = min(bank_rect.x1, spine.x1)
        if x1 > x0:
            dy = abs(spine.center.y - bank_rect.center.y)
            if best is None or dy < best_dy:
                best = Rect(x0, spine.y0, x1, spine.y1)
                best_dy = dy
    if best is not None:
        return best
    # No x overlap: use the nearest IO block outright.
    nearest = min(
        io_blocks,
        key=lambda b: place(b.rect).center.manhattan_to(bank_rect.center),
    )
    return place(nearest.rect)


def logic_power_map(
    floorplan: DieFloorplan,
    spec: LogicPowerSpec,
    grid: Grid2D,
    vdd: float,
    scale: float = 1.0,
) -> PowerMap:
    """Power map of a logic die.

    ``scale`` uniformly scales the logic activity (used for sensitivity
    studies; 1.0 reproduces the paper's full-activity host).
    """
    if scale < 0.0:
        raise ConfigurationError(f"scale must be >= 0, got {scale}")
    pmap = PowerMap.zeros(grid)
    pmap.add_block_power(floorplan.outline, spec.background_mw * scale, vdd)
    for block in floorplan.blocks:
        power = spec.per_block_mw.get(block.type, 0.0) * scale
        if power:
            pmap.add_block_power(block.rect, power, vdd)
    return pmap
