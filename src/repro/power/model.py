"""Calibrated die power model.

The paper scales power measurements from Samsung and Micron into
20nm-class DRAM technology (section 2.1); the measured maps themselves are
proprietary.  This module reconstructs an equivalent block-level model
from the aggregate numbers the paper publishes:

* Table 5 active-die powers for stacked DDR3 under interleaved read:
  220.5 mW at 100% I/O activity, 175.5 mW at 50%, 126.0 mW at 25%, with
  idle dies near 27-30 mW;
* the 2D DDR3 anchors of section 2.2 (22.5 mV single-bank read).

Decomposition (per die)::

    P_die = standby                                  (always)
          + sum over active channels:
                io_base + act_c * io_dyn             (channel periphery+IO)
          + sum over active banks:
                bank_static + duty_b * bank_dyn      (array + decoders)

where ``act_c`` is the channel's I/O activity (bus occupancy share of this
die) and ``duty_b = act_c`` for every interleaved bank: zero-bubble
interleaving hides tRC by row-cycling each bank while its partner bursts,
so every active bank's array works at the bus activity rate (this is why
IDD7 exceeds IDD4R and why the two-bank 2D IR drop beats single-bank).

With the stacked-DDR3 constants below the model reproduces Table 5's 100%
and 50% rows exactly; the 25% row comes out at 153.0 mW against the
paper's 126.0 mW (the paper's own text quotes -44.7% ~ 121.9 mW for that
row, so the source table is internally inconsistent at 25%; we keep the
model linear in activity and record the deviation in EXPERIMENTS.md).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.errors import ConfigurationError
from repro.floorplan.blocks import BlockType, DieFloorplan
from repro.dram.timing import TimingParams
from repro.power.state import MemoryState


@dataclass(frozen=True)
class DramPowerSpec:
    """Per-die DRAM power constants, all in mW.

    ``standby_mw`` is the whole idle die; the other terms are per channel
    or per bank as described in the module docstring.
    """

    standby_mw: float
    io_base_mw: float
    io_dyn_mw: float
    bank_static_mw: float
    bank_dyn_mw: float
    #: fraction of each active bank's power drawn by its column decoders
    #: and I/O drivers, which sit in the center-spine segment aligned with
    #: the bank's columns (the rest is in the array itself).  Banks in the
    #: same column share that spine segment, concentrating current --
    #: the source of the worst-case edge-column state of Table 5.
    decoder_fraction: float = 0.0

    def __post_init__(self) -> None:
        for name in ("standby_mw", "io_base_mw", "io_dyn_mw", "bank_static_mw", "bank_dyn_mw"):
            if getattr(self, name) < 0.0:
                raise ConfigurationError(f"{name} must be >= 0")
        if not 0.0 <= self.decoder_fraction <= 1.0:
            raise ConfigurationError("decoder_fraction must be in [0, 1]")


#: Stacked DDR3, calibrated to Table 5 (see module docstring).
#: active die @ (2 banks, act=1.0) = 27 + 23.5 + 2*(40 + 45)       = 220.5 mW
#: active die @ (2 banks, act=0.5) = 27 + 23.5 + 2*(40 + 22.5)     = 175.5 mW
#: The bank-vs-periphery split and the decoder fraction are chosen so
#: that single-bank memory states stay well under the paper's 24 mV
#: policy constraint while the worst-case two-banks-on-one-die states
#: exceed it -- the structural requirement of section 5.2 (the IR-aware
#: policy must be able to schedule *something*, yet the IDD7 state
#: 0-0-0-2 must be forbidden).
DDR3_POWER = DramPowerSpec(
    standby_mw=27.0,
    io_base_mw=23.5,
    io_dyn_mw=0.0,
    bank_static_mw=40.0,
    bank_dyn_mw=45.0,
    decoder_fraction=0.35,
)

#: Wide I/O: mobile low-power part (200 Mbps/pin, Table 1); constants are
#: per channel / per bank, four channels per die.
WIDEIO_POWER = DramPowerSpec(
    standby_mw=8.0,
    io_base_mw=3.0,
    io_dyn_mw=6.0,
    bank_static_mw=5.0,
    bank_dyn_mw=7.0,
    decoder_fraction=0.25,
)

#: HMC: high-bandwidth part (2500 Mbps/pin, 16 vaults); large power
#: consumption is the benchmark's defining trait (section 2.1).
HMC_POWER = DramPowerSpec(
    standby_mw=110.0,
    io_base_mw=9.0,
    io_dyn_mw=26.0,
    bank_static_mw=18.0,
    bank_dyn_mw=30.0,
    decoder_fraction=0.25,
)


def channel_bank_power_mw(
    spec: DramPowerSpec, banks_in_channel_on_die: int, activity: float
) -> float:
    """Power of the active banks of one channel on one die.

    Every interleaved bank row-cycles at the channel's bus activity rate
    (see module docstring), so both the static and the dynamic terms scale
    with the bank count.
    """
    if banks_in_channel_on_die < 0:
        raise ConfigurationError("bank count must be >= 0")
    if not 0.0 <= activity <= 1.0:
        raise ConfigurationError(f"activity must be in [0, 1], got {activity}")
    if banks_in_channel_on_die == 0:
        return 0.0
    return banks_in_channel_on_die * (
        spec.bank_static_mw + activity * spec.bank_dyn_mw
    )


def die_power_mw(
    spec: DramPowerSpec,
    floorplan: DieFloorplan,
    state: MemoryState,
    die: int,
) -> float:
    """Total power of one die in a memory state, mW."""
    total = spec.standby_mw
    banks = state.active[die]
    if not banks:
        return total
    bank_channel = {b.bank_id: b.channel for b in floorplan.banks()}
    per_channel: Dict[int, int] = {}
    for bank_id in banks:
        if bank_id not in bank_channel:
            raise ConfigurationError(
                f"bank {bank_id} not in floorplan {floorplan.name!r}"
            )
        chan = bank_channel[bank_id]
        per_channel[chan] = per_channel.get(chan, 0) + 1
    for chan, count in per_channel.items():
        act = state.channel_io_activity(die, chan, floorplan)
        total += spec.io_base_mw + act * spec.io_dyn_mw
        total += channel_bank_power_mw(spec, count, act)
    return total


def stack_power_mw(
    spec: DramPowerSpec, floorplan: DieFloorplan, state: MemoryState
) -> float:
    """Total power of the whole DRAM stack in a memory state, mW."""
    return sum(
        die_power_mw(spec, floorplan, state, die) for die in range(state.num_dies)
    )


@dataclass(frozen=True)
class LogicPowerSpec:
    """Logic die power split by block type, mW per block.

    The logic die runs continuously in the on-chip scenarios; its noise
    couples into the DRAM when the PDNs are shared (paper section 3.1,
    50.05 mV logic self noise).
    """

    per_block_mw: Dict[BlockType, float]
    background_mw: float = 0.0

    def total_mw(self, floorplan: DieFloorplan) -> float:
        """Total logic die power for a floorplan."""
        total = self.background_mw
        for block in floorplan.blocks:
            total += self.per_block_mw.get(block.type, 0.0)
        return total


#: OpenSPARC T2 in 28 nm.  Tuned so the logic die's self IR drop lands near
#: the paper's 50.05 mV with the fixed logic PDN of tech.calibration.
T2_LOGIC_POWER = LogicPowerSpec(
    per_block_mw={
        BlockType.CORE: 680.0,
        BlockType.CACHE: 1450.0,
        BlockType.SOC: 120.0,
    },
    background_mw=300.0,
)

#: HMC logic die: vault controllers plus SerDes links.
HMC_LOGIC_POWER = LogicPowerSpec(
    per_block_mw={
        BlockType.VAULT_CTRL: 300.0,
        BlockType.SERDES: 1600.0,
    },
    background_mw=400.0,
)


# -- per-command energy ledger ------------------------------------------------
#
# The controller engine reports per-command issue counts
# (``SimResult.commands``) alongside the state-occupancy histogram.  The
# ledger turns both into energy through the same power constants and
# reconciles them: the command path charges each ACT/PRE/RD/WR/REF its
# per-command energy on top of the standby background, while the
# occupancy path integrates state power over the cycles each memory
# state was held.  The two are independent estimates of the same run --
# the command path resolves *edges* (what was issued), the occupancy
# path resolves *levels* (what was held active) -- so their residual is
# a calibration diagnostic, not an error.


def state_power_mw(
    spec: DramPowerSpec, counts: "tuple[int, ...]", activity: float = 1.0
) -> float:
    """Closed-form stack power of a memory state given per-die active
    bank counts (the floorplan-free analogue of :func:`stack_power_mw`,
    uniform activity, one channel per die)."""
    if not 0.0 <= activity <= 1.0:
        raise ConfigurationError(f"activity must be in [0, 1], got {activity}")
    total = len(counts) * spec.standby_mw
    for c in counts:
        if c < 0:
            raise ConfigurationError("active bank counts must be >= 0")
        if c:
            total += spec.io_base_mw + activity * spec.io_dyn_mw
            total += c * (spec.bank_static_mw + activity * spec.bank_dyn_mw)
    return total


@dataclass(frozen=True)
class CommandEnergySpec:
    """Energy per DRAM command, nJ (1 mW x 1 us).

    Built from the calibrated die power constants and a timing profile:
    each command's charge is its characteristic power times its timing
    footprint (tRCD for ACT, tRP for PRE, latency+burst for RD/WR, tRFC
    for REF across all banks of the die).
    """

    act_nj: float
    pre_nj: float
    rd_nj: float
    wr_nj: float
    ref_nj: float

    @classmethod
    def from_power(
        cls,
        spec: DramPowerSpec,
        timing: "TimingParams",
        banks_per_die: int = 8,
        activity: float = 1.0,
    ) -> "CommandEnergySpec":
        bank_mw = spec.bank_static_mw + spec.bank_dyn_mw
        burst_mw = activity * spec.io_dyn_mw + spec.bank_dyn_mw
        return cls(
            act_nj=bank_mw * timing.command_duration_us("ACT"),
            pre_nj=bank_mw * timing.command_duration_us("PRE"),
            rd_nj=burst_mw * timing.command_duration_us("RD"),
            wr_nj=burst_mw * timing.command_duration_us("WR"),
            ref_nj=banks_per_die * bank_mw * timing.command_duration_us("REF"),
        )

    def energy_nj(self, command: str) -> float:
        try:
            return {
                "ACT": self.act_nj,
                "PRE": self.pre_nj,
                "RD": self.rd_nj,
                "WR": self.wr_nj,
                "REF": self.ref_nj,
            }[command]
        except KeyError:
            raise ConfigurationError(
                f"unknown DRAM command {command!r}"
            ) from None


@dataclass(frozen=True)
class EnergyReport:
    """Reconciled energy accounting of one simulation run (all nJ)."""

    #: command-path split: standby background + per-command charges.
    background_nj: float
    per_command_nj: Dict[str, float]
    #: occupancy-path integral of state power over held cycles.
    occupancy_nj: float
    #: cycles spent in untracked states (``SimResult.states_dropped``),
    #: charged at the idle floor in the occupancy path.
    unattributed_cycles: int

    @property
    def command_total_nj(self) -> float:
        return self.background_nj + sum(self.per_command_nj.values())

    @property
    def mismatch_fraction(self) -> float:
        """Signed residual of the command path vs the occupancy path."""
        if self.occupancy_nj == 0.0:
            return 0.0
        return (self.command_total_nj - self.occupancy_nj) / self.occupancy_nj

    def summary(self) -> str:
        cmds = ", ".join(
            f"{k}={v:.0f}" for k, v in sorted(self.per_command_nj.items())
        )
        return (
            f"command path {self.command_total_nj:.0f} nJ "
            f"(background {self.background_nj:.0f}; {cmds}) vs "
            f"occupancy path {self.occupancy_nj:.0f} nJ "
            f"({self.mismatch_fraction:+.1%})"
        )


def energy_ledger(
    commands: Dict[str, int],
    state_occupancy: Dict["tuple[int, ...]", int],
    spec: DramPowerSpec,
    timing: "TimingParams",
    num_dies: int,
    banks_per_die: int = 8,
    activity: float = 1.0,
    states_dropped: int = 0,
) -> EnergyReport:
    """Build the reconciled :class:`EnergyReport` for one run.

    ``commands`` and ``state_occupancy`` come straight from
    ``SimResult.commands`` / ``SimResult.state_occupancy``;
    ``states_dropped`` (cycles beyond the tracking cap) is charged at the
    idle floor so long trace runs stay conservative rather than lossy.
    """
    energies = CommandEnergySpec.from_power(
        spec, timing, banks_per_die=banks_per_die, activity=activity
    )
    total_cycles = sum(state_occupancy.values()) + states_dropped
    runtime_us = timing.cycles_to_us(total_cycles)
    background_nj = num_dies * spec.standby_mw * runtime_us
    per_command = {
        cmd: count * energies.energy_nj(cmd)
        for cmd, count in commands.items()
        if count
    }
    occupancy_nj = 0.0
    for counts, cycles in state_occupancy.items():
        occupancy_nj += state_power_mw(spec, counts, activity) * timing.cycles_to_us(cycles)
    occupancy_nj += num_dies * spec.standby_mw * timing.cycles_to_us(states_dropped)
    return EnergyReport(
        background_nj=background_nj,
        per_command_nj=per_command,
        occupancy_nj=occupancy_nj,
        unattributed_cycles=states_dropped,
    )
