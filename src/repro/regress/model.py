"""IR-drop surrogate model fitted to R-Mesh samples.

The paper: "we choose a few sample cases for M2, M3, and TC, because they
are continuous variables.  For other optimization options, we search all
valid combinations.  After performing R-Mesh simulations on the sample
cases, we use MATLAB regression analysis to obtain an IR-drop model with a
root mean square error (RMSE) of less than 0.135 and an R^2 of larger
than 0.999" (section 6.1).

Here the same structure is reproduced with numpy least squares: one linear
model per discrete option combination, over a physically motivated basis
in the continuous variables.  IR drop decomposes into contributions that
scale like ``1/usage`` (sheet resistance of a strap PDN) and ``1/TC`` and
``1/sqrt(TC)`` (parallel TSVs and cluster-perimeter crowding), so the
basis::

    [1, 1/M2, 1/M3, 1/TC, 1/sqrt(TC), 1/(M3*TC)]

fits each combination's response surface almost exactly.
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.designs import BenchmarkSpec
from repro.errors import RegressionError
from repro.pdn.config import (
    Bonding,
    BumpLocation,
    PDNConfig,
    RDLScope,
    TSVLocation,
)
from repro.pdn.stackup import build_stack
from repro.perf.parallel import map_design_points
from repro.perf.timers import timed
from repro.tech.calibration import DEFAULT_TECH, TechConstants

#: Discrete part of a design point (the regression fits one linear model
#: per combo).
DiscreteKey = Tuple[TSVLocation, bool, Bonding, bool, bool]


def discrete_key(config: PDNConfig) -> DiscreteKey:
    """The discrete option tuple a config belongs to (one fit each)."""
    return (
        config.tsv_location,
        config.dedicated_tsv,
        config.bonding,
        config.rdl.enabled,
        config.wire_bond,
    )


def _basis(m2: float, m3: float, tc: int) -> np.ndarray:
    return np.array(
        [
            1.0,
            1.0 / m2,
            1.0 / m3,
            1.0 / tc,
            1.0 / np.sqrt(tc),
            1.0 / (m3 * tc),
        ]
    )


@dataclass(frozen=True)
class DesignSample:
    """One evaluated design point."""

    config: PDNConfig
    ir_mv: float


@dataclass
class RegressionReport:
    """Fit quality over the training samples (paper quotes RMSE and R^2)."""

    rmse_mv: float
    r_squared: float
    num_samples: int
    num_combos: int
    sample_time_s: float
    fit_time_s: float


def valid_discrete_combos(bench: BenchmarkSpec) -> List[DiscreteKey]:
    """All discrete combinations legal for a benchmark.

    Filters the Table 8 footnotes: allowed TSV locations, dedicated-TSV
    availability, and the edge-TSV + center-bump RDL requirement.
    """
    combos: List[DiscreteKey] = []
    bump = bench.stack.forced_bump_location
    for tl, td, bd, rl, wb in itertools.product(
        bench.allowed_tsv_locations,
        (False, True),
        (Bonding.F2B, Bonding.F2F),
        (False, True),
        (False, True),
    ):
        if td and not bench.dedicated_tsv_available:
            continue
        if (
            tl is TSVLocation.EDGE
            and bump is BumpLocation.CENTER
            and not rl
        ):
            continue  # section 6.2: edge TSVs need the RDL here
        combos.append((tl, td, bd, rl, wb))
    return combos


def config_from_parts(
    bench: BenchmarkSpec,
    key: DiscreteKey,
    m2: float,
    m3: float,
    tc: int,
) -> PDNConfig:
    """Assemble a full PDNConfig from a discrete combo + continuous point."""
    tl, td, bd, rl, wb = key
    bump = bench.stack.forced_bump_location or (
        BumpLocation.CENTER if tl is TSVLocation.CENTER else BumpLocation.MATCH
    )
    return PDNConfig(
        m2_usage=m2,
        m3_usage=m3,
        tsv_count=tc,
        tsv_location=tl,
        dedicated_tsv=td,
        bonding=bd,
        rdl=RDLScope.ALL if rl else RDLScope.NONE,
        wire_bond=wb,
        bump_location=bump,
    )


def continuous_sample_grid(
    bench: BenchmarkSpec,
    m2_points: int = 3,
    m3_points: int = 3,
    tc_points: int = 3,
) -> List[Tuple[float, float, int]]:
    """Sample grid over the continuous variables within legal ranges."""
    m2s = np.linspace(0.10, 0.20, m2_points)
    m3s = np.linspace(0.10, 0.40, m3_points)
    lo, hi = bench.tsv_count_range
    if lo == hi:
        tcs: List[int] = [lo]
    else:
        # Geometric spacing: the response is steep at low TSV counts.
        tcs = sorted(
            {int(round(t)) for t in np.geomspace(lo, hi, tc_points)}
        )
    return [
        (float(m2), float(m3), tc)
        for m2 in m2s
        for m3 in m3s
        for tc in tcs
    ]


def _eval_combo_chunk(
    task: Tuple[BenchmarkSpec, TechConstants, Optional[float], DiscreteKey,
                List[Tuple[float, float, int]]],
) -> List[DesignSample]:
    """Evaluate one discrete combo's continuous grid (worker unit).

    Module-level so it pickles into :class:`ProcessPoolExecutor` workers;
    each design point builds, factorizes, and solves its own stack, so
    points are independent and chunking by combo just bounds pickling
    overhead.
    """
    bench, tech, pitch, key, grid = task
    state = bench.reference_state()
    out: List[DesignSample] = []
    for m2, m3, tc in grid:
        config = config_from_parts(bench, key, m2, m3, tc)
        stack = build_stack(bench.stack, config, tech=tech, pitch=pitch)
        out.append(DesignSample(config=config, ir_mv=stack.dram_max_mv(state)))
    return out


def sample_design_space(
    bench: BenchmarkSpec,
    tech: TechConstants = DEFAULT_TECH,
    pitch: Optional[float] = None,
    m2_points: int = 3,
    m3_points: int = 3,
    tc_points: int = 3,
    combos: Optional[Sequence[DiscreteKey]] = None,
    workers: Optional[int] = None,
) -> List[DesignSample]:
    """Run R-Mesh solves over the sampled design space of one benchmark.

    ``workers`` fans the combos x grid sweep over processes (``None``/0
    consults ``REPRO_WORKERS``; 1 runs serially).  The sample order --
    combo-major, grid-minor -- and every IR value are identical whatever
    the worker count.
    """
    grid = continuous_sample_grid(bench, m2_points, m3_points, tc_points)
    keys = list(combos) if combos is not None else valid_discrete_combos(bench)
    tasks = [(bench, tech, pitch, key, grid) for key in keys]
    with timed("regress.sample"):
        chunks = map_design_points(_eval_combo_chunk, tasks, workers=workers)
    return [sample for chunk in chunks for sample in chunk]


class IRDropSurrogate:
    """Piecewise-linear-in-basis IR-drop model, one fit per discrete combo."""

    def __init__(self) -> None:
        self._coeffs: Dict[DiscreteKey, np.ndarray] = {}
        self.report: Optional[RegressionReport] = None

    def fit(self, samples: Sequence[DesignSample], sample_time_s: float = 0.0) -> RegressionReport:
        """Least-squares fit; returns (and stores) the quality report."""
        if not samples:
            raise RegressionError("no samples to fit")
        t0 = time.perf_counter()
        by_combo: Dict[DiscreteKey, List[DesignSample]] = {}
        for s in samples:
            by_combo.setdefault(discrete_key(s.config), []).append(s)
        residuals: List[float] = []
        values: List[float] = []
        for key, group in by_combo.items():
            a = np.array(
                [
                    _basis(s.config.m2_usage, s.config.m3_usage, s.config.tsv_count)
                    for s in group
                ]
            )
            y = np.array([s.ir_mv for s in group])
            # With fewer samples than basis terms (e.g. Wide I/O's pinned
            # TSV count) lstsq returns the minimum-norm exact fit.
            coeffs, *_ = np.linalg.lstsq(a, y, rcond=None)
            self._coeffs[key] = coeffs
            pred = a @ coeffs
            residuals.extend((pred - y).tolist())
            values.extend(y.tolist())
        res = np.array(residuals)
        y_all = np.array(values)
        ss_res = float(np.sum(res**2))
        ss_tot = float(np.sum((y_all - y_all.mean()) ** 2))
        self.report = RegressionReport(
            rmse_mv=float(np.sqrt(ss_res / len(res))),
            r_squared=1.0 - ss_res / ss_tot if ss_tot > 0 else 1.0,
            num_samples=len(samples),
            num_combos=len(by_combo),
            sample_time_s=sample_time_s,
            fit_time_s=time.perf_counter() - t0,
        )
        return self.report

    def predict(self, config: PDNConfig) -> float:
        """Predicted max IR drop (mV) for a configuration."""
        key = discrete_key(config)
        if key not in self._coeffs:
            raise RegressionError(
                f"no fit for discrete combo {key}; refit with it included"
            )
        return float(
            _basis(config.m2_usage, config.m3_usage, config.tsv_count)
            @ self._coeffs[key]
        )

    def predict_parts(
        self, key: DiscreteKey, m2: float, m3: float, tc: int
    ) -> float:
        """Predict from raw parts (optimizer hot path, no PDNConfig)."""
        if key not in self._coeffs:
            raise RegressionError(f"no fit for discrete combo {key}")
        return float(_basis(m2, m3, tc) @ self._coeffs[key])

    @property
    def combos(self) -> List[DiscreteKey]:
        return list(self._coeffs)
