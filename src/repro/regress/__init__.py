"""Regression analysis of the IR-drop design space (paper section 6.1)."""

from repro.regress.model import (
    DesignSample,
    IRDropSurrogate,
    RegressionReport,
    sample_design_space,
)

__all__ = [
    "DesignSample",
    "IRDropSurrogate",
    "RegressionReport",
    "sample_design_space",
]
