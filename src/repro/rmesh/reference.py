"""Golden reference solver and R-Mesh validation (paper Figure 4).

The paper validates its R-Mesh against Cadence Encounter Power System
(EPS): max IR drops of 32.2 mV (R-Mesh) vs 32.6 mV (EPS), a 1.3% error,
with a 517x speedup because the R-Mesh "does not perform parasitic
extraction from the layout and reduces the total resistor count".

Without the commercial tool, the golden reference here is the same
physics at a much finer discretization: the production R-Mesh coarsens
the PDN onto a ~0.4 mm grid, while the reference resolves ~0.13 mm --
an order of magnitude more resistors, playing exactly EPS's role of the
higher-fidelity, slower signoff model (DESIGN.md section 2).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Optional

from repro.power.state import MemoryState
from repro.pdn.stackup import PDNStack
from repro.tech.calibration import DEFAULT_TECH, TechConstants


@dataclass
class ValidationReport:
    """Coarse-vs-reference comparison for one memory state."""

    coarse_ir_mv: float
    reference_ir_mv: float
    coarse_time_s: float
    reference_time_s: float
    coarse_resistors: int
    reference_resistors: int

    @property
    def error_percent(self) -> float:
        """Relative max-IR error of the production mesh, %."""
        return abs(self.coarse_ir_mv - self.reference_ir_mv) / self.reference_ir_mv * 100.0

    @property
    def speedup(self) -> float:
        """Runtime ratio reference/coarse (the paper reports 517x; ours is
        bounded by the resistor-count ratio of the two discretizations)."""
        if self.coarse_time_s <= 0.0:
            return float("inf")
        return self.reference_time_s / self.coarse_time_s

    def __str__(self) -> str:  # pragma: no cover - repr convenience
        return (
            f"R-Mesh {self.coarse_ir_mv:.2f} mV vs reference "
            f"{self.reference_ir_mv:.2f} mV ({self.error_percent:.1f}% error, "
            f"{self.speedup:.0f}x speedup, "
            f"{self.coarse_resistors} vs {self.reference_resistors} resistors)"
        )


def validate_against_reference(
    build: Callable[[Optional[float]], PDNStack],
    state: MemoryState,
    tech: TechConstants = DEFAULT_TECH,
    coarse_pitch: Optional[float] = None,
    reference_pitch: Optional[float] = None,
) -> ValidationReport:
    """Solve one state at production and reference resolution.

    ``build`` is a callable mapping a mesh pitch to a built stack (so the
    same design can be re-discretized); timings cover build+factorize+
    solve for each resolution, mirroring how the paper timed both tools
    end to end.
    """
    coarse_pitch = coarse_pitch or tech.mesh_pitch
    reference_pitch = reference_pitch or tech.reference_pitch

    t0 = time.perf_counter()
    coarse = build(coarse_pitch)
    coarse_ir = coarse.dram_max_mv(state)
    coarse_time = time.perf_counter() - t0
    coarse_resistors = coarse.model.num_resistors

    t0 = time.perf_counter()
    reference = build(reference_pitch)
    reference_ir = reference.dram_max_mv(state)
    reference_time = time.perf_counter() - t0

    return ValidationReport(
        coarse_ir_mv=coarse_ir,
        reference_ir_mv=reference_ir,
        coarse_time_s=coarse_time,
        reference_time_s=reference_time,
        coarse_resistors=coarse_resistors,
        reference_resistors=reference.model.num_resistors,
    )
