"""Branch-current extraction and TSV current-crowding analysis.

The DC solve returns node voltages; this module recovers the branch
currents (I = g * dV) so users can study *where* the supply current
actually flows.  The paper leans on exactly this kind of analysis:
section 3.2 discusses current crowding at misaligned TSVs, and its
reference [6] (Zhao, Scheuermann, Lim, TCPMT'14) models DC current
crowding of TSV-based 3D connections.

Two views are provided:

* per-link currents for every vertical element (TSVs, F2F vias, bond
  wires, supply links), aggregated into a :class:`CrowdingReport` with
  the max/mean crowding factor, and
* per-layer lateral current-density fields for hotspot inspection.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.errors import SolverError
from repro.rmesh.solve import IRDropResult
from repro.rmesh.stack import StackModel


@dataclass(frozen=True)
class LinkCurrent:
    """Current through one vertical link, amperes (positive = a -> b)."""

    node_a: int
    node_b: int
    conductance: float
    current: float


@dataclass
class CrowdingReport:
    """Distribution of current over a group of parallel vertical links.

    "Crowding factor" is the classic metric: the worst link's current
    over the uniform share (total / count).  1.0 means perfectly balanced
    TSVs; the paper's misaligned and center-clustered configurations show
    factors well above that.
    """

    currents: np.ndarray  # per-link magnitudes, A

    def __post_init__(self) -> None:
        if self.currents.size == 0:
            raise SolverError("crowding report over an empty link group")

    @property
    def total_a(self) -> float:
        return float(np.sum(self.currents))

    @property
    def max_a(self) -> float:
        return float(np.max(self.currents))

    @property
    def mean_a(self) -> float:
        return float(np.mean(self.currents))

    @property
    def crowding_factor(self) -> float:
        """max / uniform-share; 1.0 = perfectly balanced."""
        if self.total_a <= 0.0:
            return 1.0
        return self.max_a / (self.total_a / self.currents.size)

    @property
    def gini(self) -> float:
        """Gini coefficient of the current distribution (0 = uniform)."""
        if self.total_a <= 0.0:
            return 0.0
        sorted_c = np.sort(self.currents)
        n = sorted_c.size
        cum = np.cumsum(sorted_c)
        return float((n + 1 - 2 * np.sum(cum) / cum[-1]) / n)

    def __str__(self) -> str:  # pragma: no cover - repr convenience
        return (
            f"{self.currents.size} links, total {self.total_a * 1e3:.1f} mA, "
            f"worst {self.max_a * 1e3:.2f} mA, crowding factor "
            f"{self.crowding_factor:.2f}"
        )


class BranchCurrentAnalysis:
    """Recover branch currents from a solved state."""

    def __init__(self, result: IRDropResult) -> None:
        self.result = result
        self.model: StackModel = result.model

    # -- vertical links ------------------------------------------------------

    def link_currents(
        self, key_a: Optional[str] = None, key_b: Optional[str] = None
    ) -> List[LinkCurrent]:
        """Currents of the vertical links, optionally filtered to links
        joining two specific layers (in either direction)."""
        drops = self.result.drops
        sl_a = self.model.layer_slice(key_a) if key_a else None
        sl_b = self.model.layer_slice(key_b) if key_b else None

        def in_slice(node: int, sl) -> bool:
            return sl is None or sl.start <= node < sl.stop

        out: List[LinkCurrent] = []
        for link in self.model.vertical_links():
            a, b, g = link.node_a, link.node_b, link.conductance
            matches = (in_slice(a, sl_a) and in_slice(b, sl_b)) or (
                in_slice(b, sl_a) and in_slice(a, sl_b)
            )
            if not matches:
                continue
            out.append(
                LinkCurrent(
                    node_a=a,
                    node_b=b,
                    conductance=g,
                    current=g * (drops[b] - drops[a]),
                )
            )
        return out

    def interface_crowding(self, key_a: str, key_b: str) -> CrowdingReport:
        """Crowding over the links of one die-to-die interface.

        For a TSV interface this is the per-TSV current distribution of
        the paper's section 3.2 study.
        """
        links = self.link_currents(key_a, key_b)
        if not links:
            raise SolverError(f"no links between {key_a!r} and {key_b!r}")
        return CrowdingReport(np.abs(np.array([lk.current for lk in links])))

    def supply_crowding(self) -> CrowdingReport:
        """Crowding over the supply (C4 / package) entry links."""
        drops = self.result.drops
        currents = [
            link.conductance * drops[link.node]
            for link in self.model.supply_links()
        ]
        if not currents:
            raise SolverError("stack has no supply links")
        return CrowdingReport(np.abs(np.array(currents)))

    # -- lateral fields -----------------------------------------------------------

    def layer_current_density(self, key: str) -> np.ndarray:
        """Lateral current magnitude per node of one layer, amperes.

        Computed as the mean magnitude of the x/y edge currents incident
        on each node -- a hotspot field for current-density (EM-style)
        screening.
        """
        entry = None
        for layer_key in self.model.layer_keys:
            if layer_key == key:
                entry = self.model.layer_entry(key)
        if entry is None:
            raise SolverError(f"unknown layer {key!r}")
        mesh = entry.mesh
        grid = mesh.grid
        field = self.result.layer_drops(key)
        ix = np.abs(mesh.gx * (field[:, 1:] - field[:, :-1]))
        iy = np.abs(mesh.gy * (field[1:, :] - field[:-1, :]))
        density = np.zeros_like(field)
        counts = np.zeros_like(field)
        density[:, :-1] += ix
        density[:, 1:] += ix
        counts[:, :-1] += 1
        counts[:, 1:] += 1
        if iy.size:
            density[:-1, :] += iy
            density[1:, :] += iy
            counts[:-1, :] += 1
            counts[1:, :] += 1
        counts[counts == 0] = 1
        return density / counts

    def worst_lateral_hotspot(self, key: str) -> Tuple[Tuple[int, int], float]:
        """(grid index, current A) of the layer's worst lateral node."""
        density = self.layer_current_density(key)
        j, i = np.unravel_index(int(np.argmax(density)), density.shape)
        return (int(i), int(j)), float(density[j, i])
