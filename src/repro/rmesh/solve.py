"""Sparse DC solve of an assembled stack and IR-drop extraction.

The solver factorizes the conductance matrix once (scipy SuperLU) and
reuses the factorization across memory states: a new state only changes
the current right-hand side.  This is what makes building the controller's
IR-drop look-up table (section 5.2) cheap -- one factorization, dozens of
back-substitutions.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Mapping

import numpy as np
import scipy.sparse.linalg as spla

from repro.errors import SolverError
from repro.geometry import Point
from repro.power.powermap import PowerMap
from repro.rmesh.stack import StackModel
from repro.units import to_mv


@dataclass
class IRDropResult:
    """Node IR drops (volts) plus bookkeeping to slice them per die/layer."""

    model: StackModel
    drops: np.ndarray  # per global node, volts
    solve_time: float  # seconds spent in back-substitution

    def max_drop(self) -> float:
        """Worst IR drop anywhere in the stack, volts."""
        return float(self.drops.max())

    def max_drop_mv(self) -> float:
        return to_mv(self.max_drop())

    def die_max_drop(self, die: str) -> float:
        """Worst IR drop on one die, volts."""
        return float(self.drops[self.model.die_node_ids(die)].max())

    def die_max_drop_mv(self, die: str) -> float:
        return to_mv(self.die_max_drop(die))

    def layer_drops(self, key: str) -> np.ndarray:
        """IR drops of one layer reshaped to its grid (ny, nx)."""
        grid = self.model.layer_grid(key)
        return self.drops[self.model.layer_slice(key)].reshape(grid.ny, grid.nx)

    def per_die_max_mv(self) -> Dict[str, float]:
        """Worst drop per die in mV (report helper)."""
        return {die: self.die_max_drop_mv(die) for die in self.model.dies()}

    def ascii_heatmap(self, key: str, levels: str = " .:-=+*#%@") -> str:
        """Render one layer's IR-drop field as an ASCII heat map.

        Rows print top-down (max y first) so the picture matches a
        top-view layout plot; intensity is normalized to the layer's own
        maximum drop.  Handy for eyeballing hotspots in a terminal.
        """
        field = self.layer_drops(key)
        peak = float(field.max())
        lines = [f"{key}: max {peak * 1e3:.2f} mV"]
        span = peak if peak > 0 else 1.0
        for row in field[::-1]:
            chars = [
                levels[min(int(v / span * (len(levels) - 1)), len(levels) - 1)]
                for v in row
            ]
            lines.append("".join(chars))
        return "\n".join(lines)

    def worst_node_location(self) -> "tuple[str, Point]":
        """(layer key, stack-coordinate point) of the worst-drop node."""
        node = int(np.argmax(self.drops))
        for key in self.model.layer_keys:
            sl = self.model.layer_slice(key)
            if sl.start <= node < sl.stop:
                grid = self.model.layer_grid(key)
                i, j = grid.node_index(node - sl.start)
                local = grid.node_point(i, j)
                origin = self.model.layer_origin(key)
                return key, Point(local.x + origin.x, local.y + origin.y)
        raise SolverError(f"node {node} not inside any layer")  # pragma: no cover


class StackSolver:
    """Factorize a stack once, solve many load configurations."""

    def __init__(self, model: StackModel) -> None:
        self.model = model
        matrix = model.conductance_matrix().tocsc()
        t0 = time.perf_counter()
        try:
            self._lu = spla.splu(matrix)
        except RuntimeError as exc:  # singular matrix
            raise SolverError(f"factorization failed: {exc}") from exc
        self.factor_time = time.perf_counter() - t0
        self._num_nodes = model.num_nodes

    def solve_currents(self, currents: np.ndarray) -> IRDropResult:
        """Solve for node drops given a per-node current vector (A)."""
        if currents.shape != (self._num_nodes,):
            raise SolverError(
                f"current vector has shape {currents.shape}, expected "
                f"({self._num_nodes},)"
            )
        if np.any(currents < -1e-15):
            raise SolverError("negative load current: loads draw from VDD")
        t0 = time.perf_counter()
        drops = self._lu.solve(currents)
        elapsed = time.perf_counter() - t0
        if not np.all(np.isfinite(drops)):
            raise SolverError("solve produced non-finite drops")
        return IRDropResult(model=self.model, drops=drops, solve_time=elapsed)

    def solve_power_maps(
        self, maps: Mapping[str, PowerMap]
    ) -> IRDropResult:
        """Solve with loads given as power maps keyed by layer key.

        Each power map must be rasterized on the same grid as its target
        layer; the map's currents are drawn from that layer's nodes.
        """
        currents = np.zeros(self._num_nodes)
        for key, pmap in maps.items():
            sl = self.model.layer_slice(key)
            grid = self.model.layer_grid(key)
            if pmap.grid.nx != grid.nx or pmap.grid.ny != grid.ny:
                raise SolverError(
                    f"power map grid {pmap.grid.nx}x{pmap.grid.ny} does not "
                    f"match layer {key!r} grid {grid.nx}x{grid.ny}"
                )
            currents[sl] += pmap.flat()
        return self.solve_currents(currents)
