"""Sparse DC solve of an assembled stack and IR-drop extraction.

The solver factorizes the conductance matrix once (scipy SuperLU) and
reuses the factorization across memory states: a new state only changes
the current right-hand side.  This is what makes building the controller's
IR-drop look-up table (section 5.2) cheap -- one factorization, dozens of
back-substitutions.

Observability: factorization and every solve run inside trace spans
(``solver.factorize`` / ``solver.solve`` / ``solver.solve_many``); the
metrics registry counts factorizations and solved right-hand sides,
histograms the RHS batch sizes, and gauges each solve's relative
residual norm ``||Gx - b|| / ||b||`` as a numerical health check.  The
residual is computed on the already-solved vector, so recorded IR drops
are bitwise unaffected.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping

import numpy as np
import scipy.sparse.linalg as spla

from repro.errors import SolverError
from repro.geometry import Point
from repro.obs import metrics as _metrics
from repro.obs.trace import span
from repro.power.powermap import PowerMap
from repro.rmesh.stack import StackModel
from repro.units import to_mv


@dataclass
class IRDropResult:
    """Node IR drops (volts) plus bookkeeping to slice them per die/layer."""

    model: StackModel
    drops: np.ndarray  # per global node, volts
    solve_time: float  # seconds spent in back-substitution

    def max_drop(self) -> float:
        """Worst IR drop anywhere in the stack, volts."""
        return float(self.drops.max())

    def max_drop_mv(self) -> float:
        return to_mv(self.max_drop())

    def die_max_drop(self, die: str) -> float:
        """Worst IR drop on one die, volts."""
        return float(self.drops[self.model.die_node_ids(die)].max())

    def die_max_drop_mv(self, die: str) -> float:
        return to_mv(self.die_max_drop(die))

    def layer_drops(self, key: str) -> np.ndarray:
        """IR drops of one layer reshaped to its grid (ny, nx)."""
        grid = self.model.layer_grid(key)
        return self.drops[self.model.layer_slice(key)].reshape(grid.ny, grid.nx)

    def per_die_max_mv(self) -> Dict[str, float]:
        """Worst drop per die in mV (report helper)."""
        return {die: self.die_max_drop_mv(die) for die in self.model.dies()}

    def ascii_heatmap(self, key: str, levels: str = " .:-=+*#%@") -> str:
        """Render one layer's IR-drop field as an ASCII heat map.

        Rows print top-down (max y first) so the picture matches a
        top-view layout plot; intensity is normalized to the layer's own
        maximum drop.  Handy for eyeballing hotspots in a terminal.
        """
        field = self.layer_drops(key)
        peak = float(field.max())
        lines = [f"{key}: max {peak * 1e3:.2f} mV"]
        span = peak if peak > 0 else 1.0
        for row in field[::-1]:
            chars = [
                levels[min(int(v / span * (len(levels) - 1)), len(levels) - 1)]
                for v in row
            ]
            lines.append("".join(chars))
        return "\n".join(lines)

    def worst_node_location(self) -> "tuple[str, Point]":
        """(layer key, stack-coordinate point) of the worst-drop node."""
        node = int(np.argmax(self.drops))
        for key in self.model.layer_keys:
            sl = self.model.layer_slice(key)
            if sl.start <= node < sl.stop:
                grid = self.model.layer_grid(key)
                i, j = grid.node_index(node - sl.start)
                local = grid.node_point(i, j)
                origin = self.model.layer_origin(key)
                return key, Point(local.x + origin.x, local.y + origin.y)
        raise SolverError(f"node {node} not inside any layer")  # pragma: no cover


class StackSolver:
    """Factorize a stack once, solve many load configurations."""

    def __init__(self, model: StackModel) -> None:
        self.model = model
        matrix = model.conductance_matrix().tocsc()
        with span("solver.factorize", nodes=model.num_nodes) as sp:
            try:
                self._lu = spla.splu(matrix)
            except RuntimeError as exc:  # singular matrix
                raise SolverError(
                    f"factorization failed: {exc}",
                    num_nodes=model.num_nodes,
                ) from exc
        self.factor_time = sp.duration
        # Kept for residual-norm checks; the LU factors dominate memory.
        self._matrix = matrix
        self._num_nodes = model.num_nodes
        _metrics.inc("solver.factorizations")

    def _observe_solution(self, rhs: np.ndarray, drops: np.ndarray) -> None:
        """Record residual-norm and throughput metrics for one solve.

        Reads the solution only -- never mutates it -- so IR numbers are
        bitwise identical with or without observability output flags.
        """
        k = 1 if rhs.ndim == 1 else rhs.shape[1]
        residual = float(np.linalg.norm(self._matrix @ drops - rhs))
        scale = float(np.linalg.norm(rhs))
        relative = residual / scale if scale > 0.0 else residual
        _metrics.set_gauge("solver.residual_norm", relative)
        _metrics.observe("solver.residual_norm", relative)
        _metrics.inc("solver.rhs_solved", k)
        _metrics.observe("solver.rhs_batch_size", k)

    def solve_currents(self, currents: np.ndarray) -> IRDropResult:
        """Solve for node drops given a per-node current vector (A)."""
        if currents.shape != (self._num_nodes,):
            raise SolverError(
                f"current vector has shape {currents.shape}, expected "
                f"({self._num_nodes},)"
            )
        if np.any(currents < -1e-15):
            worst = int(np.argmin(currents))
            raise SolverError(
                "negative load current: loads draw from VDD",
                worst_node=worst,
                worst_current=float(currents[worst]),
            )
        with span("solver.solve") as sp:
            drops = self._lu.solve(currents)
        if not np.all(np.isfinite(drops)):
            raise SolverError(
                "solve produced non-finite drops",
                num_nodes=self._num_nodes,
                worst_node=int(np.argmax(~np.isfinite(drops))),
                nonfinite=int(np.count_nonzero(~np.isfinite(drops))),
            )
        self._observe_solution(currents, drops)
        return IRDropResult(
            model=self.model, drops=drops, solve_time=sp.duration
        )

    def solve_many(self, currents_matrix: np.ndarray) -> List[IRDropResult]:
        """Solve ``k`` load configurations in one back-substitution.

        ``currents_matrix`` has shape ``(num_nodes, k)``, one current
        vector per column.  The whole block goes through SuperLU's
        triangular solves in a single call, which amortizes the sparse
        traversal over all right-hand sides -- the batched form of the
        "one factorization, dozens of back-substitutions" trick the
        controller LUT build relies on.  Column ``i`` of the result is
        bitwise identical to ``solve_currents(currents_matrix[:, i])``.
        """
        if currents_matrix.ndim != 2 or currents_matrix.shape[0] != self._num_nodes:
            raise SolverError(
                f"currents matrix has shape {currents_matrix.shape}, "
                f"expected ({self._num_nodes}, k)"
            )
        if currents_matrix.shape[1] == 0:
            return []
        if np.any(currents_matrix < -1e-15):
            worst = int(np.argmin(currents_matrix.min(axis=1)))
            raise SolverError(
                "negative load current: loads draw from VDD",
                worst_node=worst,
            )
        k = currents_matrix.shape[1]
        with span("solver.solve_many", count=k, batch=k) as sp:
            block = self._lu.solve(np.asfortranarray(currents_matrix))
        if not np.all(np.isfinite(block)):
            raise SolverError(
                "solve produced non-finite drops",
                num_nodes=self._num_nodes,
                batch=k,
                nonfinite=int(np.count_nonzero(~np.isfinite(block))),
            )
        self._observe_solution(currents_matrix, block)
        per_rhs = sp.duration / block.shape[1]
        return [
            IRDropResult(
                model=self.model,
                drops=np.ascontiguousarray(block[:, i]),
                solve_time=per_rhs,
            )
            for i in range(block.shape[1])
        ]

    def currents_from_maps(self, maps: Mapping[str, PowerMap]) -> np.ndarray:
        """Assemble one global current vector from per-layer power maps.

        Each power map must be rasterized on the same grid as its target
        layer; the map's currents are drawn from that layer's nodes.
        """
        currents = np.zeros(self._num_nodes)
        for key, pmap in maps.items():
            sl = self.model.layer_slice(key)
            grid = self.model.layer_grid(key)
            if pmap.grid.nx != grid.nx or pmap.grid.ny != grid.ny:
                raise SolverError(
                    f"power map grid {pmap.grid.nx}x{pmap.grid.ny} does not "
                    f"match layer {key!r} grid {grid.nx}x{grid.ny}"
                )
            currents[sl] += pmap.flat()
        return currents

    def solve_power_maps(
        self, maps: Mapping[str, PowerMap]
    ) -> IRDropResult:
        """Solve with loads given as power maps keyed by layer key."""
        return self.solve_currents(self.currents_from_maps(maps))
