"""Sparse DC solve of an assembled stack and IR-drop extraction.

The solver prepares the conductance matrix once and reuses that setup
across memory states: a new state only changes the current right-hand
side.  This is what makes building the controller's IR-drop look-up
table (section 5.2) cheap -- one factorization, dozens of
back-substitutions.

*How* the system is solved is pluggable (:mod:`repro.rmesh.backends`):
the default ``direct`` backend is the historical SuperLU factorization,
bitwise identical to what this module always produced; ``cg`` and
``amg`` are preconditioned iterative paths whose setup artifacts can be
warm-started from a neighboring sweep point (:mod:`repro.pdn.sweep`).
Select per solver (``StackSolver(model, backend="cg")``), per process
(``REPRO_SOLVER=cg``), or per CLI invocation (``repro3d --solver cg``).

Observability: setup and every solve run inside trace spans
(``solver.factorize`` / ``solver.solve`` / ``solver.solve_many``, each
tagged with the backend); the metrics registry counts factorizations,
solved right-hand sides and iterative-solver iterations, histograms the
RHS batch sizes, and gauges the solve's relative residual norm
``||Gx - b|| / ||b||`` as a numerical health check.  The residual gauge
costs a full sparse matvec, so it is *sampled* (every
:data:`RESIDUAL_SAMPLE_EVERY`-th solve per solver; override with
``REPRO_RESIDUAL_EVERY``, ``1`` restores always-on) -- the LUT-build hot
loop no longer pays O(nnz) per right-hand side.  Residuals are computed
on the already-solved vector, so recorded IR drops are bitwise
unaffected by the sampling rate.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence

import numpy as np

from repro.errors import SolverError
from repro.geometry import Point
from repro.obs import metrics as _metrics
from repro.obs.trace import span
from repro.power.powermap import PowerMap
from repro.rmesh.backends import (
    ResidualTrace,
    SolverOperator,
    make_operator,
    resolve_backend,
)
from repro.rmesh.stack import StackModel
from repro.units import to_mv

#: Record the residual-norm gauge on every Nth solve per solver (the
#: first solve is always sampled).  ``REPRO_RESIDUAL_EVERY`` overrides.
RESIDUAL_SAMPLE_EVERY = 16

RESIDUAL_ENV = "REPRO_RESIDUAL_EVERY"


def _residual_every() -> int:
    value = int(os.environ.get(RESIDUAL_ENV) or RESIDUAL_SAMPLE_EVERY)
    return max(value, 1)


@dataclass
class IRDropResult:
    """Node IR drops (volts) plus bookkeeping to slice them per die/layer.

    ``drops`` may be a *view* into a shared solution block (the batched
    :meth:`StackSolver.solve_many` path keeps one Fortran-ordered block
    instead of per-column copies); treat it as read-only, like every
    library path does.  ``backend``/``iterations`` carry the solve's
    provenance (iterations is 0 for the direct path).
    """

    model: StackModel
    drops: np.ndarray  # per global node, volts
    solve_time: float  # seconds spent in back-substitution
    backend: str = "direct"
    iterations: int = field(default=0, compare=False)
    #: Residual history of this solve when the iterative backend traced
    #: it (sampled; see ``REPRO_TRACE_EVERY``); None for direct solves
    #: and untraced iterations.  Carries backend/preconditioner/rtol
    #: provenance plus a bounded ``[iteration, relative residual]`` curve.
    convergence: Optional["ResidualTrace"] = field(default=None, compare=False)
    #: Highest escalation rung the backend climbed to produce this
    #: solve (``None`` = converged as configured, ``"factor"`` =
    #: retried with a stronger preconditioner, ``"direct"`` = fell back
    #: to SuperLU).  See :class:`repro.rmesh.backends.EscalatingOperator`.
    escalated: Optional[str] = field(default=None, compare=False)

    def max_drop(self) -> float:
        """Worst IR drop anywhere in the stack, volts."""
        return float(self.drops.max())

    def max_drop_mv(self) -> float:
        return to_mv(self.max_drop())

    def die_max_drop(self, die: str) -> float:
        """Worst IR drop on one die, volts."""
        return float(self.drops[self.model.die_node_ids(die)].max())

    def die_max_drop_mv(self, die: str) -> float:
        return to_mv(self.die_max_drop(die))

    def layer_drops(self, key: str) -> np.ndarray:
        """IR drops of one layer reshaped to its grid (ny, nx)."""
        grid = self.model.layer_grid(key)
        return self.drops[self.model.layer_slice(key)].reshape(grid.ny, grid.nx)

    def per_die_max_mv(self) -> Dict[str, float]:
        """Worst drop per die in mV (report helper)."""
        return {die: self.die_max_drop_mv(die) for die in self.model.dies()}

    def ascii_heatmap(
        self,
        key: str,
        levels: str = " .:-=+*#%@",
        vmax: Optional[float] = None,
    ) -> str:
        """Render one layer's IR-drop field as an ASCII heat map.

        Rows print top-down (max y first) so the picture matches a
        top-view layout plot.  By default intensity is normalized to the
        layer's own maximum drop (the historical single-layer behavior);
        pass ``vmax`` (volts) to pin the scale externally -- a stack
        rendering must share one ``vmax`` across its layers or the
        per-layer auto-scale makes cross-layer comparisons mislead (see
        :meth:`ascii_heatmap_stack`).
        """
        field = self.layer_drops(key)
        peak = float(field.max())
        lines = [f"{key}: max {peak * 1e3:.2f} mV"]
        span = float(vmax) if vmax is not None and vmax > 0 else (
            peak if peak > 0 else 1.0
        )
        for row in field[::-1]:
            chars = [
                levels[min(int(v / span * (len(levels) - 1)), len(levels) - 1)]
                for v in row
            ]
            lines.append("".join(chars))
        return "\n".join(lines)

    def ascii_heatmap_stack(
        self,
        keys: Optional[Sequence[str]] = None,
        levels: str = " .:-=+*#%@",
    ) -> str:
        """Render several layers on ONE shared intensity scale.

        The scale is the worst drop across the selected layers (default:
        every layer of the stack), so a dim M3 next to a saturated M1
        means M3 really does carry less drop -- which per-layer
        auto-scaling cannot show.
        """
        keys = list(keys) if keys is not None else self.model.layer_keys
        if not keys:
            return ""
        vmax = max(float(self.layer_drops(key).max()) for key in keys)
        header = f"shared scale: max {vmax * 1e3:.2f} mV across {len(keys)} layers"
        parts = [header]
        parts.extend(
            self.ascii_heatmap(key, levels=levels, vmax=vmax) for key in keys
        )
        return "\n\n".join(parts)

    def worst_node_location(
        self, with_value: bool = False
    ) -> "tuple[str, Point] | tuple[str, Point, float]":
        """(layer key, stack-coordinate point) of the worst-drop node.

        With ``with_value=True`` the worst drop itself (volts) is
        appended: ``(layer key, point, drop)`` -- so callers get the
        where *and* the how-much in one lookup.
        """
        node = int(np.argmax(self.drops))
        for key in self.model.layer_keys:
            sl = self.model.layer_slice(key)
            if sl.start <= node < sl.stop:
                grid = self.model.layer_grid(key)
                i, j = grid.node_index(node - sl.start)
                local = grid.node_point(i, j)
                origin = self.model.layer_origin(key)
                point = Point(local.x + origin.x, local.y + origin.y)
                if with_value:
                    return key, point, float(self.drops[node])
                return key, point
        raise SolverError(f"node {node} not inside any layer")  # pragma: no cover


class StackSolver:
    """Prepare a stack's system once, solve many load configurations.

    ``backend`` picks the solve strategy (argument > ``REPRO_SOLVER`` >
    ``direct``; see :mod:`repro.rmesh.backends`).  ``warm_from`` hands in
    a neighboring solver whose preconditioner is reused when compatible
    -- the sweep warm-start path.
    """

    def __init__(
        self,
        model: StackModel,
        backend: Optional[str] = None,
        warm_from: "Optional[StackSolver]" = None,
    ) -> None:
        self.model = model
        self.backend = resolve_backend(backend)
        matrix = model.conductance_matrix().tocsc()
        with span(
            "solver.factorize", nodes=model.num_nodes, backend=self.backend
        ) as sp:
            self._op = make_operator(
                self.backend,
                matrix,
                warm_from=warm_from._op if warm_from is not None else None,
            )
        self.factor_time = sp.duration
        # Kept for residual-norm checks; the setup artifacts dominate memory.
        self._matrix = matrix
        self._num_nodes = model.num_nodes
        self._solve_count = 0
        _metrics.inc("solver.factorizations")
        _metrics.inc(f"solver.backend.{self._op.name}")

    # -- backend introspection ------------------------------------------------

    @property
    def operator(self) -> SolverOperator:
        """The prepared backend operator (preconditioner handoff point)."""
        return self._op

    @property
    def last_iterations(self) -> int:
        """Iteration count of the most recent solve (0 for direct)."""
        return self._op.iterations

    @property
    def reused_preconditioner(self) -> bool:
        """Whether this solver's setup reused a neighbor's preconditioner."""
        return self._op.reused_preconditioner

    def _observe_solution(self, rhs: np.ndarray, drops: np.ndarray) -> None:
        """Record throughput metrics -- and, sampled, the residual gauge.

        Reads the solution only -- never mutates it -- so IR numbers are
        bitwise identical with or without observability output flags.
        The residual norm costs a full sparse matvec, so it is computed
        only on every Nth solve per solver (first solve included); the
        cheap counters are recorded unconditionally.
        """
        k = 1 if rhs.ndim == 1 else rhs.shape[1]
        sampled = self._solve_count % _residual_every() == 0
        self._solve_count += 1
        _metrics.inc("solver.rhs_solved", k)
        _metrics.observe("solver.rhs_batch_size", k)
        if self._op.iterations:
            _metrics.set_gauge("solver.last_iterations", self._op.iterations)
        if not sampled:
            return
        residual = float(np.linalg.norm(self._matrix @ drops - rhs))
        scale = float(np.linalg.norm(rhs))
        relative = residual / scale if scale > 0.0 else residual
        _metrics.set_gauge("solver.residual_norm", relative)
        _metrics.observe("solver.residual_norm", relative)

    def solve_currents(
        self, currents: np.ndarray, x0: Optional[np.ndarray] = None
    ) -> IRDropResult:
        """Solve for node drops given a per-node current vector (A).

        ``x0`` is an optional initial guess for iterative backends
        (ignored by ``direct``): the previous sweep point's solution
        short-circuits most of each warm solve.
        """
        if currents.shape != (self._num_nodes,):
            raise SolverError(
                f"current vector has shape {currents.shape}, expected "
                f"({self._num_nodes},)"
            )
        if np.any(currents < -1e-15):
            worst = int(np.argmin(currents))
            raise SolverError(
                "negative load current: loads draw from VDD",
                worst_node=worst,
                worst_current=float(currents[worst]),
            )
        with span("solver.solve", backend=self.backend) as sp:
            drops = self._op.solve(currents, x0=x0)
            sp.attrs["iterations"] = self._op.iterations
        if not np.all(np.isfinite(drops)):
            raise SolverError(
                "solve produced non-finite drops",
                num_nodes=self._num_nodes,
                worst_node=int(np.argmax(~np.isfinite(drops))),
                nonfinite=int(np.count_nonzero(~np.isfinite(drops))),
            )
        self._observe_solution(currents, drops)
        return IRDropResult(
            model=self.model,
            drops=drops,
            solve_time=sp.duration,
            backend=self._op.name,
            iterations=self._op.iterations,
            convergence=self._op.last_trace,
            escalated=getattr(self._op, "escalation", None),
        )

    def solve_block(
        self, currents_matrix: np.ndarray, x0: Optional[np.ndarray] = None
    ) -> np.ndarray:
        """Solve ``k`` load configurations; return one Fortran-ordered block.

        ``currents_matrix`` has shape ``(num_nodes, k)``, one current
        vector per column; the result block matches it.  Column ``i`` is
        bitwise identical to ``solve_currents(currents_matrix[:, i])``.
        This is the memory-lean primitive under :meth:`solve_many`:
        callers that only need the raw drops (LUT builds, batched
        sweeps) can consume the block directly -- one allocation, no
        per-column copies.
        """
        if currents_matrix.ndim != 2 or currents_matrix.shape[0] != self._num_nodes:
            raise SolverError(
                f"currents matrix has shape {currents_matrix.shape}, "
                f"expected ({self._num_nodes}, k)"
            )
        if currents_matrix.shape[1] == 0:
            return np.empty((self._num_nodes, 0), order="F")
        if np.any(currents_matrix < -1e-15):
            worst = int(np.argmin(currents_matrix.min(axis=1)))
            raise SolverError(
                "negative load current: loads draw from VDD",
                worst_node=worst,
            )
        k = currents_matrix.shape[1]
        with span("solver.solve_many", count=k, batch=k, backend=self.backend) as sp:
            block = self._op.solve_block(
                np.asfortranarray(currents_matrix), x0=x0
            )
            sp.attrs["iterations"] = self._op.iterations
        if not np.all(np.isfinite(block)):
            raise SolverError(
                "solve produced non-finite drops",
                num_nodes=self._num_nodes,
                batch=k,
                nonfinite=int(np.count_nonzero(~np.isfinite(block))),
            )
        self._observe_solution(currents_matrix, block)
        self._last_block_time = sp.duration
        return block

    def solve_many(
        self, currents_matrix: np.ndarray, x0: Optional[np.ndarray] = None
    ) -> List[IRDropResult]:
        """Solve ``k`` load configurations in one back-substitution.

        The whole block goes through the backend in a single
        :meth:`solve_block` call -- the batched form of the "one
        factorization, dozens of back-substitutions" trick the
        controller LUT build relies on.  Each result's ``drops`` is a
        zero-copy *view* into the shared Fortran-ordered block (columns
        of an F-ordered array are contiguous), so a large LUT batch no
        longer doubles peak RSS by materializing per-column copies.
        Column ``i`` of the result is bitwise identical to
        ``solve_currents(currents_matrix[:, i])``.
        """
        block = self.solve_block(currents_matrix, x0=x0)
        if block.shape[1] == 0:
            return []
        per_rhs = self._last_block_time / block.shape[1]
        # Traced columns' residual histories land in the global buffer
        # (backends.traces()); per-result provenance carries the batch's
        # last trace on the last result only -- attributing one column's
        # curve to all k results would be misleading.
        last = block.shape[1] - 1
        return [
            IRDropResult(
                model=self.model,
                drops=block[:, i],
                solve_time=per_rhs,
                backend=self._op.name,
                iterations=self._op.iterations,
                convergence=self._op.last_trace if i == last else None,
                escalated=getattr(self._op, "escalation", None),
            )
            for i in range(block.shape[1])
        ]

    def currents_from_maps(self, maps: Mapping[str, PowerMap]) -> np.ndarray:
        """Assemble one global current vector from per-layer power maps.

        Each power map must be rasterized on the same grid as its target
        layer; the map's currents are drawn from that layer's nodes.
        """
        currents = np.zeros(self._num_nodes)
        for key, pmap in maps.items():
            sl = self.model.layer_slice(key)
            grid = self.model.layer_grid(key)
            if pmap.grid.nx != grid.nx or pmap.grid.ny != grid.ny:
                raise SolverError(
                    f"power map grid {pmap.grid.nx}x{pmap.grid.ny} does not "
                    f"match layer {key!r} grid {grid.nx}x{grid.ny}"
                )
            currents[sl] += pmap.flat()
        return currents

    def solve_power_maps(
        self, maps: Mapping[str, PowerMap], x0: Optional[np.ndarray] = None
    ) -> IRDropResult:
        """Solve with loads given as power maps keyed by layer key."""
        return self.solve_currents(self.currents_from_maps(maps), x0=x0)
