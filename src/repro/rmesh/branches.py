"""Branch-current recovery: from a solved drop field back to the wires.

The solver produces node drops; the paper's analysis (sections 3 and 6)
argues about *where* the drop comes from -- package, C4 bumps, PG TSVs,
on-die metal.  That question lives on the branches, not the nodes: every
resistor in the assembled network carries a current ``I = g * (u_a -
u_b)`` that is fully determined by the solution, and recovering those
currents turns a black-box drop field into a physical circuit one can
interrogate (current density per TSV group, dissipation per layer, the
supply path feeding the worst node).

This module extracts that branch-level view from a
:class:`~repro.rmesh.stack.StackModel` plus a drop vector:

* :func:`extract_branches` -- every mesh edge, vertical link and supply
  link as vectorized ``(a, b, g, current)`` groups, in the model's
  insertion order (so plan-op artifact ranges map 1:1 onto link
  indices; see :mod:`repro.pdn.diagnose`);
* :meth:`StackBranches.node_net_current` -- the per-node KCL sum, which
  must reproduce the injected load vector (the conservation property
  the physics tests pin at 1e-9 relative);
* per-layer dissipation / current-density aggregation helpers.

Everything here *reads* the solution -- nothing mutates the model or the
solver, so diagnostics can never perturb recorded physics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.errors import SolverError
from repro.rmesh.stack import StackModel


@dataclass(frozen=True)
class BranchGroup:
    """One homogeneous slice of the network's branches.

    ``kind`` is ``"mesh"`` (edges of one layer, ``layer`` set),
    ``"link"`` (all vertical links, insertion order), or ``"supply"``
    (links to the ideal package node; ``b`` is ``-1``, the eliminated
    supply at drop 0).  ``current`` is signed: positive flows from
    ``a`` toward ``b`` in drop coordinates, i.e. from the hotter (higher
    drop) end toward the supply side.
    """

    kind: str
    layer: Optional[str]
    a: np.ndarray  # global node ids
    b: np.ndarray  # global node ids (-1 for the supply node)
    g: np.ndarray  # conductance, siemens
    current: np.ndarray  # signed amps, a -> b

    @property
    def count(self) -> int:
        return int(self.a.size)

    def dissipation(self) -> np.ndarray:
        """Per-branch dissipated power, watts (``I^2 / g`` = ``g * dV^2``).

        Memoized: the group is frozen, so the field is computed once and
        shared across aggregation passes (treat it as read-only).
        """
        cached = self.__dict__.get("_dissipation")
        if cached is None:
            with np.errstate(divide="ignore", invalid="ignore"):
                cached = np.where(self.g > 0.0, self.current**2 / self.g, 0.0)
            object.__setattr__(self, "_dissipation", cached)
        return cached


class StackBranches:
    """All branch currents of one solved stack, grouped and queryable."""

    def __init__(
        self,
        model: StackModel,
        drops: np.ndarray,
        mesh: Dict[str, BranchGroup],
        links: BranchGroup,
        supply: BranchGroup,
    ) -> None:
        self.model = model
        self.drops = drops
        self.mesh = mesh  # layer key -> group
        self.links = links
        self.supply = supply

    # -- totals ----------------------------------------------------------------

    @property
    def num_branches(self) -> int:
        return (
            sum(g.count for g in self.mesh.values())
            + self.links.count
            + self.supply.count
        )

    def groups(self) -> List[BranchGroup]:
        """Every group: per-layer meshes first, then links, then supply."""
        return [*self.mesh.values(), self.links, self.supply]

    # -- conservation ----------------------------------------------------------

    def node_net_current(self) -> np.ndarray:
        """Net branch current leaving each node, recovered from branches.

        For the solved system ``G u = J`` this must equal the injected
        load vector ``J``: every amp a load draws arrives through the
        node's branches.  Computed purely from the recovered per-branch
        currents (scatter-add), *not* from ``G @ u``, so it genuinely
        tests the recovery.
        """
        net = np.zeros(self.model.num_nodes)
        for group in self.groups():
            np.add.at(net, group.a, group.current)
            if group.kind != "supply":
                np.add.at(net, group.b, -group.current)
        return net

    def kcl_residual(self, injected: np.ndarray) -> Dict[str, float]:
        """KCL residual of the recovery against the injected currents.

        Returns the max absolute residual (amps) and the max residual
        relative to the injected-current scale -- the number the
        conservation property test pins at 1e-9.
        """
        net = self.node_net_current()
        residual = net - injected
        scale = float(np.abs(injected).max())
        if scale <= 0.0:
            scale = max(float(np.abs(net).max()), 1.0)
        max_abs = float(np.abs(residual).max())
        return {
            "max_abs_a": max_abs,
            "max_rel": max_abs / scale,
            "injected_a": float(injected.sum()),
            "supply_return_a": float(self.supply.current.sum()),
        }

    # -- aggregation -----------------------------------------------------------

    def layer_dissipation(self) -> Dict[str, float]:
        """Dissipated power per layer mesh, watts."""
        return {
            key: float(group.dissipation().sum())
            for key, group in self.mesh.items()
        }

    def layer_dissipation_map(self, key: str) -> np.ndarray:
        """Per-node dissipation field of one layer, shape (ny, nx), watts.

        Each edge's power splits evenly onto its two endpoint nodes --
        the standard lumping that keeps the total exact while giving a
        plottable per-node heat field.
        """
        group = self.mesh[key]
        sl = self.model.layer_slice(key)
        grid = self.model.layer_grid(key)
        field = np.zeros(self.model.num_nodes)
        half = 0.5 * group.dissipation()
        np.add.at(field, group.a, half)
        np.add.at(field, group.b, half)
        return field[sl].reshape(grid.ny, grid.nx)

    def total_dissipation(self) -> float:
        """Total dissipated power over every branch, watts."""
        return float(sum(g.dissipation().sum() for g in self.groups()))


def extract_branches(model: StackModel, drops: np.ndarray) -> "StackBranches":
    """Recover every branch current of ``model`` under solution ``drops``."""
    if drops.shape != (model.num_nodes,):
        raise SolverError(
            f"drop vector has shape {drops.shape}, expected "
            f"({model.num_nodes},)"
        )
    mesh: Dict[str, BranchGroup] = {}
    for key in model.layer_keys:
        a, b, g = model.mesh_edge_arrays(key)
        mesh[key] = BranchGroup(
            kind="mesh",
            layer=key,
            a=a,
            b=b,
            g=g,
            current=g * (drops[a] - drops[b]),
        )
    la, lb, lg = model.link_arrays()
    links = BranchGroup(
        kind="link",
        layer=None,
        a=la,
        b=lb,
        g=lg,
        current=lg * (drops[la] - drops[lb]) if la.size else lg.copy(),
    )
    sa, sg = model.supply_arrays()
    supply = BranchGroup(
        kind="supply",
        layer=None,
        a=sa,
        b=np.full(sa.size, -1, dtype=np.int64),
        g=sg,
        # The eliminated supply node sits at drop 0, so the branch drop
        # is the node's own drop.
        current=sg * drops[sa] if sa.size else sg.copy(),
    )
    return StackBranches(model, drops, mesh, links, supply)
